"""Table 6 — San Diego AT&T CO prefixes.

Paper: six /24s hold the EdgeCO router interfaces and one separate /24
(75.20.78.0/24) holds the AggCO routers.
"""

from repro.analysis.tables import render_table


def test_table6_att_prefixes(benchmark, internet, att_topology):
    def collect():
        return sorted(att_topology.edge_prefixes), sorted(att_topology.agg_prefixes)

    edge_prefixes, agg_prefixes = benchmark(collect)

    rows = [["Edge CO", p] for p in edge_prefixes]
    rows += [["Aggregation CO", p] for p in agg_prefixes]
    print("\n" + render_table(
        ["Central Office type", "prefix"], rows,
        title="Table 6 — San Diego CO prefixes (paper: 6 edge /24s + 1 agg /24)",
    ))

    assert len(edge_prefixes) == 6
    assert len(agg_prefixes) == 1
    # They match the generator's ground-truth address plan exactly.
    truth = internet.att.router_prefixes["sndgca"]
    assert set(edge_prefixes) == {str(p) for p in truth["edge"]}
    assert set(agg_prefixes) == {str(p) for p in truth["agg"]}
