"""Fig 17 — the three carriers' inferred aggregation designs.

Paper: AT&T concentrates each region into one mobile EdgeCO with
several PGWs on its own backbone; Verizon groups multiple EdgeCOs
under shared backbone regions; T-Mobile distributes PGW pools across
sites wired to several third-party backbone providers.
"""

from repro.infer.mobile_ipv6 import MobileIPv6Analyzer


def test_fig17_mobile_topologies(benchmark, ship_campaign):
    campaign, results = ship_campaign
    analyzer = MobileIPv6Analyzer(campaign.celldb)

    def run():
        return {
            name: (
                analyzer.classify_topology(result),
                analyzer.backbone_providers(result),
            )
            for name, result in results.items()
        }

    classified = benchmark(run)

    print("\nFig 17 — inferred mobile access network designs:")
    for name, (klass, providers) in sorted(classified.items()):
        shown = ", ".join(sorted(providers)) or "own backbone"
        print(f"  {name}: {klass} (backbones: {shown})")

    assert classified["att-mobile"][0] == "single-edgeco-per-region"
    assert classified["verizon"][0] == "shared-backbone-multi-edgeco"
    assert classified["tmobile"][0] == "distributed-multi-backbone"
    # T-Mobile's three third-party backbones; Verizon's single alter.net.
    assert len(classified["tmobile"][1]) == 3
    assert classified["verizon"][1] == {"alter"}
    assert classified["att-mobile"][1] == set()
