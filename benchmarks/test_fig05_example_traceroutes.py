"""Fig 5 — example traceroutes whose rDNS names reveal CO identity.

Paper: a Charter path shows `tbone.rr.com` backbone hops followed by
`socal.rr.com` hops with CLLI-coded CO tags (Fig 5a); a Comcast path
shows `ibone.comcast.net` followed by city/state-tagged regional hops
(Fig 5b).
"""

from repro.measure.traceroute import Tracerouter
from repro.rdns.regexes import HostnameParser


def _trace_into(internet, isp, region_name, vm):
    tracer = Tracerouter(internet.network)
    region = isp.regions[region_name]
    target_co = region.edge_cos[2]
    target = str(target_co.routers[0].interfaces[0].address)
    return tracer.trace(vm.host, target, src_address=vm.src_address)


def test_fig05_example_traceroutes(benchmark, internet):
    parser = HostnameParser()
    vm = internet.cloud_vm("gcp", "us-west2")

    def run():
        charter = _trace_into(internet, internet.charter, "socal", vm)
        comcast = _trace_into(internet, internet.comcast, "bverton", vm)
        return charter, comcast

    charter, comcast = benchmark(run)

    for label, trace, region, backbone_zone in (
        ("Fig 5a (Charter SoCal)", charter, "socal", "tbone"),
        ("Fig 5b (Comcast Beaverton)", comcast, "bverton", "ibone"),
    ):
        print(f"\n{label}:")
        for hop in trace.hops:
            print(f"  {hop.index:>2} {hop.address or '*':<16} {hop.rdns or ''}")
        names = [h.rdns for h in trace.hops if h.rdns]
        assert any(backbone_zone in n for n in names), label
        regional = [parser.parse(n) for n in names]
        regional = [p for p in regional if p is not None and p.region == region]
        assert regional, label
        # The backbone hop precedes the regional hops (the Fig 5
        # transition from backbone into the regional network).
        first_backbone = next(
            i for i, n in enumerate(names) if backbone_zone in n
        )
        first_regional = next(
            i for i, n in enumerate(names)
            if (p := parser.parse(n)) is not None and p.region == region
        )
        assert first_backbone < first_regional
