"""Table 5 — Direct Path Revelation exposes MPLS-hidden hops.

Paper: an intra-region traceroute to a lightspeed gateway shows the
EdgeCO router immediately (the aggregation layer is hidden inside the
LSP); re-targeting the traceroute at the egress router's own interface
reveals two additional interior hops inside the AggCO prefix
(75.20.78.x in the paper's San Diego).
"""

import ipaddress

from repro.measure.traceroute import Tracerouter


def test_table5_dpr(benchmark, internet, att_campaign):
    tracer = Tracerouter(internet.network)
    wardriving = att_campaign["wardriving"]
    vp = wardriving.usable_vps()[0]
    lspgw = sorted(att_campaign["lspgws"])[40]

    # The edge-router interface revealed by the plain trace is the DPR
    # target (App. C's method).
    plain = tracer.trace(vp.host, lspgw, src_address=vp.src_address)
    router_hops = [
        h.address for h in plain.hops
        if h.address is not None and h.rdns is None
    ]
    assert router_hops, "plain trace revealed no unnamed router hop"
    egress = router_hops[-1]

    def run():
        return tracer.trace(vp.host, egress, src_address=vp.src_address)

    dpr = benchmark(run)

    print(f"\nTable 5 — plain trace to {lspgw}:")
    for hop in plain.hops:
        print(f"  {hop.index:>2} {hop.address or '*':<16} {hop.rdns or ''}")
    print(f"DPR trace to egress {egress}:")
    for hop in dpr.hops:
        print(f"  {hop.index:>2} {hop.address or '*':<16} {hop.rdns or ''}")

    agg_pool = ipaddress.ip_network("75.16.0.0/12")
    plain_in_agg = [
        h.address for h in plain.hops
        if h.address and ipaddress.ip_address(h.address) in agg_pool
    ]
    dpr_in_agg = [
        h.address for h in dpr.hops
        if h.address and ipaddress.ip_address(h.address) in agg_pool
    ]
    # MPLS hides the agg layer from through traffic; DPR reveals it.
    assert not plain_in_agg
    assert dpr_in_agg
    assert len(dpr.responsive_addresses()) > len(plain.responsive_addresses()) - 2
