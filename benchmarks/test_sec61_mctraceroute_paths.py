"""§6.1 — McTraceroute path visibility vs research-platform VPs.

Paper: of San Diego's 58 McDonald's, 23 used AT&T WiFi; traceroutes
from them revealed about twice the distinct IP paths that the region's
eight Atlas and two Ark probes could see.
"""

import re

from repro.measure.traceroute import Tracerouter
from repro.measure.wardriving import McTracerouteCampaign


def test_sec61_mctraceroute_paths(benchmark, internet, att_campaign):
    wardriving = att_campaign["wardriving"]
    hotspots = wardriving.usable_vps()
    pattern = re.compile(r"lightspeed\.sndgca\.sbcglobal\.net$")
    targets = internet.network.rdns.addresses_matching(pattern)[:120]

    internal = [
        vp for vp in internet.telco_internal_vps()
        if "sndgca" in vp.name
    ]
    tracer = Tracerouter(internet.network)

    def run():
        wifi_traces = wardriving.sweep(targets)
        platform_traces = []
        for vp in internal:
            for target in targets:
                trace = tracer.trace(vp.host, target, src_address=vp.src_address)
                platform_traces.append(trace)
        return (
            McTracerouteCampaign.distinct_ip_paths(wifi_traces),
            McTracerouteCampaign.distinct_ip_paths(platform_traces),
        )

    wifi_paths, platform_paths = benchmark.pedantic(run, rounds=1, iterations=1)

    usable = len(hotspots)
    print(f"\n§6.1 — San Diego vantage comparison:")
    print(f"  hotspots on AT&T: {usable} of 58 (paper: 23 of 58)")
    print(f"  distinct IP paths: McTraceroute {len(wifi_paths)} vs "
          f"Ark/Atlas {len(platform_paths)} "
          f"({len(wifi_paths) / max(1, len(platform_paths)):.1f}x; paper: ~2x)")

    assert 12 <= usable <= 35              # ~40 % of 58
    assert len(wifi_paths) >= 2 * len(platform_paths)
