"""Table 1 — aggregation types observed in Comcast and Charter.

Paper:   Single AggCO   Comcast 5,  Charter 0
         Two AggCOs     Comcast 11, Charter 0
         Multi-level    Comcast 12, Charter 6
"""

from collections import Counter

from repro.analysis.tables import render_table


def test_table1_aggregation_types(benchmark, comcast_result, charter_result):
    def classify():
        return (
            Counter(comcast_result.aggregation_types().values()),
            Counter(charter_result.aggregation_types().values()),
        )

    comcast, charter = benchmark(classify)

    print("\n" + render_table(
        ["Aggregation Type", "Comcast", "Charter"],
        [
            ["Single AggCO (Fig 8a)", comcast["single"], charter["single"]],
            ["Two AggCOs (Fig 8b)", comcast["two"], charter["two"]],
            ["Multi-level (Fig 8c)", comcast["multi"], charter["multi"]],
        ],
        title="Table 1 — network types observed (paper: 5/11/12 and 0/0/6)",
    ))

    assert comcast["single"] == 5
    assert comcast["two"] == 11
    assert comcast["multi"] == 12
    assert charter == Counter({"multi": 6})
