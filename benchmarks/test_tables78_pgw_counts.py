"""Tables 7 & 8 — packet gateways per region, AT&T and Verizon.

Paper: AT&T operates 11 mobile regions with 2-6 PGWs each (the MTSO
numbers of Table 7); Verizon operates ~32 wireless regions grouped
under 12 backbone regions with 1-4 PGWs each (Table 8).
"""

from repro.analysis.tables import render_table
from repro.infer.mobile_ipv6 import MobileIPv6Analyzer


def test_tables78_pgw_counts(benchmark, internet, ship_campaign):
    campaign, results = ship_campaign
    analyzer = MobileIPv6Analyzer(campaign.celldb)

    def run():
        return (
            analyzer.pgw_counts(results["att-mobile"]),
            analyzer.pgw_counts(results["verizon"]),
        )

    att_counts, verizon_counts = benchmark(run)

    print("\n" + render_table(
        ["region bits", "PGWs"],
        [[key, count] for key, count in sorted(att_counts.items())],
        title="Table 7 — AT&T PGWs per region (paper: 2-6 per region)",
    ))
    print("\n" + render_table(
        ["region bits", "PGWs"],
        [[key, count] for key, count in sorted(verizon_counts.items())],
        title="Table 8 — Verizon PGWs per wireless region (paper: 1-4)",
    ))

    # Table 7 shape: 11 regions, counts distributed across 2..6.
    assert len(att_counts) == 11
    truth_att = sorted(
        spec.pgw_count for spec in internet.mobile_carriers["att-mobile"].regions
    )
    assert sorted(att_counts.values()) == truth_att

    # Table 8 shape: most wireless regions observed, counts in 1..4.
    assert 24 <= len(verizon_counts) <= 32
    assert all(1 <= count <= 4 for count in verizon_counts.values())
    truth_by_bits = {
        f"{spec.region_bits >> 8:x}:{spec.region_bits & 0xff:x}"[:-1]: spec.pgw_count
        for spec in internet.mobile_carriers["verizon"].regions
    }
    # At least half the observed regions recover the exact PGW count
    # (the rest are capped by how often the phone re-attached there).
    exact = sum(
        1 for key, count in verizon_counts.items()
        if any(count == v for k, v in truth_by_bits.items())
    )
    assert exact >= len(verizon_counts) // 2
