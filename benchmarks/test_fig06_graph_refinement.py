"""Fig 6 — heuristic refinement of one noisy region graph.

Paper: the raw graph of a dual-AggCO region carries extraneous
EdgeCO→EdgeCO edges from stale rDNS and misses AggCO→EdgeCO edges from
missing rDNS; refinement removes the former and completes the latter.
"""

from collections import Counter

from repro.infer.refine import RegionRefiner


def _noisy_region():
    """A dual-star region with Fig 6a's two defects injected."""
    adjacencies = Counter()
    edges = [f"E{i:02d}" for i in range(16)]
    for edge in edges:
        adjacencies[("AGG1", edge)] = 4
        adjacencies[("AGG2", edge)] = 4
    del adjacencies[("AGG1", "E15")]      # missing rDNS: Fig 6a node 16
    adjacencies[("E08", "E11")] = 3       # stale rDNS: Fig 6a edge 9->12
    adjacencies[("E02", "E03")] = 3       # stale rDNS: Fig 6a edge 3->4
    return adjacencies


def test_fig06_graph_refinement(benchmark):
    refiner = RegionRefiner()
    refined = benchmark(lambda: refiner.refine("fig6", _noisy_region()))

    print("\nFig 6 refinement of the example region:")
    print(f"  inferred AggCOs: {sorted(refined.agg_cos)}")
    print(
        f"  removed {refined.stats.removed_edge_edges} false EdgeCO->EdgeCO "
        f"edges, added {refined.stats.added_ring_edges} missing ring edges"
    )

    assert refined.agg_cos == {"AGG1", "AGG2"}
    # Both stale EdgeCO->EdgeCO edges are gone (Fig 6b).
    assert not refined.graph.has_edge("E08", "E11")
    assert not refined.graph.has_edge("E02", "E03")
    # The missing AggCO1 edge was restored (Fig 6b's added edge).
    assert refined.graph.has_edge("AGG1", "E15")
    # Every EdgeCO now connects to both AggCOs of the ring.
    for edge in refined.edge_cos:
        assert set(refined.graph.predecessors(edge)) == {"AGG1", "AGG2"}
