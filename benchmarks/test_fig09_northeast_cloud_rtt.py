"""Fig 9 — median cloud RTT to the cable ISP's Northeast states.

Paper: from every cloud the closest location is Northern Virginia;
Connecticut shows *worse* latency than Massachusetts and New Hampshire
despite being geographically closer, because its region has no backbone
entries of its own and rides through the Massachusetts AggCOs
(a 3.5–4 ms penalty).
"""

import statistics

from repro.analysis.tables import render_table
from repro.latency.cloud import CloudLatencyCampaign

NE_REGIONS = ("newengland", "connecticut")
VM_CHOICES = [("aws", "us-east-1"), ("azure", "eastus"), ("gcp", "us-east4")]


def test_fig09_northeast_cloud_rtt(benchmark, internet, comcast_result):
    campaign = CloudLatencyCampaign(internet.network)
    per_co = {
        key: addrs
        for key, addrs in campaign.edge_co_addresses(comcast_result).items()
        if key[0] in NE_REGIONS
    }

    def run():
        medians = {}
        for provider, region_name in VM_CHOICES:
            vm = internet.cloud_vm(provider, region_name)
            samples = campaign.min_rtts_from(vm, per_co, pings=20)
            per_state: dict = {}
            for sample in samples:
                state = sample.co_tag.rsplit(".", 1)[-1]
                per_state.setdefault(state, []).append(sample.min_rtt_ms)
            medians[provider] = {
                state: statistics.median(values)
                for state, values in per_state.items()
            }
        return medians

    medians = benchmark(run)

    states = sorted({s for m in medians.values() for s in m})
    rows = [
        [provider] + [f"{medians[provider].get(s, float('nan')):.1f}" for s in states]
        for provider in medians
    ]
    print("\n" + render_table(
        ["cloud"] + states, rows,
        title="Fig 9 — median RTT (ms) from VA-area clouds to NE states",
    ))

    for provider, by_state in medians.items():
        # The headline inversion: CT worse than MA and NH.
        assert by_state["ct"] > by_state["ma"], provider
        assert by_state["ct"] > by_state["nh"], provider
        # The penalty is on the order of the paper's 3.5-4 ms.
        assert 1.0 < by_state["ct"] - by_state["ma"] < 6.0, provider
