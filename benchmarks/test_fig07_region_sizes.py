"""Fig 7 — CDFs of COs and AggCOs per region, Charter vs Comcast.

Paper: 6 Charter regions vs 28 Comcast regions; Charter regions hold
far more COs (Fig 7a) and far more AggCOs (Fig 7b).
"""

import statistics

from repro.analysis.cdf import Cdf


def test_fig07_region_sizes(benchmark, comcast_result, charter_result):
    def series():
        comcast_cos = [
            r.graph.number_of_nodes() for r in comcast_result.regions.values()
        ]
        charter_cos = [
            r.graph.number_of_nodes() for r in charter_result.regions.values()
        ]
        comcast_aggs = [
            sum(1 for n in r.graph.nodes if r.graph.out_degree(n) > 0)
            for r in comcast_result.regions.values()
        ]
        charter_aggs = [
            sum(1 for n in r.graph.nodes if r.graph.out_degree(n) > 0)
            for r in charter_result.regions.values()
        ]
        return comcast_cos, charter_cos, comcast_aggs, charter_aggs

    comcast_cos, charter_cos, comcast_aggs, charter_aggs = benchmark(series)

    print("\nFig 7a — total COs per region:")
    print("  Comcast:", Cdf(comcast_cos).ascii_plot(width=40, height=6, label="COs"))
    print("  Charter:", Cdf(charter_cos).ascii_plot(width=40, height=6, label="COs"))
    print(f"\nFig 7b — AggCOs per region: comcast median "
          f"{statistics.median(comcast_aggs)}, charter median "
          f"{statistics.median(charter_aggs)}")

    # Paper shape: 28 vs 6 regions; Charter stochastically dominates.
    assert len(comcast_cos) == 28 and len(charter_cos) == 6
    assert min(charter_cos) > statistics.median(comcast_cos)
    assert max(charter_cos) > max(comcast_cos)
    assert statistics.median(charter_aggs) > statistics.median(comcast_aggs)
    # Charter's largest region is far larger than Comcast's largest.
    assert max(charter_cos) > 2 * max(comcast_cos)
