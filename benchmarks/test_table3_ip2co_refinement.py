"""Table 3 — IP→CO mapping churn from alias resolution and
point-to-point subnets.

Paper: Comcast 204,744 initial mappings (alias resolution changed
2.35 %, added 2.76 %, removed 0.86 %; p2p subnets changed 0.04 %,
added 1.27 %) and Charter 54,079 (smaller corrections).  Our regions
are scaled down ~5-10x, so we compare the *fractions*, not the counts.
"""

from repro.analysis.tables import render_table


def test_table3_ip2co_refinement(benchmark, comcast_result, charter_result):
    def stats():
        return comcast_result.mapping.stats, charter_result.mapping.stats

    comcast, charter = benchmark(stats)

    rows = []
    for label, row_c, row_ch in zip(
        [label for label, _v in comcast.as_rows()],
        [value for _l, value in comcast.as_rows()],
        [value for _l, value in charter.as_rows()],
    ):
        rows.append([label, row_c, row_ch])
    print("\n" + render_table(
        ["stage", "Comcast", "Charter"], rows,
        title="Table 3 — IP→CO mapping churn (paper fractions: "
              "Comcast 2.35/2.76/0.86 then 0.04/1.27 %)",
    ))

    for stats_obj in (comcast, charter):
        assert stats_obj.initial > 400
        # Alias resolution does most of the correcting, in single-digit
        # percentages, and the mapping only ever grows.
        assert 0 < stats_obj.alias_changed + stats_obj.alias_added
        assert stats_obj.alias_changed / stats_obj.initial < 0.12
        assert stats_obj.final >= stats_obj.initial
    # Comcast's staler rDNS needs more correcting than Charter's (§5).
    comcast_churn = (comcast.alias_changed + comcast.alias_removed) / comcast.initial
    charter_churn = (charter.alias_changed + charter.alias_removed) / charter.initial
    assert comcast_churn > charter_churn
