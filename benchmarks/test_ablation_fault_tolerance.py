"""Ablation — what resilience machinery buys under measurement failure.

The paper's campaigns ran on a hostile floor (rate-limited ICMP, lossy
hops, VPs that vanish mid-sweep, §5.1/§6.1) and still produced accurate
maps.  This ablation quantifies that: the same fault plan (40 % probe
loss plus two mid-campaign VP dropouts) is run through the Charter
pipeline twice — once naively (single-attempt probes, no failover) and
once resiliently (3 attempts per hop, deterministic VP failover) — and
both are scored against ground truth next to a fault-free run of the
same lean fleet.  The resilient configuration must win back at least
half of the edge recall the naive run loses.

The fleet is deliberately small (the paper's full 47-VP redundancy
hides single-probe loss almost completely; a thin fleet is where
resilience machinery earns its keep).
"""

from repro.analysis.tables import render_table
from repro.faults import FaultPlan
from repro.infer.metrics import (
    degradation_scorecard,
    recall_recovered,
    score_region,
)
from repro.infer.pipeline import CableInferencePipeline

PLAN = FaultPlan(seed=2021, probe_loss=0.40, vp_dropout=2,
                 vp_dropout_after=2000)
FLEET_SIZE = 6
SWEEP_VPS = 4


def _scores(isp, regions):
    tag_of_co = {
        uid: isp.co_tag(co)
        for region in isp.regions.values()
        for uid, co in region.cos.items()
    }
    return [
        score_region(region, isp.regions[name], tag_of_co)
        for name, region in regions.items()
        if name in isp.regions
    ]


def test_ablation_fault_tolerance(benchmark, internet, fleet):
    isp = internet.charter
    lean_fleet = fleet[:FLEET_SIZE]

    def one_run(attempts, failover, faults):
        return CableInferencePipeline(
            internet.network, isp, lean_fleet, sweep_vps=SWEEP_VPS,
            attempts=attempts, faults=faults, failover=failover,
        ).run()

    def run():
        clean = one_run(attempts=1, failover=True, faults=None)
        naive = one_run(attempts=1, failover=False, faults=PLAN)
        resilient = one_run(attempts=3, failover=True, faults=PLAN)
        return {
            "clean": degradation_scorecard(
                "clean", _scores(isp, clean.regions)
            ),
            "naive": degradation_scorecard(
                "faults, no resilience", _scores(isp, naive.regions)
            ),
            "resilient": degradation_scorecard(
                "faults, retry+failover", _scores(isp, resilient.regions)
            ),
            "resilient_health": resilient.health,
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    clean = outcome["clean"]
    naive = outcome["naive"]
    resilient = outcome["resilient"]
    recovered = recall_recovered(clean, naive, resilient)

    print("\n" + render_table(
        ["configuration", "regions", "edge recall", "edge precision",
         "CO recall"],
        [
            [p.label, p.regions_scored, f"{p.mean_edge_recall:.3f}",
             f"{p.mean_edge_precision:.3f}", f"{p.mean_co_recall:.3f}"]
            for p in (clean, naive, resilient)
        ],
        title="Ablation — inference quality under injected faults (charter)",
    ))
    health = outcome["resilient_health"]
    print(f"resilient campaign: {health.summary()}")
    print(f"edge recall recovered by retry+failover: {recovered:.0%}")

    # The faults must actually bite the naive configuration...
    assert naive.mean_edge_recall < clean.mean_edge_recall
    assert health.probes_retried > 0 and health.vps_lost
    # ...and resilience must win back at least half of what was lost.
    assert recovered >= 0.5
