"""§5.1 — rDNS-targeted probing beats blind /24 sweeps.

Paper: "Directly targeting CO router interfaces observed 5.3x and 2.6x
more CO interconnections than the /24 traceroutes for Comcast and
Charter, respectively, as some COs responded to the /24 probing using
addresses without rDNS."
"""

from repro.analysis.tables import render_table
from repro.infer.adjacency import AdjacencyExtractor
from repro.infer.ip2co import Ip2CoMapper


def _slash24_targets(isp) -> "set[str]":
    targets = set()
    for prefixes in isp.region_prefixes.values():
        for prefix in prefixes:
            for subnet in prefix.subnets(new_prefix=24):
                targets.add(str(subnet.network_address + 1))
    return targets


def _co_adjacencies(internet, isp, result, traces):
    mapper = Ip2CoMapper(
        internet.network.rdns, isp.name, p2p_prefixlen=isp.p2p_prefixlen
    )
    mapping = mapper.build(traces, result.aliases)
    extractor = AdjacencyExtractor(mapping, internet.network.rdns, isp.name)
    adjacencies = extractor.extract(traces)
    return sum(
        len(counter) for counter in adjacencies.per_region.values()
    )


def test_sec51_target_selection(benchmark, internet, comcast_result,
                                charter_result):
    def run():
        ratios = {}
        for isp, result in (
            (internet.comcast, comcast_result),
            (internet.charter, charter_result),
        ):
            # Partition the existing corpus by campaign stage: the /24
            # sweep targets .1 network addresses; the rDNS sweep targets
            # named CO interfaces.
            slash24 = _slash24_targets(isp)
            slash24_traces = [
                t for t in result.traces if t.dst_address in slash24
            ]
            rdns_traces = [
                t for t in result.traces if t.dst_address not in slash24
            ]
            adj_slash24 = _co_adjacencies(internet, isp, result, slash24_traces)
            adj_rdns = _co_adjacencies(internet, isp, result, rdns_traces)
            ratios[isp.name] = (adj_slash24, adj_rdns)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for isp_name, (from_24, from_rdns) in sorted(ratios.items()):
        rows.append([
            isp_name, from_24, from_rdns, f"{from_rdns / max(1, from_24):.1f}x",
        ])
    print("\n" + render_table(
        ["ISP", "CO adjs via /24 sweep", "via rDNS targets", "gain"],
        rows,
        title="§5.1 — target selection (paper: 5.3x Comcast, 2.6x Charter)",
    ))

    for isp_name, (from_24, from_rdns) in ratios.items():
        assert from_rdns > 1.5 * from_24, isp_name
    # Comcast gains more than Charter, as in the paper.
    comcast_gain = ratios["comcast"][1] / max(1, ratios["comcast"][0])
    charter_gain = ratios["charter"][1] / max(1, ratios["charter"][0])
    assert comcast_gain > charter_gain
