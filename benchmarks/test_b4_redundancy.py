"""§5.2.5 + Appendix B.4 — backbone entries and EdgeCO redundancy.

Paper: 57 backbone entry points across the 28 Comcast regions; every
Charter region and all-but-three Comcast regions reach ≥2 BackboneCOs;
37.7 % of Charter EdgeCOs have a single upstream CO vs 11.4 % for
Comcast (29.0 % for Charter excluding the southeast region, which
showed no CO-level redundancy at all).
"""

from repro.analysis.tables import render_table
from repro.infer.entries import EntryInferrer
from repro.infer.metrics import single_upstream_fraction


def test_b4_redundancy(benchmark, comcast_result, charter_result):
    def run():
        comcast_entries = EntryInferrer.backbone_cos_per_region(
            comcast_result.entries
        )
        charter_entries = EntryInferrer.backbone_cos_per_region(
            charter_result.entries
        )
        comcast_regions = list(comcast_result.regions.values())
        charter_regions = list(charter_result.regions.values())
        return {
            "comcast_entries": comcast_entries,
            "charter_entries": charter_entries,
            "comcast_single": single_upstream_fraction(comcast_regions),
            "charter_single": single_upstream_fraction(charter_regions),
            "charter_single_ex_se": single_upstream_fraction(
                charter_regions, exclude={"southeast"}
            ),
            "entry_points": len(EntryInferrer.backbone_entry_count(
                comcast_result.entries
            )),
        }

    out = benchmark(run)

    print("\n" + render_table(
        ["metric", "measured", "paper"],
        [
            ["Comcast regions with ≥2 BackboneCOs",
             sum(1 for n in out["comcast_entries"].values() if n >= 2),
             "25 of 28"],
            ["Charter regions with ≥2 BackboneCOs",
             sum(1 for n in out["charter_entries"].values() if n >= 2), "6 of 6"],
            ["Comcast single-upstream EdgeCOs",
             f"{out['comcast_single']:.1%}", "11.4%"],
            ["Charter single-upstream EdgeCOs",
             f"{out['charter_single']:.1%}", "37.7%"],
            ["Charter single-upstream (excl. southeast)",
             f"{out['charter_single_ex_se']:.1%}", "29.0%"],
        ],
        title="§5.2.5 / App. B.4 — entries and redundancy",
    ))

    comcast_two_plus = sum(1 for n in out["comcast_entries"].values() if n >= 2)
    assert comcast_two_plus >= len(out["comcast_entries"]) - 3
    assert all(n >= 2 for n in out["charter_entries"].values())
    assert 0.05 < out["comcast_single"] < 0.25
    assert 0.18 < out["charter_single"] < 0.50
    assert out["charter_single"] > 1.6 * out["comcast_single"]
    assert out["charter_single_ex_se"] < out["charter_single"]
