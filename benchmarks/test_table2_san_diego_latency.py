"""Table 2 — latency from a Los Angeles cloud VM to San Diego EdgeCOs.

Paper: min RTTs bucket as 3-4 ms: 5 | 4-5: 19 | 5-6: 7 | 6-7: 2 |
9-10: 2, average 4.3 ms; the two distant EdgeCOs (El Centro and
Calexico customers) show about twice the average latency.
"""

import statistics

from repro.analysis.tables import render_table
from repro.latency.cloud import CloudLatencyCampaign


def test_table2_san_diego_latency(benchmark, internet):
    vm = internet.cloud_vm("gcp", "us-west2")  # Los Angeles
    campaign = CloudLatencyCampaign(internet.network)
    customers = internet.att.ndt_customer_addresses("sndgca")

    def run():
        return campaign.att_edgeco_latency(
            vm, customers, backbone_region_tag="sd2ca"
        )

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    buckets = campaign.bucket_latencies(latencies)
    average = statistics.fmean(latencies.values())

    print("\n" + render_table(
        ["Latency", "EdgeCOs"],
        [[bucket, count] for bucket, count in buckets.items()],
        title="Table 2 — Google Cloud (LA) to San Diego EdgeCOs "
              "(paper: 5/19/7/2/0/0/2, avg 4.3 ms)",
    ))
    print(f"  average: {average:.2f} ms")

    # Shape targets: ~42 devices found via the TTL trick, the bulk in
    # the 4-6 ms bands, a small distant tail at ~1.5-2x the average.
    assert len(latencies) >= 38
    assert buckets["4-5ms"] + buckets["5-6ms"] >= 0.6 * len(latencies)
    assert 3.5 < average < 5.5
    tail = [v for v in latencies.values() if v > 1.4 * average]
    assert 1 <= len(tail) <= 5
