"""Fig 15 + §7.1.1 — shipping coverage and round success rates.

Paper: shipping phones to 12 destinations traversed 40 states; hourly
traceroute rounds succeeded at 82 % (AT&T), 84 % (Verizon), and 75 %
(T-Mobile), failing where in-vehicle signal was too weak.
"""

from repro.analysis.tables import render_table
from repro.measure.shiptraceroute import DEFAULT_ITINERARY


def test_fig15_shipping_coverage(benchmark, ship_campaign):
    campaign, results = ship_campaign

    def summarize():
        return {
            name: (
                result.attempted,
                result.succeeded,
                result.success_rate,
                len(result.states_covered()),
            )
            for name, result in results.items()
        }

    summary = benchmark(summarize)

    print("\n" + render_table(
        ["carrier", "rounds", "ok", "rate", "states"],
        [
            [name, attempted, ok, f"{rate:.0%}", states]
            for name, (attempted, ok, rate, states) in sorted(summary.items())
        ],
        title="Fig 15 / §7.1.1 — shipment coverage "
              "(paper: 82% / 84% / 75%, 40 states)",
    ))

    assert len(DEFAULT_ITINERARY) == 12  # the paper's 12 destinations
    att = summary["att-mobile"]
    verizon = summary["verizon"]
    tmobile = summary["tmobile"]
    # Success-rate shape: Verizon >= AT&T > T-Mobile, all in-band.
    assert 0.70 < att[2] < 0.92
    assert 0.75 < verizon[2] < 0.95
    assert 0.60 < tmobile[2] < 0.85
    assert tmobile[2] < min(att[2], verizon[2])
    # National coverage (paper: 40 states; metro-database resolution
    # bounds us slightly lower).
    for _name, (_a, _ok, _rate, states) in summary.items():
        assert states >= 30
