"""Fig 14 — scamper traceroute energy efficiency on the phone.

Paper: off-the-shelf scamper spends 8.6 mAh per round of traceroutes to
266 destinations; probing consecutive hops in parallel cuts that to
5.3 mAh (a 38 % reduction), with airplane-mode exit costing 1.4-2.6 mAh;
the phone then sustains hourly rounds for ~12 days per charge.
"""

import random

from repro.energy.model import PhoneEnergyModel


def test_fig14_energy(benchmark):
    model = PhoneEnergyModel()

    def run():
        old = model.traceroute_round(
            266, parallel=False, rng=random.Random("fig14-old")
        )
        new = model.traceroute_round(
            266, parallel=True, rng=random.Random("fig14-new")
        )
        return old, new

    old, new = benchmark(run)
    saving = 1 - new.total_mah / old.total_mah

    print("\nFig 14 — cumulative energy of one traceroute round:")
    for label, trace in (("old code", old), ("new code", new)):
        samples = trace.samples[:: max(1, len(trace.samples) // 6)]
        series = ", ".join(f"{t:4.0f}s:{e:4.1f}mAh" for t, e in samples)
        print(f"  {label}: {series} -> total {trace.total_mah:.1f} mAh")
    print(f"  saving: {saving:.0%} (paper: 38 %, 8.6 -> 5.3 mAh)")
    days_new = model.battery_life_days(parallel=True)
    days_old = model.battery_life_days(parallel=False)
    print(f"  battery life: {days_new:.1f} days (paper ~12) vs "
          f"{days_old:.1f} days off-the-shelf")

    assert 7.0 < old.total_mah < 11.0          # paper: 8.6 mAh
    assert 4.0 < new.total_mah < 7.0           # paper: 5.3 mAh
    assert 0.30 < saving < 0.48                # paper: 38 %
    assert new.duration_s < old.duration_s     # parallelism shortens rounds
    assert 10.0 < days_new < 15.0              # paper: ~12 days
    assert days_new > days_old
    wake = model.wake_energy_mah(random.Random("fig14-wake"))
    assert 1.4 <= wake <= 2.6                  # paper's measured range
