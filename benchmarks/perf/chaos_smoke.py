"""CI chaos smoke: seeded worker crashes + stalls must not move the corpus.

Runs the toy-substrate campaign twice:

* serially, with the same fault plan, to produce the oracle corpus;
* under the :class:`SupervisedCampaignRunner` (2 spawned workers,
  aggressive heartbeat/deadline settings) with seeded ``worker_crash``
  and ``worker_stall`` chaos.

Asserts that chaos actually happened (crashes and stalls were observed
and recovered), that every shard completed (nothing poisoned), and that
the supervised corpus is byte-identical to the serial oracle's.  Writes
the run's CampaignHealth, quarantine report, and metrics to
``--artifacts-dir`` so CI uploads them for post-mortem even on failure.

Exit codes: 0 pass, 1 assertion failure (diagnostics on stderr).

Usage::

    python benchmarks/perf/chaos_smoke.py [--artifacts-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Seeded so every CI run injects the identical chaos schedule.
PLAN = {"seed": 11, "worker_crash": 0.25, "worker_stall": 0.15}
TARGETS = [f"198.18.5.{i}" for i in range(1, 41)]


def _jobs(vps):
    return [(vp, target) for vp in vps.values() for target in TARGETS]


def _corpus(traces) -> str:
    from repro.io.checkpoint import trace_to_dict

    return json.dumps([trace_to_dict(t) for t in traces], sort_keys=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts-dir", default=str(ROOT / "chaos-artifacts"))
    args = parser.parse_args()

    from repro.faults import FaultInjector, FaultPlan
    from repro.io.atomic import atomic_write_text
    from repro.measure.runner import CampaignRunner
    from repro.measure.substrates import WorkerSpec, toy_substrate
    from repro.measure.supervisor import SupervisedCampaignRunner
    from repro.obs import MetricsRegistry

    tracer, vps = toy_substrate(hosts=3)
    tracer.network.attach_faults(FaultInjector(FaultPlan(**PLAN)))
    oracle = _corpus(
        CampaignRunner(tracer, list(vps.values())).run(_jobs(vps), stage="s")
    )

    tracer, vps = toy_substrate(hosts=3)
    tracer.network.attach_faults(FaultInjector(FaultPlan(**PLAN)))
    metrics = MetricsRegistry()
    runner = SupervisedCampaignRunner(
        tracer, list(vps.values()),
        worker_spec=WorkerSpec(
            "repro.measure.substrates:toy_substrate", {"hosts": 3}
        ),
        workers=2, shard_size=10,
        heartbeat_interval=0.05, heartbeat_timeout=1.0, shard_deadline=20.0,
        # Fates are drawn per (shard, attempt), so at these rates a
        # shard can lose 3 draws in a row; 6 retries makes recovery
        # certain for this seed while still exercising the retry path.
        max_shard_retries=6,
        metrics=metrics,
    )
    start = time.monotonic()
    corpus = _corpus(runner.run(_jobs(vps), stage="s"))
    elapsed = round(time.monotonic() - start, 2)

    artifacts = pathlib.Path(args.artifacts_dir)
    artifacts.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        artifacts / "campaign-health.json",
        json.dumps(runner.health.as_dict(), indent=2, sort_keys=True) + "\n",
    )
    atomic_write_text(
        artifacts / "quarantine.json",
        json.dumps(runner.quarantine.as_dict(), indent=2, sort_keys=True)
        + "\n",
    )
    atomic_write_text(
        artifacts / "metrics.json",
        json.dumps(metrics.snapshot(), indent=2, sort_keys=True) + "\n",
    )

    health = runner.health
    print(
        f"chaos smoke: {elapsed}s, crashes={health.workers_crashed} "
        f"stalls={health.workers_stalled} retried={health.shards_retried} "
        f"poisoned={health.shards_poisoned} "
        f"spawned={health.workers_spawned}",
        file=sys.stderr,
    )
    failures = []
    if health.workers_crashed < 1:
        failures.append("no worker crashes observed — chaos did not fire")
    if health.workers_stalled < 1:
        failures.append("no worker stalls observed — chaos did not fire")
    if health.shards_poisoned:
        failures.append(
            f"{health.shards_poisoned} shard(s) poisoned — retries "
            "should have recovered seeded chaos at these rates"
        )
    if corpus != oracle:
        failures.append("supervised corpus diverged from the serial oracle")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos smoke passed: corpus identical, all shards recovered",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
