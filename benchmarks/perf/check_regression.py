"""Benchmark regression gate for CI.

Compares a freshly produced benchmark payload (``bench_pipeline.py
--smoke`` output) against the committed baseline
(``BENCH_BASELINE.json``) and fails when:

* the run's own baseline/optimized digests diverge (the optimized
  pipeline no longer reproduces the serial oracle's graphs);
* the optimized digest differs from the committed baseline's (the
  seeded workload is deterministic, so this means an inference-visible
  behaviour change that must be re-baselined deliberately);
* the speedup ratio regressed more than ``--max-regression`` (default
  20%) relative to the committed baseline, or fell below
  ``--min-speedup``;
* the ``columnar`` section is missing, its columnar digest diverged
  from the object-graph oracle's (within the run or vs the committed
  baseline), or — for full (non-smoke) payloads — its speedup fell
  below ``--min-columnar-speedup`` (default 3.0) on the unpaced
  1000-CO workload;
* an embedded run manifest is missing or fails schema validation;
* a ``streaming`` section is present whose snapshot digest diverged
  from the batch pipeline's (streaming must be digest-identical, never
  approximate) — payloads without the section skip this check, so
  baselines committed before it existed still self-check;
* a ``measurement`` section is present (full-mode payloads only) whose
  supervised corpus diverged from the serial oracle, or whose
  supervised speedup fell below 1.0 — smoke payloads carry no
  measurement section and skip this check.

Independently, ``--bias-report PATH`` gates a committed (or freshly
generated) ``bias-report`` artifact from the measurement-bias lab:
schema validation, streaming parity, species-estimator relative error
within ``--max-species-error`` (default 0.35) of ground truth, and the
optimized VP placement beating its seeded random baseline on edge
recall.  With ``--bias-report`` alone, ``--current`` may be omitted.

Speedup is a *ratio* of two wall-clocks measured on the same machine in
the same run, so the gate is machine-independent; absolute wall times
are never compared.

Usage::

    python benchmarks/perf/check_regression.py \
        --current bench.json --baseline benchmarks/perf/BENCH_BASELINE.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

DEFAULT_MAX_REGRESSION = 0.20
DEFAULT_MIN_SPEEDUP = 1.0
#: Floor for the columnar path on the full unpaced 1000-CO workload.
DEFAULT_MIN_COLUMNAR_SPEEDUP = 3.0


def _validate_manifest(manifest: object, label: str) -> "list[str]":
    from repro.errors import SchemaError
    from repro.validate.schema import validate_artifact

    if not isinstance(manifest, dict):
        return [f"{label}: run manifest missing from benchmark payload"]
    try:
        validate_artifact(manifest, kind="run-manifest")
    except SchemaError as exc:
        return [f"{label}: run manifest failed schema validation: {exc}"]
    return []


def evaluate(
    current: "dict",
    baseline: "dict",
    max_regression: float = DEFAULT_MAX_REGRESSION,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    min_columnar_speedup: float = DEFAULT_MIN_COLUMNAR_SPEEDUP,
) -> "list[str]":
    """Return a list of failure messages (empty means the gate passes)."""
    failures: "list[str]" = []
    cur = current.get("inference", {})
    base = baseline.get("inference", {})

    cur_base_digest = cur.get("baseline", {}).get("digest")
    cur_opt_digest = cur.get("optimized", {}).get("digest")
    if not cur_base_digest or not cur_opt_digest:
        return ["current payload lacks inference digests; wrong file?"]
    if cur_base_digest != cur_opt_digest:
        failures.append(
            "optimized pipeline diverged from the serial oracle: "
            f"baseline digest {cur_base_digest[:12]}… != "
            f"optimized digest {cur_opt_digest[:12]}…"
        )

    cur_workload = cur.get("optimized", {}).get("workload")
    base_workload = base.get("optimized", {}).get("workload")
    if cur_workload != base_workload:
        failures.append(
            "workloads differ between current run and committed baseline "
            f"({cur_workload!r} vs {base_workload!r}); digests and speedup "
            "are not comparable — re-baseline deliberately"
        )
    else:
        base_opt_digest = base.get("optimized", {}).get("digest")
        if base_opt_digest and cur_opt_digest != base_opt_digest:
            failures.append(
                "inferred-region digest drifted from the committed baseline: "
                f"{cur_opt_digest[:12]}… != {base_opt_digest[:12]}…; "
                "if the inference change is intentional, regenerate "
                "BENCH_BASELINE.json in the same commit"
            )

    cur_speedup = cur.get("speedup")
    base_speedup = base.get("speedup")
    if not isinstance(cur_speedup, (int, float)):
        failures.append("current payload lacks a speedup figure")
    else:
        if cur_speedup < min_speedup:
            failures.append(
                f"speedup {cur_speedup:.2f}x fell below the "
                f"{min_speedup:.2f}x floor"
            )
        if isinstance(base_speedup, (int, float)) and base_speedup > 0:
            floor = base_speedup * (1.0 - max_regression)
            if cur_speedup < floor:
                failures.append(
                    f"speedup regressed >{max_regression:.0%}: "
                    f"{cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
                    f"(floor {floor:.2f}x)"
                )

    for mode in ("baseline", "optimized"):
        failures.extend(
            _validate_manifest(cur.get(mode, {}).get("manifest"), f"current/{mode}")
        )

    failures.extend(_evaluate_columnar(
        current, baseline, min_columnar_speedup
    ))

    streaming = current.get("streaming")
    if streaming is not None and not streaming.get("digest_identical"):
        failures.append(
            "streaming snapshot diverged from the batch pipeline in the "
            "streaming section (must be digest-identical)"
        )

    measurement = current.get("measurement")
    if measurement is not None:
        if not measurement.get("corpus_digest_identical"):
            failures.append(
                "supervised (process-sharded) corpus diverged from the "
                "serial oracle in the measurement section"
            )
        sup_speedup = measurement.get("speedup")
        if not isinstance(sup_speedup, (int, float)) or sup_speedup < 1.0:
            failures.append(
                f"supervised measurement speedup {sup_speedup!r} fell "
                "below the 1.0x floor (workers must beat serial on the "
                "paced workload)"
            )
    return failures


def _evaluate_columnar(
    current: "dict", baseline: "dict", min_columnar_speedup: float
) -> "list[str]":
    """Gate the columnar (vectorized 1000-CO) benchmark section."""
    failures: "list[str]" = []
    col = current.get("columnar")
    if not isinstance(col, dict):
        return ["current payload lacks a columnar section; wrong file?"]

    oracle_digest = col.get("oracle", {}).get("digest")
    col_digest = col.get("columnar", {}).get("digest")
    if not oracle_digest or not col_digest:
        return ["columnar section lacks digests; wrong file?"]
    if oracle_digest != col_digest:
        failures.append(
            "columnar path diverged from the object-graph oracle: "
            f"oracle digest {oracle_digest[:12]}… != "
            f"columnar digest {col_digest[:12]}…"
        )

    base_col = baseline.get("columnar", {})
    cur_workload = col.get("columnar", {}).get("workload")
    base_workload = base_col.get("columnar", {}).get("workload")
    if cur_workload != base_workload:
        failures.append(
            "columnar workloads differ between current run and committed "
            f"baseline ({cur_workload!r} vs {base_workload!r}); "
            "re-baseline deliberately"
        )
    else:
        base_digest = base_col.get("columnar", {}).get("digest")
        if base_digest and col_digest != base_digest:
            failures.append(
                "columnar inferred-region digest drifted from the "
                f"committed baseline: {col_digest[:12]}… != "
                f"{base_digest[:12]}…; if the inference change is "
                "intentional, regenerate the baseline in the same commit"
            )

    speedup = col.get("speedup")
    if not isinstance(speedup, (int, float)):
        failures.append("columnar section lacks a speedup figure")
    elif not current.get("smoke") and speedup < min_columnar_speedup:
        # The ≥3x floor is defined over the full unpaced 1000-CO
        # workload; the smoke corpus is far too small for the ratio to
        # be meaningful, so smoke payloads only gate digest identity.
        failures.append(
            f"columnar speedup {speedup:.2f}x fell below the "
            f"{min_columnar_speedup:.2f}x floor on the 1000-CO workload"
        )

    for mode in ("oracle", "columnar"):
        failures.extend(
            _validate_manifest(
                col.get(mode, {}).get("manifest"), f"columnar/{mode}"
            )
        )
    return failures


DEFAULT_MAX_SPECIES_ERROR = 0.35


def evaluate_bias_report(
    report: "dict", max_species_error: float = DEFAULT_MAX_SPECIES_ERROR
) -> "list[str]":
    """Gate a ``bias-report`` artifact from the measurement-bias lab."""
    from repro.errors import SchemaError
    from repro.validate.schema import validate_artifact

    try:
        validate_artifact(report, kind="bias-report")
    except SchemaError as exc:
        return [f"bias report failed schema validation: {exc}"]

    failures: "list[str]" = []
    for label in ("cos", "links"):
        section = report["species"][label]
        error = section["relative_error"]
        if error > max_species_error:
            failures.append(
                f"species estimator for {label} missed ground truth by "
                f"{error:.1%} (chao1 {section['chao1']} vs truth "
                f"{section['truth']}; floor {max_species_error:.0%})"
            )
    placement = report["placement"]
    if placement["edge_recall"] <= placement["random_recall"]:
        failures.append(
            f"optimized VP placement ({placement['edge_recall']:.1%} edge "
            f"recall) failed to beat the seeded random baseline "
            f"({placement['random_recall']:.1%})"
        )
    if not report["streaming"]["parity"]:
        failures.append(
            "bias report records broken streaming parity: the incremental "
            "engine diverged from the batch pipeline"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", help="fresh benchmark JSON")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).resolve().parent / "BENCH_BASELINE.json"),
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed fractional speedup regression (default 0.20)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="absolute speedup floor (default 1.0)",
    )
    parser.add_argument(
        "--min-columnar-speedup",
        type=float,
        default=DEFAULT_MIN_COLUMNAR_SPEEDUP,
        help="columnar-path speedup floor on full payloads (default 3.0)",
    )
    parser.add_argument(
        "--bias-report", metavar="PATH",
        help="also gate this bias-report artifact (schema, species "
             "accuracy, placement vs random, streaming parity)",
    )
    parser.add_argument(
        "--max-species-error",
        type=float,
        default=DEFAULT_MAX_SPECIES_ERROR,
        help="allowed species-estimator relative error vs ground truth "
             "(default 0.35)",
    )
    args = parser.parse_args()
    if not args.current and not args.bias_report:
        parser.error("need --current and/or --bias-report")

    failures: "list[str]" = []
    if args.current:
        current = json.loads(pathlib.Path(args.current).read_text())
        baseline = json.loads(pathlib.Path(args.baseline).read_text())
        failures.extend(evaluate(
            current,
            baseline,
            max_regression=args.max_regression,
            min_speedup=args.min_speedup,
            min_columnar_speedup=args.min_columnar_speedup,
        ))
    if args.bias_report:
        report = json.loads(pathlib.Path(args.bias_report).read_text())
        failures.extend(evaluate_bias_report(
            report, max_species_error=args.max_species_error
        ))
    if failures:
        print("benchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    parts = []
    if args.current:
        cur = current["inference"]
        col = current.get("columnar", {})
        parts.append(
            f"speedup {cur['speedup']:.2f}x "
            f"(baseline {baseline['inference']['speedup']:.2f}x), columnar "
            f"{col.get('speedup', 0.0):.2f}x, digests stable"
        )
    if args.bias_report:
        species = report["species"]
        parts.append(
            f"bias report OK (species err cos {species['cos']['relative_error']:.1%} "
            f"/ links {species['links']['relative_error']:.1%}, placement "
            f"{report['placement']['edge_recall']:.1%} > random "
            f"{report['placement']['random_recall']:.1%}, parity "
            f"{report['streaming']['parity']})"
        )
    print("benchmark regression gate passed: " + "; ".join(parts))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
