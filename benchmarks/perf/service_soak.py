"""CI service soak: SIGKILL the campaign service mid-run, lose nothing.

Drives the resilient campaign service the way the PR's acceptance
criterion demands:

* spools a seeded portfolio of ~10 toy mapping jobs — clean ones,
  jobs whose first attempts chaos-fail, a poison job that must end up
  quarantined as ``failed``, and supervised jobs with seeded
  ``worker_crash`` / ``worker_stall`` chaos;
* runs ``repro service run --until-idle`` as a real subprocess and
  SIGKILLs it on a fixed schedule of mid-run points, restarting
  against the same state directory each time;
* asserts convergence after the final (unkilled) run: every job
  terminal, the poison job ``failed`` with a validated
  quarantine-report failure artifact, no job duplicated or lost, every
  recorded artifact digest matching the bytes on disk, and the
  deterministic jobs' ``corpus.json`` byte-identical to an
  uninterrupted reference run.

Writes a summary plus the final state's metrics/trace exports to
``--artifacts-dir`` so CI uploads them even on failure.

Exit codes: 0 pass, 1 invariant violation (diagnostics on stderr).

Usage::

    python benchmarks/perf/service_soak.py [--artifacts-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Mid-run SIGKILL points (seconds after service start).  Staggered so
#: kills land during interpreter boot, journal replay, mid-campaign,
#: and mid-retry across the restarts.
KILL_SCHEDULE = (0.6, 0.9, 1.2, 1.5, 1.9, 2.4, 3.0)

RUN_TIMEOUT_S = 300


def _portfolio():
    """~10 seeded jobs covering the failure-mode matrix."""
    from repro.service.spec import JobSpec

    jobs = [
        # Clean deterministic jobs: must come out byte-identical.
        JobSpec(pipeline="toy", seed=1, targets=30, hosts=3),
        JobSpec(pipeline="toy", seed=2, targets=24, hosts=2),
        JobSpec(pipeline="toy", seed=3, targets=18, hosts=2),
        JobSpec(pipeline="toy", seed=4, targets=12, hosts=3),
        # Retry path: first attempts chaos-fail, then succeed.
        JobSpec(pipeline="toy", seed=5, targets=16, hosts=2,
                chaos={"fail_attempts": 1}),
        JobSpec(pipeline="toy", seed=6, targets=16, hosts=2,
                chaos={"fail_attempts": 2}),
        # Poison job: exhausts the attempt budget, must be quarantined.
        JobSpec(pipeline="toy", seed=7, targets=8, hosts=2,
                chaos={"fail_attempts": 99}, name="poison"),
        # Faulty substrate (probe loss is deterministic per plan seed).
        JobSpec(pipeline="toy", seed=8, targets=20, hosts=2,
                faults={"probe_loss": 0.2}),
        # Supervised workers with seeded crash/stall chaos.
        JobSpec(pipeline="toy", seed=9, targets=20, hosts=3, workers=2,
                faults={"worker_crash": 0.2, "worker_stall": 0.1}),
        JobSpec(pipeline="toy", seed=10, targets=20, hosts=2, workers=2,
                faults={"worker_crash": 0.15}),
    ]
    return jobs


def _spool(state: pathlib.Path, specs) -> "list[str]":
    from repro.service.spec import job_id_for, job_spec_to_json

    inbox = state / "inbox"
    inbox.mkdir(parents=True, exist_ok=True)
    ids = []
    for spec in specs:
        job_id = job_id_for(spec)
        (inbox / f"{job_id}.json").write_text(job_spec_to_json(spec))
        ids.append(job_id)
    return ids


def _run_args(state: pathlib.Path) -> "list[str]":
    return [
        sys.executable, "-m", "repro", "service", "run", str(state),
        "--until-idle", "--tick-s", "0.001", "--backoff-base-s", "0.001",
        "--max-attempts", "6", "--lease-s", "15",
    ]


def _env():
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_to_completion(state: pathlib.Path) -> None:
    result = subprocess.run(
        _run_args(state), env=_env(), capture_output=True, text=True,
        timeout=RUN_TIMEOUT_S,
    )
    if result.returncode != 0:
        raise AssertionError(
            f"service run failed ({result.returncode}): {result.stderr}"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts-dir",
                        default=str(ROOT / "service-soak-artifacts"))
    args = parser.parse_args()
    artifacts_dir = pathlib.Path(args.artifacts_dir)
    artifacts_dir.mkdir(parents=True, exist_ok=True)

    from repro.obs import sha256_text
    from repro.service.store import JobStore
    from repro.validate.schema import parse_artifact

    specs = _portfolio()
    work = pathlib.Path(tempfile.mkdtemp(prefix="service-soak-"))
    summary = {"kills": 0, "runs": 0}
    failures: "list[str]" = []
    started = time.monotonic()
    try:
        # Reference: the identical portfolio, never interrupted.
        clean = work / "clean"
        ids = _spool(clean, specs)
        _run_to_completion(clean)
        summary["runs"] += 1

        # Victim: SIGKILLed per the schedule, then run to completion.
        state = work / "state"
        _spool(state, specs)
        for delay in KILL_SCHEDULE:
            proc = subprocess.Popen(
                _run_args(state), env=_env(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            summary["runs"] += 1
            try:
                proc.wait(timeout=delay)
                break  # converged before this kill could land
            except subprocess.TimeoutExpired:
                proc.send_signal(signal.SIGKILL)
                proc.wait()
                summary["kills"] += 1
        _run_to_completion(state)
        summary["runs"] += 1

        store = JobStore.open(state, readonly=True)
        reference = JobStore.open(clean, readonly=True)

        # 1. No duplicated or lost jobs.
        if sorted(store.jobs) != sorted(ids):
            failures.append(
                f"job set mismatch: {sorted(store.jobs)} != {sorted(ids)}"
            )
        # 2. Every job terminal, matching the reference disposition.
        for job_id in ids:
            record = store.jobs.get(job_id)
            if record is None:
                continue
            if not record.terminal:
                failures.append(f"{job_id} not terminal: {record.state}")
                continue
            expected = reference.jobs[job_id].state
            if record.state != expected:
                failures.append(
                    f"{job_id} ended {record.state}, reference {expected}"
                )
        # 3. The poison job failed with a validated quarantine artifact.
        poison = [job_id for job_id in ids
                  if store.jobs[job_id].spec.name == "poison"]
        for job_id in poison:
            record = store.jobs[job_id]
            if record.state != "failed":
                failures.append(f"poison job {job_id} ended {record.state}")
                continue
            report = parse_artifact(
                (state / "jobs" / job_id / "failure.json").read_text(),
                kind="quarantine-report",
            )
            if report["records"][0]["category"] != "poison-job":
                failures.append(f"poison job {job_id}: wrong category")
        # 4. Every recorded artifact digest matches the bytes on disk,
        #    and the terminal record export round-trips its schema.
        for job_id in ids:
            record = store.jobs[job_id]
            job_dir = state / "jobs" / job_id
            parse_artifact((job_dir / "record.json").read_text(),
                           kind="job-record")
            for name, meta in record.artifacts.items():
                text = (job_dir / name).read_text()
                if sha256_text(text) != meta["sha256"]:
                    failures.append(f"{job_id}/{name}: digest mismatch")
        # 5. Deterministic jobs byte-identical to the reference run.
        for job_id in ids:
            record = store.jobs[job_id]
            if record.state != "done" or "corpus.json" not in record.artifacts:
                continue
            victim = (state / "jobs" / job_id / "corpus.json").read_bytes()
            oracle = (clean / "jobs" / job_id / "corpus.json").read_bytes()
            if victim != oracle:
                failures.append(f"{job_id}: corpus diverged from reference")

        store.close()
        reference.close()

        summary.update({
            "jobs": len(ids),
            "done": sum(1 for j in ids if store.jobs[j].state == "done"),
            "failed": sum(1 for j in ids if store.jobs[j].state == "failed"),
            "attempts": sum(store.jobs[j].attempts for j in ids),
            "elapsed_s": round(time.monotonic() - started, 1),
            "failures": failures,
        })
        for name in ("service-metrics.json", "service-trace.json",
                     "snapshot.json"):
            source = state / name
            if source.exists():
                shutil.copy(source, artifacts_dir / name)
    finally:
        (artifacts_dir / "soak-summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True)
        )
        shutil.rmtree(work, ignore_errors=True)

    if failures:
        for failure in failures:
            print(f"SOAK FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"service soak pass: {summary['jobs']} jobs "
        f"({summary['done']} done / {summary['failed']} failed) survived "
        f"{summary['kills']} SIGKILLs across {summary['runs']} runs in "
        f"{summary['elapsed_s']}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
