"""Benchmark harness: inference-phase speedup and supervised measurement.

Three sections, written to ``BENCH_CURRENT.json``:

* **inference** — the phase-2 pipeline (IP→CO mapping, adjacency
  extraction/pruning, refinement) over a large synthetic region corpus
  (60 COs, 20k traces by default), run twice in separate subprocesses:

  - ``baseline``: module memos disabled, no :class:`InferenceCache`,
    quadratic follow-up scan — the pre-PR configuration;
  - ``optimized``: memos + shared cache + positional follow-up index.

  Each subprocess reports wall-clock, peak RSS (``ru_maxrss`` is
  process-monotonic, hence the isolation), and a digest of the inferred
  region graphs; the orchestrator asserts the digests match and records
  the speedup.

* **columnar** — the same phases over the unpaced 1000-CO workload
  (4 regions × 250 COs, 500k traces), comparing the object-graph
  oracle (``optimized`` mode) against the vectorized columnar path
  (:class:`~repro.corpus.columnar.TraceCorpus` +
  ``Ip2CoMapper.build_columnar`` / ``AdjacencyExtractor
  .extract_columnar``).  Corpus construction is untimed in both modes;
  the inferred-region digests must be identical — the columnar path is
  a pure representation change, not an approximation.

* **streaming** — the measurement-bias lab's incremental engine
  (:class:`~repro.bias.incremental.IncrementalCoGraph`) replaying the
  inference workload one trace at a time, against the batch stages as
  oracle.  The snapshot digest must equal the batch digest (streaming
  is a scheduling change, not an approximation); the section records
  both wall-clocks and streaming ingest throughput.

* **measurement** (full mode only) — a paced slice of the
  simulated-internet Comcast campaign run serially and under the
  process-sharded :class:`SupervisedCampaignRunner` with
  ``--workers 4``, recording wall-clock for each, the speedup, and
  that the trace corpora are byte-identical.  Pacing
  (``Tracerouter.pace_ms``) models the latency-bound regime real
  campaigns run in — every probe waits on an RTT — which is the regime
  sharded measurement exists for; an unpaced pure-CPU simulation would
  only measure host core count.  (The thread-based
  ``ParallelCampaignRunner`` is no longer benchmarked: it is the
  in-process parity oracle, not the production path.)

Usage::

    python benchmarks/perf/bench_pipeline.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

FULL_WORKLOAD = {"regions": 2, "cos_per_region": 30, "traces": 20000,
                 "followups": 1200, "seed": 2021}
SMOKE_WORKLOAD = {"regions": 2, "cos_per_region": 8, "traces": 1500,
                  "followups": 200, "seed": 2021}
#: Columnar-section workload: 4 × 250 = 1000 COs, unpaced.  20 AggCOs
#: per region keeps the synthetic address scheme's per-agg link count
#: inside one octet at this CO density.
COLUMNAR_WORKLOAD = {"regions": 4, "cos_per_region": 250,
                     "aggs_per_region": 20, "traces": 500000,
                     "followups": 8000, "seed": 2021}
COLUMNAR_SMOKE_WORKLOAD = {"regions": 2, "cos_per_region": 40,
                           "traces": 20000, "followups": 2000,
                           "seed": 2021}


def _region_digest(regions) -> str:
    """Order-independent digest of the inferred region graphs."""
    payload = {
        name: {
            "edges": sorted(
                (a, b, int(data.get("weight", 0)))
                for a, b, data in region.graph.edges(data=True)
            ),
            "aggs": sorted(region.agg_cos),
        }
        for name, region in regions.items()
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def run_inference_mode(mode: str, workload: "dict") -> "dict":
    """One subprocess entry: run phase 2 over the synthetic corpus."""
    import contextlib

    from repro.infer.adjacency import AdjacencyExtractor
    from repro.infer.ip2co import Ip2CoMapper
    from repro.infer.refine import RegionRefiner
    from repro.obs import build_run_manifest
    from repro.perf import InferenceCache, PhaseProfiler, memoization_disabled
    from repro.perf.cache import clear_module_memos
    from repro.perf.synthetic import (
        build_synthetic_columnar_corpus,
        build_synthetic_region_corpus,
    )
    from repro.rdns.regexes import HostnameParser

    columnar = mode == "columnar"
    optimized = mode != "baseline"
    if columnar:
        plan, col_corpus, followup_corpus = (
            build_synthetic_columnar_corpus(**workload)
        )
        rdns, isp = plan.rdns, plan.isp
        aliases, co_count = plan.aliases, plan.co_count
    else:
        corpus = build_synthetic_region_corpus(**workload)
        rdns, isp = corpus.rdns, corpus.isp
        aliases, co_count = corpus.aliases, corpus.co_count
    parser = HostnameParser()
    clear_module_memos()  # corpus generation must not pre-warm the memos

    guard = contextlib.nullcontext() if optimized else memoization_disabled()
    profiler = PhaseProfiler()
    start = time.perf_counter()
    with guard:
        cache = InferenceCache(rdns, parser) if optimized else None
        mapper = Ip2CoMapper(rdns, isp, parser=parser, cache=cache)
        with profiler.phase("ip2co"):
            mapping = (
                mapper.build_columnar(col_corpus, aliases) if columnar
                else mapper.build(corpus.traces, aliases)
            )
        extractor = AdjacencyExtractor(
            mapping, rdns, isp, parser=parser, cache=cache,
            use_followup_index=optimized,
        )
        with profiler.phase("adjacency"):
            adjacencies = (
                extractor.extract_columnar(col_corpus, followup_corpus)
                if columnar
                else extractor.extract(
                    corpus.traces, followup_traces=corpus.followups
                )
            )
        refiner = RegionRefiner(cache=cache)
        with profiler.phase("refine"):
            regions = {
                name: refiner.refine(name, counter)
                for name, counter in adjacencies.per_region.items()
            }
    wall_s = time.perf_counter() - start

    report = profiler.as_dict()
    stats = adjacencies.stats
    digest = _region_digest(regions)
    # One structurally-diffable manifest per measured mode: CI's
    # regression gate validates it and compares artifact digests.
    manifest = build_run_manifest(
        command=f"bench-inference:{mode}",
        seed=int(workload["seed"]),
        parameters=dict(workload),
        tracer=profiler.tracer,
        metrics=cache.metrics if cache is not None else None,
        artifact_digests={"inferred-regions": digest},
    )
    return {
        "mode": mode,
        "workload": dict(workload),
        "wall_s": round(wall_s, 3),
        "phases_s": report["phases_s"],
        "peak_rss_kb": report["peak_rss_kb"],
        "digest": digest,
        "manifest": manifest,
        "checks": {
            "co_count": co_count,
            "mapped_addresses": len(mapping),
            "regions": sorted(regions),
            "initial_ip": stats.initial_ip,
            "initial_co": stats.initial_co,
            "mpls_co": stats.mpls_co,
            "single_co": stats.single_co,
        },
        "cache_stats": cache.stats.as_dict() if cache is not None else None,
    }


def _spawn_mode(mode: str, workload: "dict") -> "dict":
    """Run one mode in its own process so peak-RSS readings are honest."""
    command = [
        sys.executable, str(pathlib.Path(__file__).resolve()),
        "--mode", mode, "--workload", json.dumps(workload),
    ]
    output = subprocess.run(
        command, capture_output=True, text=True, check=True, cwd=str(ROOT)
    )
    return json.loads(output.stdout)


def _best_of(repeats: int, mode: str, workload: "dict") -> "dict":
    """Best-of-N spawn: keep the fastest run's report (digests must agree).

    The tiny smoke corpus finishes in tens of milliseconds, where
    scheduler noise dominates; the minimum wall-clock is the standard
    noise-robust estimator, and it is what the CI regression gate's
    speedup ratio is built from.
    """
    runs = [_spawn_mode(mode, workload) for _ in range(max(1, repeats))]
    digests = {run["digest"] for run in runs}
    if len(digests) > 1:
        raise SystemExit(f"FATAL: {mode} digests varied across repeats: {digests}")
    return min(runs, key=lambda run: run["wall_s"])


def run_streaming_section(workload: "dict") -> "dict":
    """Streaming incremental inference vs the batch stages.

    Replays the synthetic corpus one trace at a time through
    :class:`~repro.bias.incremental.IncrementalCoGraph` and snapshots,
    then runs the classic batch stages over the same traces.  The
    snapshot digest must equal the batch digest — streaming is a
    scheduling change, not an approximation — and the section records
    both wall-clocks plus streaming ingest throughput.
    """
    from repro.infer.adjacency import AdjacencyExtractor
    from repro.infer.ip2co import Ip2CoMapper
    from repro.infer.refine import RegionRefiner
    from repro.perf.synthetic import build_synthetic_region_corpus
    from repro.rdns.regexes import HostnameParser

    from repro.bias.incremental import IncrementalCoGraph

    corpus = build_synthetic_region_corpus(**workload)
    parser = HostnameParser()

    start = time.perf_counter()
    mapper = Ip2CoMapper(corpus.rdns, corpus.isp, parser=parser)
    mapping = mapper.build(corpus.traces, corpus.aliases)
    extractor = AdjacencyExtractor(
        mapping, corpus.rdns, corpus.isp, parser=parser
    )
    adjacencies = extractor.extract(
        corpus.traces, followup_traces=corpus.followups
    )
    refiner = RegionRefiner()
    regions = {
        name: refiner.refine(name, counter)
        for name, counter in adjacencies.per_region.items()
    }
    batch_s = time.perf_counter() - start
    batch_digest = _region_digest(regions)

    graph = IncrementalCoGraph(corpus.rdns, corpus.isp, parser=parser)
    start = time.perf_counter()
    for trace in corpus.traces:
        graph.ingest(trace)
    for trace in corpus.followups:
        graph.ingest_followup(trace)
    ingest_s = time.perf_counter() - start
    start = time.perf_counter()
    snapshot = graph.snapshot(aliases=corpus.aliases)
    snapshot_s = time.perf_counter() - start

    stream_s = ingest_s + snapshot_s
    return {
        "workload": dict(workload),
        "batch_wall_s": round(batch_s, 3),
        "stream_wall_s": round(stream_s, 3),
        "stream_ingest_s": round(ingest_s, 3),
        "stream_snapshot_s": round(snapshot_s, 3),
        "stream_traces_per_s": (
            round(len(corpus.traces) / ingest_s) if ingest_s else 0
        ),
        "overhead": round(stream_s / batch_s, 2) if batch_s else 0.0,
        "digest_identical": snapshot.digest == batch_digest,
        "digest": batch_digest,
        "traces": len(corpus.traces),
        "followups": len(corpus.followups),
    }


#: Measurement-section workload: a bounded, paced slice of the Comcast
#: slash24 sweep.  1 ms inter-trace pacing ≈ a conservative probe RTT.
MEASUREMENT = {"seed": 0, "jobs": 4000, "pace_ms": 1.0, "sweep_vps": 4,
               "workers": 4}


def run_measurement_section() -> "dict":
    """Serial vs supervised (process-sharded) paced campaign."""
    from repro.infer.pipeline import CableInferencePipeline
    from repro.io.checkpoint import trace_to_dict
    from repro.measure.runner import CampaignRunner
    from repro.measure.substrates import WorkerSpec
    from repro.measure.supervisor import SupervisedCampaignRunner
    from repro.topology.internet import SimulatedInternet

    def build():
        internet = SimulatedInternet(
            seed=MEASUREMENT["seed"], include_telco=False,
            include_mobile=False,
        )
        pipeline = CableInferencePipeline(
            internet.network, internet.comcast,
            list(internet.build_standard_vps()),
            sweep_vps=MEASUREMENT["sweep_vps"],
            pace_ms=MEASUREMENT["pace_ms"],
        )
        sweep = pipeline.vps[:MEASUREMENT["sweep_vps"]]
        jobs = [
            (vp, target)
            for vp in sweep for target in pipeline.slash24_targets()
        ][:MEASUREMENT["jobs"]]
        return pipeline, jobs

    def digest(traces) -> str:
        blob = json.dumps([trace_to_dict(t) for t in traces],
                          sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    pipeline, jobs = build()
    start = time.perf_counter()
    serial_traces = CampaignRunner(pipeline.tracer, pipeline.vps).run(
        jobs, stage="slash24"
    )
    serial_s = round(time.perf_counter() - start, 3)
    serial_digest = digest(serial_traces)

    pipeline, jobs = build()
    supervised = SupervisedCampaignRunner(
        pipeline.tracer, pipeline.vps,
        worker_spec=WorkerSpec(
            "repro.measure.substrates:cable_substrate",
            {"seed": MEASUREMENT["seed"], "include_telco": False,
             "include_mobile": False},
        ),
        workers=MEASUREMENT["workers"],
    )
    start = time.perf_counter()
    supervised_traces = supervised.run(jobs, stage="slash24")
    supervised_s = round(time.perf_counter() - start, 3)

    return {
        "workload": dict(MEASUREMENT),
        "serial_wall_s": serial_s,
        "supervised_wall_s": supervised_s,
        "speedup": round(serial_s / supervised_s, 2) if supervised_s else 0.0,
        "corpus_digest_identical": digest(supervised_traces) == serial_digest,
        "corpus_digest": serial_digest,
        "traces": len(serial_traces),
        "health": {
            "shards_planned": supervised.health.shards_planned,
            "workers_spawned": supervised.health.workers_spawned,
            "shards_retried": supervised.health.shards_retried,
            "shards_poisoned": supervised.health.shards_poisoned,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("baseline", "optimized", "columnar"),
                        help="internal: run one inference mode and print JSON")
    parser.add_argument("--workload", help="internal: workload JSON")
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus, skip the measurement section (CI)")
    parser.add_argument("--repeats", type=int, default=0,
                        help="best-of-N wall-clock per mode "
                             "(default: 3 for --smoke, 1 for full)")
    parser.add_argument("--out", default=str(ROOT / "BENCH_CURRENT.json"))
    args = parser.parse_args()

    if args.mode:
        workload = json.loads(args.workload) if args.workload else FULL_WORKLOAD
        print(json.dumps(run_inference_mode(args.mode, workload), indent=2))
        return 0

    workload = SMOKE_WORKLOAD if args.smoke else FULL_WORKLOAD
    repeats = args.repeats or (3 if args.smoke else 1)
    print(f"workload: {workload} (best of {repeats})", file=sys.stderr)
    baseline = _best_of(repeats, "baseline", workload)
    print(f"baseline:  {baseline['wall_s']}s, "
          f"rss {baseline['peak_rss_kb']}kB", file=sys.stderr)
    optimized = _best_of(repeats, "optimized", workload)
    print(f"optimized: {optimized['wall_s']}s, "
          f"rss {optimized['peak_rss_kb']}kB", file=sys.stderr)
    if baseline["digest"] != optimized["digest"]:
        print("FATAL: baseline and optimized inferred different graphs",
              file=sys.stderr)
        return 1
    speedup = (
        baseline["wall_s"] / optimized["wall_s"]
        if optimized["wall_s"] else float("inf")
    )

    payload = {
        "benchmark": "inference speedup + supervised measurement",
        "smoke": args.smoke,
        "inference": {
            "baseline": baseline,
            "optimized": optimized,
            "speedup": round(speedup, 2),
            "results_identical": True,
        },
    }

    # Columnar section: object-graph oracle vs vectorized columnar path
    # over the (unpaced) 1000-CO workload.  Digest identity is fatal —
    # the columnar path must reproduce the oracle's graphs exactly.
    col_workload = (
        COLUMNAR_SMOKE_WORKLOAD if args.smoke else COLUMNAR_WORKLOAD
    )
    print(f"columnar workload: {col_workload} (best of {repeats})",
          file=sys.stderr)
    oracle = _best_of(repeats, "optimized", col_workload)
    print(f"oracle (object): {oracle['wall_s']}s, "
          f"rss {oracle['peak_rss_kb']}kB", file=sys.stderr)
    columnar = _best_of(repeats, "columnar", col_workload)
    print(f"columnar:        {columnar['wall_s']}s, "
          f"rss {columnar['peak_rss_kb']}kB", file=sys.stderr)
    if oracle["digest"] != columnar["digest"]:
        print("FATAL: columnar path diverged from the object-graph oracle",
              file=sys.stderr)
        return 1
    col_speedup = (
        oracle["wall_s"] / columnar["wall_s"]
        if columnar["wall_s"] else float("inf")
    )
    payload["columnar"] = {
        "oracle": oracle,
        "columnar": columnar,
        "speedup": round(col_speedup, 2),
        "results_identical": True,
    }
    print(f"columnar speedup: {col_speedup:.2f}x", file=sys.stderr)

    # Streaming section: incremental engine vs batch, digest parity
    # fatal.  Runs in-process (it compares wall-clock ratios, not RSS).
    print(f"streaming workload: {workload}", file=sys.stderr)
    streaming = run_streaming_section(workload)
    print(f"streaming: ingest {streaming['stream_ingest_s']}s + snapshot "
          f"{streaming['stream_snapshot_s']}s vs batch "
          f"{streaming['batch_wall_s']}s "
          f"({streaming['stream_traces_per_s']} traces/s)", file=sys.stderr)
    if not streaming["digest_identical"]:
        print("FATAL: streaming snapshot diverged from the batch pipeline",
              file=sys.stderr)
        return 1
    payload["streaming"] = streaming

    if not args.smoke:
        print("measurement section (serial vs supervised workers=4)…",
              file=sys.stderr)
        payload["measurement"] = run_measurement_section()

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    # Standalone schema-valid sidecar (the optimized mode's manifest),
    # uploaded by CI so every benchmark run ships its provenance.
    from repro.obs import run_manifest_from_json, write_run_manifest

    sidecar = out.with_name(out.stem + ".manifest.json")
    write_run_manifest(
        sidecar, run_manifest_from_json(json.dumps(optimized["manifest"]))
    )
    print(f"speedup: {speedup:.2f}x  →  {out}", file=sys.stderr)
    print(f"manifest sidecar      →  {sidecar}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
