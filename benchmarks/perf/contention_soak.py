"""CI contention soak: 3 executors, one SIGKILLed mid-lease, one truth.

The multi-executor acceptance test for the shared-journal protocol:

* spools a seeded portfolio of toy mapping jobs (JSON and binary
  corpora, chaos retries, a poison job) into one state directory;
* launches **three** ``repro service run --executor-id eN`` processes
  against it concurrently, SIGKILLs one mid-lease, relaunches it, and
  lets the fleet converge (``--until-idle`` waits out peers' leases);
* asserts the invariants that define correctness under contention:
  every job terminal with **exactly one terminal journal event**, no
  artifact written twice with differing bytes (every recorded digest
  matches the bytes on disk, and deterministic corpora are
  byte-identical to an uninterrupted single-executor reference), no
  leftover staging directories, and the HTTP ``GET /jobs`` view in
  agreement with the on-disk snapshot — plus a live exercise of the
  artifact and diff endpoints.

Writes a summary plus the final state's exports to ``--artifacts-dir``
so CI uploads them even on failure.

Exit codes: 0 pass, 1 invariant violation (diagnostics on stderr).

Usage::

    python benchmarks/perf/contention_soak.py [--artifacts-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

EXECUTORS = ("e1", "e2", "e3")
#: Which executor gets SIGKILLed, and when (seconds after fleet start).
#: Late enough that jobs are leased, early enough that plenty remain.
KILL_VICTIM = "e2"
KILL_AFTER_S = 0.9
RUN_TIMEOUT_S = 240
#: Short leases so the killed executor's orphaned job is reclaimed
#: quickly by a peer (heartbeats stop at SIGKILL).
LEASE_S = "5"


def _portfolio():
    """Seeded jobs covering both corpus formats and the retry matrix."""
    from repro.service.spec import JobSpec

    return [
        # Clean deterministic jobs: must come out byte-identical.
        JobSpec(pipeline="toy", seed=1, targets=30, hosts=3),
        JobSpec(pipeline="toy", seed=2, targets=24, hosts=2),
        JobSpec(pipeline="toy", seed=3, targets=18, hosts=2),
        JobSpec(pipeline="toy", seed=4, targets=12, hosts=3),
        JobSpec(pipeline="toy", seed=5, targets=20, hosts=2),
        JobSpec(pipeline="toy", seed=6, targets=16, hosts=2),
        # Binary columnar corpora: the .npz artifact path end to end.
        JobSpec(pipeline="toy", seed=7, targets=20, hosts=2,
                corpus_format="binary"),
        JobSpec(pipeline="toy", seed=8, targets=14, hosts=3,
                corpus_format="binary"),
        # Retry path: first attempts chaos-fail, then succeed.
        JobSpec(pipeline="toy", seed=9, targets=12, hosts=2,
                chaos={"fail_attempts": 1}),
        JobSpec(pipeline="toy", seed=10, targets=12, hosts=2,
                chaos={"fail_attempts": 2}),
        # Poison job: exhausts the attempt budget, must be quarantined.
        JobSpec(pipeline="toy", seed=11, targets=8, hosts=2,
                chaos={"fail_attempts": 99}, name="poison"),
        # Faulty substrate (probe loss is deterministic per plan seed).
        JobSpec(pipeline="toy", seed=12, targets=16, hosts=2,
                faults={"probe_loss": 0.2}),
    ]


def _spool(state: pathlib.Path, specs) -> "list[str]":
    from repro.service.spec import job_id_for, job_spec_to_json

    inbox = state / "inbox"
    inbox.mkdir(parents=True, exist_ok=True)
    ids = []
    for spec in specs:
        job_id = job_id_for(spec)
        (inbox / f"{job_id}.json").write_text(job_spec_to_json(spec))
        ids.append(job_id)
    return ids


def _run_args(state: pathlib.Path, executor_id: str) -> "list[str]":
    return [
        sys.executable, "-m", "repro", "service", "run", str(state),
        "--executor-id", executor_id, "--until-idle",
        "--tick-s", "0.001", "--backoff-base-s", "0.001",
        "--max-attempts", "6", "--lease-s", LEASE_S,
    ]


def _env():
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _launch(state: pathlib.Path, executor_id: str) -> subprocess.Popen:
    return subprocess.Popen(
        _run_args(state, executor_id), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )


def _get(base: str, path: str) -> "tuple[int, bytes]":
    try:
        with urllib.request.urlopen(base + path, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts-dir",
                        default=str(ROOT / "contention-soak-artifacts"))
    args = parser.parse_args()
    artifacts_dir = pathlib.Path(args.artifacts_dir)
    artifacts_dir.mkdir(parents=True, exist_ok=True)

    from repro.obs import sha256_bytes, sha256_text
    from repro.service.http import ServiceHTTPServer
    from repro.service.store import TERMINAL_STATES, JobStore
    from repro.validate.schema import parse_artifact

    specs = _portfolio()
    work = pathlib.Path(tempfile.mkdtemp(prefix="contention-soak-"))
    summary = {"executors": len(EXECUTORS), "kills": 0}
    failures: "list[str]" = []
    started = time.monotonic()
    try:
        # Reference: the identical portfolio, one executor, never
        # interrupted — the byte-identity oracle.
        clean = work / "clean"
        ids = _spool(clean, specs)
        result = subprocess.run(
            _run_args(clean, "ref"), env=_env(), capture_output=True,
            text=True, timeout=RUN_TIMEOUT_S,
        )
        if result.returncode != 0:
            raise AssertionError(
                f"reference run failed ({result.returncode}): "
                f"{result.stderr}"
            )

        # The contended fleet.
        state = work / "state"
        _spool(state, specs)
        fleet = {eid: _launch(state, eid) for eid in EXECUTORS}
        time.sleep(KILL_AFTER_S)
        victim = fleet[KILL_VICTIM]
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            summary["kills"] += 1
            # A new incarnation of the same id: reclaims its own
            # orphaned lease immediately via the executor lock.
            fleet[KILL_VICTIM] = _launch(state, KILL_VICTIM)
        deadline = time.monotonic() + RUN_TIMEOUT_S
        for eid, proc in fleet.items():
            remaining = max(1.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise AssertionError(f"executor {eid} failed to converge")
            if proc.returncode != 0:
                stderr = proc.stderr.read() if proc.stderr else ""
                raise AssertionError(
                    f"executor {eid} exited {proc.returncode}: {stderr}"
                )

        store = JobStore.open(state, readonly=True)
        reference = JobStore.open(clean, readonly=True)

        # 1. No duplicated or lost jobs.
        if sorted(store.jobs) != sorted(ids):
            failures.append(
                f"job set mismatch: {sorted(store.jobs)} != {sorted(ids)}"
            )
        # 2. Every job terminal exactly once: states match the
        #    reference, and the journal-event ring holds exactly one
        #    terminal event per job.
        for job_id in ids:
            record = store.jobs.get(job_id)
            if record is None:
                continue
            if not record.terminal:
                failures.append(f"{job_id} not terminal: {record.state}")
                continue
            expected = reference.jobs[job_id].state
            if record.state != expected:
                failures.append(
                    f"{job_id} ended {record.state}, reference {expected}"
                )
            terminal_events = [
                event for event in record.events
                if event["op"] in ("done", "failed")
            ]
            if len(terminal_events) != 1:
                failures.append(
                    f"{job_id}: {len(terminal_events)} terminal events "
                    f"({[e['op'] for e in terminal_events]})"
                )
        # 3. The poison job failed with a validated quarantine artifact.
        for job_id in ids:
            record = store.jobs.get(job_id)
            if record is None or record.spec.name != "poison":
                continue
            if record.state != "failed":
                failures.append(f"poison job {job_id} ended {record.state}")
                continue
            report = parse_artifact(
                (state / "jobs" / job_id / "failure.json").read_text(),
                kind="quarantine-report",
            )
            if report["records"][0]["category"] != "poison-job":
                failures.append(f"poison job {job_id}: wrong category")
        # 4. No artifact written twice with differing bytes: every
        #    recorded digest matches the bytes on disk (a second writer
        #    would have journaled a different digest or left different
        #    bytes), and no staging leftovers survived.
        for job_id in ids:
            record = store.jobs[job_id]
            job_dir = state / "jobs" / job_id
            parse_artifact((job_dir / "record.json").read_text(),
                           kind="job-record")
            for name, meta in record.artifacts.items():
                data = (job_dir / name).read_bytes()
                digest = sha256_bytes(data) if name.endswith(".npz") \
                    else sha256_text(data.decode())
                if digest != meta["sha256"]:
                    failures.append(f"{job_id}/{name}: digest mismatch")
            staging = [p.name for p in job_dir.glob(".staging-*")]
            if staging:
                failures.append(f"{job_id}: staging leftovers {staging}")
        # 5. Deterministic corpora byte-identical to the reference run.
        for job_id in ids:
            record = store.jobs[job_id]
            for name in ("corpus.json", "corpus.npz"):
                if record.state != "done" or name not in record.artifacts:
                    continue
                victim_bytes = (state / "jobs" / job_id / name).read_bytes()
                oracle = (clean / "jobs" / job_id / name).read_bytes()
                if victim_bytes != oracle:
                    failures.append(
                        f"{job_id}/{name}: diverged from reference"
                    )
        # 6. The HTTP view agrees with the on-disk snapshot, and the
        #    artifact/diff endpoints serve verified content.
        server = ServiceHTTPServer(state).start()
        base = f"http://{server.address}"
        try:
            status, body = _get(base, "/jobs")
            if status != 200:
                failures.append(f"/jobs returned {status}")
            else:
                view = json.loads(body)["jobs"]
                if sorted(view) != sorted(store.jobs):
                    failures.append("/jobs job set disagrees with snapshot")
                for job_id, entry in view.items():
                    record = store.jobs.get(job_id)
                    if record is None:
                        continue
                    if entry["state"] != record.state \
                            or entry["attempts"] != record.attempts \
                            or entry["artifacts"] \
                            != sorted(record.artifacts):
                        failures.append(
                            f"/jobs entry for {job_id} disagrees with "
                            "snapshot"
                        )
            done_json = [
                j for j in ids if store.jobs[j].state == "done"
                and "corpus.json" in store.jobs[j].artifacts
            ]
            done_npz = [
                j for j in ids if store.jobs[j].state == "done"
                and "corpus.npz" in store.jobs[j].artifacts
            ]
            for job_id, name in (
                [(j, "corpus.json") for j in done_json[:1]]
                + [(j, "corpus.npz") for j in done_npz[:1]]
            ):
                status, body = _get(
                    base, f"/jobs/{job_id}/artifacts/{name}"
                )
                if status != 200:
                    failures.append(f"artifact GET {name} returned {status}")
                elif body != (state / "jobs" / job_id / name).read_bytes():
                    failures.append(f"artifact GET {name} bytes differ")
            if len(done_json) >= 2:
                status, body = _get(
                    base, f"/jobs/{done_json[0]}/diff/{done_json[1]}"
                )
                if status != 200:
                    failures.append(f"diff GET returned {status}")
                else:
                    parse_artifact(body.decode(), kind="topology-diff")
        finally:
            server.stop()

        terminal = sum(
            1 for j in ids if store.jobs[j].state in TERMINAL_STATES
        )
        summary.update({
            "jobs": len(ids),
            "terminal": terminal,
            "done": sum(1 for j in ids if store.jobs[j].state == "done"),
            "failed": sum(1 for j in ids if store.jobs[j].state == "failed"),
            "attempts": sum(store.jobs[j].attempts for j in ids),
            "elapsed_s": round(time.monotonic() - started, 1),
            "failures": failures,
        })
        store.close()
        reference.close()
        for name in ("snapshot.json", "service-metrics-e1.json",
                     "service-metrics-e2.json", "service-metrics-e3.json"):
            source = state / name
            if source.exists():
                shutil.copy(source, artifacts_dir / name)
    finally:
        (artifacts_dir / "contention-summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True)
        )
        shutil.rmtree(work, ignore_errors=True)

    if failures:
        for failure in failures:
            print(f"CONTENTION FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"contention soak pass: {summary['jobs']} jobs "
        f"({summary['done']} done / {summary['failed']} failed) across "
        f"{summary['executors']} executors, {summary['kills']} SIGKILL(s), "
        f"{summary['attempts']} attempts in {summary['elapsed_s']}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
