"""Fig 16 — topological hints encoded in mobile IPv6 addresses.

Paper: AT&T encodes the region in user bits ~32-39 and router bits
32-47 with the PGW in router bits 48-51; Verizon encodes backbone
region / EdgeCO / PGW hierarchically in the user address; T-Mobile
cycles a PGW byte at bits 32-39 and uses ULA router addresses.
"""

from repro.infer.mobile_ipv6 import MobileIPv6Analyzer


def test_fig16_ipv6_fields(benchmark, ship_campaign):
    campaign, results = ship_campaign
    analyzer = MobileIPv6Analyzer(campaign.celldb)

    def run():
        return {
            name: analyzer.analyze_user_addresses(result)
            for name, result in results.items()
        }

    reports = benchmark(run)

    for name, report in sorted(reports.items()):
        print(f"\nFig 16 — {name} user-address fields:")
        for row in report.describe():
            print(f"  {row}")

    att = reports["att-mobile"]
    # AT&T: one geography field inside bits 32-40, no PGW in user bits.
    assert att.geo_fields and all(
        32 <= start and end <= 40 for start, end in att.geo_fields
    )
    assert not att.cycling_fields

    verizon = reports["verizon"]
    # Verizon: hierarchical geography (backbone region + EdgeCO) plus a
    # PGW nibble around bits 40-43.
    assert len(verizon.geo_fields) >= 2
    assert any(start <= 40 < end for start, end in verizon.cycling_fields)

    tmobile = reports["tmobile"]
    # T-Mobile: a cycling PGW byte right after the /32, no geography.
    assert any(start == 32 for start, _end in tmobile.cycling_fields)
    assert not tmobile.geo_fields

    # Router-hop fields: AT&T's region must also show in hop bits 32-48.
    att_hop = analyzer.analyze_hop(results["att-mobile"], 1)
    assert att_hop is not None
    assert any(
        start >= 32 and end <= 48 for start, end in att_hop.geo_fields
    )
    print("\nAT&T router-hop fields:", att_hop.describe())
