"""Ablations of the §5 pipeline's heuristics.

DESIGN.md calls out four load-bearing design choices; each ablation
re-runs phase 2 on the already-collected Comcast/Charter corpora with
one heuristic disabled and measures what breaks:

* no alias resolution (App. B.1 stage 2) → stale rDNS survives into
  the CO mapping and edge precision drops;
* no ring completion (§5.2.4) → EdgeCO redundancy is badly
  under-estimated;
* no false-edge removal (§5.2.3) → spurious EdgeCO→EdgeCO edges
  survive and precision drops;
* no MPLS follow-up traces (App. B.2) → the Charter midwest region
  keeps false top-AggCO→EdgeCO adjacencies.
"""

import statistics

from repro.alias.resolve import AliasSets
from repro.analysis.tables import render_table
from repro.infer.adjacency import AdjacencyExtractor
from repro.infer.ip2co import Ip2CoMapper
from repro.infer.metrics import score_region, single_upstream_fraction
from repro.infer.refine import RegionRefiner


def _scores(internet, isp, regions):
    tag_of_co = {
        uid: isp.co_tag(co)
        for region in isp.regions.values()
        for uid, co in region.cos.items()
    }
    scored = [
        score_region(region, isp.regions[name], tag_of_co)
        for name, region in regions.items()
        if name in isp.regions
    ]
    return statistics.fmean(s.edge_f1 for s in scored)


def _rerun_phase2(internet, isp, result, aliases=None, refiner=None,
                  followups=None):
    mapper = Ip2CoMapper(
        internet.network.rdns, isp.name, p2p_prefixlen=isp.p2p_prefixlen
    )
    mapping = mapper.build(
        result.traces,
        aliases if aliases is not None else result.aliases,
        extra_addresses=set(result.mapping.mapping),
    )
    extractor = AdjacencyExtractor(mapping, internet.network.rdns, isp.name)
    adjacencies = extractor.extract(
        result.traces,
        followup_traces=(
            result.followup_traces if followups is None else followups
        ),
    )
    refiner = refiner or RegionRefiner()
    return {
        name: refiner.refine(name, counter)
        for name, counter in adjacencies.per_region.items()
    }


def _wrongly_mapped_stale(internet, isp, mapping) -> int:
    """Ground truth: stale-named addresses mapped to the wrong CO."""
    network = internet.network
    wrong = 0
    for address, (_region, tag) in mapping.mapping.items():
        if not network.rdns.is_stale(address):
            continue
        owner = network.owner_router(address)
        if owner is None or owner.co is None or owner.asn != isp.asn:
            continue
        if not hasattr(owner.co, "kind"):
            continue
        if tag != isp.co_tag(owner.co):
            wrong += 1
    return wrong


def test_ablation_alias_resolution(benchmark, internet, comcast_result):
    """Without alias resolution, stale rDNS survives into the mapping
    (App. B.1's whole point)."""
    isp = internet.comcast

    def run():
        mapper = Ip2CoMapper(
            internet.network.rdns, isp.name, p2p_prefixlen=isp.p2p_prefixlen
        )
        return mapper.build(
            comcast_result.traces, AliasSets([]),
            extra_addresses=set(comcast_result.mapping.mapping),
        )

    mapping_without = benchmark.pedantic(run, rounds=1, iterations=1)
    wrong_without = _wrongly_mapped_stale(internet, isp, mapping_without)
    wrong_with = _wrongly_mapped_stale(internet, isp, comcast_result.mapping)
    print(f"\nAblation (no alias resolution): {wrong_without} stale "
          f"addresses mis-mapped vs {wrong_with} with aliases")
    assert wrong_without > wrong_with


def test_ablation_ring_completion(benchmark, internet, charter_result):
    """Without §5.2.4's ring completion, redundancy is under-estimated."""
    isp = internet.charter

    def run():
        return _rerun_phase2(
            internet, isp, charter_result,
            refiner=RegionRefiner(complete_rings=False),
        )

    without = benchmark.pedantic(run, rounds=1, iterations=1)
    single_without = single_upstream_fraction(list(without.values()))
    single_with = single_upstream_fraction(
        list(charter_result.regions.values())
    )
    print(f"\nAblation (no ring completion): single-upstream EdgeCOs "
          f"{single_without:.1%} vs {single_with:.1%} with completion")
    assert single_without > single_with + 0.05


def _false_edge_count(internet, isp, regions) -> int:
    """Ground truth: inferred CO edges that do not exist in reality."""
    true_edges = set()
    for truth in isp.regions.values():
        for up_uid, down_uid in truth.edge_pairs():
            up = isp.co_tag(truth.cos[up_uid])
            down = isp.co_tag(truth.cos[down_uid])
            true_edges.add((up, down))
    return sum(
        1
        for region in regions.values()
        for edge in region.graph.edges
        if edge not in true_edges
    )


def test_ablation_false_edge_removal(benchmark, internet, comcast_result):
    """§5.2.3 backs up alias resolution: when alias correction is weak
    (here: ablated), the false-edge removal heuristic is what keeps
    stale EdgeCO→EdgeCO links out of the graphs."""
    isp = internet.comcast

    def run():
        degraded_with = _rerun_phase2(
            internet, isp, comcast_result, aliases=AliasSets([]),
            refiner=RegionRefiner(remove_false_edges=True),
        )
        degraded_without = _rerun_phase2(
            internet, isp, comcast_result, aliases=AliasSets([]),
            refiner=RegionRefiner(remove_false_edges=False),
        )
        return degraded_with, degraded_without

    degraded_with, degraded_without = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    false_with = _false_edge_count(internet, isp, degraded_with)
    false_without = _false_edge_count(internet, isp, degraded_without)
    survivors = sum(
        1
        for region in degraded_without.values()
        for a, b in region.graph.edges
        if a not in region.agg_cos and b not in region.agg_cos
    )
    print(f"\nAblation (no false-edge removal, aliasing degraded): "
          f"{false_without} false CO edges vs {false_with} with §5.2.3; "
          f"{survivors} EdgeCO→EdgeCO edges survive the ablation")
    assert false_without >= false_with
    assert survivors > 0


def test_ablation_mpls_followups(benchmark, internet, charter_result):
    """Without follow-up traces, MPLS false edges pollute the Charter
    midwest region (App. B.2's motivating case)."""
    isp = internet.charter

    def run():
        return _rerun_phase2(internet, isp, charter_result, followups=[])

    without = benchmark.pedantic(run, rounds=1, iterations=1)
    with_followups = charter_result.regions
    edges_without = without["midwest"].graph.number_of_edges()
    edges_with = with_followups["midwest"].graph.number_of_edges()
    f1_without = _scores(internet, isp, {"midwest": without["midwest"]})
    f1_with = _scores(internet, isp, {"midwest": with_followups["midwest"]})
    print("\n" + render_table(
        ["variant", "midwest edges", "midwest edge F1"],
        [
            ["with MPLS follow-ups", edges_with, f"{f1_with:.3f}"],
            ["without (ablated)", edges_without, f"{f1_without:.3f}"],
        ],
        title="Ablation — App. B.2 MPLS pruning in Charter midwest",
    ))
    assert f1_with > f1_without
