"""Table 4 — adjacency pruning: backbone, cross-region, single, MPLS.

Paper: of the unique IP adjacencies, backbone adjacencies account for
26 % (Comcast) / 12 % (Charter), cross-region (stale rDNS) for 4.5 % /
1.8 %, single observations for well under 1 %, and MPLS pruning fires
only in one Charter region.
"""

from repro.analysis.tables import render_table


def test_table4_adjacency_pruning(benchmark, comcast_result, charter_result):
    def stats():
        return (
            comcast_result.adjacencies.stats,
            charter_result.adjacencies.stats,
        )

    comcast, charter = benchmark(stats)

    print("\n" + render_table(
        ["stage", "Comcast IP", "Comcast CO", "Charter IP", "Charter CO"],
        [
            [c_row[0], c_row[1], c_row[2], ch_row[1], ch_row[2]]
            for c_row, ch_row in zip(comcast.as_rows(), charter.as_rows())
        ],
        title="Table 4 — pruned adjacencies "
              "(paper: backbone 26%/12%, cross-region 4.5%/1.8%)",
    ))

    for stats_obj in (comcast, charter):
        assert stats_obj.initial_ip > 1000
        assert stats_obj.backbone_ip > 0
        assert stats_obj.cross_region_ip > 0
    # Backbone pairs are the biggest pruned class, as in the paper.
    assert comcast.backbone_ip > comcast.cross_region_ip
    assert charter.backbone_ip > charter.cross_region_ip
    # Comcast's staler rDNS produces relatively more cross-region noise.
    comcast_cross = comcast.cross_region_co / comcast.initial_co
    charter_cross = charter.cross_region_co / charter.initial_co
    assert comcast_cross > charter_cross
    # MPLS pruning fires for Charter (the midwest tunnels), yielding
    # fewer or equal MPLS CO prunes for Comcast.
    assert charter.mpls_co > 0
    assert comcast.mpls_co <= charter.mpls_co
