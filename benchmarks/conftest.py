"""Session-scoped campaign fixtures shared by the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The
underlying measurement campaigns are expensive, so they run once per
session here; the benchmarks then time the *analysis* stage and print
the reproduced table/figure for comparison with the paper.
"""

from __future__ import annotations

import pytest

SEED = 2021  # the year of the paper


@pytest.fixture(scope="session")
def internet():
    from repro.topology.internet import SimulatedInternet

    return SimulatedInternet(seed=SEED)


@pytest.fixture(scope="session")
def fleet(internet):
    return list(internet.build_standard_vps())


@pytest.fixture(scope="session")
def comcast_result(internet, fleet):
    from repro.infer.pipeline import CableInferencePipeline

    return CableInferencePipeline(
        internet.network, internet.comcast, fleet, sweep_vps=8
    ).run()


@pytest.fixture(scope="session")
def charter_result(internet, fleet):
    from repro.infer.pipeline import CableInferencePipeline

    return CableInferencePipeline(
        internet.network, internet.charter, fleet, sweep_vps=8
    ).run()


@pytest.fixture(scope="session")
def att_campaign(internet):
    """Internal VPs + San Diego hotspots + the bootstrap/DPR corpora."""
    from repro.infer.att import AttInferencePipeline
    from repro.measure.wardriving import McTracerouteCampaign

    internal = list(internet.telco_internal_vps())
    wardriving = McTracerouteCampaign(internet.network, internet.att, seed=SEED)
    wardriving.place_hotspots(internet.att.regions["sndgca"], count=58)
    pipeline = AttInferencePipeline(internet.network, internal)
    lspgws = pipeline.harvest_lspgw_targets()["sndgca"]
    bootstrap = pipeline.bootstrap(lspgws, extra_vps=wardriving.usable_vps())
    prefixes = pipeline.discover_router_prefixes(bootstrap, lspgws, "sndgca")
    dpr = pipeline.dpr_sweep(
        prefixes, extra_vps=wardriving.usable_vps(), stride=2
    )
    prefixes = pipeline.extend_prefixes_from_dpr(dpr, prefixes, lspgws)
    return {
        "pipeline": pipeline,
        "wardriving": wardriving,
        "lspgws": lspgws,
        "bootstrap": bootstrap,
        "prefixes": prefixes,
        "dpr": dpr,
    }


@pytest.fixture(scope="session")
def att_topology(att_campaign):
    campaign = att_campaign
    return campaign["pipeline"].build_region_topology(
        "sndgca", campaign["bootstrap"], campaign["dpr"],
        campaign["lspgws"], region_prefixes=campaign["prefixes"],
    )


@pytest.fixture(scope="session")
def ship_campaign(internet):
    from repro.measure.shiptraceroute import ShipTracerouteCampaign

    campaign = ShipTracerouteCampaign(
        internet.mobile_carriers, internet.geography, seed=SEED
    )
    return campaign, campaign.run()
