"""Fig 12 / Fig 13 — AT&T's San Diego regional network.

Paper (Fig 13a, router level): 2 backbone routers, 4 aggregation
routers, 84 EdgeCO routers, with every EdgeCO router redundantly homed
to two aggregation routers.  (Fig 13b, CO level): a single BackboneCO
(both backbone routers fully meshed to all agg routers), 4 AggCOs, and
~42 EdgeCOs with two routers each.
"""


def test_fig13_att_san_diego(benchmark, att_campaign, att_topology):
    pipeline = att_campaign["pipeline"]

    def rebuild():
        return pipeline.build_region_topology(
            "sndgca",
            att_campaign["bootstrap"],
            att_campaign["dpr"],
            att_campaign["lspgws"],
            region_prefixes=att_campaign["prefixes"],
        )

    topology = benchmark.pedantic(rebuild, rounds=1, iterations=1)

    print("\nFig 13a — router-level topology of AT&T San Diego:")
    print(f"  backbone routers: {len(topology.backbone_routers)} (paper: 2)")
    print(f"  agg routers:      {len(topology.agg_routers)} (paper: 4)")
    print(f"  EdgeCO routers:   {len(topology.edge_routers)} (paper: 84)")
    print("Fig 13b — CO-level topology:")
    print(f"  BackboneCOs: {topology.backbone_co_count} (paper: 1; "
          f"full mesh = {topology.backbone_fully_meshed})")
    print(f"  EdgeCOs: {len(topology.edge_cos)} (paper: ~42), "
          f"{topology.routers_per_edge_co:.1f} routers each (paper: 2)")

    assert len(topology.backbone_routers) == 2
    assert len(topology.agg_routers) == 4
    assert len(topology.edge_routers) == 84
    assert topology.backbone_fully_meshed
    assert topology.backbone_co_count == 1
    assert len(topology.edge_cos) == 42
    assert topology.routers_per_edge_co == 2.0
