"""Fig 10 — EdgeCO RTT CDFs: from the nearest cloud vs from the AggCO.

Paper: >80 % of EdgeCOs are more than 5 ms from the nearest cloud VM
(Fig 10a), yet >80 % are within 5 ms of their AggCO (Fig 10b), and
there are ~7.7x as many EdgeCOs as AggCOs — the edge-computing
placement argument of §5.5.
"""

from repro.analysis.cdf import Cdf
from repro.infer.metrics import edge_to_agg_ratio
from repro.latency.cloud import CloudLatencyCampaign


def test_fig10_edgeco_rtt_cdf(benchmark, internet, comcast_result, charter_result):
    campaign = CloudLatencyCampaign(internet.network)
    vms = internet.all_cloud_vms()

    per_co = {}
    for result in (comcast_result, charter_result):
        per_co.update(campaign.edge_co_addresses(result))

    def run():
        nearest = campaign.nearest_cloud_rtts(vms, per_co)
        cloud_rtts = [s.min_rtt_ms for s in nearest.values()]
        agg_samples = []
        for result in (comcast_result, charter_result):
            subset = campaign.edge_co_addresses(result)
            agg_samples += campaign.edge_to_agg_rtts(vms[0], result, subset)
        return cloud_rtts, [s.min_rtt_ms for s in agg_samples]

    cloud_rtts, agg_rtts = benchmark.pedantic(run, rounds=1, iterations=1)

    cloud_cdf, agg_cdf = Cdf(cloud_rtts), Cdf(agg_rtts)
    print("\nFig 10a — RTT from nearest cloud VM to each EdgeCO:")
    print(cloud_cdf.ascii_plot(width=50, height=8, label="RTT ms"))
    print(f"  above 5 ms: {cloud_cdf.fraction_above(5.0):.0%} (paper: >80%)")
    print("\nFig 10b — RTT from the serving AggCO to each EdgeCO:")
    print(agg_cdf.ascii_plot(width=50, height=8, label="RTT ms"))
    print(f"  within 5 ms: {agg_cdf.fraction_at(5.0):.0%} (paper: >80%)")
    ratio = edge_to_agg_ratio(
        list(comcast_result.regions.values())
        + list(charter_result.regions.values())
    )
    print(f"  EdgeCO:AggCO ratio: {ratio:.1f}x (paper: 7.7x)")

    assert cloud_cdf.fraction_above(5.0) > 0.65
    assert agg_cdf.fraction_at(5.0) > 0.80
    assert ratio > 3.0
    # The crossover: AggCOs are much closer than clouds.
    assert agg_cdf.median < cloud_cdf.median / 2
