"""Ablation — how vantage-point count drives topology visibility.

The paper's core measurement argument (§5.1, §6.1): coverage requires
many topologically diverse VPs; a handful of research-platform probes
sees only a fraction of the CO interconnections.  This ablation runs
the same rDNS-target sweep into one Comcast region with growing VP
fleets and counts the distinct CO adjacencies observed.
"""

from repro.analysis.tables import render_table
from repro.infer.adjacency import AdjacencyExtractor
from repro.infer.ip2co import Ip2CoMapper
from repro.measure.traceroute import Tracerouter

REGION = "chicago"


def test_ablation_vantage_points(benchmark, internet, fleet, comcast_result):
    isp = internet.comcast
    tracer = Tracerouter(internet.network)
    targets = [
        address
        for address, (region, _tag) in comcast_result.mapping.mapping.items()
        if region == REGION
    ]
    assert len(targets) > 50

    def observe(vp_count):
        traces = []
        for vp in fleet[:vp_count]:
            for target in targets:
                trace = tracer.trace(vp.host, target, src_address=vp.src_address)
                if trace.hops:
                    traces.append(trace)
        mapper = Ip2CoMapper(internet.network.rdns, isp.name,
                             p2p_prefixlen=isp.p2p_prefixlen)
        mapping = mapper.build(traces, comcast_result.aliases)
        extractor = AdjacencyExtractor(mapping, internet.network.rdns, isp.name)
        adjacencies = extractor.extract(traces)
        return len(adjacencies.per_region.get(REGION, {}))

    def run():
        return {count: observe(count) for count in (2, 8, 24, 47)}

    observed = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n" + render_table(
        ["VPs", f"distinct CO adjacencies in {REGION}"],
        [[count, edges] for count, edges in sorted(observed.items())],
        title="Ablation — visibility vs vantage-point count (§5.1/§6.1)",
    ))

    counts = [observed[c] for c in sorted(observed)]
    assert counts == sorted(counts)            # monotone coverage
    assert observed[47] > 1.2 * observed[2]    # few VPs miss real links
