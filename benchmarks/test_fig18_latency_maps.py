"""Fig 18 — hex-binned minimum RTT from each location to San Diego.

Paper: AT&T's few huge regions force circuitous paths (Montana / North
Dakota show the highest latency); Verizon's denser EdgeCOs keep latency
lower; T-Mobile resembles Verizon except for an anomaly near the
Florida–Louisiana Gulf coast, where devices attached to a distant South
Carolina EdgeCO.
"""

import statistics

from repro.analysis.hexbin import HexBinner


def _samples(result):
    return [
        (r.lat, r.lon, r.min_rtt_to_server_ms)
        for r in result.successful_rounds()
    ]


def test_fig18_latency_maps(benchmark, ship_campaign):
    _campaign, results = ship_campaign
    binner = HexBinner(cell_deg=1.6)

    def run():
        return {
            name: binner.bin_min(_samples(result))
            for name, result in results.items()
        }

    maps = benchmark(run)

    for name, binned in sorted(maps.items()):
        print(f"\nFig 18 — {name} min RTT to San Diego "
              f"({len(binned)} hexes, darker = slower):")
        print(HexBinner.ascii_map(binned))

    def mean_rtt_in(result, states):
        values = [
            r.min_rtt_to_server_ms
            for r in result.successful_rounds()
            if r.state in states
        ]
        return statistics.fmean(values)

    plains = ("MT", "ND", "SD")
    # AT&T's northern plains pay the Chicago detour; Verizon does not.
    att_plains = mean_rtt_in(results["att-mobile"], plains)
    vz_plains = mean_rtt_in(results["verizon"], plains)
    print(f"\nplains mean RTT: att {att_plains:.0f} ms vs verizon "
          f"{vz_plains:.0f} ms (paper: AT&T dark, Verizon lighter)")
    assert att_plains > 1.15 * vz_plains

    # T-Mobile's Gulf anomaly: AL/MS rounds attach to Columbia, SC and
    # run slower than comparable Gulf-coast rounds of Verizon.
    tmo_gulf = mean_rtt_in(results["tmobile"], ("AL", "MS"))
    vz_gulf = mean_rtt_in(results["verizon"], ("AL", "MS"))
    print(f"gulf mean RTT: tmobile {tmo_gulf:.0f} ms vs verizon "
          f"{vz_gulf:.0f} ms (paper: T-Mobile anomaly)")
    assert tmo_gulf > vz_gulf

    # West-coast rounds are fast for everyone (the San Diego server).
    for name, result in results.items():
        assert mean_rtt_in(result, ("CA",)) < 80, name
