"""RunManifest: build, round-trip, profiler agreement, and adversarial
mutation (every structured corruption must surface as SchemaError)."""

import json
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.faults import FaultPlan
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_run_manifest,
    fault_plan_digest,
    run_manifest_from_json,
    run_manifest_to_json,
    sha256_text,
    write_run_manifest,
)
from repro.validate.schema import validate_artifact


def _sample_manifest():
    tracer = Tracer(seed=5)
    with tracer.span("collect", jobs=3):
        with tracer.span("stage:slash24"):
            pass
    with tracer.span("refine"):
        pass
    metrics = MetricsRegistry()
    metrics.inc("cache.lookup_hits", 4)
    metrics.set_gauge("campaign.probes_sent", 120)
    metrics.observe("stage.duration_s", 0.25)
    return build_run_manifest(
        command="map-cable",
        seed=3,
        parameters={"isp": "comcast", "sweep_vps": 6, "parallel": 0},
        tracer=tracer,
        metrics=metrics,
        artifacts={"denver": '{"kind": "cable-region"}'},
        artifact_digests={"quarantine": "ab" * 32},
    )


class TestBuild:
    def test_schema_valid(self):
        validate_artifact(_sample_manifest(), kind="run-manifest")

    def test_stage_summaries_agree_with_profiler(self):
        from repro.perf import PhaseProfiler

        tracer = Tracer(seed=1)
        profiler = PhaseProfiler(tracer=tracer)
        with profiler.phase("ip2co"):
            pass
        with profiler.phase("adjacency"):
            pass
        manifest = build_run_manifest(command="bench", seed=1, tracer=tracer)
        stage_totals = {
            stage["name"]: stage["duration_s"] for stage in manifest["stages"]
        }
        for name, seconds in profiler.phases.items():
            assert stage_totals[name] == pytest.approx(seconds, abs=1e-6)

    def test_artifact_digests(self):
        manifest = _sample_manifest()
        text = '{"kind": "cable-region"}'
        assert manifest["artifacts"]["denver"] == {
            "sha256": sha256_text(text), "bytes": len(text)
        }
        assert manifest["artifacts"]["quarantine"] == {"sha256": "ab" * 32}

    def test_fault_plan_digest_stability(self):
        plan = FaultPlan(seed=9, probe_loss=0.01)
        assert fault_plan_digest(plan) == fault_plan_digest(
            FaultPlan(seed=9, probe_loss=0.01)
        )
        assert fault_plan_digest(plan) != fault_plan_digest(
            FaultPlan(seed=10, probe_loss=0.01)
        )
        assert fault_plan_digest(None) is None

    def test_empty_run_is_still_valid(self):
        manifest = build_run_manifest(command="noop", seed=0)
        validate_artifact(manifest, kind="run-manifest")
        assert manifest["stages"] == []
        assert manifest["span_count"] == 0


class TestRoundTrip:
    def test_to_json_from_json_identity(self):
        manifest = _sample_manifest()
        assert run_manifest_from_json(run_manifest_to_json(manifest)) == manifest

    def test_write_is_atomic_and_newline_terminated(self, tmp_path):
        path = write_run_manifest(tmp_path / "m.json", _sample_manifest())
        assert Path(path).read_text().endswith("}\n")
        assert not list(tmp_path.glob("*.tmp*")), "no temp files left behind"

    def test_to_json_rejects_invalid_payload(self):
        manifest = _sample_manifest()
        manifest["span_count"] = "three"
        with pytest.raises(SchemaError):
            run_manifest_to_json(manifest)


class TestAdversarialMutation:
    @given(st.data())
    def test_mutated_manifest_raises_schema_error(self, data):
        payload = json.loads(run_manifest_to_json(_sample_manifest()))
        mutation = data.draw(st.sampled_from([
            "drop-key", "bad-kind", "bad-version", "stages-not-list",
            "stage-missing-field", "stage-bad-duration", "metrics-not-object",
            "counter-bad-type", "artifact-missing-sha", "seed-not-int",
            "environment-missing-field", "span-count-bool",
        ]))
        if mutation == "drop-key":
            del payload[data.draw(st.sampled_from([
                "environment", "invocation", "stages", "span_count",
                "metrics", "artifacts",
            ]))]
        elif mutation == "bad-kind":
            payload["kind"] = "run-manifests"
        elif mutation == "bad-version":
            payload["schema"] = 999
        elif mutation == "stages-not-list":
            payload["stages"] = {"collect": 0.5}
        elif mutation == "stage-missing-field":
            payload["stages"] = [{"name": "collect", "duration_s": 0.5}]
        elif mutation == "stage-bad-duration":
            payload["stages"] = [{
                "name": "collect", "duration_s": "fast", "spans": 1,
                "status": "ok",
            }]
        elif mutation == "metrics-not-object":
            payload["metrics"] = []
        elif mutation == "counter-bad-type":
            payload["metrics"]["counters"] = {"cache.lookup_hits": "four"}
        elif mutation == "artifact-missing-sha":
            payload["artifacts"] = {"denver": {"bytes": 10}}
        elif mutation == "seed-not-int":
            payload["invocation"]["seed"] = "three"
        elif mutation == "environment-missing-field":
            del payload["environment"]["python"]
        elif mutation == "span-count-bool":
            payload["span_count"] = True
        with pytest.raises(SchemaError, match=r"\$"):
            run_manifest_from_json(json.dumps(payload))

    # Built once: span durations vary run to run, and hypothesis needs
    # the draw bounds (len of the text) stable across examples.
    _FROZEN_TEXT = None

    @given(st.data())
    def test_truncated_manifest_raises_schema_error(self, data):
        if TestAdversarialMutation._FROZEN_TEXT is None:
            TestAdversarialMutation._FROZEN_TEXT = run_manifest_to_json(
                _sample_manifest()
            )
        text = TestAdversarialMutation._FROZEN_TEXT
        cut = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
        with pytest.raises(SchemaError):
            run_manifest_from_json(text[:cut])
