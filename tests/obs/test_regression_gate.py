"""The CI benchmark regression gate must trip on injected slowdown,
digest divergence, workload drift, and manifest corruption — and pass a
faithful re-run."""

import copy
import importlib.util
import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]
CHECKER = ROOT / "benchmarks" / "perf" / "check_regression.py"
BASELINE = ROOT / "benchmarks" / "perf" / "BENCH_BASELINE.json"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE.read_text())


@pytest.fixture()
def current(baseline):
    return copy.deepcopy(baseline)


class TestGate:
    def test_identical_run_passes(self, gate, baseline, current):
        assert gate.evaluate(current, baseline) == []

    def test_committed_baseline_manifests_are_schema_valid(
        self, gate, baseline
    ):
        for mode in ("baseline", "optimized"):
            manifest = baseline["inference"][mode]["manifest"]
            assert gate._validate_manifest(manifest, mode) == []

    def test_injected_slowdown_trips(self, gate, baseline, current):
        current["inference"]["speedup"] = round(
            baseline["inference"]["speedup"] * 0.5, 2
        )
        failures = gate.evaluate(current, baseline)
        assert any("regressed" in f for f in failures), failures

    def test_within_tolerance_slowdown_passes(self, gate, baseline, current):
        current["inference"]["speedup"] = round(
            baseline["inference"]["speedup"] * 0.9, 2
        )
        assert gate.evaluate(current, baseline) == []

    def test_speedup_floor_trips(self, gate, baseline, current):
        current["inference"]["speedup"] = 0.8
        failures = gate.evaluate(current, baseline)
        assert any("floor" in f for f in failures), failures

    def test_serial_oracle_divergence_trips(self, gate, baseline, current):
        current["inference"]["optimized"]["digest"] = "0" * 64
        failures = gate.evaluate(current, baseline)
        assert any("serial oracle" in f for f in failures), failures

    def test_baseline_digest_drift_trips(self, gate, baseline, current):
        drifted = "1" * 64
        current["inference"]["baseline"]["digest"] = drifted
        current["inference"]["optimized"]["digest"] = drifted
        failures = gate.evaluate(current, baseline)
        assert any("drifted" in f for f in failures), failures

    def test_workload_drift_trips(self, gate, baseline, current):
        current["inference"]["optimized"]["workload"]["traces"] += 1
        failures = gate.evaluate(current, baseline)
        assert any("workload" in f for f in failures), failures

    def test_corrupt_manifest_trips(self, gate, baseline, current):
        del current["inference"]["optimized"]["manifest"]["stages"]
        failures = gate.evaluate(current, baseline)
        assert any("schema validation" in f for f in failures), failures

    def test_missing_manifest_trips(self, gate, baseline, current):
        current["inference"]["baseline"].pop("manifest")
        failures = gate.evaluate(current, baseline)
        assert any("missing" in f for f in failures), failures

    def test_empty_payload_fails_loudly(self, gate, baseline):
        assert gate.evaluate({}, baseline) == [
            "current payload lacks inference digests; wrong file?"
        ]


class TestColumnarGate:
    def test_missing_columnar_section_fails_loudly(
        self, gate, baseline, current
    ):
        del current["columnar"]
        failures = gate.evaluate(current, baseline)
        assert any("columnar section" in f for f in failures), failures

    def test_oracle_divergence_trips(self, gate, baseline, current):
        current["columnar"]["columnar"]["digest"] = "0" * 64
        failures = gate.evaluate(current, baseline)
        assert any("object-graph oracle" in f for f in failures), failures

    def test_baseline_digest_drift_trips(self, gate, baseline, current):
        drifted = "1" * 64
        current["columnar"]["oracle"]["digest"] = drifted
        current["columnar"]["columnar"]["digest"] = drifted
        failures = gate.evaluate(current, baseline)
        assert any("drifted" in f for f in failures), failures

    def test_workload_drift_trips(self, gate, baseline, current):
        current["columnar"]["columnar"]["workload"]["traces"] += 1
        failures = gate.evaluate(current, baseline)
        assert any("workload" in f for f in failures), failures

    def test_smoke_payload_skips_the_speedup_floor(
        self, gate, baseline, current
    ):
        assert current["smoke"]
        current["columnar"]["speedup"] = 1.2
        assert gate.evaluate(current, baseline) == []

    def test_full_payload_enforces_the_speedup_floor(
        self, gate, baseline, current
    ):
        current["smoke"] = False
        current["columnar"]["speedup"] = 2.4
        failures = gate.evaluate(current, baseline)
        assert any("3.00x floor" in f for f in failures), failures

    def test_committed_full_payload_passes_against_itself(self, gate):
        payload = json.loads((ROOT / "BENCH_CURRENT.json").read_text())
        assert gate.evaluate(payload, payload) == []
        assert not payload["smoke"]
        assert payload["columnar"]["speedup"] >= 3.0

    def test_corrupt_columnar_manifest_trips(self, gate, baseline, current):
        del current["columnar"]["columnar"]["manifest"]["stages"]
        failures = gate.evaluate(current, baseline)
        assert any("schema validation" in f for f in failures), failures


class TestSupervisedMeasurementGate:
    def test_smoke_payload_without_measurement_skips_the_check(
        self, gate, baseline, current
    ):
        assert "measurement" not in current
        assert gate.evaluate(current, baseline) == []

    def test_corpus_divergence_trips(self, gate, baseline, current):
        current["measurement"] = {
            "corpus_digest_identical": False, "speedup": 1.8,
        }
        failures = gate.evaluate(current, baseline)
        assert any("diverged from the serial oracle" in f for f in failures)

    def test_subunity_supervised_speedup_trips(self, gate, baseline, current):
        current["measurement"] = {
            "corpus_digest_identical": True, "speedup": 0.9,
        }
        failures = gate.evaluate(current, baseline)
        assert any("1.0x floor" in f for f in failures), failures

    def test_healthy_measurement_passes(self, gate, baseline, current):
        current["measurement"] = {
            "corpus_digest_identical": True, "speedup": 1.97,
        }
        assert gate.evaluate(current, baseline) == []
