"""MetricsRegistry semantics and parity with the component counters it
replaced (CampaignHealth, Tracerouter, InferenceCache stats)."""

import pytest

from repro.net.dns import RdnsStore
from repro.obs import MetricsRegistry
from repro.perf import InferenceCache
from repro.rdns.regexes import HostnameParser

NAME = "ae-1-ar01.aggco.co.denver.comcast.net"


class TestInstruments:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("x")
        metrics.inc("x", 4)
        assert metrics.counter_value("x") == 5
        assert metrics.counter_value("never-written") == 0

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("fleet", 12)
        metrics.set_gauge("fleet", 9)
        assert metrics.gauge_value("fleet") == 9

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in (2.0, 4.0, 6.0):
            metrics.observe("rtt", value)
        summary = metrics.snapshot()["histograms"]["rtt"]
        assert summary == {
            "count": 3, "sum": 12.0, "min": 2.0, "max": 6.0, "mean": 4.0
        }

    def test_instruments_are_bound_once(self):
        metrics = MetricsRegistry()
        counter = metrics.counter("hot")
        counter.inc()
        assert metrics.counter("hot") is counter
        assert metrics.counter_value("hot") == 1


class TestSnapshot:
    def test_snapshot_keys_sorted_and_deterministic(self):
        def fill(metrics):
            metrics.inc("z.last", 2)
            metrics.inc("a.first")
            metrics.set_gauge("m.middle", 7)
            metrics.observe("h.hist", 1.5)

        one, two = MetricsRegistry(), MetricsRegistry()
        fill(one)
        fill(two)
        assert one.snapshot() == two.snapshot()
        assert list(one.snapshot()["counters"]) == ["a.first", "z.last"]

    def test_to_json_kind(self):
        import json

        metrics = MetricsRegistry()
        metrics.inc("a")
        payload = json.loads(metrics.to_json())
        assert payload["kind"] == "metrics-snapshot"
        assert payload["counters"] == {"a": 1}


class TestCacheParity:
    """InferenceCache.stats is a snapshot over registry counters."""

    def _cache(self, metrics=None):
        store = RdnsStore()
        store.set("10.0.0.1", NAME)
        return InferenceCache(store, HostnameParser(), metrics=metrics)

    def test_stats_mirror_registry_counters(self):
        cache = self._cache()
        cache.lookup("10.0.0.1")
        cache.lookup("10.0.0.1")
        cache.lookup("10.9.9.9")
        stats = cache.stats
        assert stats.lookup_hits == 1
        assert stats.lookup_misses == 2
        assert cache.metrics.counter_value("cache.lookup_hits") == 1
        assert cache.metrics.counter_value("cache.lookup_misses") == 2

    def test_shared_registry_is_used_not_copied(self):
        metrics = MetricsRegistry()
        cache = self._cache(metrics=metrics)
        assert cache.metrics is metrics
        cache.lookup("10.0.0.1")
        assert metrics.counter_value("cache.lookup_misses") == 1


class TestCampaignParity:
    """Pipeline gauges equal the health/tracer counts they were
    published from — the ad-hoc counters and the registry agree."""

    @pytest.fixture(scope="class")
    def instrumented(self, internet, standard_vps):
        from repro.infer.pipeline import CableInferencePipeline

        pipeline = CableInferencePipeline(
            internet.network, internet.comcast, standard_vps, sweep_vps=2
        )
        result = pipeline.run()
        return pipeline, result

    def test_health_gauges_match(self, instrumented):
        pipeline, result = instrumented
        health = result.health.as_dict()
        metrics = pipeline.metrics
        assert metrics.gauge_value("campaign.probes_sent") == health["probes_sent"]
        assert metrics.gauge_value("campaign.traces_run") == health["traces_run"]
        assert metrics.gauge_value("campaign.empty_traces") == health["empty_traces"]
        assert metrics.gauge_value("campaign.degraded") == int(health["degraded"])
        assert metrics.gauge_value("campaign.vps_lost") == len(health["vps_lost"])

    def test_tracer_gauges_match(self, instrumented):
        pipeline, _ = instrumented
        runner = pipeline.runner
        counters = runner.tracer.counters()
        for name, value in counters.items():
            assert pipeline.metrics.gauge_value(f"tracer.{name}") == value

    def test_pipeline_gauges_present(self, instrumented):
        pipeline, result = instrumented
        metrics = pipeline.metrics
        assert metrics.gauge_value("pipeline.regions") == len(result.regions)
        assert metrics.gauge_value("pipeline.traces") > 0
        assert metrics.gauge_value("campaign.fleet_alive") > 0

    def test_cache_counters_populated(self, instrumented):
        pipeline, _ = instrumented
        snapshot = pipeline.metrics.snapshot()["counters"]
        assert snapshot.get("cache.lookup_hits", 0) + snapshot.get(
            "cache.lookup_misses", 0
        ) > 0
