"""Span tree semantics: nesting, determinism, error status, and the
PhaseProfiler-as-view contract."""

import pytest

from repro.obs import Span, Tracer
from repro.perf import PhaseProfiler


def _sample_run(tracer):
    """A fixed little span program used by the determinism tests."""
    with tracer.span("collect", jobs=4):
        with tracer.span("stage:slash24", jobs=2):
            pass
        with tracer.span("stage:followup", jobs=2):
            pass
    with tracer.span("refine"):
        pass
    with tracer.span("refine"):
        pass


class TestNesting:
    def test_depth_and_parent_links(self):
        tracer = Tracer(seed=7)
        _sample_run(tracer)
        spans = tracer.spans
        assert [s.name for s in spans] == [
            "collect", "stage:slash24", "stage:followup", "refine", "refine"
        ]
        collect = spans[0]
        assert collect.depth == 0 and collect.parent_id is None
        for child in spans[1:3]:
            assert child.depth == 1
            assert child.parent_id == collect.span_id
        assert [c.name for c in tracer.children(collect)] == [
            "stage:slash24", "stage:followup"
        ]

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            assert tracer.current().name == "outer"
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
            assert tracer.current().name == "outer"
        assert tracer.current() is None

    def test_attributes_captured_and_mutable(self):
        tracer = Tracer()
        with tracer.span("collect", jobs=9) as span:
            span.attributes["traces"] = 8
        assert tracer.spans[0].attributes == {"jobs": 9, "traces": 8}

    def test_timings_are_monotonic(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans
        assert a.duration_s >= 0 and b.duration_s >= 0
        assert b.start_offset_s >= a.start_offset_s


class TestDeterminism:
    def test_same_seed_same_program_identical_structure(self):
        one, two = Tracer(seed=3), Tracer(seed=3)
        _sample_run(one)
        _sample_run(two)
        assert one.structural_dicts() == two.structural_dicts()

    def test_span_ids_never_depend_on_wall_clock(self):
        # structural_dict must not leak any timing field.
        tracer = Tracer(seed=3)
        _sample_run(tracer)
        for payload in tracer.structural_dicts():
            assert "duration_s" not in payload
            assert "start_offset_s" not in payload

    def test_different_seed_different_ids(self):
        one, two = Tracer(seed=3), Tracer(seed=4)
        _sample_run(one)
        _sample_run(two)
        ids_one = [s.span_id for s in one.spans]
        ids_two = [s.span_id for s in two.spans]
        assert ids_one != ids_two
        assert len(set(ids_one)) == len(ids_one), "ids must be unique"

    def test_repeated_names_get_distinct_ids(self):
        tracer = Tracer()
        _sample_run(tracer)
        refines = [s.span_id for s in tracer.spans if s.name == "refine"]
        assert len(set(refines)) == 2


class TestErrorStatus:
    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        inner, outer = tracer.spans[1], tracer.spans[0]
        assert inner.status == "error" and outer.status == "error"
        assert inner.duration_s >= 0, "duration recorded despite the raise"
        assert tracer.current() is None, "stack unwound"

    def test_error_status_survives_into_summaries(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("collect"):
                raise RuntimeError
        assert tracer.stage_summaries()[0]["status"] == "error"


class TestViews:
    def test_phase_totals_top_level_only_first_seen_order(self):
        tracer = Tracer()
        _sample_run(tracer)
        totals = tracer.phase_totals()
        assert list(totals) == ["collect", "refine"]
        refine_spans = [
            s for s in tracer.spans if s.name == "refine" and s.depth == 0
        ]
        assert totals["refine"] == pytest.approx(
            sum(s.duration_s for s in refine_spans)
        )

    def test_stage_summaries_count_descendants(self):
        tracer = Tracer()
        _sample_run(tracer)
        summaries = tracer.stage_summaries()
        assert [(s["name"], s["spans"]) for s in summaries] == [
            ("collect", 3), ("refine", 1), ("refine", 1)
        ]

    def test_to_json_is_a_standalone_document(self):
        import json

        tracer = Tracer(seed=11)
        _sample_run(tracer)
        payload = json.loads(tracer.to_json())
        assert payload["kind"] == "span-trace"
        assert payload["seed"] == 11
        assert len(payload["spans"]) == 5


class TestPhaseProfilerView:
    def test_profiler_phases_are_tracer_phase_totals(self):
        profiler = PhaseProfiler()
        with profiler.phase("ip2co"):
            pass
        with profiler.phase("adjacency"):
            pass
        with profiler.phase("ip2co"):
            pass
        assert profiler.phases == profiler.tracer.phase_totals()
        assert list(profiler.phases) == ["ip2co", "adjacency"]
        assert profiler.total_seconds == pytest.approx(
            sum(profiler.phases.values())
        )

    def test_profiler_over_shared_tracer_sees_outer_spans(self):
        tracer = Tracer(seed=0)
        profiler = PhaseProfiler(tracer=tracer)
        with tracer.span("collect"):
            pass
        with profiler.phase("refine"):
            pass
        assert set(profiler.phases) == {"collect", "refine"}

    def test_report_format_unchanged(self):
        profiler = PhaseProfiler()
        with profiler.phase("ip2co"):
            pass
        report = "\n".join(profiler.report())
        assert "ip2co" in report and "total" in report and "peak rss" in report

    def test_as_dict_shape(self):
        profiler = PhaseProfiler()
        with profiler.phase("ip2co"):
            pass
        payload = profiler.as_dict()
        assert set(payload) == {"phases_s", "total_s", "peak_rss_kb"}
        assert set(payload["phases_s"]) == {"ip2co"}


class TestSpanDataclass:
    def test_structural_dict_copies_attributes(self):
        span = Span(
            name="x", span_id="a" * 16, parent_id=None, depth=0, index=0,
            attributes={"jobs": 1},
        )
        payload = span.structural_dict()
        payload["attributes"]["jobs"] = 99
        assert span.attributes["jobs"] == 1
