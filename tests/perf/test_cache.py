"""InferenceCache and module-level memos: correctness under mutation,
fault-injector swaps, and the benchmark's disable switch."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.net.dns import RdnsStore
from repro.perf import (
    InferenceCache,
    memoization_disabled,
    memoization_enabled,
    normalize_address,
    p2p_peer_str,
)
from repro.rdns.regexes import HostnameParser

NAME = "ae-1-ar01.aggco.co.denver.comcast.net"
OTHER_NAME = "ae-1-ar01.otherco.co.denver.comcast.net"


@pytest.fixture()
def rdns():
    store = RdnsStore()
    store.set("10.0.0.1", NAME)
    return store


@pytest.fixture()
def cache(rdns):
    return InferenceCache(rdns, HostnameParser())


class TestModuleMemos:
    def test_normalize_matches_uncached(self):
        values = ["10.0.0.1", "192.168.1.1", "2001:db8::1"]
        with memoization_disabled():
            baseline = [normalize_address(v) for v in values]
        assert [normalize_address(v) for v in values] == baseline
        # Second pass hits the memo; answers must not drift.
        assert [normalize_address(v) for v in values] == baseline

    def test_p2p_peer_memoizes_failures(self):
        # A /30 network address has no peer: None both times.
        assert p2p_peer_str("10.0.0.0") is None
        assert p2p_peer_str("10.0.0.0") is None
        assert p2p_peer_str("10.0.0.1") == "10.0.0.2"

    def test_disable_switch_restores(self):
        assert memoization_enabled()
        with memoization_disabled():
            assert not memoization_enabled()
            assert normalize_address("10.0.0.1") == "10.0.0.1"
        assert memoization_enabled()


class TestLookupInvalidation:
    def test_memoized_lookup_answers(self, cache):
        assert cache.lookup("10.0.0.1") == NAME
        assert cache.lookup("10.0.0.1") == NAME
        assert cache.stats.lookup_hits == 1
        assert cache.stats.lookup_misses == 1

    def test_store_mutation_invalidates(self, cache, rdns):
        assert cache.lookup("10.0.0.1") == NAME
        rdns.set("10.0.0.1", OTHER_NAME)
        assert cache.lookup("10.0.0.1") == OTHER_NAME
        assert cache.stats.invalidations == 1

    def test_record_removal_invalidates(self, cache, rdns):
        assert cache.lookup("10.0.0.1") == NAME
        rdns.remove("10.0.0.1")
        assert cache.lookup("10.0.0.1") is None

    def test_injector_swap_invalidates(self, cache, rdns):
        # Stale-rDNS injection changes what lookup() returns per
        # address; attaching (or detaching) an injector must drop the
        # memo even though the store's records never changed.
        baseline = cache.lookup("10.0.0.1")
        assert baseline == NAME
        rdns.faults = FaultInjector(FaultPlan(seed=5, stale_rdns=1.0))
        faulted = cache.lookup("10.0.0.1")
        assert faulted == rdns.lookup("10.0.0.1")
        assert cache.stats.invalidations == 1
        rdns.faults = None
        assert cache.lookup("10.0.0.1") == NAME
        assert cache.stats.invalidations == 2

    def test_parse_memo_survives_invalidation(self, cache, rdns):
        parsed = cache.parsed_lookup("10.0.0.1")
        assert parsed is not None and parsed.co_tag == "aggco.co"
        rdns.set("10.0.0.2", OTHER_NAME)  # bump epoch
        again = cache.parsed_lookup("10.0.0.1")
        assert again is parsed  # pure parse memo kept across epochs
        assert cache.stats.parse_hits >= 1


class TestDerivedAnswers:
    def test_regional_co_matches_uncached(self, cache, rdns):
        parser = HostnameParser()
        expected = parser.regional_co(rdns.lookup("10.0.0.1"), "comcast")
        assert cache.regional_co("10.0.0.1", "comcast") == expected
        assert cache.regional_co("10.0.0.1", "nobody") is None

    def test_degree_threshold_matches_statistics(self, cache):
        import statistics

        degrees = (1, 2, 2, 9)
        expected = statistics.fmean(degrees) + statistics.pstdev(degrees)
        assert cache.degree_threshold(degrees) == expected
        assert cache.degree_threshold(degrees) == expected
