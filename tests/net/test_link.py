"""Unit tests for links: delay, routing metric, topology errors."""

import pytest

from repro.errors import TopologyError
from repro.net.link import FIBER_KM_PER_MS, PER_HOP_PROCESSING_MS, Link
from repro.net.router import Interface, Router


def _link(length_km=200.0, **kwargs) -> Link:
    a = Router("a").add_interface("10.0.0.1", 30)
    b = Router("b").add_interface("10.0.0.2", 30)
    return Link(a, b, length_km=length_km, **kwargs)


class TestDelay:
    def test_propagation_speed(self):
        link = _link(length_km=200.0)
        assert link.delay_ms == pytest.approx(1.0)

    def test_extra_delay_adds(self):
        link = _link(length_km=200.0, extra_delay_ms=3.0)
        assert link.delay_ms == pytest.approx(4.0)

    def test_negative_length_rejected(self):
        with pytest.raises(TopologyError):
            _link(length_km=-5.0)


class TestRoutingWeight:
    def test_defaults_to_delay_plus_processing(self):
        link = _link(length_km=200.0)
        assert link.routing_weight == pytest.approx(1.0 + PER_HOP_PROCESSING_MS)

    def test_configured_metric_wins(self):
        link = _link(length_km=200.0, metric=10.0)
        assert link.routing_weight == 10.0
        # ...but the physical delay is untouched.
        assert link.delay_ms == pytest.approx(1.0)


class TestEndpoints:
    def test_other(self):
        link = _link()
        assert link.other(link.a) is link.b
        assert link.other(link.b) is link.a

    def test_other_rejects_foreign_interface(self):
        link = _link()
        foreign = Router("c").add_interface("10.0.0.9", 30)
        with pytest.raises(TopologyError):
            link.other(foreign)

    def test_routers(self):
        link = _link()
        uids = [r.uid for r in link.routers()]
        assert uids == ["a", "b"]

    def test_interfaces_back_reference_link(self):
        link = _link()
        assert link.a.link is link
        assert link.b.neighbor() is link.a
