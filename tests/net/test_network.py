"""Unit and property tests for the forwarding substrate."""

import ipaddress

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError, TopologyError
from repro.net.network import Network
from repro.net.router import Router


class TestConstruction:
    def test_duplicate_router_uid_rejected(self, toy_network):
        net, _routers = toy_network
        with pytest.raises(TopologyError):
            net.add_router(Router("src"))

    def test_duplicate_address_rejected(self, toy_network):
        net, routers = toy_network
        with pytest.raises(TopologyError):
            net.add_interface(routers["src"], "10.0.0.1", 30)

    def test_owner_lookup(self, toy_network):
        net, routers = toy_network
        assert net.owner_router("10.0.0.6") is routers["b1"]
        assert net.owner_interface("203.0.113.1") is None

    def test_loopback_owner_lookup(self, toy_network):
        net, routers = toy_network
        routers["a"].loopback = ipaddress.ip_address("192.0.2.77")
        assert net.owner_router("192.0.2.77") is routers["a"]


class TestRouteTarget:
    def test_existing_interface(self, toy_network):
        net, routers = toy_network
        router, exists = net.route_target("10.0.0.14")
        assert router is routers["dst"] and exists

    def test_prefix_routed_nonexistent(self, toy_network):
        net, routers = toy_network
        router, exists = net.route_target("198.18.5.77")
        assert router is routers["dst"] and not exists

    def test_unroutable(self, toy_network):
        net, _ = toy_network
        router, exists = net.route_target("203.0.113.1")
        assert router is None and not exists

    def test_longest_prefix_wins(self, toy_network):
        net, routers = toy_network
        net.add_prefix_route("198.18.5.128/25", routers["b1"])
        assert net.route_target("198.18.5.200")[0] is routers["b1"]
        assert net.route_target("198.18.5.10")[0] is routers["dst"]


class TestForwarding:
    def test_path_endpoints(self, toy_network):
        net, routers = toy_network
        path = net.forwarding_path(routers["src"], routers["dst"])
        assert path[0] is routers["src"] and path[-1] is routers["dst"]
        assert len(path) == 4  # src, a, b1|b2, dst

    def test_no_route_raises(self, toy_network):
        net, routers = toy_network
        island = net.add_router(Router("island"))
        with pytest.raises(RoutingError):
            net.forwarding_path(routers["src"], island)

    def test_flow_pinning_is_stable(self, toy_network):
        net, routers = toy_network
        paths = {
            tuple(r.uid for r in net.forwarding_path(
                routers["src"], routers["dst"], flow_id="flow-1"
            ))
            for _ in range(5)
        }
        assert len(paths) == 1

    def test_ecmp_flows_diverge(self, toy_network):
        net, routers = toy_network
        middles = {
            net.forwarding_path(routers["src"], routers["dst"], flow_id=f"f{i}")[2].uid
            for i in range(64)
        }
        assert middles == {"b1", "b2"}

    def test_inbound_interfaces(self, toy_network):
        net, routers = toy_network
        path = net.forwarding_path(routers["src"], routers["dst"], flow_id="x")
        inbound = net.inbound_interfaces(path)
        assert inbound[0] is None
        for router, iface in zip(path[1:], inbound[1:]):
            assert iface.router is router

    def test_path_delays_monotonic(self, toy_network):
        net, routers = toy_network
        path = net.forwarding_path(routers["src"], routers["dst"])
        delays = net.path_delays_ms(path)
        assert delays[0] == 0.0
        assert all(b > a for a, b in zip(delays, delays[1:]))

    def test_metric_routing_vs_physical_delay(self):
        """Routing follows metrics; latency follows fiber length."""
        net = Network()
        a, b, c = (net.add_router(Router(u)) for u in "abc")
        # Short fiber but terrible metric...
        net.connect(a, b, "10.0.0.1", "10.0.0.2", length_km=10, metric=100.0)
        # ...vs long fiber with a great metric via c.
        net.connect(a, c, "10.0.1.1", "10.0.1.2", length_km=2000, metric=1.0)
        net.connect(c, b, "10.0.2.1", "10.0.2.2", length_km=2000, metric=1.0)
        path = net.forwarding_path(a, b)
        assert [r.uid for r in path] == ["a", "c", "b"]
        assert net.path_delay_ms(a, b) > 10.0  # 4000 km of fiber

    def test_degree_and_neighbors(self, toy_network):
        net, routers = toy_network
        assert net.degree(routers["a"]) == 3
        assert {r.uid for r in net.neighbors(routers["dst"])} == {"b1", "b2"}


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                min_size=1, max_size=20))
def test_random_graphs_route_or_raise(edges):
    """Property: on random small graphs every reachable pair routes, and
    the returned path is a real walk over existing links."""
    net = Network()
    routers = [net.add_router(Router(f"n{i}")) for i in range(10)]
    seen = set()
    base = 0
    for a, b in edges:
        if a == b or (min(a, b), max(a, b)) in seen:
            continue
        seen.add((min(a, b), max(a, b)))
        net.connect(
            routers[a], routers[b],
            f"10.{base // 250}.{base % 250}.1", f"10.{base // 250}.{base % 250}.2",
            prefixlen=30, length_km=1 + a + b,
        )
        base += 1
    for a, b in seen:
        path = net.forwarding_path(routers[a], routers[b], flow_id="t")
        assert path[0].uid == f"n{a}" and path[-1].uid == f"n{b}"
        for prev, cur in zip(path, path[1:]):
            assert cur in net.neighbors(prev)
