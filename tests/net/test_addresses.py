"""Unit tests for address and prefix utilities."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.net.addresses import (
    Ipv4Allocator,
    Ipv6FieldCodec,
    hosts_in,
    p2p_peer,
    parse_ip,
    same_subnet,
    usable_p2p_addresses,
)


class TestParseIp:
    def test_parses_string(self):
        assert str(parse_ip("192.0.2.1")) == "192.0.2.1"

    def test_parses_int(self):
        assert str(parse_ip(0xC0000201)) == "192.0.2.1"

    def test_parses_ipv6(self):
        assert parse_ip("2600:380::1").version == 6

    def test_passthrough_address_object(self):
        addr = ipaddress.ip_address("10.0.0.1")
        assert parse_ip(addr) is addr

    def test_rejects_garbage(self):
        with pytest.raises(AddressError):
            parse_ip("not-an-ip")


class TestSameSubnet:
    def test_same_30(self):
        assert same_subnet("10.0.0.1", "10.0.0.2", 30)

    def test_different_30(self):
        assert not same_subnet("10.0.0.1", "10.0.0.5", 30)

    def test_mixed_versions_never_match(self):
        assert not same_subnet("10.0.0.1", "::1", 8)


class TestP2pPeer:
    def test_slash30_low(self):
        assert str(p2p_peer("10.0.0.1", 30)) == "10.0.0.2"

    def test_slash30_high(self):
        assert str(p2p_peer("10.0.0.2", 30)) == "10.0.0.1"

    def test_slash30_network_address_rejected(self):
        with pytest.raises(AddressError):
            p2p_peer("10.0.0.0", 30)

    def test_slash31(self):
        assert str(p2p_peer("10.0.0.4", 31)) == "10.0.0.5"
        assert str(p2p_peer("10.0.0.5", 31)) == "10.0.0.4"

    def test_rejects_other_prefixlens(self):
        with pytest.raises(AddressError):
            p2p_peer("10.0.0.1", 24)

    def test_rejects_ipv6(self):
        with pytest.raises(AddressError):
            p2p_peer("2600::1", 31)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_slash31_is_involution(self, value):
        addr = ipaddress.IPv4Address(value)
        assert p2p_peer(p2p_peer(addr, 31), 31) == addr

    @given(st.integers(min_value=0, max_value=2**30 - 1))
    def test_slash30_peer_shares_subnet(self, block):
        addr = ipaddress.IPv4Address(block * 4 + 1)
        peer = p2p_peer(addr, 30)
        assert same_subnet(addr, peer, 30)
        assert peer != addr


class TestUsableP2p:
    def test_slash30(self):
        a, b = usable_p2p_addresses("10.0.0.0/30")
        assert (str(a), str(b)) == ("10.0.0.1", "10.0.0.2")

    def test_slash31(self):
        a, b = usable_p2p_addresses("10.0.0.6/31")
        assert (str(a), str(b)) == ("10.0.0.6", "10.0.0.7")

    def test_rejects_slash29(self):
        with pytest.raises(AddressError):
            usable_p2p_addresses("10.0.0.0/29")


class TestIpv4Allocator:
    def test_sequential_hosts(self):
        alloc = Ipv4Allocator("198.18.0.0/24")
        assert str(alloc.allocate_host()) == "198.18.0.0"
        assert str(alloc.allocate_host()) == "198.18.0.1"

    def test_subnet_alignment(self):
        alloc = Ipv4Allocator("198.18.0.0/16")
        alloc.allocate_host()  # cursor now misaligned for a /24
        subnet = alloc.allocate_subnet(24)
        assert subnet == ipaddress.ip_network("198.18.1.0/24")

    def test_p2p_allocation(self):
        alloc = Ipv4Allocator("198.18.0.0/24")
        a, b, subnet = alloc.allocate_p2p(30)
        assert a in subnet.hosts() or subnet.prefixlen == 31
        assert str(a) == "198.18.0.1"
        assert str(b) == "198.18.0.2"

    def test_p2p_rejects_bad_prefixlen(self):
        with pytest.raises(AddressError):
            Ipv4Allocator("198.18.0.0/24").allocate_p2p(29)

    def test_exhaustion(self):
        alloc = Ipv4Allocator("198.18.0.0/30")
        for _ in range(4):
            alloc.allocate_host()
        with pytest.raises(AddressError):
            alloc.allocate_host()

    def test_cannot_allocate_larger_than_pool(self):
        with pytest.raises(AddressError):
            Ipv4Allocator("198.18.0.0/24").allocate_subnet(16)

    def test_remaining_decreases(self):
        alloc = Ipv4Allocator("198.18.0.0/24")
        before = alloc.remaining
        alloc.allocate_subnet(26)
        assert alloc.remaining == before - 64

    def test_ipv6_pool_rejected(self):
        with pytest.raises(AddressError):
            Ipv4Allocator(ipaddress.ip_network("2600::/32"))  # type: ignore[arg-type]

    def test_allocations_never_overlap(self):
        alloc = Ipv4Allocator("198.18.0.0/20")
        seen = set()
        for prefixlen in (24, 26, 30, 24, 31, 25):
            subnet = alloc.allocate_subnet(prefixlen)
            for other in seen:
                assert not subnet.overlaps(other)
            seen.add(subnet)


class TestIpv6FieldCodec:
    def test_encode_decode_roundtrip(self):
        codec = Ipv6FieldCodec({"region": (32, 40), "pgw": (48, 52)})
        addr = codec.encode("2600:380::", region=0x6C, pgw=5)
        assert codec.decode(addr) == {"region": 0x6C, "pgw": 5}

    def test_encode_matches_paper_layout(self):
        codec = Ipv6FieldCodec({"region": (32, 48)})
        addr = codec.encode("2600:300::", region=0x2090)
        assert str(addr).startswith("2600:300:2090:")

    def test_value_too_large(self):
        codec = Ipv6FieldCodec({"nibble": (48, 52)})
        with pytest.raises(AddressError):
            codec.encode("::", nibble=16)

    def test_unknown_field(self):
        codec = Ipv6FieldCodec({"a": (0, 8)})
        with pytest.raises(AddressError):
            codec.encode("::", b=1)

    def test_invalid_range_rejected(self):
        with pytest.raises(AddressError):
            Ipv6FieldCodec({"bad": (8, 8)})
        with pytest.raises(AddressError):
            Ipv6FieldCodec({"bad": (120, 130)})

    def test_extract_bits(self):
        value = Ipv6FieldCodec.extract_bits("2600:1012:b12e::", 24, 32)
        assert value == 0x12

    def test_extract_bits_bad_range(self):
        with pytest.raises(AddressError):
            Ipv6FieldCodec.extract_bits("::", 10, 5)

    @given(
        st.integers(min_value=0, max_value=0xFF),
        st.integers(min_value=0, max_value=0xF),
    )
    def test_fields_do_not_interfere(self, region, pgw):
        codec = Ipv6FieldCodec({"region": (32, 40), "pgw": (48, 52)})
        addr = codec.encode("2600:380::", region=region, pgw=pgw)
        decoded = codec.decode(addr)
        assert decoded["region"] == region
        assert decoded["pgw"] == pgw


class TestHostsIn:
    def test_limit(self):
        hosts = list(hosts_in("198.18.0.0/24", limit=5))
        assert len(hosts) == 5
        assert str(hosts[0]) == "198.18.0.1"

    def test_no_limit_slash30(self):
        assert len(list(hosts_in("198.18.0.0/30"))) == 2
