"""Unit tests for the router model and reply policies."""

import ipaddress

import pytest

from repro.errors import TopologyError
from repro.net.router import Interface, ReplyPolicy, Router


def _router_with_ifaces(uid="r1", addrs=("10.0.0.1", "10.0.0.5")) -> Router:
    router = Router(uid)
    for addr in addrs:
        router.add_interface(addr, 30)
    return router


class TestRouterBasics:
    def test_addresses_include_loopback(self):
        router = _router_with_ifaces()
        router.loopback = ipaddress.ip_address("192.0.2.1")
        assert "192.0.2.1" in {str(a) for a in router.addresses()}

    def test_owns(self):
        router = _router_with_ifaces()
        assert router.owns("10.0.0.1")
        assert not router.owns("10.0.0.9")

    def test_interface_for_missing_raises(self):
        router = _router_with_ifaces()
        with pytest.raises(TopologyError):
            router.interface_for("203.0.113.1")

    def test_ipid_monotonic_mod_wrap(self):
        router = Router("r", ipid_seed=65530, ipid_step=3)
        values = [router.next_ipid() for _ in range(5)]
        for prev, cur in zip(values, values[1:]):
            assert (cur - prev) % 65536 == 3

    def test_ipid_seed_deterministic(self):
        assert Router("same").next_ipid() == Router("same").next_ipid()
        assert Router("a").next_ipid() != Router("b").next_ipid() or True  # may collide


class TestReplyAddress:
    def test_inbound_mode(self):
        router = _router_with_ifaces()
        inbound = router.interfaces[1]
        assert router.reply_address(inbound, "10.0.0.1") == inbound.address

    def test_loopback_mode(self):
        router = _router_with_ifaces()
        router.policy = ReplyPolicy(reply_from="loopback")
        router.loopback = ipaddress.ip_address("192.0.2.9")
        assert str(router.reply_address(router.interfaces[0], "10.0.0.1")) == "192.0.2.9"

    def test_probed_mode_falls_back_to_owned(self):
        router = _router_with_ifaces()
        router.policy = ReplyPolicy(reply_from="probed")
        assert str(router.reply_address(None, "10.0.0.5")) == "10.0.0.5"

    def test_no_interfaces_raises(self):
        router = Router("empty")
        router.policy = ReplyPolicy(reply_from="probed")
        with pytest.raises(TopologyError):
            router.reply_address(None, "203.0.113.9")


class TestReplyPolicy:
    def test_default_always_responds(self):
        policy = ReplyPolicy()
        assert policy.responds_to(ipaddress.ip_address("203.0.113.1"), "k")

    def test_internal_only_blocks_external(self):
        policy = ReplyPolicy(
            internal_only=(ipaddress.ip_network("10.0.0.0/8"),)
        )
        assert policy.responds_to(ipaddress.ip_address("10.1.2.3"), "k")
        assert not policy.responds_to(ipaddress.ip_address("203.0.113.1"), "k")

    def test_zero_probability_never_responds(self):
        policy = ReplyPolicy(respond_prob=0.0)
        assert not policy.responds_to(ipaddress.ip_address("10.0.0.1"), "k")

    def test_partial_probability_is_deterministic_per_probe(self):
        policy = ReplyPolicy(respond_prob=0.5)
        source = ipaddress.ip_address("10.0.0.1")
        first = [policy.responds_to(source, f"probe-{i}") for i in range(50)]
        second = [policy.responds_to(source, f"probe-{i}") for i in range(50)]
        assert first == second
        assert 5 < sum(first) < 45  # roughly half respond

    def test_echo_internal_only_blocks_only_echo(self):
        policy = ReplyPolicy(
            echo_internal_only=(ipaddress.ip_network("10.0.0.0/8"),)
        )
        outside = ipaddress.ip_address("203.0.113.1")
        assert policy.responds_to(outside, "k")  # TTL expiry still works
        assert not policy.answers_echo(outside, "k")
        assert policy.answers_echo(ipaddress.ip_address("10.2.3.4"), "k")

    def test_answers_echo_respects_internal_only_too(self):
        policy = ReplyPolicy(
            internal_only=(ipaddress.ip_network("10.0.0.0/8"),)
        )
        assert not policy.answers_echo(ipaddress.ip_address("203.0.113.1"), "k")
