"""Unit tests for MPLS visibility: tunnels, DPR, LSR rules."""

import pytest

from repro.errors import TopologyError
from repro.net.mpls import MplsDomain, MplsTunnel
from repro.net.router import Router


@pytest.fixture()
def chain():
    """ingress -> mid1 -> mid2 -> egress -> beyond."""
    routers = {uid: Router(uid) for uid in ("ingress", "mid1", "mid2", "egress", "beyond")}
    return routers


class TestMplsTunnel:
    def test_rejects_same_endpoints(self, chain):
        with pytest.raises(TopologyError):
            MplsTunnel(chain["ingress"], chain["ingress"])

    def test_rejects_endpoint_in_interior(self, chain):
        with pytest.raises(TopologyError):
            MplsTunnel(
                chain["ingress"], chain["egress"],
                interior=(chain["egress"],),
            )

    def test_hides_interior_for_through_traffic(self, chain):
        tunnel = MplsTunnel(
            chain["ingress"], chain["egress"],
            interior=(chain["mid1"], chain["mid2"]),
        )
        assert tunnel.hides(chain["mid1"], chain["beyond"])

    def test_dpr_reveals_for_egress_destination(self, chain):
        tunnel = MplsTunnel(
            chain["ingress"], chain["egress"],
            interior=(chain["mid1"],),
        )
        assert not tunnel.hides(chain["mid1"], chain["egress"])

    def test_dpr_reveals_for_interior_destination(self, chain):
        tunnel = MplsTunnel(
            chain["ingress"], chain["egress"],
            interior=(chain["mid1"], chain["mid2"]),
        )
        assert not tunnel.hides(chain["mid1"], chain["mid2"])

    def test_ttl_propagate_never_hides(self, chain):
        tunnel = MplsTunnel(
            chain["ingress"], chain["egress"],
            interior=(chain["mid1"],), ttl_propagate=True,
        )
        assert not tunnel.hides(chain["mid1"], chain["beyond"])

    def test_non_interior_never_hidden(self, chain):
        tunnel = MplsTunnel(
            chain["ingress"], chain["egress"], interior=(chain["mid1"],)
        )
        assert not tunnel.hides(chain["egress"], chain["beyond"])


class TestMplsDomain:
    def _domain(self, chain) -> MplsDomain:
        domain = MplsDomain()
        domain.add(MplsTunnel(
            chain["ingress"], chain["egress"],
            interior=(chain["mid1"], chain["mid2"]),
        ))
        return domain

    def test_visible_path_hides_interior(self, chain):
        domain = self._domain(chain)
        path = [chain[u] for u in ("ingress", "mid1", "mid2", "egress", "beyond")]
        visible = domain.visible_path(path, chain["beyond"])
        assert [r.uid for r in visible] == ["ingress", "egress", "beyond"]

    def test_visible_path_dpr(self, chain):
        domain = self._domain(chain)
        path = [chain[u] for u in ("ingress", "mid1", "mid2", "egress")]
        visible = domain.visible_path(path, chain["egress"])
        assert [r.uid for r in visible] == ["ingress", "mid1", "mid2", "egress"]

    def test_tunnel_not_on_path_is_ignored(self, chain):
        domain = self._domain(chain)
        path = [chain["mid1"], chain["mid2"]]  # ingress/egress absent
        visible = domain.visible_path(path, chain["mid2"])
        assert len(visible) == 2

    def test_tunnel_wrong_order_is_ignored(self, chain):
        domain = self._domain(chain)
        # egress before ingress on the path: not a tunnel traversal.
        path = [chain[u] for u in ("egress", "mid1", "ingress")]
        visible = domain.visible_path(path, chain["ingress"])
        assert len(visible) == 3


class TestLsrRules:
    def test_rule_hides_unless_destination_in_reveal_set(self, chain):
        domain = MplsDomain()
        infra = [chain["ingress"], chain["mid1"], chain["egress"]]
        domain.add_lsr_rule([chain["mid1"]], infra)
        path = [chain[u] for u in ("ingress", "mid1", "egress", "beyond")]
        hidden = domain.visible_path(path, chain["beyond"])
        assert [r.uid for r in hidden] == ["ingress", "egress", "beyond"]
        revealed = domain.visible_path(path[:3], chain["egress"])
        assert [r.uid for r in revealed] == ["ingress", "mid1", "egress"]

    def test_rule_never_hides_the_destination_itself(self, chain):
        domain = MplsDomain()
        domain.add_lsr_rule([chain["mid1"]], [chain["ingress"]])
        path = [chain["ingress"], chain["mid1"]]
        visible = domain.visible_path(path, chain["mid1"])
        assert chain["mid1"] in visible
