"""Unit tests for the rDNS store."""

import re

from repro.net.dns import RdnsStore


class TestBasicRecords:
    def test_set_and_lookup(self):
        store = RdnsStore()
        store.set("10.0.0.1", "r1.example.net")
        assert store.dig("10.0.0.1") == "r1.example.net"
        assert store.snapshot_lookup("10.0.0.1") == "r1.example.net"
        assert store.lookup("10.0.0.1") == "r1.example.net"

    def test_missing_returns_none(self):
        store = RdnsStore()
        assert store.lookup("10.0.0.1") is None

    def test_remove(self):
        store = RdnsStore()
        store.set("10.0.0.1", "r1.example.net")
        store.remove("10.0.0.1")
        assert store.lookup("10.0.0.1") is None
        assert len(store) == 0

    def test_len_counts_union_of_epochs(self):
        store = RdnsStore()
        store.set("10.0.0.1", "a")
        store.set_stale("10.0.0.2", "b", in_dig=False)
        assert len(store) == 2


class TestStaleness:
    def test_dig_preferred_over_snapshot(self):
        store = RdnsStore()
        store.set_stale("10.0.0.1", "old-name", in_dig=False)
        store.set("10.0.0.1", "new-name", snapshot=False)
        # The live zone has the fix; the bulk snapshot is outdated.
        assert store.dig("10.0.0.1") == "new-name"
        assert store.snapshot_lookup("10.0.0.1") == "old-name"
        assert store.lookup("10.0.0.1") == "new-name"

    def test_stale_in_dig(self):
        store = RdnsStore()
        store.set_stale("10.0.0.1", "wrong-co", in_dig=True)
        assert store.lookup("10.0.0.1") == "wrong-co"
        assert store.is_stale("10.0.0.1")

    def test_stale_count(self):
        store = RdnsStore()
        store.set("10.0.0.1", "good")
        store.set_stale("10.0.0.2", "bad")
        assert store.stale_count == 1
        assert not store.is_stale("10.0.0.1")


class TestSnapshotScans:
    def test_snapshot_items_sorted(self):
        store = RdnsStore()
        store.set("10.0.0.2", "b")
        store.set("10.0.0.1", "a")
        assert [a for a, _n in store.snapshot_items()] == ["10.0.0.1", "10.0.0.2"]

    def test_addresses_matching(self):
        store = RdnsStore()
        store.set("10.0.0.1", "agg1.sndgcaaa01r.socal.rr.com")
        store.set("10.0.0.2", "cr1.sd2ca.ip.att.net")
        matches = store.addresses_matching(re.compile(r"\.rr\.com$"))
        assert matches == ["10.0.0.1"]
