"""Streaming incremental inference: parity, digests, epoch changes."""

import pytest

from repro.bias.incremental import (
    EpochChangeDetector,
    IncrementalCoGraph,
    assert_parity,
    region_digest,
)
from repro.errors import InferenceError
from repro.rdns.regexes import HostnameParser


@pytest.fixture(scope="module")
def parser():
    return HostnameParser()


def _fresh_graph(bias_internet, parser):
    return IncrementalCoGraph(
        bias_internet.network.rdns, "comcast", parser=parser
    )


class TestStreamingParity:
    def test_lab_scenario_is_digest_identical(self, lab_result):
        """The core contract: trace-by-trace ingest + snapshot equals
        the batch pipeline's extract + refine, byte for byte."""
        assert lab_result.stream.parity
        assert lab_result.stream.traces == len(lab_result.traces)

    def test_assert_parity_passes_and_fails(self, lab_result):
        snapshot = lab_result.snapshot
        digest = assert_parity(snapshot, snapshot.regions)
        assert digest == snapshot.digest
        first = sorted(snapshot.regions)[0]
        truncated = {
            name: region for name, region in snapshot.regions.items()
            if name != first
        }
        with pytest.raises(InferenceError):
            assert_parity(snapshot, truncated)

    def test_ingest_order_does_not_change_digest(self, bias_internet,
                                                 parser, lab_result):
        forward = _fresh_graph(bias_internet, parser)
        backward = _fresh_graph(bias_internet, parser)
        for trace in lab_result.traces:
            forward.ingest(trace)
        for trace in reversed(lab_result.traces):
            backward.ingest(trace)
        assert forward.snapshot().digest == backward.snapshot().digest

    def test_snapshot_is_repeatable(self, bias_internet, parser,
                                    lab_result):
        graph = _fresh_graph(bias_internet, parser)
        for trace in lab_result.traces:
            graph.ingest(trace)
        assert graph.snapshot().digest == graph.snapshot().digest
        assert graph.traces_ingested == len(lab_result.traces)

    def test_ingest_corpus_matches_trace_by_trace(self, bias_internet,
                                                  parser, lab_result):
        from repro.corpus.columnar import TraceCorpus

        corpus = TraceCorpus.from_traces(lab_result.traces)
        direct = _fresh_graph(bias_internet, parser)
        for trace in lab_result.traces:
            direct.ingest(trace)
        columnar = _fresh_graph(bias_internet, parser)
        assert columnar.ingest_corpus(corpus) == len(lab_result.traces)
        assert columnar.snapshot().digest == direct.snapshot().digest

    def test_followups_change_the_snapshot_index(self, bias_internet,
                                                 parser, lab_result):
        graph = _fresh_graph(bias_internet, parser)
        for trace in lab_result.traces:
            graph.ingest(trace)
        graph.ingest_followup(lab_result.traces[0])
        assert graph.followups_ingested == 1
        # Snapshot still materializes with the live follow-up index.
        assert graph.snapshot().traces_ingested == len(lab_result.traces)

    def test_region_digest_is_order_independent(self, lab_result):
        regions = lab_result.snapshot.regions
        reordered = dict(sorted(regions.items(), reverse=True))
        assert region_digest(regions) == region_digest(reordered)


class TestEpochDetector:
    def test_lab_drill_detected_one_change(self, lab_result):
        assert lab_result.stream.epoch_changes == 1

    def test_poll_reports_then_settles(self, bias_internet, parser,
                                       lab_result):
        rdns = bias_internet.network.rdns
        mapping = lab_result.snapshot.mapping.mapping
        mapped = [a for a in sorted(mapping) if rdns.lookup(a) is not None]
        moved = mapped[0]
        donor = next(
            a for a in mapped[1:] if mapping[a] != mapping[moved]
        )
        detector = EpochChangeDetector(rdns, "comcast", parser=parser)
        detector.watch(mapped)
        assert detector.watched == len(mapped)
        assert detector.poll() == []

        original = rdns.lookup(moved)
        rdns.set(moved, rdns.lookup(donor))
        try:
            changes = detector.poll()
            assert [c.address for c in changes] == [moved]
            # The same epoch polled twice reports nothing new.
            assert detector.poll() == []
        finally:
            rdns.set(moved, original)

    def test_restoring_the_record_is_itself_a_change(self, bias_internet,
                                                     parser, lab_result):
        rdns = bias_internet.network.rdns
        mapping = lab_result.snapshot.mapping.mapping
        mapped = [a for a in sorted(mapping) if rdns.lookup(a) is not None]
        moved = mapped[0]
        donor = next(
            a for a in mapped[1:] if mapping[a] != mapping[moved]
        )
        detector = EpochChangeDetector(rdns, "comcast", parser=parser)
        detector.watch([moved])
        original = rdns.lookup(moved)
        rdns.set(moved, rdns.lookup(donor))
        assert len(detector.poll()) == 1
        rdns.set(moved, original)
        changes = detector.poll()
        assert [c.address for c in changes] == [moved]
