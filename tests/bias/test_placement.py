"""VP-placement optimization: greedy coverage vs the random baseline."""

import ipaddress

import pytest

from repro.bias.placement import VpPlacementOptimizer


@pytest.fixture(scope="module")
def optimizer(bias_internet):
    return VpPlacementOptimizer(
        bias_internet,
        bias_internet.comcast,
        list(bias_internet.build_standard_vps()),
        targets_per_region=4,
        seed=7,
    )


class TestCandidates:
    def test_internal_vps_excluded(self, bias_internet, optimizer):
        """VPs inside the ISP's own pool would trivially win."""
        pool = ipaddress.ip_network(
            str(bias_internet.comcast.allocator.pool)
        )
        assert optimizer.candidates
        for vp in optimizer.candidates:
            assert ipaddress.ip_address(vp.src_address) not in pool

    def test_coverage_is_memoized_truth_edges(self, optimizer):
        vp = optimizer.candidates[0]
        first = optimizer.coverage_of(vp)
        assert optimizer.coverage_of(vp) is first
        assert first <= optimizer.truth_edges


class TestOptimize:
    def test_result_shape(self, optimizer):
        result = optimizer.optimize(2, restarts=1)
        assert result.k == 2
        assert len(result.chosen) == len(result.marginal_gains) <= 2
        assert result.covered_edges == sum(result.marginal_gains)
        assert 0 < result.covered_edges <= result.total_edges

    def test_greedy_gains_non_increasing(self, optimizer):
        result = optimizer.optimize(3, restarts=0)
        gains = result.marginal_gains
        assert gains == sorted(gains, reverse=True)

    def test_beats_or_matches_random_baseline(self, optimizer):
        result = optimizer.optimize(2, restarts=1)
        assert result.edge_recall >= result.random_recall
        assert result.gain_over_random == pytest.approx(
            result.edge_recall - result.random_recall
        )

    def test_deterministic(self, optimizer):
        first = optimizer.optimize(2, restarts=2)
        second = optimizer.optimize(2, restarts=2)
        assert first == second

    def test_as_dict(self, optimizer):
        payload = optimizer.optimize(2, restarts=0).as_dict()
        assert set(payload) == {
            "k", "chosen", "covered_edges", "total_edges", "edge_recall",
            "random_recall", "random_trials", "marginal_gains",
        }


class TestLabPlacement:
    def test_lab_scenario_beats_random(self, lab_result):
        placement = lab_result.placement
        assert placement.edge_recall > placement.random_recall
        assert len(placement.chosen) == placement.k
