"""Policy route models: valley-freeness, determinism, and fallbacks."""

import pytest

from repro.bias.routemodel import build_as_graph, build_route_model
from repro.errors import TopologyError


def _co_router(internet):
    """Some infrastructure router inside the first Comcast CO."""
    region = internet.comcast.regions[sorted(internet.comcast.regions)[0]]
    co_uid = sorted(region.cos)[0]
    for uid in sorted(internet.network.routers):
        router = internet.network.routers[uid]
        if router.co is not None and router.co.uid == co_uid:
            return router
    raise AssertionError("no router found in the first Comcast CO")


@pytest.fixture(scope="module")
def vf_model(bias_internet):
    return build_route_model(bias_internet, "valley-free")


@pytest.fixture(scope="module")
def hp_model(bias_internet):
    return build_route_model(bias_internet, "hot-potato")


@pytest.fixture(scope="module")
def endpoints(bias_internet):
    """One external VP host and one in-ISP infrastructure router."""
    vp = next(
        vp for vp in bias_internet.build_standard_vps()
        if vp.name.startswith("vp-transit-")
    )
    return vp.host, _co_router(bias_internet)


class TestBuilders:
    def test_spf_is_the_null_model(self, bias_internet):
        assert build_route_model(bias_internet, "spf") is None

    def test_unknown_name_raises(self, bias_internet):
        with pytest.raises(TopologyError):
            build_route_model(bias_internet, "cold-potato")

    def test_annotation_labels_every_router(self, bias_internet, vf_model):
        # build_route_model annotates ASNs as a side effect.
        unlabeled = [
            r.uid for r in bias_internet.network.routers.values()
            if not r.asn
        ]
        assert unlabeled == []

    def test_as_graph_shape(self, bias_internet):
        graph = build_as_graph(bias_internet)
        comcast = bias_internet.comcast.asn
        charter = bias_internet.charter.asn
        assert graph.rel_of(comcast, charter) == "p2p"
        providers = graph.providers_of(comcast)
        assert len(providers) == 1
        assert graph.rel_of(providers[0], charter) == "p2c"


class TestPipelineWiring:
    def test_route_model_refuses_supervised_workers(self, bias_internet,
                                                    vf_model):
        from repro.errors import MeasurementError
        from repro.infer.pipeline import CableInferencePipeline

        with pytest.raises(MeasurementError):
            CableInferencePipeline(
                bias_internet.network,
                bias_internet.comcast,
                list(bias_internet.build_standard_vps()),
                workers=2,
                route_model=vf_model,
            )


class TestValleyFree:
    @staticmethod
    def _as_path(path):
        asns = []
        for router in path:
            if not asns or asns[-1] != router.asn:
                asns.append(router.asn)
        return asns

    def test_paths_obey_gao_policy(self, bias_internet, vf_model):
        network = bias_internet.network
        dst = _co_router(bias_internet)
        found = 0
        for vp in bias_internet.build_standard_vps():
            path = vf_model.forwarding_path(network, vp.host, dst, flow_id=7)
            if path is None:
                continue
            found += 1
            as_path = self._as_path(path)
            assert vf_model.as_graph.is_valley_free(as_path), (
                vp.name, as_path,
            )
        assert found > 0, "no VP reached the CO under policy"

    def test_same_flow_same_path(self, bias_internet, vf_model, endpoints):
        src, dst = endpoints
        network = bias_internet.network
        first = vf_model.forwarding_path(network, src, dst, flow_id=3)
        second = vf_model.forwarding_path(network, src, dst, flow_id=3)
        assert first is not None
        assert [r.uid for r in first] == [r.uid for r in second]

    def test_path_endpoints_and_no_loops(self, bias_internet, vf_model,
                                         endpoints):
        src, dst = endpoints
        path = vf_model.forwarding_path(
            bias_internet.network, src, dst, flow_id=5
        )
        assert path is not None
        assert path[0] is src and path[-1] is dst
        uids = [r.uid for r in path]
        assert len(uids) == len(set(uids))


class TestHotPotato:
    def test_path_exists_and_terminates(self, bias_internet, hp_model,
                                        endpoints):
        src, dst = endpoints
        path = hp_model.forwarding_path(
            bias_internet.network, src, dst, flow_id=9
        )
        assert path is not None
        assert path[0] is src and path[-1] is dst
        uids = [r.uid for r in path]
        assert len(uids) == len(set(uids)), "hot-potato path loops"

    def test_deterministic_per_flow(self, bias_internet, hp_model,
                                    endpoints):
        src, dst = endpoints
        network = bias_internet.network
        first = hp_model.forwarding_path(network, src, dst, flow_id=2)
        second = hp_model.forwarding_path(network, src, dst, flow_id=2)
        assert first is not None
        assert [r.uid for r in first] == [r.uid for r in second]
