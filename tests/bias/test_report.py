"""The bias-report artifact: schema, round-trip, committed gates."""

import json
import pathlib

import pytest

from repro.bias import (
    bias_report_from_json,
    bias_report_to_json,
    build_bias_report,
)
from repro.errors import SchemaError

COMMITTED = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks" / "perf" / "BIAS_REPORT.json"
)


@pytest.fixture(scope="module")
def report(lab_result):
    return build_bias_report(lab_result)


class TestArtifact:
    def test_identity_fields(self, report, lab_result):
        assert report["kind"] == "bias-report"
        assert report["isp"] == "comcast"
        assert report["seed"] == lab_result.seed
        assert report["route_model"] == "valley-free"
        assert report["vp_count"] == 2
        assert report["targets"] == lab_result.targets

    def test_sections_match_result(self, report, lab_result):
        assert report["species"]["cos"] == lab_result.co_species.as_dict()
        assert report["species"]["links"] == \
            lab_result.link_species.as_dict()
        assert report["placement"] == lab_result.placement.as_dict()
        assert report["streaming"] == lab_result.stream.as_dict()

    def test_round_trip(self, report, lab_result):
        text = bias_report_to_json(lab_result)
        assert bias_report_from_json(text) == report
        # Canonical serialization: re-serializing is a fixed point.
        assert json.dumps(
            bias_report_from_json(text), indent=2, sort_keys=True
        ) == text

    def test_invalid_payload_rejected(self, report):
        from repro.validate.schema import validate_artifact

        broken = dict(report)
        del broken["species"]
        with pytest.raises(SchemaError):
            validate_artifact(broken, kind="bias-report")

    def test_metrics_mirror_the_report(self, bias_lab, report):
        gauges = bias_lab.metrics.snapshot()["gauges"]
        assert gauges["bias.species.co_chao1"] == pytest.approx(
            report["species"]["cos"]["chao1"], abs=1e-3
        )
        assert gauges["bias.placement.edge_recall"] == pytest.approx(
            report["placement"]["edge_recall"], abs=1e-5
        )
        assert gauges["bias.stream.parity"] == 1

    def test_spans_cover_every_stage(self, bias_lab):
        names = {span["name"] for span in bias_lab.obs.structural_dicts()}
        assert {"bias.lab", "bias.corpus", "bias.species",
                "bias.placement", "bias.stream"} <= names


class TestCommittedReport:
    """The committed seeded scenario must keep the PR's acceptance
    criteria: accurate estimators, placement above random, parity."""

    @pytest.fixture(scope="class")
    def committed(self):
        return bias_report_from_json(COMMITTED.read_text())

    def test_loads_and_validates(self, committed):
        assert committed["kind"] == "bias-report"
        assert committed["route_model"] == "valley-free"

    def test_species_within_tolerance(self, committed):
        for section in ("cos", "links"):
            species = committed["species"][section]
            assert species["relative_error"] <= 0.35
            assert species["chao1"] >= species["observed"]

    def test_placement_beats_random(self, committed):
        placement = committed["placement"]
        assert placement["edge_recall"] > placement["random_recall"]
        assert len(placement["chosen"]) == placement["k"]

    def test_streaming_parity(self, committed):
        assert committed["streaming"]["parity"] is True
        assert committed["streaming"]["epoch_changes"] >= 1
