"""Bias-lab fixtures.

The lab's epoch drill mutates the rDNS store, so these tests build
their own cable-only internet instead of sharing the suite-wide
``internet`` fixture, and run one small seeded lab per session.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def bias_internet():
    from repro.topology.internet import SimulatedInternet

    return SimulatedInternet(
        seed=11, include_telco=False, include_mobile=False
    )


@pytest.fixture(scope="session")
def bias_lab(bias_internet):
    from repro.bias import BiasLab

    lab = BiasLab(
        bias_internet,
        isp="comcast",
        vp_count=2,
        targets_per_region=4,
        rdns_fraction=0.04,
        placement_k=2,
        seed=7,
        route_model="valley-free",
    )
    lab.result = lab.run()
    return lab


@pytest.fixture(scope="session")
def lab_result(bias_lab):
    return bias_lab.result
