"""Unit tests for the Chao1 / Good–Turing species machinery."""

import random

import numpy as np
import pytest

from repro.bias.species import chao1, estimate_from_counts
from repro.errors import ReproError


class TestChao1:
    def test_doubleton_form(self):
        assert chao1(10, 4, 2) == 10 + 16 / 4

    def test_bias_corrected_fallback(self):
        assert chao1(10, 4, 0) == 10 + (4 * 3) / 2

    def test_no_singletons_no_extrapolation(self):
        assert chao1(10, 0, 5) == 10.0
        assert chao1(10, 0, 0) == 10.0

    def test_negative_counts_raise(self):
        with pytest.raises(ReproError):
            chao1(-1, 0, 0)
        with pytest.raises(ReproError):
            chao1(5, -2, 0)

    def test_impossible_spectrum_raises(self):
        with pytest.raises(ReproError):
            chao1(3, 2, 2)

    def test_is_a_lower_bound_on_nothing_less_than_observed(self):
        for observed, f1, f2 in [(5, 0, 0), (9, 3, 3), (50, 10, 1)]:
            assert chao1(observed, f1, f2) >= observed


class TestEstimateFromCounts:
    def test_known_spectrum(self):
        est = estimate_from_counts([1, 1, 2, 3])
        assert est.observed == 4
        assert (est.f1, est.f2) == (2, 1)
        assert est.n == 7
        assert est.chao1 == 4 + 4 / 2
        assert est.coverage == pytest.approx(1 - 2 / 7)
        assert est.unseen == pytest.approx(2.0)

    def test_zeros_ignored(self):
        assert estimate_from_counts([0, 0, 1, 1, 2, 3, 0]) == \
            estimate_from_counts([1, 1, 2, 3])

    def test_empty(self):
        est = estimate_from_counts([])
        assert est.observed == 0 and est.n == 0
        assert est.chao1 == 0.0 and est.coverage == 1.0

    def test_accepts_raw_bincount_output(self):
        species = np.array([0, 0, 1, 1, 2, 3, 3, 3])
        est = estimate_from_counts(np.bincount(species))
        assert est.observed == 4
        assert est.n == 8

    def test_as_dict(self):
        payload = estimate_from_counts([1, 2, 2]).as_dict()
        assert payload["observed"] == 3
        assert payload["unseen"] == pytest.approx(payload["chao1"] - 3)

    def test_recovers_hidden_richness(self):
        """Seeded binomial detection (8 occasions, p=0.2) over 600 true
        species: Chao1's extrapolation beats raw S_obs."""
        rng = random.Random("species-recovery")
        true_species = 600
        counts = [
            sum(1 for _ in range(8) if rng.random() < 0.2)
            for _ in range(true_species)
        ]
        est = estimate_from_counts(counts)
        assert est.observed < true_species
        assert abs(est.chao1 - true_species) < \
            abs(est.observed - true_species)


class TestLabSpecies:
    def test_truth_scored_reports(self, lab_result):
        for report in (lab_result.co_species, lab_result.link_species):
            assert report.truth > 0
            assert report.estimate.observed <= report.truth * 1.5
            assert report.relative_error == pytest.approx(
                abs(report.estimate.chao1 - report.truth) / report.truth
            )
            payload = report.as_dict()
            assert payload["truth"] == report.truth
            assert "relative_error" in payload

    def test_chao1_extrapolates_beyond_observed(self, lab_result):
        est = lab_result.co_species.estimate
        assert est.f1 > 0, "per-VP sampling must leave singletons"
        assert est.chao1 > est.observed
