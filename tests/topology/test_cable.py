"""Generator invariants for the cable ISPs (ground-truth side of §5)."""

import collections
import ipaddress

import pytest

from repro.net.network import Network
from repro.topology.cable import (
    CHARTER_REGION_SPECS,
    COMCAST_REGION_SPECS,
    build_charter_like,
    build_comcast_like,
)
from repro.topology.co import CoKind
from repro.topology.geography import Geography


@pytest.fixture(scope="module")
def cable():
    net = Network()
    geo = Geography()
    comcast = build_comcast_like(net, geo, seed=11)
    charter = build_charter_like(net, geo, seed=11)
    return net, comcast, charter


class TestRegionInventory:
    def test_region_counts_match_paper(self, cable):
        _net, comcast, charter = cable
        assert len(comcast.regions) == 28
        assert len(charter.regions) == 6

    def test_comcast_aggregation_type_mix(self, cable):
        _net, comcast, _charter = cable
        counts = collections.Counter(
            r.agg_type for r in comcast.regions.values()
        )
        assert counts == {"single": 5, "two": 11, "multi": 12}

    def test_charter_regions_all_multi(self, cable):
        _net, _comcast, charter = cable
        assert all(r.agg_type == "multi" for r in charter.regions.values())

    def test_charter_regions_are_larger(self, cable):
        _net, comcast, charter = cable
        import statistics

        comcast_sizes = [len(r.cos) for r in comcast.regions.values()]
        charter_sizes = [len(r.cos) for r in charter.regions.values()]
        assert min(charter_sizes) > statistics.median(comcast_sizes)
        assert max(charter_sizes) > max(comcast_sizes)


class TestGroundTruthStructure:
    def test_every_region_has_entries(self, cable):
        _net, comcast, charter = cable
        for isp in (comcast, charter):
            for region in isp.regions.values():
                assert region.entries, region.name

    def test_most_regions_have_two_backbone_entries(self, cable):
        _net, comcast, _charter = cable
        for name, region in comcast.regions.items():
            if name == "connecticut":
                continue  # enters via New England (§5.5)
            backbone_cos = {
                outside for outside, _local in region.entries
                if ":bb:" in outside
            }
            assert len(backbone_cos) >= 2, name

    def test_connecticut_enters_via_newengland(self, cable):
        _net, comcast, _charter = cable
        ct = comcast.regions["connecticut"]
        assert all(":bb:" not in outside for outside, _ in ct.entries)
        newengland_uids = set(comcast.regions["newengland"].cos)
        assert all(outside in newengland_uids for outside, _ in ct.entries)

    def test_southeast_has_no_redundancy(self, cable):
        _net, _comcast, charter = cable
        southeast = charter.regions["southeast"]
        for edge in southeast.edge_cos:
            assert len(southeast.upstreams_of(edge)) <= 1

    def test_single_upstream_fractions_match_paper(self, cable):
        _net, comcast, charter = cable

        def fraction(isp, exclude=()):
            single = total = 0
            for name, region in isp.regions.items():
                if name in exclude:
                    continue
                for edge in region.edge_cos:
                    ups = region.upstreams_of(edge)
                    if not ups:
                        continue
                    total += 1
                    single += len(ups) == 1
            return single / total

        assert fraction(comcast) < 0.2          # paper: 11.4 % measured
        assert 0.3 < fraction(charter) < 0.5    # paper: 37.7 %
        assert fraction(charter) > 2 * fraction(comcast)

    def test_every_edge_co_has_customer_prefix_route(self, cable):
        net, comcast, _charter = cable
        region = comcast.regions["seattle"]
        for edge in region.edge_cos:
            router = edge.routers[0]
            prefixes = [
                prefix for prefix, owner in net._prefix_routes.items()
                if owner is router
            ]
            assert prefixes, edge.uid


class TestNaming:
    def test_co_tags_unique_per_isp(self, cable):
        _net, comcast, charter = cable
        for isp in (comcast, charter):
            tags = [
                isp.co_tag(co)
                for region in isp.regions.values()
                for co in region.cos.values()
            ]
            assert len(tags) == len(set(tags))

    def test_comcast_tag_contains_state(self, cable):
        _net, comcast, _charter = cable
        region = comcast.regions["bverton"]
        for co in region.cos.values():
            assert comcast.co_tag(co).endswith(".or")

    def test_charter_tags_look_like_clli(self, cable):
        _net, _comcast, charter = cable
        region = charter.regions["socal"]
        for co in region.cos.values():
            tag = charter.co_tag(co)
            assert len(tag) == 10 and tag[-2:].isdigit()

    def test_rdns_parseable_by_own_regexes(self, cable):
        from repro.rdns.regexes import HostnameParser

        net, comcast, charter = cable
        parser = HostnameParser()
        parsed = recognized = 0
        for _addr, name in net.rdns.snapshot_items():
            parsed += 1
            if parser.parse(name) is not None:
                recognized += 1
        assert recognized / parsed > 0.95

    def test_stale_rate_in_expected_band(self, cable):
        net, _comcast, _charter = cable
        assert 0.0 < net.rdns.stale_count / len(net.rdns) < 0.10


class TestMpls:
    def test_only_one_charter_region_uses_mpls(self):
        mpls_specs = [s for s in CHARTER_REGION_SPECS if s.uses_mpls]
        assert len(mpls_specs) == 1 and mpls_specs[0].name == "midwest"
        assert not any(s.uses_mpls for s in COMCAST_REGION_SPECS)

    def test_midwest_tunnels_exist(self, cable):
        net, _comcast, _charter = cable
        assert len(net.mpls.tunnels) > 0


class TestAddressing:
    def test_region_prefixes_disjoint(self, cable):
        _net, comcast, _charter = cable
        prefixes = [
            prefix
            for plist in comcast.region_prefixes.values()
            for prefix in plist
        ]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.overlaps(b)

    def test_p2p_prefix_lengths(self, cable):
        _net, comcast, charter = cable
        assert comcast.p2p_prefixlen == 30
        assert charter.p2p_prefixlen == 31
