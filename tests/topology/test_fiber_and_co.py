"""Unit tests for fiber rings and CO/region bookkeeping."""

import pytest

from repro.errors import TopologyError
from repro.topology.co import CentralOffice, CoKind, Region
from repro.topology.fiber import FiberRing
from repro.topology.geography import City, Geography


def _co(uid, name, state="CA", lat=33.0, lon=-117.0, kind=CoKind.EDGE):
    return CentralOffice(
        uid=uid, kind=kind, city=City(name, state, lat, lon), clli=uid
    )


@pytest.fixture()
def ring():
    members = [
        _co("AGGA", "AggTown", lat=33.0, lon=-117.0, kind=CoKind.AGG),
        _co("E1", "EdgeOne", lat=33.2, lon=-117.1),
        _co("E2", "EdgeTwo", lat=33.4, lon=-117.0),
        _co("AGGB", "AggVille", lat=33.3, lon=-116.8, kind=CoKind.AGG),
        _co("E3", "EdgeThree", lat=33.1, lon=-116.9),
    ]
    return FiberRing("test-ring", members, Geography())


class TestFiberRing:
    def test_needs_two_members(self):
        with pytest.raises(TopologyError):
            FiberRing("tiny", [_co("X", "X Town")], Geography())

    def test_rejects_duplicates(self):
        co = _co("X", "X Town")
        with pytest.raises(TopologyError):
            FiberRing("dup", [co, co], Geography())

    def test_arc_is_at_most_half_circumference(self, ring):
        half = ring.circumference_km() / 2
        for a in ring.members:
            for b in ring.members:
                assert ring.arc_km(a, b) <= half + 1e-9

    def test_arc_symmetry(self, ring):
        a, b = ring.members[0], ring.members[3]
        assert ring.arc_km(a, b) == pytest.approx(ring.arc_km(b, a))

    def test_arc_zero_for_self(self, ring):
        assert ring.arc_km(ring.members[0], ring.members[0]) == 0.0

    def test_arc_rejects_non_member(self, ring):
        with pytest.raises(TopologyError):
            ring.arc_km(ring.members[0], _co("ZZ", "Elsewhere"))

    def test_star_links_cover_all_leaves(self, ring):
        hubs = [ring.members[0], ring.members[3]]
        links = ring.star_links(hubs)
        leaves = {co.uid for _h, co, _d in links}
        assert leaves == {"E1", "E2", "E3"}
        assert len(links) == 6  # each leaf to each hub

    def test_star_links_rejects_off_ring_hub(self, ring):
        with pytest.raises(TopologyError):
            ring.star_links([_co("ZZ", "Elsewhere")])


class TestRegion:
    def test_add_and_query(self):
        region = Region("r1", "isp")
        agg = region.add_co(_co("AGG", "Agg Town", kind=CoKind.AGG))
        edge = region.add_co(_co("EDGE", "Edge Town"))
        region.add_edge(agg, edge)
        assert region.upstreams_of(edge) == ["AGG"]
        assert region.edge_count() == 1
        assert list(region.edge_pairs()) == [("AGG", "EDGE")]
        assert region.agg_cos == [agg]
        assert region.edge_cos == [edge]

    def test_duplicate_co_rejected(self):
        region = Region("r1", "isp")
        region.add_co(_co("X", "X Town"))
        with pytest.raises(TopologyError):
            region.add_co(_co("X", "X Town"))

    def test_edge_requires_membership(self):
        region = Region("r1", "isp")
        inside = region.add_co(_co("IN", "In Town"))
        outside = _co("OUT", "Out Town")
        with pytest.raises(TopologyError):
            region.add_edge(inside, outside)

    def test_entry_requires_membership(self):
        region = Region("r1", "isp")
        with pytest.raises(TopologyError):
            region.add_entry("bb", _co("OUT", "Out Town"))

    def test_router_annotation(self):
        from repro.net.router import Router

        co = _co("X", "X Town")
        router = Router("r")
        co.add_router(router)
        assert router.co is co
        assert co.routers == [router]
