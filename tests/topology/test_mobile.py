"""Generator invariants for the mobile carriers (ground truth of §7)."""

import ipaddress

import pytest

from repro.net.addresses import Ipv6FieldCodec
from repro.topology.geography import Geography
from repro.topology.mobile import (
    ATT_MOBILE_REGIONS,
    ATT_STATE_COVERAGE,
    VERIZON_REGIONS,
    AttMobileCarrier,
    TMobileLikeCarrier,
    VerizonLikeCarrier,
    build_mobile_carriers,
)


@pytest.fixture(scope="module")
def carriers():
    return build_mobile_carriers(Geography(), seed=11)


class TestRegionTables:
    def test_att_has_eleven_regions(self):
        assert len(ATT_MOBILE_REGIONS) == 11

    def test_att_pgw_counts_match_table7(self):
        by_name = {r.name: r.pgw_count for r in ATT_MOBILE_REGIONS}
        assert by_name["BTH"] == 2
        assert by_name["ALP"] == 6
        assert by_name["VNN"] == 5

    def test_att_coverage_spans_contiguous_us(self):
        from repro.topology.geography import STATE_ADJACENCY

        assert set(ATT_STATE_COVERAGE) == set(STATE_ADJACENCY)

    def test_verizon_region_bits_unique(self):
        bits = [r.region_bits for r in VERIZON_REGIONS]
        assert len(bits) == len(set(bits))

    def test_verizon_backbone_grouping(self):
        lax = [r for r in VERIZON_REGIONS if r.backbone == "LAX"]
        assert {r.name for r in lax} == {"AZUSCA", "VISTCA"}


class TestAttachment:
    def test_att_region_follows_state_coverage(self, carriers):
        att = carriers["att-mobile"]
        attachment = att.attach(46.8, -110.0)  # Montana -> Chicago DC
        assert attachment.region.name == "CHC"
        assert att.attach(47.6, -122.3).region.name == "BTH"  # Seattle

    def test_verizon_picks_nearest_site(self, carriers):
        vz = carriers["verizon"]
        assert vz.attach(33.2, -117.2).region.name == "VISTCA"

    def test_pgw_cycles_on_reattach(self, carriers):
        vz = carriers["verizon"]
        pgws = [vz.attach(33.2, -117.2).pgw_index for _ in range(6)]
        assert set(pgws) == {0, 1, 2}  # VISTCA has 3 PGWs (Table 8)

    def test_tmobile_gulf_quirk(self, carriers):
        tmo = carriers["tmobile"]
        attachment = tmo.attach(32.4, -86.3)  # Montgomery, AL
        assert attachment.region.name == "TMO-COLUMSC"

    def test_tmobile_provider_rotates(self, carriers):
        tmo = carriers["tmobile"]
        providers = {tmo.attach(41.9, -87.6).provider for _ in range(6)}
        assert len(providers) >= 2


class TestAddressEncodings:
    def test_att_user_prefix_carries_region_byte(self, carriers):
        att = carriers["att-mobile"]
        attachment = att.attach(34.0, -118.2)  # LA -> VNN
        value = int(attachment.user_prefix.network_address)
        region_byte = (value >> (128 - 40)) & 0xFF
        assert region_byte == 0x6C  # the paper's example region

    def test_verizon_user_prefix_fields(self, carriers):
        vz = carriers["verizon"]
        attachment = vz.attach(33.2, -117.2)  # VISTCA
        fields = Ipv6FieldCodec(
            {"backbone": (16, 32), "edgeco": (32, 40), "pgw": (40, 44)}
        ).decode(attachment.user_prefix.network_address)
        assert fields["backbone"] == 0x1012
        assert fields["edgeco"] == 0xB1
        assert fields["pgw"] == attachment.pgw_index

    def test_tmobile_user_prefix_pgw_byte(self, carriers):
        tmo = carriers["tmobile"]
        attachment = tmo.attach(40.7, -74.0)
        value = int(attachment.user_prefix.network_address)
        pgw_byte = (value >> (128 - 40)) & 0xFF
        expected = (attachment.region.region_bits + attachment.pgw_index) & 0xFF
        assert pgw_byte == expected

    def test_all_user_prefixes_are_64s(self, carriers):
        for carrier in carriers.values():
            attachment = carrier.attach(39.7, -105.0)
            assert attachment.user_prefix.prefixlen == 64


class TestTraceroutes:
    def test_att_hops_match_fig16a_shape(self, carriers):
        att = carriers["att-mobile"]
        attachment = att.attach(34.0, -118.2)
        hops = att.carrier_hops(attachment)
        assert hops[0].address.startswith("2600:380:")
        assert hops[1].address is None  # the silent hop 2
        assert hops[2].address.startswith("2600:300:2090:")

    def test_verizon_hops_include_alter_net(self, carriers):
        vz = carriers["verizon"]
        attachment = vz.attach(33.2, -117.2)
        trace = vz.traceroute(attachment, "203.0.113.9")
        rdns = [h.rdns for h in trace.hops if h.rdns]
        assert any("alter.net" in name for name in rdns)

    def test_tmobile_hops_use_ula_and_provider(self, carriers):
        tmo = carriers["tmobile"]
        attachment = tmo.attach(41.9, -87.6)
        hops = tmo.carrier_hops(attachment)
        assert hops[1].address.startswith("fc00:")
        assert hops[3].address.startswith("fd00:976a:")
        assert attachment.provider in hops[4].rdns

    def test_trace_rtts_monotonic(self, carriers):
        vz = carriers["verizon"]
        geo = Geography()
        attachment = vz.attach(33.2, -117.2)
        trace = vz.traceroute(attachment, "203.0.113.9",
                              dst_city=geo.city("San Diego", "CA"))
        rtts = [h.rtt_ms for h in trace.hops if h.rtt_ms is not None]
        assert rtts == sorted(rtts)
        assert trace.completed


class TestLatencyModel:
    def test_detour_increases_rtt(self, carriers):
        geo = Geography()
        att = carriers["att-mobile"]
        san_diego = geo.city("San Diego", "CA")
        montana = att.attach(46.8, -110.0)      # detours via Seattle
        local = att.attach(34.0, -118.2)        # LA datacenter
        assert att.path_rtt_ms(montana, san_diego) > 1.4 * att.path_rtt_ms(local, san_diego)

    def test_tmobile_gulf_anomaly_is_slower(self, carriers):
        geo = Geography()
        tmo = carriers["tmobile"]
        san_diego = geo.city("San Diego", "CA")
        gulf = tmo.attach(32.4, -86.3)          # -> Columbia SC
        texan = tmo.attach(29.8, -95.4)         # -> Houston
        assert tmo.path_rtt_ms(gulf, san_diego) > tmo.path_rtt_ms(texan, san_diego)

    def test_speedtest_hostname_format(self, carriers):
        vz = carriers["verizon"]
        region = next(r for r in vz.regions if r.name == "VISTCA")
        assert vz.speedtest_hostname(region) == "vist.ost.myvzw.com"
