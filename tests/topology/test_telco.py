"""Generator invariants for the AT&T-like telco (ground truth of §6)."""

import ipaddress

import pytest

from repro.net.network import Network
from repro.topology.co import CoKind
from repro.topology.geography import Geography
from repro.topology.telco import (
    TELCO_INTERNAL_PREFIXES,
    TelcoIsp,
    TelcoRegionSpec,
    build_att_like,
)


@pytest.fixture(scope="module")
def telco():
    net = Network()
    isp = build_att_like(net, Geography(), seed=11)
    return net, isp


class TestRegionStructure:
    def test_san_diego_shape_matches_fig13(self, telco):
        _net, isp = telco
        region = isp.regions["sndgca"]
        assert len(region.cos_of_kind(CoKind.BACKBONE)) == 1
        assert len(region.agg_cos) == 4
        assert len(region.edge_cos) == 42
        bb = region.cos_of_kind(CoKind.BACKBONE)[0]
        assert len(bb.routers) == 2
        for edge in region.edge_cos:
            assert len(edge.routers) == 2

    def test_edge_cos_dual_homed_to_agg_pair(self, telco):
        _net, isp = telco
        region = isp.regions["sndgca"]
        for edge in region.edge_cos:
            assert len(region.upstreams_of(edge)) == 2

    def test_aggs_feed_from_backbone(self, telco):
        _net, isp = telco
        region = isp.regions["sndgca"]
        bb = region.cos_of_kind(CoKind.BACKBONE)[0]
        for agg in region.agg_cos:
            assert bb.uid in region.upstreams_of(agg)

    def test_distant_sites_present(self, telco):
        _net, isp = telco
        cities = {co.city.name for co in isp.regions["sndgca"].edge_cos}
        assert {"El Centro", "Calexico", "Vista"} <= cities

    def test_region_tags(self, telco):
        _net, isp = telco
        assert "sndgca" in isp.regions
        assert "nsvltn" in isp.regions


class TestNamingAndFiltering:
    def test_backbone_routers_have_cr_rdns(self, telco):
        net, isp = telco
        region = isp.regions["sndgca"]
        bb = region.cos_of_kind(CoKind.BACKBONE)[0]
        names = {net.rdns.lookup(str(r.loopback)) for r in bb.routers}
        assert names == {"cr1.sd2ca.ip.att.net", "cr2.sd2ca.ip.att.net"}

    def test_edge_and_agg_routers_unnamed(self, telco):
        net, isp = telco
        region = isp.regions["sndgca"]
        for co in region.agg_cos + region.edge_cos:
            for router in co.routers:
                for iface in router.interfaces:
                    assert net.rdns.lookup(iface.address) is None

    def test_lspgw_rdns_format(self, telco):
        net, isp = telco
        import re

        pattern = re.compile(
            r"^[\d-]+-\d+\.lightspeed\.sndgca\.sbcglobal\.net$"
        )
        matches = [
            name for _a, name in net.rdns.snapshot_items()
            if "sndgca" in name
        ]
        assert matches and all(pattern.match(m) for m in matches)

    def test_regional_routers_filter_external_probes(self, telco):
        _net, isp = telco
        region = isp.regions["sndgca"]
        agg_router = region.agg_cos[0].routers[0]
        external = ipaddress.ip_address("34.64.0.5")
        internal = ipaddress.ip_address("107.200.1.5")
        assert not agg_router.policy.responds_to(external, "k")
        assert agg_router.policy.responds_to(internal, "k")

    def test_dslam_refuses_external_echo_only(self, telco):
        _net, isp = telco
        dslam = isp.dslams_by_region["sndgca"][0]
        external = ipaddress.ip_address("34.64.0.5")
        assert dslam.policy.responds_to(external, "k")
        assert not dslam.policy.answers_echo(external, "k")


class TestAddressPlan:
    def test_san_diego_prefix_counts_match_table6(self, telco):
        _net, isp = telco
        prefixes = isp.router_prefixes["sndgca"]
        assert len(prefixes["edge"]) == 6
        assert len(prefixes["agg"]) == 1

    def test_edge_prefixes_inside_infra_pool(self, telco):
        _net, isp = telco
        pool = ipaddress.ip_network("71.128.0.0/10")
        for block in isp.router_prefixes["sndgca"]["edge"]:
            assert block.subnet_of(pool)

    def test_internal_prefixes_cover_lastmile(self, telco):
        lastmile = ipaddress.ip_address("107.200.91.1")
        assert any(lastmile in net for net in TELCO_INTERNAL_PREFIXES)

    def test_vp_subnet_lives_inside_lspgw_block(self, telco):
        net, isp = telco
        dslam = isp.dslams_by_region["sndgca"][0]
        subnet = isp.vp_subnet_for(dslam)
        gw_block = ipaddress.ip_network(
            f"{dslam.interfaces[-1].address}/24", strict=False
        )
        assert subnet.subnet_of(gw_block)

    def test_ndt_dataset_populated(self, telco):
        _net, isp = telco
        customers = isp.ndt_customer_addresses("sndgca")
        assert len(customers) == 42 * 3
        assert isp.ndt_customer_addresses("nowhere") == []


class TestMplsRules:
    def test_duplicate_region_rejected(self, telco):
        _net, isp = telco
        with pytest.raises(Exception):
            isp.build_region(TelcoRegionSpec(("San Diego", "CA"), 4))
