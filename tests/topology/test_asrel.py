"""Unit tests for the synthetic AS-relationship dataset (App. D)."""

import pytest

from repro.errors import TopologyError
from repro.topology.asrel import (
    CARRIER_ASNS,
    NEIGHBOR_COUNTS,
    AsRelationshipDataset,
    reduced_target,
)


@pytest.fixture(scope="module")
def dataset():
    return AsRelationshipDataset(seed=1)


class TestNeighborSets:
    def test_paper_counts(self, dataset):
        for carrier, asn in CARRIER_ASNS.items():
            assert len(dataset.neighbors_of(asn)) == NEIGHBOR_COUNTS[carrier]

    def test_deterministic(self):
        first = AsRelationshipDataset(seed=1)
        second = AsRelationshipDataset(seed=1)
        asn = CARRIER_ASNS["verizon"]
        assert first.neighbors_of(asn) == second.neighbors_of(asn)

    def test_unknown_asn(self, dataset):
        with pytest.raises(TopologyError):
            dataset.neighbors_of(99)

    def test_relationship_kinds(self, dataset):
        kinds = {rel.kind for rel in dataset.relationships()}
        assert kinds == {"p2c", "p2p"}

    def test_carriers_not_own_neighbors(self, dataset):
        for asn in CARRIER_ASNS.values():
            assert asn not in dataset.neighbors_of(asn)


class TestTargets:
    def test_one_pair_per_neighbor(self, dataset):
        targets = dataset.targets_for("att-mobile")
        assert len(targets) == 266
        v4s = {v4 for v4, _ in targets}
        assert len(v4s) == 266  # unique per neighbour

    def test_target_families(self, dataset):
        v4, v6 = dataset.targets_for("tmobile")[0]
        assert "." in v4 and ":" in v6

    def test_unknown_carrier(self, dataset):
        with pytest.raises(TopologyError):
            dataset.targets_for("sprint")


class TestReduction:
    def test_identical_paths_reduce(self, dataset):
        target = reduced_target(dataset, "verizon", probe=lambda t: "same-path")
        assert target == dataset.targets_for("verizon")[0][0]

    def test_divergent_paths_refuse(self, dataset):
        with pytest.raises(TopologyError):
            reduced_target(dataset, "verizon", probe=lambda t: t)

    def test_reduction_against_real_carrier(self, dataset, internet):
        """The §7.1.1 pilot: all neighbour targets share one in-carrier
        path, so the campaign keeps a single destination."""
        carrier = internet.mobile_carriers["verizon"]
        attachment = carrier.attach(32.7, -117.1)

        def probe(target):
            hops = carrier.carrier_hops(attachment)
            return tuple(h.address for h in hops if h.address)

        target = reduced_target(dataset, "verizon", probe)
        assert target
