"""Unit tests for the synthetic AS-relationship dataset (App. D)."""

import pytest

from repro.errors import TopologyError
from repro.topology.asrel import (
    CARRIER_ASNS,
    NEIGHBOR_COUNTS,
    AsGraph,
    AsRelationshipDataset,
    reduced_target,
    valley_free_next_phase,
)


@pytest.fixture(scope="module")
def dataset():
    return AsRelationshipDataset(seed=1)


class TestNeighborSets:
    def test_paper_counts(self, dataset):
        for carrier, asn in CARRIER_ASNS.items():
            assert len(dataset.neighbors_of(asn)) == NEIGHBOR_COUNTS[carrier]

    def test_deterministic(self):
        first = AsRelationshipDataset(seed=1)
        second = AsRelationshipDataset(seed=1)
        asn = CARRIER_ASNS["verizon"]
        assert first.neighbors_of(asn) == second.neighbors_of(asn)

    def test_unknown_asn(self, dataset):
        with pytest.raises(TopologyError):
            dataset.neighbors_of(99)

    def test_relationship_kinds(self, dataset):
        kinds = {rel.kind for rel in dataset.relationships()}
        assert kinds == {"p2c", "p2p"}

    def test_carriers_not_own_neighbors(self, dataset):
        for asn in CARRIER_ASNS.values():
            assert asn not in dataset.neighbors_of(asn)


class TestTargets:
    def test_one_pair_per_neighbor(self, dataset):
        targets = dataset.targets_for("att-mobile")
        assert len(targets) == 266
        v4s = {v4 for v4, _ in targets}
        assert len(v4s) == 266  # unique per neighbour

    def test_target_families(self, dataset):
        v4, v6 = dataset.targets_for("tmobile")[0]
        assert "." in v4 and ":" in v6

    def test_unknown_carrier(self, dataset):
        with pytest.raises(TopologyError):
            dataset.targets_for("sprint")


class TestAsGraph:
    def test_inverse_views(self):
        graph = AsGraph()
        graph.add_relationship(1, 2, "p2c")
        graph.add_relationship(2, 3, "p2p")
        assert graph.rel_of(1, 2) == "p2c"
        assert graph.rel_of(2, 1) == "c2p"
        assert graph.rel_of(2, 3) == "p2p"
        assert graph.rel_of(3, 2) == "p2p"

    def test_missing_relationship_is_none(self):
        graph = AsGraph()
        graph.add_relationship(1, 2, "p2c")
        assert graph.rel_of(1, 3) is None
        assert graph.rel_of(3, 1) is None

    def test_redeclare_same_kind_ok(self):
        graph = AsGraph()
        graph.add_relationship(1, 2, "p2c")
        graph.add_relationship(1, 2, "p2c")
        assert graph.rel_of(1, 2) == "p2c"

    def test_conflicting_redeclaration_raises(self):
        graph = AsGraph()
        graph.add_relationship(1, 2, "p2c")
        with pytest.raises(TopologyError):
            graph.add_relationship(1, 2, "p2p")
        # The conflict is also caught from the inverse direction.
        with pytest.raises(TopologyError):
            graph.add_relationship(2, 1, "p2c")

    def test_self_loop_raises(self):
        with pytest.raises(TopologyError):
            AsGraph().add_relationship(7, 7, "p2p")

    def test_unknown_kind_raises(self):
        with pytest.raises(TopologyError):
            AsGraph().add_relationship(1, 2, "sibling")

    def test_accessor_partitions(self):
        graph = AsGraph()
        graph.add_relationship(10, 20, "p2c")   # 10 transits 20
        graph.add_relationship(30, 10, "p2c")   # 30 transits 10
        graph.add_relationship(10, 40, "p2p")
        assert graph.customers_of(10) == [20]
        assert graph.providers_of(10) == [30]
        assert graph.peers_of(10) == [40]
        assert graph.neighbors_of(10) == [20, 30, 40]

    def test_insertion_order_does_not_change_views(self):
        """Tie-breaking determinism: accessors are sorted, so policy
        routing sees the same neighbour order however the dataset was
        loaded."""
        edges = [(1, 5, "p2c"), (1, 3, "p2c"), (1, 9, "p2p"), (4, 1, "p2c")]
        forward, backward = AsGraph(), AsGraph()
        for a, b, kind in edges:
            forward.add_relationship(a, b, kind)
        for a, b, kind in reversed(edges):
            backward.add_relationship(a, b, kind)
        for accessor in ("neighbors_of", "customers_of", "providers_of",
                         "peers_of"):
            assert getattr(forward, accessor)(1) == getattr(
                backward, accessor)(1)

    def test_from_dataset_deterministic(self):
        asn = CARRIER_ASNS["tmobile"]
        first = AsGraph.from_dataset(AsRelationshipDataset(seed=3))
        second = AsGraph.from_dataset(AsRelationshipDataset(seed=3))
        assert first.neighbors_of(asn) == second.neighbors_of(asn)
        assert first.customers_of(asn) == second.customers_of(asn)


class TestValleyFree:
    def test_phase_table(self):
        assert valley_free_next_phase("up", "c2p") == "up"
        assert valley_free_next_phase("up", "p2p") == "peer"
        assert valley_free_next_phase("up", "p2c") == "down"
        assert valley_free_next_phase("peer", "p2c") == "down"
        assert valley_free_next_phase("down", "p2c") == "down"
        # Once descending (or past the peer link), never climb again.
        assert valley_free_next_phase("peer", "c2p") is None
        assert valley_free_next_phase("peer", "p2p") is None
        assert valley_free_next_phase("down", "c2p") is None
        assert valley_free_next_phase("down", "p2p") is None

    def test_missing_relationship_blocks(self):
        for phase in ("up", "peer", "down"):
            assert valley_free_next_phase(phase, None) is None

    def test_unknown_phase_raises(self):
        with pytest.raises(TopologyError):
            valley_free_next_phase("sideways", "p2c")

    @pytest.fixture()
    def staircase(self):
        graph = AsGraph()
        graph.add_relationship(2, 1, "p2c")   # 2 provides 1
        graph.add_relationship(3, 2, "p2c")   # 3 provides 2
        graph.add_relationship(3, 4, "p2p")
        graph.add_relationship(4, 5, "p2c")
        graph.add_relationship(5, 6, "p2c")
        return graph

    def test_full_staircase_is_valley_free(self, staircase):
        assert staircase.is_valley_free([1, 2, 3, 4, 5, 6])

    def test_valley_is_rejected(self, staircase):
        # Descending 3→2 then climbing 2→3 again is the textbook valley.
        assert not staircase.is_valley_free([4, 3, 2, 3, 4])

    def test_two_peer_links_rejected(self):
        graph = AsGraph()
        graph.add_relationship(1, 2, "p2p")
        graph.add_relationship(2, 3, "p2p")
        assert not graph.is_valley_free([1, 2, 3])

    def test_missing_edge_rejects_path(self, staircase):
        assert not staircase.is_valley_free([1, 2, 99])

    def test_duplicate_asns_are_phase_neutral(self, staircase):
        assert staircase.is_valley_free([1, 1, 2, 2, 3, 3])

    def test_provider_cycle_walk_terminates(self):
        """A p2c cycle is a broken dataset, but a *path list* over it
        still evaluates edge-by-edge (all downhill → valley-free) and
        the accessors stay consistent."""
        graph = AsGraph()
        graph.add_relationship(1, 2, "p2c")
        graph.add_relationship(2, 3, "p2c")
        graph.add_relationship(3, 1, "p2c")
        assert graph.is_valley_free([1, 2, 3, 1])
        assert graph.providers_of(1) == [3]
        assert graph.customers_of(1) == [2]

    def test_peer_cycle_rejected(self):
        graph = AsGraph()
        graph.add_relationship(1, 2, "p2p")
        graph.add_relationship(2, 3, "p2p")
        graph.add_relationship(3, 1, "p2p")
        assert not graph.is_valley_free([1, 2, 3, 1])


class TestReduction:
    def test_identical_paths_reduce(self, dataset):
        target = reduced_target(dataset, "verizon", probe=lambda t: "same-path")
        assert target == dataset.targets_for("verizon")[0][0]

    def test_divergent_paths_refuse(self, dataset):
        with pytest.raises(TopologyError):
            reduced_target(dataset, "verizon", probe=lambda t: t)

    def test_reduction_against_real_carrier(self, dataset, internet):
        """The §7.1.1 pilot: all neighbour targets share one in-carrier
        path, so the campaign keeps a single destination."""
        carrier = internet.mobile_carriers["verizon"]
        attachment = carrier.attach(32.7, -117.1)

        def probe(target):
            hops = carrier.carrier_hops(attachment)
            return tuple(h.address for h in hops if h.address)

        target = reduced_target(dataset, "verizon", probe)
        assert target
