"""Assembly invariants for the composed simulated internet."""

import ipaddress

import pytest

from repro.errors import TopologyError


class TestAssembly:
    def test_component_inventory(self, internet):
        assert internet.comcast is not None
        assert internet.charter is not None
        assert internet.att is not None
        assert set(internet.mobile_carriers) == {
            "att-mobile", "verizon", "tmobile",
        }

    def test_transit_backbone_connected(self, internet):
        routers = list(internet.transit_routers.values())
        for router in routers[1:]:
            path = internet.network.forwarding_path(routers[0], router)
            assert path[-1] is router

    def test_isp_pops_reachable_from_transit(self, internet):
        transit = next(iter(internet.transit_routers.values()))
        for isp in (internet.comcast, internet.charter, internet.att):
            for pop in isp.backbone_pops.values():
                path = internet.network.forwarding_path(transit, pop.routers[0])
                assert path[-1] is pop.routers[0]

    def test_server_vp_exists(self, internet):
        assert internet.server_vp.city.name == "San Diego"


class TestCloudVms:
    def test_cloud_vm_idempotent(self, internet):
        first = internet.cloud_vm("aws", "us-east-1")
        second = internet.cloud_vm("aws", "us-east-1")
        assert first is second

    def test_unknown_region_rejected(self, internet):
        with pytest.raises(TopologyError):
            internet.cloud_vm("aws", "mars-central-1")

    def test_all_cloud_vms(self, internet):
        vms = internet.all_cloud_vms()
        assert len(vms) == 14
        providers = {vp.name.split("-")[1] for vp in vms}
        assert providers == {"aws", "azure", "gcp"}


class TestStandardVps:
    def test_forty_seven_vps(self, standard_vps):
        assert len(standard_vps) == 47

    def test_vp_kind_mix(self, standard_vps):
        kinds = {vp.kind for vp in standard_vps}
        assert {"transit", "cloud", "access"} <= kinds

    def test_includes_sanfrancisco_home(self, standard_vps):
        assert any(
            "sanfrancisco" in vp.name and "comcast" in vp.name
            for vp in standard_vps
        )

    def test_vps_have_routable_sources(self, internet, standard_vps):
        for vp in standard_vps[:10]:
            owner = internet.network.owner_router(vp.src_address)
            assert owner is vp.host


class TestTelcoInternalVps:
    def test_two_per_region(self, internet):
        fleet = internet.telco_internal_vps(per_region=2)
        assert len(fleet) == 2 * len(internet.att.regions)

    def test_sources_inside_att_lastmile(self, internet):
        pool = ipaddress.ip_network("107.128.0.0/9")
        for vp in internet.telco_internal_vps(per_region=1):
            assert ipaddress.ip_address(vp.src_address) in pool
