"""Unit and property tests for the synthetic geography."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import TopologyError
from repro.topology.geography import (
    STATE_ADJACENCY,
    Geography,
    City,
    clli_city_code,
    great_circle_km,
)


@pytest.fixture(scope="module")
def geo():
    return Geography()


class TestDistances:
    def test_known_distance(self, geo):
        la = geo.city("Los Angeles", "CA")
        sd = geo.city("San Diego", "CA")
        assert 150 < geo.distance_km(la, sd) < 220

    def test_zero_distance(self, geo):
        city = geo.city("Chicago", "IL")
        assert geo.distance_km(city, city) == 0.0

    @given(
        st.floats(min_value=25, max_value=49),
        st.floats(min_value=-124, max_value=-67),
        st.floats(min_value=25, max_value=49),
        st.floats(min_value=-124, max_value=-67),
    )
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        forward = great_circle_km(lat1, lon1, lat2, lon2)
        backward = great_circle_km(lat2, lon2, lat1, lon1)
        assert forward == pytest.approx(backward)
        assert forward >= 0


class TestLookups:
    def test_city_by_name_and_state(self, geo):
        assert geo.city("Portland", "OR").state == "OR"
        assert geo.city("Portland ME", "ME").state == "ME"

    def test_unknown_city_raises(self, geo):
        with pytest.raises(TopologyError):
            geo.city("Atlantis")

    def test_unknown_state_raises(self, geo):
        with pytest.raises(TopologyError):
            geo.cities_in("ZZ")

    def test_cities_sorted_by_weight(self, geo):
        cities = geo.cities_in("CA")
        weights = [c.weight for c in cities]
        assert weights == sorted(weights, reverse=True)

    def test_nearest(self, geo):
        nearest = geo.nearest(32.7, -117.15, 1)[0]
        assert nearest.name == "San Diego"

    def test_every_contiguous_state_has_a_city(self, geo):
        missing = set(STATE_ADJACENCY) - set(geo.states())
        assert not missing


class TestClli:
    def test_paper_codes(self):
        assert clli_city_code("San Diego") == "SNDG"
        assert clli_city_code("Los Angeles") == "LSAN"
        assert clli_city_code("Nashville") == "NSVL"

    def test_synthesized_code_shape(self):
        code = clli_city_code("Tulsa")
        assert len(code) == 4 and code.isupper()

    def test_full_clli(self, geo):
        city = geo.city("San Diego", "CA")
        assert geo.clli(city, 2) == "SNDGCA02"

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            clli_city_code("123")


class TestShippingRoutes:
    def test_simple_route(self, geo):
        assert geo.shipping_route("CA", "WA") in (["CA", "OR", "WA"],)

    def test_same_state(self, geo):
        assert geo.shipping_route("TX", "TX") == ["TX"]

    def test_route_is_connected(self, geo):
        route = geo.shipping_route("WA", "FL")
        for a, b in zip(route, route[1:]):
            assert b in STATE_ADJACENCY[a]

    def test_unknown_state(self, geo):
        with pytest.raises(TopologyError):
            geo.shipping_route("CA", "PR")

    def test_adjacency_is_symmetric(self):
        for state, neighbors in STATE_ADJACENCY.items():
            for neighbor in neighbors:
                assert state in STATE_ADJACENCY[neighbor], (state, neighbor)


class TestScatter:
    def test_scatter_stays_near(self, geo):
        rng = random.Random(1)
        city = geo.city("Denver", "CO")
        for _ in range(30):
            lat, lon = geo.scatter(city, rng, radius_km=15.0)
            assert great_circle_km(city.lat, city.lon, lat, lon) < 25.0

    def test_scatter_deterministic_with_seed(self, geo):
        city = geo.city("Denver", "CO")
        first = geo.scatter(city, random.Random(5))
        second = geo.scatter(city, random.Random(5))
        assert first == second
