"""Columnar corpus core: lossless round-trips, zero-copy slicing, and
the vectorized primitives against their object-graph references."""

from collections import Counter

import numpy as np
import pytest

from repro.corpus import CorpusBuilder, TraceCorpus, adjacent_pair_counts
from repro.corpus.columnar import hop_span_groups, responding_address_ids
from repro.infer.adjacency import FollowupIndex
from repro.io.checkpoint import trace_to_dict
from repro.measure.traceroute import Hop, TraceResult


def rich_traces() -> "list[TraceResult]":
    """A small corpus exercising every optional field and edge shape:
    silent hops, missing rdns/rtt/reply_ttl, retries, an empty trace,
    TTL gaps, duplicate addresses, and both completed flags."""
    return [
        TraceResult(
            "192.0.2.1", "10.0.0.9",
            [
                Hop(1, "10.0.0.1", rdns="a.example.net", rtt_ms=1.5,
                    reply_ttl=63),
                Hop(2, None, attempts=3),
                Hop(3, "10.0.0.2", rtt_ms=2.25),
                Hop(4, "10.0.0.1", reply_ttl=200),
            ],
            completed=True, flow_id=7, vp_name="vp-east",
        ),
        TraceResult("192.0.2.1", "10.0.0.9", [], vp_name="vp-west"),
        TraceResult(
            "192.0.2.2", "10.0.1.1",
            [Hop(2, "10.0.0.2", rdns="b.example.net"), Hop(5, "10.0.1.1")],
            completed=True, flow_id=1, vp_name="vp-east",
        ),
    ]


def _dicts(traces):
    # Hop/TraceResult are dataclasses, but NaN-free dict form compares
    # reliably and pinpoints the diverging field on failure.
    return [trace_to_dict(trace) for trace in traces]


class TestRoundTrip:
    def test_lossless(self):
        traces = rich_traces()
        assert _dicts(TraceCorpus.from_traces(traces).to_traces()) == \
            _dicts(traces)

    def test_empty_corpus(self):
        corpus = TraceCorpus.from_traces([])
        assert len(corpus) == 0
        assert corpus.hop_count == 0
        assert corpus.to_traces() == []
        assert adjacent_pair_counts(corpus) == []
        assert responding_address_ids(corpus).shape == (0,)

    def test_addresses_interned_once(self):
        strings = TraceCorpus.from_traces(rich_traces()).addresses.strings
        assert strings.count("10.0.0.1") == 1
        assert len(strings) == len(set(strings))

    def test_corpus_equality_survives_relift(self):
        # NaN rtt cells must compare equal to themselves (equal_nan).
        corpus = TraceCorpus.from_traces(rich_traces())
        assert corpus == TraceCorpus.from_traces(corpus.to_traces())


class TestZeroCopySlicing:
    def test_slice_shares_buffers_and_tables(self):
        corpus = TraceCorpus.from_traces(rich_traces())
        sliced = corpus.slice_traces(0, 2)
        assert len(sliced) == 2
        for name in ("addr_id", "hop_idx", "rtt", "src_id", "completed"):
            assert np.shares_memory(
                getattr(sliced, name), getattr(corpus, name)
            ), name
        assert sliced.addresses is corpus.addresses
        assert sliced.vps is corpus.vps

    def test_slice_matches_object_slice(self):
        traces = rich_traces()
        corpus = TraceCorpus.from_traces(traces)
        assert _dicts(corpus.slice_traces(1, 3).to_traces()) == \
            _dicts(traces[1:3])

    def test_slice_clamps_bounds(self):
        corpus = TraceCorpus.from_traces(rich_traces())
        assert len(corpus.slice_traces(-5, 99)) == len(corpus)
        assert len(corpus.slice_traces(2, 1)) == 0

    def test_split_covers_every_trace_in_order(self):
        traces = rich_traces()
        shards = TraceCorpus.from_traces(traces).split(2)
        recovered = [t for shard in shards for t in shard.to_traces()]
        assert _dicts(recovered) == _dicts(traces)


class TestCorpusBuilder:
    def test_add_path_matches_object_lift(self):
        chains = [
            ["10.0.0.1", "10.0.0.2"],
            [],
            ["10.0.0.2", "10.0.1.1", "10.0.0.2"],
        ]
        builder = CorpusBuilder()
        for chain in chains:
            builder.add_path(
                "192.0.2.1", chain[-1] if chain else "192.0.2.9", chain
            )
        via_objects = TraceCorpus.from_traces([
            TraceResult(
                "192.0.2.1", chain[-1] if chain else "192.0.2.9",
                [Hop(i + 1, a) for i, a in enumerate(chain)],
            )
            for chain in chains
        ])
        assert builder.build() == via_objects

    def test_len_counts_appended_traces(self):
        builder = CorpusBuilder()
        assert len(builder) == 0
        builder.add_path("s", "d", ["10.0.0.1"])
        builder.add_trace(TraceResult("s", "d", []))
        assert len(builder) == 2


class TestAdjacentPairCounts:
    @staticmethod
    def _reference(traces, exclude):
        counter: Counter = Counter()
        for trace in traces:
            counter.update(trace.adjacent_pairs(exclude_final_echo=exclude))
        return list(counter.items())

    @staticmethod
    def _columnar(corpus, exclude):
        table = corpus.addresses
        return [
            ((table[first], table[second]), count)
            for first, second, count in adjacent_pair_counts(
                corpus, exclude_final_echo=exclude
            )
        ]

    @pytest.mark.parametrize("exclude", [False, True])
    def test_matches_object_reference_in_order(self, exclude):
        traces = rich_traces()
        corpus = TraceCorpus.from_traces(traces)
        assert self._columnar(corpus, exclude) == \
            self._reference(traces, exclude)

    def test_silent_hop_breaks_adjacency(self):
        trace = TraceResult(
            "s", "d", [Hop(1, "10.0.0.1"), Hop(2, None), Hop(3, "10.0.0.2")]
        )
        assert adjacent_pair_counts(TraceCorpus.from_traces([trace])) == []

    def test_final_echo_excluded_only_when_completed(self):
        hops = [Hop(1, "10.0.0.1"), Hop(2, "10.0.0.9")]
        completed = TraceResult("s", "10.0.0.9", hops, completed=True)
        incomplete = TraceResult(
            "s", "10.0.0.9", [Hop(h.index, h.address) for h in hops]
        )
        traces = [completed, incomplete]
        corpus = TraceCorpus.from_traces(traces)
        with_echo = self._columnar(corpus, False)
        without_echo = self._columnar(corpus, True)
        assert with_echo == [(("10.0.0.1", "10.0.0.9"), 2)]
        # Only the incomplete trace's occurrence survives the exclusion.
        assert without_echo == [(("10.0.0.1", "10.0.0.9"), 1)]
        assert without_echo == self._reference(traces, True)

    def test_both_variants_reuse_one_cached_sort(self):
        traces = rich_traces()
        corpus = TraceCorpus.from_traces(traces)
        assert self._columnar(corpus, False) == self._reference(traces, False)
        assert "pair_sort" in corpus._derived
        sort_before = corpus._derived["pair_sort"]
        assert self._columnar(corpus, True) == self._reference(traces, True)
        assert corpus._derived["pair_sort"] is sort_before


class TestDerivedColumns:
    def test_responding_address_ids(self):
        traces = rich_traces()
        corpus = TraceCorpus.from_traces(traces)
        expected = sorted(
            corpus.addresses.get(hop.address)
            for hop in {
                hop.address: hop
                for trace in traces
                for hop in trace.hops
                if hop.address is not None
            }.values()
        )
        assert responding_address_ids(corpus).tolist() == expected

    def test_hop_span_groups_match_followup_index(self):
        traces = rich_traces()
        corpus = TraceCorpus.from_traces(traces)
        addr_ids, trace_ids, earliest, latest = hop_span_groups(corpus)
        spans: "dict[str, dict[int, tuple[int, int]]]" = {}
        for row in range(addr_ids.shape[0]):
            spans.setdefault(corpus.addresses[int(addr_ids[row])], {})[
                int(trace_ids[row])
            ] = (int(earliest[row]), int(latest[row]))
        assert spans == FollowupIndex(traces)._spans

    def test_hop_trace_ids_memoized(self):
        corpus = TraceCorpus.from_traces(rich_traces())
        first = corpus.hop_trace_ids()
        assert corpus.hop_trace_ids() is first
        assert first.tolist() == [0, 0, 0, 0, 2, 2]

    def test_last_hop_rows_flags_empty_traces(self):
        corpus = TraceCorpus.from_traces(rich_traces())
        assert corpus.last_hop_rows().tolist() == [3, 3, 5]
