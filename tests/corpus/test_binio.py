"""On-disk corpus formats: binary/JSON round-trips and the
SchemaError-never-KeyError validation contract on corrupt containers."""

import io
import json

import numpy as np
import pytest

from repro.corpus import (
    CORPUS_KIND,
    CORPUS_SCHEMA_VERSION,
    TraceCorpus,
    corpus_from_json,
    corpus_to_json,
    load_corpus,
    save_corpus,
)
from repro.errors import SchemaError

from test_columnar import rich_traces


@pytest.fixture()
def corpus():
    return TraceCorpus.from_traces(rich_traces())


def _rewrite(src, dst, drop=None, **replace):
    """Copy the npz container, dropping or replacing named arrays."""
    with np.load(src, allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files}
    if drop is not None:
        arrays.pop(drop)
    arrays.update(replace)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    dst.write_bytes(buffer.getvalue())
    return dst


def _header_bytes(header: dict) -> np.ndarray:
    return np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )


class TestBinaryRoundTrip:
    def test_save_load_lossless(self, tmp_path, corpus):
        path = save_corpus(tmp_path / "corpus.npz", corpus)
        assert load_corpus(path) == corpus

    def test_empty_corpus_round_trips(self, tmp_path):
        empty = TraceCorpus.from_traces([])
        path = save_corpus(tmp_path / "empty.npz", empty)
        assert load_corpus(path) == empty

    def test_write_is_atomic(self, tmp_path, corpus):
        save_corpus(tmp_path / "corpus.npz", corpus)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_overwrite_replaces(self, tmp_path, corpus):
        path = tmp_path / "corpus.npz"
        save_corpus(path, TraceCorpus.from_traces([]))
        save_corpus(path, corpus)
        assert len(load_corpus(path)) == len(corpus)


class TestJsonInterchange:
    def test_round_trip(self, corpus):
        assert corpus_from_json(corpus_to_json(corpus)) == corpus

    def test_not_json_is_schema_error(self):
        with pytest.raises(SchemaError):
            corpus_from_json("{not json")

    def test_wrong_kind_is_schema_error(self, corpus):
        payload = json.loads(corpus_to_json(corpus))
        payload["kind"] = "checkpoint"
        with pytest.raises(SchemaError):
            corpus_from_json(json.dumps(payload))

    def test_malformed_trace_item_is_schema_error_not_keyerror(self, corpus):
        payload = json.loads(corpus_to_json(corpus))
        payload["traces"] = [{"src": "192.0.2.1"}]
        with pytest.raises(SchemaError):
            corpus_from_json(json.dumps(payload))


class TestBinaryValidation:
    @pytest.fixture()
    def saved(self, tmp_path, corpus):
        return save_corpus(tmp_path / "corpus.npz", corpus)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SchemaError, match="no corpus file"):
            load_corpus(tmp_path / "absent.npz")

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz container")
        with pytest.raises(SchemaError, match="unreadable"):
            load_corpus(path)

    def test_dropped_array_names_the_path(self, tmp_path, saved):
        broken = _rewrite(saved, tmp_path / "broken.npz", drop="addr_id")
        with pytest.raises(SchemaError, match=r"\$\.addr_id"):
            load_corpus(broken)

    def test_dropped_header(self, tmp_path, saved):
        broken = _rewrite(saved, tmp_path / "broken.npz", drop="header")
        with pytest.raises(SchemaError, match=r"\$\.header"):
            load_corpus(broken)

    def test_wrong_dtype(self, tmp_path, saved, corpus):
        broken = _rewrite(
            saved, tmp_path / "broken.npz",
            addr_id=corpus.addr_id.astype(np.float64),
        )
        with pytest.raises(SchemaError, match="dtype"):
            load_corpus(broken)

    def test_non_1d_array(self, tmp_path, saved, corpus):
        broken = _rewrite(
            saved, tmp_path / "broken.npz",
            rtt=corpus.rtt.reshape(1, -1),
        )
        with pytest.raises(SchemaError, match="1-d"):
            load_corpus(broken)

    def test_decreasing_offsets(self, tmp_path, saved, corpus):
        offsets = corpus.hop_offsets.copy()
        offsets[1], offsets[2] = offsets[2] + 1, offsets[1]
        offsets[1] = offsets[-1]  # keep endpoints plausible
        offsets[2] = 0
        broken = _rewrite(saved, tmp_path / "broken.npz", hop_offsets=offsets)
        with pytest.raises(SchemaError, match="non-decreasing"):
            load_corpus(broken)

    def test_bad_offset_endpoint(self, tmp_path, saved, corpus):
        offsets = corpus.hop_offsets.copy()
        offsets[-1] += 1
        broken = _rewrite(saved, tmp_path / "broken.npz", hop_offsets=offsets)
        with pytest.raises(SchemaError, match="hop_offsets"):
            load_corpus(broken)

    def test_id_out_of_table_range(self, tmp_path, saved, corpus):
        addr = corpus.addr_id.copy()
        addr[0] = len(corpus.addresses) + 5
        broken = _rewrite(saved, tmp_path / "broken.npz", addr_id=addr)
        with pytest.raises(SchemaError, match="out of table range"):
            load_corpus(broken)

    def test_header_count_mismatch(self, tmp_path, saved):
        header = {
            "schema": CORPUS_SCHEMA_VERSION, "kind": CORPUS_KIND,
            "traces": 999, "hops": 999,
            "tables": {"addresses": 0, "hostnames": 0, "vps": 0},
        }
        broken = _rewrite(
            saved, tmp_path / "broken.npz", header=_header_bytes(header)
        )
        with pytest.raises(SchemaError, match="header says"):
            load_corpus(broken)

    def test_wrong_kind(self, tmp_path, saved):
        broken = _rewrite(
            saved, tmp_path / "broken.npz",
            header=_header_bytes({"schema": CORPUS_SCHEMA_VERSION,
                                  "kind": "checkpoint"}),
        )
        with pytest.raises(SchemaError, match="kind"):
            load_corpus(broken)

    def test_unsupported_schema_version(self, tmp_path, saved):
        broken = _rewrite(
            saved, tmp_path / "broken.npz",
            header=_header_bytes({"schema": 99, "kind": CORPUS_KIND}),
        )
        with pytest.raises(SchemaError, match="schema"):
            load_corpus(broken)

    def test_undecodable_string_table(self, tmp_path, saved):
        broken = _rewrite(
            saved, tmp_path / "broken.npz",
            addresses=np.frombuffer(b"\xff\xfe not json", dtype=np.uint8),
        )
        with pytest.raises(SchemaError, match=r"\$\.addresses"):
            load_corpus(broken)

    def test_no_corruption_raises_keyerror(self, tmp_path, saved, corpus):
        """The umbrella contract: every mutation above surfaces as
        SchemaError; spot-check that nothing leaks a KeyError."""
        for drop in ("header", "rtt", "vps", "hop_offsets"):
            broken = _rewrite(saved, tmp_path / f"drop-{drop}.npz", drop=drop)
            try:
                load_corpus(broken)
            except SchemaError:
                pass
