"""Property tests: the vectorized corpus primitives agree with the
object-graph reference on adversarial corpora — silent hops, TTL gaps,
duplicate addresses, and reversed DPR occurrences."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.corpus import TraceCorpus, adjacent_pair_counts
from repro.infer.adjacency import AdjacencyExtractor, FollowupIndex
from repro.infer.ip2co import Ip2CoMapping
from repro.measure.traceroute import Hop, TraceResult
from repro.net.dns import RdnsStore

#: A deliberately tiny alphabet so duplicates, reversed occurrences,
#: and pair collisions are common rather than rare.
ADDRESSES = ("10.0.0.1", "10.0.0.2", "10.0.1.1", "10.0.2.1")

#: Trivial mapping: three COs in one region plus one in another, so
#: classification exercises same-CO, same-region, and cross-region arms.
MAPPING = {
    "10.0.0.1": ("r1", "co-a"),
    "10.0.0.2": ("r1", "co-b"),
    "10.0.1.1": ("r1", "co-c"),
    "10.0.2.1": ("r2", "co-d"),
}


@st.composite
def trace_lists(draw):
    traces = []
    for _ in range(draw(st.integers(0, 5))):
        entries = draw(st.lists(
            st.one_of(st.none(), st.sampled_from(ADDRESSES)),
            min_size=0, max_size=6,
        ))
        hops = []
        index = 0
        for address in entries:
            # Occasional TTL gaps: unresponsive probes that were
            # dropped entirely rather than recorded as silent hops.
            index += draw(st.integers(1, 2))
            hops.append(Hop(index, address))
        traces.append(TraceResult(
            "192.0.2.1",
            draw(st.sampled_from(ADDRESSES)),
            hops,
            completed=draw(st.booleans()),
        ))
    return traces


@given(trace_lists())
def test_pair_counts_match_object_counter(traces):
    corpus = TraceCorpus.from_traces(traces)
    table = corpus.addresses
    for exclude in (False, True):
        reference: Counter = Counter()
        for trace in traces:
            reference.update(
                trace.adjacent_pairs(exclude_final_echo=exclude)
            )
        columnar = [
            ((table[first], table[second]), count)
            for first, second, count in adjacent_pair_counts(
                corpus, exclude_final_echo=exclude
            )
        ]
        # Equality of the *lists* asserts first-occurrence ordering
        # too, not just multiset equality.
        assert columnar == list(reference.items())


@given(trace_lists())
def test_followup_index_matches_reference_scan(traces):
    corpus = TraceCorpus.from_traces(traces)
    from_objects = FollowupIndex(traces)
    from_columns = FollowupIndex.from_columnar(corpus)
    for first in ADDRESSES:
        for second in ADDRESSES:
            expected = AdjacencyExtractor._mpls_separated(
                (first, second), traces
            )
            assert from_objects.separated(first, second) == expected
            assert from_columns.separated(first, second) == expected


@given(trace_lists(), trace_lists())
def test_extract_columnar_matches_extract(traces, followups):
    def extractor():
        return AdjacencyExtractor(
            Ip2CoMapping(mapping=dict(MAPPING)), RdnsStore(), "comcast"
        )

    reference = extractor().extract(traces, followup_traces=followups)
    columnar = extractor().extract_columnar(
        TraceCorpus.from_traces(traces),
        TraceCorpus.from_traces(followups),
    )
    assert columnar.stats == reference.stats
    assert columnar.per_region == reference.per_region
    assert list(columnar.per_region) == list(reference.per_region)
    assert columnar.backbone_pairs == reference.backbone_pairs
    assert columnar.cross_region_pairs == reference.cross_region_pairs
