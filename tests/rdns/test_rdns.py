"""Unit tests for hostname parsing and CLLI handling."""

import pytest

from repro.rdns.clli import Clli, clli_state, parse_clli
from repro.rdns.regexes import CABLE_PATTERNS, HostnameParser


@pytest.fixture(scope="module")
def parser():
    return HostnameParser()


class TestPaperHostnames:
    """The exact hostnames shown in the paper's figures must parse."""

    def test_fig5a_charter_backbone(self, parser):
        parsed = parser.parse("bu-ether15.lsancarc0yw-bcr00.tbone.rr.com")
        assert parsed.isp == "charter" and parsed.role == "backbone"
        assert parsed.co_tag == "lsancarc0yw"

    def test_fig5a_charter_regional(self, parser):
        parsed = parser.parse("agg1.sndhcaax01r.socal.rr.com")
        assert parsed.region == "socal"
        assert parsed.co_tag == "sndhcaax01"
        assert parsed.role == "agg"

    def test_fig5a_charter_edge_letter(self, parser):
        parsed = parser.parse("agg1.sndgcaxk02m.socal.rr.com")
        assert parsed.role == "edge"

    def test_fig5b_comcast_backbone(self, parser):
        parsed = parser.parse("be-1102-cr02.sunnyvale.ca.ibone.comcast.net")
        assert parsed.role == "backbone"
        assert parsed.co_tag == "sunnyvale.ca"

    def test_fig5b_comcast_regional(self, parser):
        parsed = parser.parse("po-1-1-cbr01.troutdale.or.bverton.comcast.net")
        assert parsed.region == "bverton"
        assert parsed.co_tag == "troutdale.or"
        assert parsed.role == "edge"

    def test_fig5b_comcast_agg(self, parser):
        parsed = parser.parse("ae-72-ar01.beaverton.or.bverton.comcast.net")
        assert parsed.role == "agg"

    def test_fig12_att_backbone(self, parser):
        parsed = parser.parse("cr2.sd2ca.ip.att.net")
        assert parsed.isp == "att" and parsed.role == "backbone"
        assert parsed.region == "sd2ca"

    def test_fig12_att_lspgw(self, parser):
        parsed = parser.parse(
            "107-200-91-1.lightspeed.sndgca.sbcglobal.net"
        )
        assert parsed.role == "lspgw" and parsed.region == "sndgca"

    def test_verizon_speedtest(self, parser):
        parsed = parser.parse("cavt.ost.myvzw.com")
        assert parsed.isp == "verizon" and parsed.role == "edge"
        assert parsed.co_tag == "cavt"

    def test_verizon_alter_net(self, parser):
        parsed = parser.parse("0.ae2.br2.lax.alter.net")
        assert parsed.isp == "verizon" and parsed.role == "backbone"


class TestRejects:
    def test_none(self, parser):
        assert parser.parse(None) is None

    def test_empty(self, parser):
        assert parser.parse("") is None

    def test_unrelated(self, parser):
        assert parser.parse("www.example.com") is None

    def test_lookalike_wrong_tld(self, parser):
        assert parser.parse("agg1.sndhcaax01r.socal.rr.org") is None


class TestHelpers:
    def test_regional_co_filters_isp(self, parser):
        name = "ae-1-ar01.denver.co.denver.comcast.net"
        assert parser.regional_co(name, "comcast") == ("denver", "denver.co")
        assert parser.regional_co(name, "charter") is None

    def test_regional_co_excludes_backbone(self, parser):
        name = "be-1102-cr02.sunnyvale.ca.ibone.comcast.net"
        assert parser.regional_co(name, "comcast") is None

    def test_is_backbone(self, parser):
        assert parser.is_backbone("cr1.sd2ca.ip.att.net")
        assert parser.is_backbone("cr1.sd2ca.ip.att.net", isp="att")
        assert not parser.is_backbone("cr1.sd2ca.ip.att.net", isp="comcast")
        assert not parser.is_backbone("agg1.sndhcaax01r.socal.rr.com")

    def test_harvest_patterns(self):
        assert CABLE_PATTERNS["att-lspgw"].search(
            "107-200-91-1.lightspeed.sndgca.sbcglobal.net"
        )
        assert not CABLE_PATTERNS["att-lspgw"].search("cr2.sd2ca.ip.att.net")


class TestClli:
    def test_parse_full(self):
        parsed = parse_clli("SNDGCA02")
        assert parsed == Clli("SNDG", "CA", "02")
        assert parsed.place == "SNDGCA"

    def test_parse_lowercase(self):
        assert parse_clli("sndgca").state == "CA"

    def test_invalid_state_rejected(self):
        assert parse_clli("SNDGXX02") is None

    def test_short_string_rejected(self):
        assert parse_clli("SND") is None

    def test_clli_state_helper(self):
        assert clli_state("NSVLTN") == "TN"
        assert clli_state("garbage!") is None
