"""Unit tests for graph refinement on hand-built region graphs."""

from collections import Counter

import pytest

from repro.infer.aggtype import classify_aggregation, count_types
from repro.infer.refine import RegionRefiner


def _adjacencies(edges):
    counter = Counter()
    for a, b in edges:
        counter[(a, b)] += 3
    return counter


@pytest.fixture()
def refiner():
    return RegionRefiner()


class TestAggIdentification:
    def test_dual_star(self, refiner):
        edges = [("A1", f"E{i}") for i in range(8)]
        edges += [("A2", f"E{i}") for i in range(8)]
        refined = refiner.refine("r", _adjacencies(edges))
        assert refined.agg_cos == {"A1", "A2"}
        assert refined.edge_cos == {f"E{i}" for i in range(8)}

    def test_single_hub_fallback(self, refiner):
        edges = [("HUB", "E1"), ("HUB", "E2"), ("HUB", "E3")]
        refined = refiner.refine("r", _adjacencies(edges))
        assert refined.agg_cos == {"HUB"}


class TestFalseEdgeRemoval:
    def test_stale_edge_between_edges_removed(self, refiner):
        """The 9 -> 12 style edge of Fig 6a disappears."""
        edges = [("A1", f"E{i}") for i in range(6)]
        edges.append(("E2", "E3"))  # stale rDNS artifact
        refined = refiner.refine("r", _adjacencies(edges))
        assert not refined.graph.has_edge("E2", "E3")
        assert refined.stats.removed_edge_edges == 1

    def test_small_aggco_exception_kept(self, refiner):
        """A CO feeding several otherwise-unconnected COs is a small
        AggCO in disguise and keeps its edges (App. B.3)."""
        edges = [("A1", f"E{i}") for i in range(6)]
        edges += [("E0", "X1"), ("E0", "X2")]  # X1/X2 only via E0
        refined = refiner.refine("r", _adjacencies(edges))
        assert refined.graph.has_edge("E0", "X1")
        assert refined.graph.has_edge("E0", "X2")


class TestRingCompletion:
    def test_missing_edge_added(self, refiner):
        """Fig 6's missing AggCO1 -> node16 edge is restored."""
        shared = [f"E{i}" for i in range(8)]
        edges = [("A1", e) for e in shared]
        edges += [("A2", e) for e in shared[:-1]]  # A2 misses E7
        refined = refiner.refine("r", _adjacencies(edges))
        assert refined.graph.has_edge("A2", "E7")
        assert refined.stats.added_ring_edges == 1
        assert refined.graph["A2"]["E7"].get("inferred")

    def test_unrelated_aggs_not_completed(self, refiner):
        """Two AggCOs with disjoint EdgeCO sets are different rings."""
        edges = [("A1", f"L{i}") for i in range(6)]
        edges += [("A2", f"R{i}") for i in range(6)]
        refined = refiner.refine("r", _adjacencies(edges))
        assert refined.stats.added_ring_edges == 0
        assert len(refined.agg_groups) == 2

    def test_overlap_threshold_respected(self, refiner):
        """Below-3/4 overlap must not trigger pairing (App. B.3)."""
        edges = [("A1", f"E{i}") for i in range(8)]
        edges += [("A2", f"E{i}") for i in range(4)]      # 50 % of A1's set
        edges += [("A2", f"X{i}") for i in range(4)]
        refined = refiner.refine("r", _adjacencies(edges))
        assert not refined.graph.has_edge("A1", "X0")


class TestStats:
    def test_fraction_properties(self, refiner):
        edges = [("A1", f"E{i}") for i in range(4)] + [("E0", "E1")]
        refined = refiner.refine("r", _adjacencies(edges))
        stats = refined.stats
        assert stats.initial_edges == 5
        assert 0 <= stats.removed_fraction <= 1
        assert stats.final_edges == stats.initial_edges - stats.removed_edge_edges + stats.added_ring_edges

    def test_empty_stats_safe(self):
        from repro.infer.refine import RefineStats

        stats = RefineStats()
        assert stats.removed_fraction == 0.0
        assert stats.added_fraction == 0.0


class TestAggTypeClassification:
    def _refined(self, refiner, edges):
        return refiner.refine("r", _adjacencies(edges))

    def test_single(self, refiner):
        refined = self._refined(refiner, [("A", f"E{i}") for i in range(5)])
        assert classify_aggregation(refined) == "single"

    def test_two(self, refiner):
        edges = [("A1", f"E{i}") for i in range(5)]
        edges += [("A2", f"E{i}") for i in range(5)]
        assert classify_aggregation(self._refined(refiner, edges)) == "two"

    def test_multi_via_agg_feeding_agg(self, refiner):
        edges = [("TOP1", "SUB1"), ("TOP1", "SUB2"), ("TOP1", "E9"), ("TOP1", "E8")]
        edges += [("SUB1", f"E{i}") for i in range(4)]
        edges += [("SUB2", f"E{i}") for i in range(4)]
        assert classify_aggregation(self._refined(refiner, edges)) == "multi"

    def test_multi_via_many_ring_groups(self, refiner):
        edges = [("A1", f"L{i}") for i in range(5)]
        edges += [("A2", f"L{i}") for i in range(5)]
        edges += [("A3", f"R{i}") for i in range(5)]
        edges += [("A4", f"R{i}") for i in range(5)]
        assert classify_aggregation(self._refined(refiner, edges)) == "multi"

    def test_count_types(self, refiner):
        regions = [
            self._refined(refiner, [("A", "E1"), ("A", "E2"), ("A", "E3")]),
            self._refined(refiner, [("A1", "E1"), ("A1", "E2"), ("A1", "E3"),
                                    ("A2", "E1"), ("A2", "E2"), ("A2", "E3")]),
        ]
        counts = count_types(regions)
        assert counts["single"] == 1 and counts["two"] == 1
