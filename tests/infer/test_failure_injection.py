"""Failure injection: the pipeline degrades gracefully, not wrongly.

The paper stresses that its maps stayed "surprisingly accurate in spite
of considerable noise" (§9).  These tests inject extra measurement
failure — silent routers, lossy replies — into a small region and check
the inference degrades (fewer COs/edges) without inventing structure.
"""

from collections import Counter

import pytest

from repro.infer.adjacency import AdjacencyExtractor
from repro.infer.ip2co import Ip2CoMapper
from repro.infer.refine import RegionRefiner
from repro.measure.traceroute import Tracerouter
from repro.net.router import ReplyPolicy


REGION = "saltlake"


@pytest.fixture()
def small_world():
    """A fresh internet (mutating policies must not touch the session
    fixture shared with other tests)."""
    from repro.topology.internet import SimulatedInternet

    internet = SimulatedInternet(
        seed=23, include_telco=False, include_mobile=False
    )
    fleet = list(internet.build_standard_vps())
    return internet, fleet


def _infer_region(internet, fleet, flows=4):
    isp = internet.comcast
    tracer = Tracerouter(internet.network)
    region = isp.regions[REGION]
    targets = [
        str(iface.address)
        for co in region.cos.values()
        for router in co.routers
        for iface in router.interfaces
    ]
    traces = []
    for vp in fleet[:12]:
        for target in targets:
            trace = tracer.trace(vp.host, target, src_address=vp.src_address)
            if trace.hops:
                traces.append(trace)
    mapper = Ip2CoMapper(internet.network.rdns, isp.name, p2p_prefixlen=30)
    from repro.alias.resolve import AliasSets

    mapping = mapper.build(traces, AliasSets([]))
    extractor = AdjacencyExtractor(mapping, internet.network.rdns, isp.name)
    adjacencies = extractor.extract(traces)
    counter = adjacencies.per_region.get(REGION, Counter())
    if not counter:
        return None
    return RegionRefiner().refine(REGION, counter)


class TestLossyReplies:
    def test_heavy_loss_shrinks_but_does_not_invent(self, small_world):
        internet, fleet = small_world
        clean = _infer_region(internet, fleet)
        assert clean is not None

        # Inject 40 % probe loss on every router in the region.
        for router in internet.comcast.regions[REGION].routers():
            router.policy = ReplyPolicy(respond_prob=0.6)
        lossy = _infer_region(internet, fleet)

        if lossy is None:
            return  # total loss of the region is acceptable degradation
        assert lossy.graph.number_of_nodes() <= clean.graph.number_of_nodes()
        # Whatever survives must be a subset of the clean inference —
        # noise must not create new CO names.
        assert set(lossy.graph.nodes) <= set(clean.graph.nodes)

    def test_silent_aggs_leave_no_region(self, small_world):
        internet, fleet = small_world
        region = internet.comcast.regions[REGION]
        for co in region.agg_cos:
            for router in co.routers:
                router.policy = ReplyPolicy(respond_prob=0.0)
        degraded = _infer_region(internet, fleet)
        # With every AggCO silent, CO adjacencies cannot form: either
        # nothing is inferred or only backbone-to-edge fragments remain.
        if degraded is not None:
            agg_tags = {
                internet.comcast.co_tag(co) for co in region.agg_cos
            }
            assert not (set(degraded.graph.nodes) & agg_tags)
