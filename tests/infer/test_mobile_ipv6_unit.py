"""Unit tests for the IPv6 bit-field analyzer on a synthetic corpus."""

import ipaddress

import pytest

from repro.errors import InferenceError
from repro.infer.mobile_ipv6 import BitFieldReport, MobileIPv6Analyzer, _nibble
from repro.measure.cellular import CellDatabase
from repro.measure.shiptraceroute import ShipCampaignResult, ShipRound
from repro.measure.traceroute import Hop, TraceResult
from repro.topology.mobile import MobileAttachment, MobileRegionSpec


def _round(hour, lat, lon, user_prefix, hops, celldb):
    cell = celldb.serving_cell(lat, lon)
    region = MobileRegionSpec("R", ("San Diego", "CA"), 2, 0)
    attachment = MobileAttachment(
        carrier_name="toy", region=region, pgw_index=0,
        user_prefix=ipaddress.IPv6Network(user_prefix),
        cell_lat=cell.lat, cell_lon=cell.lon,
    )
    trace = TraceResult("src", "203.0.113.1", hops + [
        Hop(len(hops) + 1, "203.0.113.1", None, 50.0, 52)
    ], completed=True)
    return ShipRound(hour, lat, lon, "CA", True, cellid=cell.cellid,
                     attachment=attachment, trace=trace,
                     min_rtt_to_server_ms=50.0)


def _corpus():
    """Two locations; region byte at bits 32-39; pgw nibble at 40-43;
    subscriber bits 44-63 random-ish; one IPv6 router hop."""
    celldb = CellDatabase()
    rounds = []
    subscriber = 0x11111
    for hour in range(8):
        location = (32.7, -117.1) if hour < 4 else (40.7, -74.0)
        region_byte = 0xAA if hour < 4 else 0xBB
        pgw = hour % 2
        subscriber = (subscriber * 29 + hour * 7919) % (1 << 20)
        prefix_int = (
            (0x26000380 << 96)
            | (region_byte << (128 - 40))
            | (pgw << (128 - 44))
            | (subscriber << 64)
        )
        prefix = ipaddress.IPv6Network((prefix_int, 64))
        hop_addr = ipaddress.IPv6Address(
            (0x26000300 << 96) | (region_byte << (128 - 48)) | (pgw << (128 - 52)) | 1
        )
        hops = [Hop(1, str(prefix.network_address + 5), None, 20.0, 64),
                Hop(2, str(hop_addr), None, 25.0, 254)]
        rounds.append(_round(hour, *location, prefix, hops, celldb))
    result = ShipCampaignResult("toy")
    result.rounds = rounds
    return celldb, result


class TestNibbles:
    def test_nibble_extraction(self):
        assert _nibble(0xABCDEF0000000000, 0) == 0xA
        assert _nibble(0xABCDEF0000000000, 5) == 0xF


class TestClassification:
    def test_user_fields(self):
        celldb, result = _corpus()
        report = MobileIPv6Analyzer(celldb).analyze_user_addresses(result)
        assert report.prefix_bits == 32
        assert (32, 40) in report.geo_fields
        assert any(start <= 40 < end for start, end in report.cycling_fields)

    def test_hop_fields(self):
        celldb, result = _corpus()
        report = MobileIPv6Analyzer(celldb).analyze_hop(result, 1)
        assert report is not None
        assert (40, 48) in report.geo_fields  # region byte at bits 40-47

    def test_missing_hop_returns_none(self):
        celldb, result = _corpus()
        assert MobileIPv6Analyzer(celldb).analyze_hop(result, 9) is None

    def test_region_count(self):
        celldb, result = _corpus()
        assert MobileIPv6Analyzer(celldb).count_regions(result) == 2

    def test_pgw_counts(self):
        celldb, result = _corpus()
        counts = MobileIPv6Analyzer(celldb).pgw_counts(result)
        assert set(counts.values()) == {2}

    def test_describe_renders(self):
        celldb, result = _corpus()
        report = MobileIPv6Analyzer(celldb).analyze_user_addresses(result)
        text = "\n".join(report.describe())
        assert "carrier prefix" in text and "geography" in text

    def test_empty_corpus_raises(self):
        result = ShipCampaignResult("toy")
        with pytest.raises(InferenceError):
            MobileIPv6Analyzer().analyze_user_addresses(result)


class TestTopologyClassification:
    def test_multi_provider_detection(self):
        celldb, result = _corpus()
        for round_ in result.rounds[:2]:
            hops = list(round_.trace.hops)
            hops.insert(-1, Hop(9, "fd00::1", "xe-1.cr1.zayo.net", 30.0, 250))
            round_.trace.hops = hops
        for round_ in result.rounds[2:4]:
            hops = list(round_.trace.hops)
            hops.insert(-1, Hop(9, "fd00::2", "xe-1.cr1.lumen.net", 30.0, 250))
            round_.trace.hops = hops
        analyzer = MobileIPv6Analyzer(celldb)
        assert analyzer.classify_topology(result) == "distributed-multi-backbone"

    def test_single_geo_field_is_single_edgeco(self):
        celldb, result = _corpus()
        analyzer = MobileIPv6Analyzer(celldb)
        assert analyzer.classify_topology(result) == "single-edgeco-per-region"
