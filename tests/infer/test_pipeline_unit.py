"""Unit tests for pipeline target selection and VP filtering."""

import ipaddress

import pytest

from repro.errors import MeasurementError
from repro.infer.pipeline import CableInferencePipeline
from repro.measure.vantage import VantagePoint
from repro.net.dns import RdnsStore
from repro.net.network import Network
from repro.net.router import Router


class _FakeIsp:
    name = "comcast"
    p2p_prefixlen = 30

    def __init__(self):
        from repro.net.addresses import Ipv4Allocator

        self.allocator = Ipv4Allocator("24.0.0.0/10")
        self.region_prefixes = {
            "testregion": [ipaddress.ip_network("24.0.0.0/22")],
        }


def _vp(name, address):
    host = Router(f"host-{name}")
    host.add_interface(address, 30)
    return VantagePoint(name, "transit", host, address)


@pytest.fixture()
def pipeline():
    net = Network()
    isp = _FakeIsp()
    external = [_vp("ext1", "4.0.0.2"), _vp("ext2", "4.0.0.6")]
    internal = [_vp(f"int{i}", f"24.1.0.{2 + 4 * i}") for i in range(6)]
    for vp in external + internal:
        net.add_router(vp.host)
    return CableInferencePipeline(net, isp, external + internal, sweep_vps=2)


class TestVpFiltering:
    def test_internal_vps_capped(self, pipeline):
        internal = [vp for vp in pipeline.vps if vp.name.startswith("int")]
        assert len(internal) == 4  # default max_internal_vps

    def test_internal_spread_includes_ends(self, pipeline):
        internal = [vp.name for vp in pipeline.vps if vp.name.startswith("int")]
        assert "int0" in internal and "int5" in internal

    def test_externals_first(self, pipeline):
        assert pipeline.vps[0].name.startswith("ext")

    def test_all_internal_rejected(self):
        net = Network()
        isp = _FakeIsp()
        vps = [_vp("int0", "24.1.0.2")]
        net.add_router(vps[0].host)
        with pytest.raises(MeasurementError):
            CableInferencePipeline(net, isp, vps)

    def test_no_vps_rejected(self):
        with pytest.raises(MeasurementError):
            CableInferencePipeline(Network(), _FakeIsp(), [])


class TestTargets:
    def test_slash24_targets_one_per_24(self, pipeline):
        targets = pipeline.slash24_targets()
        assert len(targets) == 4  # a /22 holds four /24s
        assert targets[0] == "24.0.0.1"

    def test_rdns_targets_filtered_by_isp(self, pipeline):
        store = pipeline.network.rdns
        store.set("24.0.1.1", "ae-1-ar01.denver.co.testregion.comcast.net")
        store.set("72.0.1.1", "agg1.sndgcaaa01r.socal.rr.com")  # charter
        store.set("24.0.1.2", "be-1-cr01.denver.co.ibone.comcast.net")  # backbone
        assert pipeline.rdns_targets() == ["24.0.1.1"]
