"""Table 4 accounting: exact row-by-row counts on a hand-built corpus.

Regression coverage for the pruning-accounting bugs:

* the Single row's IP column counting CO pairs instead of the
  contributing IP pairs;
* ``initial_co``/``backbone_co`` derived from ad-hoc set sums instead
  of one explicit CO-pair universe;
* ``_mpls_separated`` trusting ``addresses.index`` (first occurrence)
  and ignoring hop order, so reversed or duplicate-hop DPR traces
  mis-classified pairs;
* ``_backbone_tag`` accepting any ISP *prefix* (a parsed ``"com"``
  claiming ``"comcast"`` backbone adjacencies).
"""

import pytest

from repro.infer.adjacency import AdjacencyExtractor, FollowupIndex
from repro.infer.ip2co import Ip2CoMapping
from repro.measure.traceroute import Hop, TraceResult
from repro.net.dns import RdnsStore


def _trace(addresses):
    hops = [Hop(i + 1, addr) for i, addr in enumerate(addresses)]
    return TraceResult("192.0.2.1", addresses[-1], hops)


AGG1, AGG2 = "10.0.0.1", "10.0.0.2"
E1, E2, OTHER = "10.0.1.1", "10.0.2.1", "10.0.3.1"
REMOTE = "10.2.0.1"
BACKBONE = "4.4.4.4"
PREFIX_TRAP = "5.5.5.5"  # rDNS says isp "com", not "comcast"


@pytest.fixture()
def rdns():
    store = RdnsStore()
    store.set(BACKBONE, "be-1-cr01.denver.co.ibone.comcast.net")
    store.set(PREFIX_TRAP, "be-1-cr01.chicago.il.ibone.com.net")
    return store


@pytest.fixture()
def mapping():
    return Ip2CoMapping(mapping={
        AGG1: ("denver", "agg"),
        AGG2: ("denver", "agg"),
        E1: ("denver", "e1"),
        E2: ("denver", "e2"),
        OTHER: ("denver", "o"),
        REMOTE: ("seattle", "rem"),
    })


@pytest.fixture()
def corpus():
    """One IP pair per Table 4 row, plus the ISP-prefix trap."""
    traces = (
        [_trace([BACKBONE, AGG1])] * 2        # backbone row
        + [_trace([PREFIX_TRAP, E1])] * 2     # prefix ISP: must NOT be backbone
        + [_trace([REMOTE, E1])] * 3          # cross-region row
        + [_trace([AGG1, E2])] * 3            # MPLS row (separated below)
        + [_trace([AGG1, E1])] * 2            # kept: 2 obs from this IP pair
        + [_trace([AGG2, E1])]                # kept: +1 obs, second IP pair
        + [_trace([E1, OTHER])]               # single row
    )
    followups = [
        _trace([AGG1, OTHER, E2]),   # separates (AGG1, E2)
        _trace([E1, OTHER, AGG1]),   # reversed: must NOT separate (AGG1, E1)
        _trace([AGG1, E1, AGG1]),    # duplicate: still immediate, keep
    ]
    return traces, followups


class TestTable4Exact:
    @pytest.fixture(params=[True, False], ids=["indexed", "reference"])
    def extractor(self, request, mapping, rdns):
        return AdjacencyExtractor(
            mapping, rdns, "comcast", use_followup_index=request.param
        )

    def test_every_row_exact(self, extractor, corpus):
        traces, followups = corpus
        adjacencies = extractor.extract(traces, followup_traces=followups)
        stats = adjacencies.stats
        # 7 distinct IP pairs; the prefix-trap pair maps to no CO on
        # either side, so the CO universe has 5 members.
        assert stats.initial_ip == 7
        assert stats.initial_co == 5
        assert (stats.mpls_ip, stats.mpls_co) == (1, 1)
        assert (stats.backbone_ip, stats.backbone_co) == (1, 1)
        assert (stats.cross_region_ip, stats.cross_region_co) == (1, 1)
        assert (stats.single_ip, stats.single_co) == (1, 1)

    def test_survivors_and_set_asides(self, extractor, corpus):
        traces, followups = corpus
        adjacencies = extractor.extract(traces, followup_traces=followups)
        # The kept pair aggregates both contributing IP pairs' counts.
        assert adjacencies.per_region == {"denver": {("agg", "e1"): 3}}
        assert adjacencies.backbone_pairs == {
            ("denver.co", "denver", "agg"): 2
        }
        assert adjacencies.cross_region_pairs == {
            ("seattle", "rem", "denver", "e1"): 3
        }

    def test_rows_render_from_one_universe(self, extractor, corpus):
        traces, followups = corpus
        stats = extractor.extract(traces, followup_traces=followups).stats
        rows = dict(
            (label, (ip, co)) for label, ip, co in stats.as_rows()
        )
        assert rows["Initial"] == ("7", "5")
        assert rows["Single"] == ("14.29%", "20.00%")


class TestSingleRowIpColumn:
    def test_counts_contributing_ip_pairs(self, mapping, rdns):
        # Two separate single CO pairs, each fed by one IP pair: the IP
        # column tracks the contributing IP pairs of the pruned CO
        # pairs, not an unrelated CO-pair tally.
        extractor = AdjacencyExtractor(mapping, rdns, "comcast")
        traces = [_trace([E1, OTHER]), _trace([E2, OTHER])]
        stats = extractor.extract(traces).stats
        assert stats.single_co == 2
        assert stats.single_ip == 2
        assert stats.initial_co == 2


class TestDprOrderRegressions:
    """Shapes the first-occurrence scan mis-classified."""

    def _separated(self, followups, pair=(AGG1, E2)):
        reference = AdjacencyExtractor._mpls_separated(pair, followups)
        indexed = FollowupIndex(followups).separated(*pair)
        assert reference == indexed  # the index is the scan, made fast
        return indexed

    def test_second_seen_before_first_then_again(self):
        # [second, first, x, second]: index() pinned second to position
        # 0 and concluded "not separated"; the later occurrence at
        # position 3 is what matters.
        assert self._separated([_trace([E2, AGG1, OTHER, E2])])

    def test_duplicate_second_after_adjacent_start(self):
        # [first, second, y, second]: the adjacent prefix hid the
        # second occurrence two hops later.
        assert self._separated([_trace([AGG1, E2, OTHER, E2])])

    def test_reversed_with_gap_does_not_separate(self):
        # second ... first with no later second: no evidence of an
        # interior hop in path order.
        assert not self._separated([_trace([E2, OTHER, AGG1])])

    def test_adjacent_duplicate_first_does_not_separate(self):
        # [first, second, first]: the pair is genuinely immediate.
        assert not self._separated([_trace([AGG1, E2, AGG1])])

    def test_index_equivalent_to_reference_on_all_small_shapes(self):
        # Exhaustive 4-hop corpora over a 3-address alphabet: the
        # positional index and the reference scan must always agree.
        import itertools

        alphabet = (AGG1, E2, OTHER)
        for shape in itertools.product(alphabet, repeat=4):
            followups = [_trace(list(shape))]
            self._separated(followups)


class TestSilentHopSeparation:
    """Spacing is measured in hop-index (TTL) space: ``A, *, B``
    separates even though the interior hop never responded.  A
    position-based scan over ``responsive_addresses()`` compressed the
    silent hop out and concluded "immediately adjacent"."""

    def _all_agree(self, followup, pair=(AGG1, E2)):
        from repro.corpus import TraceCorpus

        followups = [followup]
        reference = AdjacencyExtractor._mpls_separated(pair, followups)
        indexed = FollowupIndex(followups).separated(*pair)
        columnar = FollowupIndex.from_columnar(
            TraceCorpus.from_traces(followups)
        ).separated(*pair)
        assert reference == indexed == columnar
        return reference

    def test_silent_interior_hop_separates(self):
        followup = TraceResult(
            "192.0.2.1", E2,
            [Hop(1, AGG1), Hop(2, None), Hop(3, E2)],
        )
        assert self._all_agree(followup)

    def test_ttl_gap_without_recorded_hop_separates(self):
        # Same evidence, thinner record: the unresponsive probe was
        # dropped entirely, leaving a gap in the hop indices.
        followup = TraceResult("192.0.2.1", E2, [Hop(1, AGG1), Hop(3, E2)])
        assert self._all_agree(followup)

    def test_consecutive_indices_do_not_separate(self):
        followup = TraceResult("192.0.2.1", E2, [Hop(1, AGG1), Hop(2, E2)])
        assert not self._all_agree(followup)

    def test_extract_prunes_pair_revealed_by_silent_hop(self, mapping, rdns):
        extractor = AdjacencyExtractor(mapping, rdns, "comcast")
        followup = TraceResult(
            "192.0.2.1", E2, [Hop(1, AGG1), Hop(2, None), Hop(3, E2)],
        )
        result = extractor.extract(
            [_trace([AGG1, E2])] * 2, followup_traces=[followup]
        )
        assert result.stats.mpls_ip == 1
        assert all(
            (AGG1, E2) not in counts for counts in result.per_region.values()
        )


class TestZeroDenominatorRows:
    """Percentage rows render "0.00%" — not a ZeroDivisionError, not
    "0%" — when the denominator corpus is empty."""

    def test_adjacency_rows_on_empty_corpus(self, mapping, rdns):
        stats = AdjacencyExtractor(mapping, rdns, "comcast").extract([]).stats
        rows = stats.as_rows()
        assert rows[0] == ("Initial", "0", "0")
        assert rows[1:] == [
            (label, "0.00%", "0.00%")
            for label in ("MPLS", "Backbone", "Cross-Region", "Single")
        ]

    def test_ip2co_rows_on_empty_corpus(self):
        from repro.alias.resolve import AliasSets
        from repro.infer.ip2co import Ip2CoMapper

        mapping = Ip2CoMapper(RdnsStore(), "comcast").build([], AliasSets([]))
        rows = dict(mapping.stats.as_rows())
        assert rows["Initial"] == "0"
        for label in ("Alias changed", "Alias added", "Alias removed",
                      "P2P changed", "P2P added"):
            assert rows[label] == "0.00%"


class TestBackboneIspMatching:
    def test_prefix_isp_rejected(self, mapping, rdns):
        extractor = AdjacencyExtractor(mapping, rdns, "comcast")
        stats = extractor.extract([_trace([PREFIX_TRAP, E1])] * 2).stats
        assert stats.backbone_ip == 0
        # The pair is unmapped on the trap side, so it leaves no
        # universe member at all — it must not be misrouted into the
        # backbone set-aside.
        assert stats.initial_co == 0

    def test_declared_alias_accepted(self, mapping, rdns):
        rdns.set("6.6.6.6", "be-1-cr01.reno.nv.ibone.comcastbiz.net")
        extractor = AdjacencyExtractor(
            mapping, rdns, "comcast", isp_aliases=("comcastbiz",)
        )
        adjacencies = extractor.extract([_trace(["6.6.6.6", AGG1])] * 2)
        assert adjacencies.stats.backbone_ip == 1
        assert adjacencies.backbone_pairs == {
            ("reno.nv", "denver", "agg"): 2
        }

    def test_exact_isp_still_accepted(self, mapping, rdns):
        extractor = AdjacencyExtractor(mapping, rdns, "comcast")
        adjacencies = extractor.extract([_trace([BACKBONE, AGG1])] * 2)
        assert adjacencies.stats.backbone_ip == 1
