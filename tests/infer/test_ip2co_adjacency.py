"""Unit tests for IP→CO mapping and adjacency pruning on synthetic
corpora (no simulated internet needed)."""

from collections import Counter

import pytest

from repro.alias.resolve import AliasSets
from repro.infer.adjacency import AdjacencyExtractor
from repro.infer.entries import EntryInferrer
from repro.infer.ip2co import Ip2CoMapper, Ip2CoMapping
from repro.measure.traceroute import Hop, TraceResult
from repro.net.dns import RdnsStore


def _trace(addresses, completed=True, with_names=None):
    hops = [
        Hop(i + 1, addr, (with_names or {}).get(addr))
        for i, addr in enumerate(addresses)
    ]
    return TraceResult("192.0.2.1", addresses[-1] or "0.0.0.0",
                       hops, completed=completed)


def _comcast_name(co, region="denver"):
    return f"ae-1-ar01.{co}.co.{region}.comcast.net"


@pytest.fixture()
def rdns():
    store = RdnsStore()
    # Two COs in 'denver': aggco (10.0.0.x) and edgeco (10.0.1.x).
    for addr in ("10.0.0.1", "10.0.0.5"):
        store.set(addr, _comcast_name("aggco"))
    store.set("10.0.1.2", _comcast_name("edgeco"))
    return store


class TestIp2CoStages:
    def test_initial_mapping_from_rdns(self, rdns):
        mapper = Ip2CoMapper(rdns, "comcast")
        traces = [_trace(["10.0.0.1", "10.0.1.2"])]
        mapping = mapper.build(traces, AliasSets([]))
        assert mapping.co_of("10.0.0.1") == ("denver", "aggco.co")
        assert mapping.co_of("10.0.1.2") == ("denver", "edgeco.co")
        assert mapping.stats.initial == 2

    def test_alias_majority_fills_unnamed(self, rdns):
        mapper = Ip2CoMapper(rdns, "comcast")
        traces = [_trace(["10.0.0.1", "10.0.1.2"])]
        aliases = AliasSets([{"10.0.0.1", "10.0.0.5", "10.0.0.9"}])
        mapping = mapper.build(traces, aliases)
        assert mapping.co_of("10.0.0.9") == ("denver", "aggco.co")
        assert mapping.stats.alias_added >= 1

    def test_alias_majority_corrects_stale(self, rdns):
        rdns.set_stale("10.0.0.9", _comcast_name("wrongco"))
        mapper = Ip2CoMapper(rdns, "comcast")
        traces = [_trace(["10.0.0.1", "10.0.0.9"])]
        aliases = AliasSets([{"10.0.0.1", "10.0.0.5", "10.0.0.9"}])
        mapping = mapper.build(traces, aliases)
        assert mapping.co_of("10.0.0.9") == ("denver", "aggco.co")
        assert mapping.stats.alias_changed == 1

    def test_alias_tie_removes_mapping(self, rdns):
        rdns.set("10.0.2.1", _comcast_name("otherco"))
        mapper = Ip2CoMapper(rdns, "comcast")
        traces = [_trace(["10.0.0.1", "10.0.2.1"])]
        aliases = AliasSets([{"10.0.0.1", "10.0.2.1"}])
        mapping = mapper.build(traces, aliases)
        assert mapping.co_of("10.0.0.1") is None
        assert mapping.co_of("10.0.2.1") is None
        assert mapping.stats.alias_removed == 2

    def test_p2p_vote_fills_previous_hop(self, rdns):
        """Fig 19: x unnamed; the peers of the next hops map to the CO."""
        # y=10.0.3.2 (peer 10.0.3.1 named aggco); x = 10.9.9.9 unnamed.
        rdns.set("10.0.3.1", _comcast_name("aggco"))
        mapper = Ip2CoMapper(rdns, "comcast")
        traces = [
            _trace(["10.9.9.9", "10.0.3.2", "10.0.1.2"]),
            _trace(["10.9.9.9", "10.0.3.2", "10.0.1.2"]),
        ]
        mapping = mapper.build(traces, AliasSets([]))
        assert mapping.co_of("10.9.9.9") == ("denver", "aggco.co")
        assert mapping.stats.p2p_added == 1

    def test_p2p_vote_ignores_final_echo(self, rdns):
        """An echo reply carries the probed address; it must not vote."""
        rdns.set("10.0.3.1", _comcast_name("aggco"))
        mapper = Ip2CoMapper(rdns, "comcast")
        # Completed trace whose final hop is 10.0.3.2: peer(10.0.3.2)
        # would wrongly place the previous hop in aggco.
        traces = [_trace(["10.9.9.9", "10.0.3.2"], completed=True)] * 2
        mapping = mapper.build(traces, AliasSets([]))
        assert mapping.co_of("10.9.9.9") is None

    def test_stats_rows_render(self, rdns):
        mapper = Ip2CoMapper(rdns, "comcast")
        mapping = mapper.build([_trace(["10.0.0.1"])], AliasSets([]))
        rows = mapping.stats.as_rows()
        assert rows[0] == ("Initial", "1")
        assert any("%" in value for _label, value in rows[1:4])


class TestAdjacencyPruning:
    def _mapping(self):
        return Ip2CoMapping(mapping={
            "10.0.0.1": ("denver", "aggco.co"),
            "10.0.1.2": ("denver", "edgeco.co"),
            "10.0.2.1": ("denver", "otherco.co"),
            "10.2.0.1": ("seattle", "remote.wa"),
        })

    def test_basic_extraction(self, rdns):
        extractor = AdjacencyExtractor(self._mapping(), rdns, "comcast")
        traces = [_trace(["10.0.0.1", "10.0.1.2"])] * 2
        adjacencies = extractor.extract(traces)
        assert adjacencies.per_region["denver"][("aggco.co", "edgeco.co")] == 2

    def test_single_observation_pruned(self, rdns):
        extractor = AdjacencyExtractor(self._mapping(), rdns, "comcast")
        adjacencies = extractor.extract([_trace(["10.0.0.1", "10.0.1.2"])])
        assert "denver" not in adjacencies.per_region
        assert adjacencies.stats.single_co == 1

    def test_cross_region_pruned(self, rdns):
        extractor = AdjacencyExtractor(self._mapping(), rdns, "comcast")
        traces = [_trace(["10.2.0.1", "10.0.1.2"])] * 3
        adjacencies = extractor.extract(traces)
        assert not adjacencies.per_region
        assert adjacencies.stats.cross_region_co == 1

    def test_backbone_pairs_set_aside(self, rdns):
        rdns.set("4.4.4.4", "be-1-cr01.denver.co.ibone.comcast.net")
        extractor = AdjacencyExtractor(self._mapping(), rdns, "comcast")
        traces = [_trace(["4.4.4.4", "10.0.0.1", "10.0.1.2"])] * 2
        adjacencies = extractor.extract(traces)
        assert adjacencies.backbone_pairs[("denver.co", "denver", "aggco.co")] == 2
        assert adjacencies.stats.backbone_co == 1

    def test_mpls_pair_pruned_with_followups(self, rdns):
        extractor = AdjacencyExtractor(self._mapping(), rdns, "comcast")
        traces = [_trace(["10.0.0.1", "10.0.1.2"])] * 3
        # A follow-up to the egress reveals an interior hop between them.
        followups = [_trace(["10.0.0.1", "10.0.2.1", "10.0.1.2"])]
        adjacencies = extractor.extract(traces, followup_traces=followups)
        assert ("aggco.co", "edgeco.co") not in adjacencies.per_region.get(
            "denver", {}
        )
        assert adjacencies.stats.mpls_co == 1

    def test_same_co_hops_ignored(self, rdns):
        mapping = Ip2CoMapping(mapping={
            "10.0.0.1": ("denver", "aggco.co"),
            "10.0.0.5": ("denver", "aggco.co"),
        })
        extractor = AdjacencyExtractor(mapping, rdns, "comcast")
        adjacencies = extractor.extract([_trace(["10.0.0.1", "10.0.0.5"])] * 2)
        assert not adjacencies.per_region


class TestEntryInference:
    def test_backbone_entries(self, rdns):
        mapping = Ip2CoMapping(mapping={})
        from repro.infer.adjacency import RegionAdjacencies

        adjacencies = RegionAdjacencies()
        adjacencies.backbone_pairs[("denver.co", "denver", "agg1")] = 4
        adjacencies.backbone_pairs[("dallas.tx", "denver", "agg1")] = 4
        entries = EntryInferrer(mapping).backbone_entries(adjacencies)
        assert len(entries) == 2
        assert EntryInferrer.backbone_cos_per_region(entries) == {"denver": 2}

    def test_triplet_rule_requires_onward_co(self):
        mapping = Ip2CoMapping(mapping={
            "10.0.0.1": ("regionA", "a1"),
            "10.1.0.1": ("regionB", "b1"),
            "10.1.0.5": ("regionB", "b2"),
        })
        inferrer = EntryInferrer(mapping)
        good = [_trace(["10.0.0.1", "10.1.0.1", "10.1.0.5"])]
        entries = inferrer.inter_region_entries(good)
        assert len(entries) == 1
        entry = entries[0]
        assert (entry.outside_region, entry.region) == ("regionA", "regionB")
        assert not entry.is_backbone

    def test_dead_end_rejected(self):
        mapping = Ip2CoMapping(mapping={
            "10.0.0.1": ("regionA", "a1"),
            "10.1.0.1": ("regionB", "b1"),
        })
        inferrer = EntryInferrer(mapping)
        entries = inferrer.inter_region_entries(
            [_trace(["10.0.0.1", "10.1.0.1"])]
        )
        assert entries == []
