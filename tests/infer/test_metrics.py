"""Unit tests for ground-truth scoring."""

from collections import Counter

import pytest

from repro.infer.metrics import (
    edge_to_agg_ratio,
    score_region,
    single_upstream_fraction,
)
from repro.infer.refine import RegionRefiner
from repro.topology.co import CentralOffice, CoKind, Region
from repro.topology.geography import City


def _truth_region():
    region = Region("r", "isp")
    city = City("Testville", "CA", 33.0, -117.0)
    agg = region.add_co(CentralOffice("AGG", CoKind.AGG, city, "AGG"))
    edges = [
        region.add_co(CentralOffice(f"E{i}", CoKind.EDGE, city, f"E{i}"))
        for i in range(3)
    ]
    for edge in edges:
        region.add_edge(agg, edge)
    return region


def _refined(pairs):
    counter = Counter()
    for a, b in pairs:
        counter[(a, b)] += 3
    return RegionRefiner().refine("r", counter)


TAGS = {"AGG": "agg.ca", "E0": "e0.ca", "E1": "e1.ca", "E2": "e2.ca"}


class TestScoreRegion:
    def test_perfect_recovery(self):
        truth = _truth_region()
        inferred = _refined([
            ("agg.ca", "e0.ca"), ("agg.ca", "e1.ca"), ("agg.ca", "e2.ca"),
        ])
        score = score_region(inferred, truth, TAGS)
        assert score.edge_precision == 1.0
        assert score.edge_recall == 1.0
        assert score.edge_f1 == 1.0
        assert score.co_recall == 1.0

    def test_missing_edge_lowers_recall(self):
        truth = _truth_region()
        inferred = _refined([("agg.ca", "e0.ca"), ("agg.ca", "e1.ca")])
        score = score_region(inferred, truth, TAGS)
        assert score.edge_recall == pytest.approx(2 / 3)
        assert score.edge_precision == 1.0

    def test_false_edge_lowers_precision(self):
        truth = _truth_region()
        inferred = _refined([
            ("agg.ca", "e0.ca"), ("agg.ca", "e1.ca"), ("agg.ca", "e2.ca"),
            ("agg.ca", "ghost.ca"),
        ])
        score = score_region(inferred, truth, TAGS)
        assert score.edge_precision == pytest.approx(3 / 4)

    def test_empty_inference(self):
        import networkx as nx

        from repro.infer.refine import RefinedRegion, RefineStats

        truth = _truth_region()
        empty = RefinedRegion("r", nx.DiGraph(), set(), set(), [], RefineStats())
        score = score_region(empty, truth, TAGS)
        assert score.edge_recall == 0.0
        assert score.edge_precision == 1.0  # vacuous
        assert score.edge_f1 == 0.0


class TestAggregateMetrics:
    def test_single_upstream(self):
        refiner = RegionRefiner(complete_rings=False)
        counter = Counter()
        for edge in ("E0", "E1", "E2"):
            counter[("A1", edge)] = 3
            counter[("A2", edge)] = 3
        counter[("A1", "E3")] = 3  # single-homed EdgeCO
        region = refiner.refine("r", counter)
        # E0-E2 dual-homed, E3 single: 25 %.
        assert single_upstream_fraction([region]) == pytest.approx(0.25)

    def test_single_upstream_exclude(self):
        region = _refined([("A1", "E0")])
        assert single_upstream_fraction([region], exclude={"r"}) == 0.0

    def test_edge_to_agg_ratio_definition(self):
        """Any CO with an outgoing edge counts as an AggCO (§5.3)."""
        region = _refined([
            ("A1", "E0"), ("A1", "E1"), ("A1", "E2"), ("A1", "E3"),
        ])
        assert edge_to_agg_ratio([region]) == pytest.approx(4.0)

    def test_ratio_empty(self):
        import networkx as nx

        from repro.infer.refine import RefinedRegion, RefineStats

        empty = RefinedRegion("r", nx.DiGraph(), set(), set(), [], RefineStats())
        assert edge_to_agg_ratio([empty]) == 0.0
