"""Property-based tests of the refinement invariants (hypothesis)."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.infer.refine import RegionRefiner


@st.composite
def region_adjacencies(draw):
    """Random dual-star-ish regions with noise edges."""
    n_aggs = draw(st.integers(min_value=1, max_value=3))
    n_edges = draw(st.integers(min_value=3, max_value=12))
    counter = Counter()
    aggs = [f"A{i}" for i in range(n_aggs)]
    edges = [f"E{i}" for i in range(n_edges)]
    for edge in edges:
        homes = draw(st.integers(min_value=1, max_value=n_aggs))
        for agg in aggs[:homes]:
            counter[(agg, edge)] = draw(st.integers(min_value=2, max_value=9))
    # Optional noise edges between EdgeCOs.
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        a = draw(st.sampled_from(edges))
        b = draw(st.sampled_from(edges))
        if a != b:
            counter[(a, b)] = draw(st.integers(min_value=2, max_value=5))
    return counter


@settings(max_examples=60, deadline=None)
@given(region_adjacencies())
def test_refinement_invariants(adjacencies):
    refined = RegionRefiner().refine("prop", Counter(adjacencies))
    graph = refined.graph
    # 1. Roles partition the nodes.
    assert refined.agg_cos | refined.edge_cos == set(graph.nodes)
    assert not (refined.agg_cos & refined.edge_cos)
    # 2. Every ring group is a subset of the AggCO set.
    for group in refined.agg_groups:
        assert group <= refined.agg_cos
    # 3. Ring completion: within a multi-member group, all members have
    #    identical non-agg successor sets.
    for group in refined.agg_groups:
        if len(group) < 2:
            continue
        successor_sets = [
            {d for d in graph.successors(agg) if d not in refined.agg_cos}
            for agg in sorted(group)
        ]
        assert all(s == successor_sets[0] for s in successor_sets)
    # 4. Stats arithmetic holds.
    stats = refined.stats
    assert stats.final_edges == (
        stats.initial_edges - stats.removed_edge_edges + stats.added_ring_edges
    )
    # 5. Surviving EdgeCO->EdgeCO edges only via the small-AggCO rule:
    #    their source must feed >= 2 otherwise-unreachable COs.
    agg_connected = {
        node for node in graph.nodes
        if any(p in refined.agg_cos for p in graph.predecessors(node))
    }
    for a, b in graph.edges:
        if a in refined.agg_cos:
            continue
        orphans = [
            d for d in graph.successors(a)
            if d not in refined.agg_cos and d not in agg_connected
        ]
        assert len(orphans) >= 2, (a, b)


@settings(max_examples=30, deadline=None)
@given(region_adjacencies())
def test_refinement_idempotent_on_its_own_output(adjacencies):
    """Refining a refined graph must not change its structure."""
    refiner = RegionRefiner()
    first = refiner.refine("prop", Counter(adjacencies))
    second_input = Counter()
    for a, b, data in first.graph.edges(data=True):
        second_input[(a, b)] = max(2, int(data.get("weight") or 2))
    second = refiner.refine("prop", second_input)
    assert set(second.graph.edges) == set(first.graph.edges)
    assert second.agg_cos == first.agg_cos
