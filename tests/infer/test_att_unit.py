"""Unit tests for the AT&T pipeline's trace segmentation and prefix
discovery on synthetic traces (no simulated internet)."""

import pytest

from repro.errors import InferenceError, MeasurementError
from repro.infer.att import AttInferencePipeline
from repro.measure.traceroute import Hop, TraceResult
from repro.measure.vantage import VantagePoint
from repro.net.dns import RdnsStore
from repro.net.network import Network
from repro.net.router import Router


def _lspgw_name(addr, region):
    return f"{addr.replace('.', '-')}.lightspeed.{region}.sbcglobal.net"


@pytest.fixture()
def pipeline():
    net = Network()
    host = net.add_router(Router("vp-host"))
    host.add_interface("107.200.0.130", 30)
    net._addr_owner["107.200.0.130"] = host.interfaces[0]
    vp = VantagePoint("vp", "ark", host, "107.200.0.130")
    return AttInferencePipeline(net, [vp]), net


def _trace(rows, completed=True):
    hops = [Hop(i + 1, addr, name) for i, (addr, name) in enumerate(rows)]
    return TraceResult("107.200.0.130", rows[-1][0], hops, completed=completed)


class TestHarvest:
    def test_needs_vps(self):
        with pytest.raises(MeasurementError):
            AttInferencePipeline(Network(), [])

    def test_harvest_groups_by_region(self, pipeline):
        pipe, net = pipeline
        net.rdns.set("107.200.0.1", _lspgw_name("107.200.0.1", "sndgca"))
        net.rdns.set("107.201.0.1", _lspgw_name("107.201.0.1", "nsvltn"))
        net.rdns.set("4.4.4.4", "cr1.sd2ca.ip.att.net")  # not a lspgw
        harvested = pipe.harvest_lspgw_targets()
        assert harvested == {
            "sndgca": ["107.200.0.1"],
            "nsvltn": ["107.201.0.1"],
        }

    def test_unknown_region_raises(self, pipeline):
        pipe, _net = pipeline
        with pytest.raises(InferenceError):
            pipe.run_region("nowhere")


class TestSegmentation:
    def test_intra_region_trace(self, pipeline):
        pipe, _net = pipeline
        trace = _trace([
            ("107.200.0.1", _lspgw_name("107.200.0.1", "sndgca")),
            ("71.128.0.10", None),
            ("107.200.1.1", _lspgw_name("107.200.1.1", "sndgca")),
        ])
        segments = pipe._segment_regions(trace)
        assert segments[1] == ("71.128.0.10", "sndgca")

    def test_inter_region_trace_split_at_backbone(self, pipeline):
        pipe, _net = pipeline
        trace = _trace([
            ("107.201.0.1", _lspgw_name("107.201.0.1", "nsvltn")),
            ("71.129.0.10", None),                      # VP-side router
            ("12.0.0.1", "cr1.nv2tn.ip.att.net"),       # backbone
            ("12.0.1.1", "cr1.sd2ca.ip.att.net"),       # backbone
            ("71.128.0.10", None),                      # target-side router
            ("107.200.0.1", _lspgw_name("107.200.0.1", "sndgca")),
        ])
        segments = dict(pipe._segment_regions(trace))
        assert segments["71.129.0.10"] == "nsvltn"
        assert segments["71.128.0.10"] == "sndgca"
        assert segments["12.0.0.1"] == ""

    def test_prefix_discovery_filters_by_region(self, pipeline):
        pipe, _net = pipeline
        lspgws = ["107.200.0.1", "107.200.1.1"]
        traces = [
            _trace([
                ("107.201.0.1", _lspgw_name("107.201.0.1", "nsvltn")),
                ("71.129.0.10", None),
                ("12.0.1.1", "cr1.sd2ca.ip.att.net"),
                ("71.128.0.10", None),
                ("107.200.0.1", _lspgw_name("107.200.0.1", "sndgca")),
            ])
        ] * 2
        prefixes = pipe.discover_router_prefixes(traces, lspgws, "sndgca")
        assert prefixes == {"71.128.0.0/24"}

    def test_lspgw_slash24s_excluded(self, pipeline):
        pipe, _net = pipeline
        lspgws = ["107.200.0.1"]
        traces = [_trace([
            ("107.200.0.9", None),   # unnamed hop inside a lspgw /24
            ("107.200.0.1", _lspgw_name("107.200.0.1", "sndgca")),
        ])]
        prefixes = pipe.discover_router_prefixes(traces, lspgws, "sndgca")
        assert prefixes == set()

    def test_extend_prefixes_from_dpr(self, pipeline):
        pipe, _net = pipeline
        dpr = [_trace([
            ("107.200.0.1", _lspgw_name("107.200.0.1", "sndgca")),
            ("71.128.0.10", None),
            ("75.16.0.3", None),      # the revealed agg hop
            ("71.128.0.44", None),
        ], completed=True)]
        extended = pipe.extend_prefixes_from_dpr(
            dpr, {"71.128.0.0/24"}, ["107.200.0.1"]
        )
        assert "75.16.0.0/24" in extended
        assert "71.128.0.0/24" in extended
