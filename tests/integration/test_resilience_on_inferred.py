"""Resilience sweeps over *inferred* (not ground-truth) topologies.

This is the §8 workflow end to end: map the ISP with the paper's
pipeline, then reason about failure impact from the inferred graphs —
the single-AggCO regions of Table 1 are exactly the ones with single
points of failure.
"""

import pytest

from repro.analysis.resilience import ResilienceAnalyzer, compare_regions
from repro.infer.aggtype import classify_aggregation


@pytest.fixture(scope="module")
def sweeps(comcast_result):
    return {
        name: ResilienceAnalyzer(region).sweep()
        for name, region in comcast_result.regions.items()
    }


class TestInferredResilience:
    def test_single_agg_regions_have_spofs(self, comcast_result, sweeps):
        for name, region in comcast_result.regions.items():
            if classify_aggregation(region) == "single":
                assert sweeps[name].single_points_of_failure(), name

    def test_dual_agg_regions_survive_any_one_co(self, comcast_result, sweeps):
        fragile = [
            name
            for name, region in comcast_result.regions.items()
            if classify_aggregation(region) == "two"
            and sweeps[name].single_points_of_failure()
        ]
        # Dual-star regions should (almost) never have a fatal CO.
        assert len(fragile) <= 1, fragile

    def test_compare_regions_ranks_single_worst(self, comcast_result):
        worst = compare_regions(comcast_result.regions)
        singles = [
            worst[name]
            for name, region in comcast_result.regions.items()
            if classify_aggregation(region) == "single"
        ]
        duals = [
            worst[name]
            for name, region in comcast_result.regions.items()
            if classify_aggregation(region) == "two"
        ]
        assert min(singles) > max(duals)

    def test_worst_case_bounded(self, sweeps):
        for name, sweep in sweeps.items():
            worst = sweep.worst_case
            assert 0.0 <= worst.disconnected_fraction <= 1.0, name
