"""Integration: the columnar inference path (``corpus_format="binary"``)
must produce byte-identical region artifacts to the object-graph path.

One measured run writes a checkpoint; the second run resumes from it
with the columnar path, so both infer over the *same* corpus and only
the inference implementation differs.
"""

import pytest

from repro.io.export import region_to_json


@pytest.fixture(scope="module")
def parity_runs(internet, standard_vps, tmp_path_factory):
    from repro.infer.pipeline import CableInferencePipeline

    checkpoint = tmp_path_factory.mktemp("parity") / "campaign.json"
    object_run = CableInferencePipeline(
        internet.network, internet.charter, standard_vps, sweep_vps=2,
        checkpoint_path=checkpoint, corpus_format="json",
    ).run()
    columnar_run = CableInferencePipeline(
        internet.network, internet.charter, standard_vps, sweep_vps=2,
        checkpoint_path=checkpoint, resume=True, corpus_format="binary",
    ).run()
    return object_run, columnar_run


class TestCorpusFormatParity:
    def test_same_regions(self, parity_runs):
        object_run, columnar_run = parity_runs
        assert sorted(object_run.regions) == sorted(columnar_run.regions)

    def test_region_artifacts_byte_identical(self, parity_runs):
        object_run, columnar_run = parity_runs
        for name, region in object_run.regions.items():
            assert region_to_json(region) == \
                region_to_json(columnar_run.regions[name]), name

    def test_adjacency_accounting_identical(self, parity_runs):
        object_run, columnar_run = parity_runs
        assert object_run.adjacencies.stats == columnar_run.adjacencies.stats

    def test_ip2co_accounting_identical(self, parity_runs):
        object_run, columnar_run = parity_runs
        assert object_run.mapping.stats == columnar_run.mapping.stats
        assert object_run.mapping.mapping == columnar_run.mapping.mapping
