"""Integration: the §5 pipeline against the Charter-like ISP.

Charter exercises the pipeline pieces Comcast does not: /31
point-to-point subnets, CLLI-style rDNS tags, MPLS tunnels in one
region, and a no-redundancy region (App. B.4).
"""

from collections import Counter

import pytest

from repro.infer.entries import EntryInferrer
from repro.infer.metrics import single_upstream_fraction


@pytest.fixture(scope="module")
def charter_result(internet, standard_vps):
    from repro.infer.pipeline import CableInferencePipeline

    pipeline = CableInferencePipeline(
        internet.network, internet.charter, standard_vps, sweep_vps=6
    )
    return pipeline.run()


class TestCharterShape:
    def test_six_regions_all_multi(self, charter_result):
        types = charter_result.aggregation_types()
        assert len(types) == 6
        assert Counter(types.values()) == Counter({"multi": 6})

    def test_regions_are_vast(self, charter_result):
        sizes = sorted(
            r.graph.number_of_nodes()
            for r in charter_result.regions.values()
        )
        assert sizes[-1] > 90  # the midwest-style giant

    def test_every_region_two_backbone_cos(self, charter_result):
        per_region = EntryInferrer.backbone_cos_per_region(
            charter_result.entries
        )
        assert all(n >= 2 for n in per_region.values())

    def test_no_inter_region_entries(self, charter_result):
        """The paper observed no direct inter-region connections in
        Charter (§5.2.5)."""
        inter = [e for e in charter_result.entries if not e.is_backbone]
        assert inter == []


class TestCharterMpls:
    def test_midwest_mpls_pruning_fired(self, charter_result):
        assert charter_result.adjacencies.stats.mpls_ip > 0

    def test_midwest_top_aggs_not_connected_to_all_edges(
        self, internet, charter_result
    ):
        """Before pruning, MPLS made top AggCOs look adjacent to nearly
        every EdgeCO; after pruning the midwest graph keeps its layers."""
        midwest = charter_result.regions["midwest"]
        edge_count = len(midwest.edge_cos)
        top_out_degrees = sorted(
            (midwest.graph.out_degree(agg) for agg in midwest.agg_cos),
            reverse=True,
        )
        # No AggCO connects to even half of the region's EdgeCOs.
        assert top_out_degrees[0] < 0.5 * edge_count


class TestCharterRedundancy:
    def test_single_upstream_exceeds_comcast_band(self, charter_result):
        fraction = single_upstream_fraction(
            list(charter_result.regions.values())
        )
        assert 0.15 < fraction < 0.5

    def test_southeast_least_redundant(self, charter_result):
        per_region = {
            name: single_upstream_fraction([region])
            for name, region in charter_result.regions.items()
        }
        assert per_region["southeast"] == max(per_region.values())

    def test_rdns_tags_are_clli_style(self, charter_result):
        from repro.rdns.clli import parse_clli

        some_region = charter_result.regions["socal"]
        parsed = [
            parse_clli(tag[:6]) for tag in list(some_region.graph.nodes)[:20]
        ]
        assert sum(1 for p in parsed if p is not None) > 10
