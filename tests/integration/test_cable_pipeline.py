"""Integration: the full §5 pipeline against the Comcast-like ISP.

Shares the session-scoped ``comcast_result`` fixture, so the expensive
campaign runs once for the whole file.
"""

import statistics
from collections import Counter

import pytest

from repro.infer.entries import EntryInferrer
from repro.infer.metrics import (
    edge_to_agg_ratio,
    score_region,
    single_upstream_fraction,
)


class TestCoverage:
    def test_all_regions_inferred(self, internet, comcast_result):
        assert set(comcast_result.regions) == set(internet.comcast.regions)

    def test_mapping_statistics_shape(self, comcast_result):
        stats = comcast_result.mapping.stats
        assert stats.initial > 500
        assert stats.final >= stats.initial  # alias+p2p add more than they drop
        assert stats.alias_changed + stats.alias_added > 0

    def test_adjacency_pruning_ran(self, comcast_result):
        stats = comcast_result.adjacencies.stats
        assert stats.initial_ip > 1000
        assert stats.backbone_ip > 0
        assert stats.cross_region_ip > 0  # stale rDNS produced some


class TestTable1:
    def test_aggregation_type_counts(self, comcast_result):
        counts = Counter(comcast_result.aggregation_types().values())
        assert counts["single"] == 5
        assert counts["two"] == 11
        assert counts["multi"] == 12

    def test_types_match_ground_truth(self, internet, comcast_result):
        truth = {n: r.agg_type for n, r in internet.comcast.regions.items()}
        inferred = comcast_result.aggregation_types()
        mismatches = {
            name for name in truth if inferred.get(name) != truth[name]
        }
        assert len(mismatches) <= 2  # near-perfect recovery


class TestEntries:
    def test_nearly_every_region_has_two_backbone_cos(self, comcast_result):
        per_region = EntryInferrer.backbone_cos_per_region(
            comcast_result.entries
        )
        two_plus = sum(1 for n in per_region.values() if n >= 2)
        assert two_plus >= len(per_region) - 3  # the paper missed three

    def test_connecticut_entered_via_newengland(self, comcast_result):
        inter = [
            e for e in comcast_result.entries
            if not e.is_backbone and e.region == "connecticut"
        ]
        assert inter and all(e.outside_region == "newengland" for e in inter)

    def test_centralca_connects_to_sanfrancisco(self, comcast_result):
        inter = [
            e for e in comcast_result.entries
            if not e.is_backbone and e.region == "centralca"
        ]
        assert any(e.outside_region == "sanfrancisco" for e in inter)


class TestAccuracy:
    def test_edge_f1_high(self, internet, comcast_result):
        tag_of_co = {
            uid: internet.comcast.co_tag(co)
            for region in internet.comcast.regions.values()
            for uid, co in region.cos.items()
        }
        scores = [
            score_region(
                comcast_result.regions[name],
                internet.comcast.regions[name],
                tag_of_co,
            )
            for name in comcast_result.regions
        ]
        assert statistics.fmean(s.edge_f1 for s in scores) > 0.8
        assert statistics.fmean(s.co_recall for s in scores) > 0.8

    def test_single_upstream_fraction_near_paper(self, comcast_result):
        fraction = single_upstream_fraction(
            list(comcast_result.regions.values())
        )
        assert 0.05 < fraction < 0.25  # paper: 11.4 %

    def test_edge_to_agg_ratio_order_of_magnitude(self, comcast_result):
        ratio = edge_to_agg_ratio(list(comcast_result.regions.values()))
        assert 3.0 < ratio < 12.0  # paper: 7.7x (both ISPs combined)


class TestRefinementBehaviour:
    def test_ring_completion_added_edges(self, comcast_result):
        added = sum(
            r.stats.added_ring_edges for r in comcast_result.regions.values()
        )
        assert added > 0

    def test_false_edges_removed(self, comcast_result):
        removed = sum(
            r.stats.removed_edge_edges
            for r in comcast_result.regions.values()
        )
        assert removed > 0

    def test_every_region_has_agg_cos(self, comcast_result):
        for name, region in comcast_result.regions.items():
            assert region.agg_cos, name
