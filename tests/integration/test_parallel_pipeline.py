"""Parallel pipeline execution: byte-identical artifacts, same health.

Shares the session-scoped ``comcast_result`` fixture as the serial
reference, so only the parallel run is paid for here.
"""

from repro.infer.pipeline import CableInferencePipeline
from repro.io.export import region_to_json


class TestParallelPipelineParity:
    def test_exported_regions_byte_identical(
        self, internet, standard_vps, comcast_result
    ):
        parallel = CableInferencePipeline(
            internet.network, internet.comcast, standard_vps, sweep_vps=6,
            parallel=4, profile=True,
        ).run()
        assert set(parallel.regions) == set(comcast_result.regions)
        for name in sorted(comcast_result.regions):
            assert region_to_json(parallel.regions[name]) == region_to_json(
                comcast_result.regions[name]
            ), f"region {name} diverged under --parallel"
        assert parallel.health.as_dict() == comcast_result.health.as_dict()

    def test_profiler_reported_phases(self, internet, standard_vps):
        pipeline = CableInferencePipeline(
            internet.network, internet.comcast, standard_vps, sweep_vps=6,
            parallel=2, profile=True,
        )
        pipeline.run()
        report = pipeline.profiler.as_dict()
        assert set(report["phases_s"]) == {
            "collect", "aliases", "ip2co", "adjacency", "refine", "entries"
        }
        assert report["total_s"] > 0
        assert report["peak_rss_kb"] > 0
