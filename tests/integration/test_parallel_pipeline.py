"""Parallel pipeline execution: byte-identical artifacts, same health.

Shares the session-scoped ``comcast_result`` fixture as the serial
reference, so only the parallel run is paid for here.
"""

from repro.infer.pipeline import CableInferencePipeline
from repro.io.export import region_to_json


class TestParallelPipelineParity:
    def test_exported_regions_byte_identical(
        self, internet, standard_vps, comcast_result
    ):
        parallel = CableInferencePipeline(
            internet.network, internet.comcast, standard_vps, sweep_vps=6,
            parallel=4, profile=True,
        ).run()
        assert set(parallel.regions) == set(comcast_result.regions)
        for name in sorted(comcast_result.regions):
            assert region_to_json(parallel.regions[name]) == region_to_json(
                comcast_result.regions[name]
            ), f"region {name} diverged under --parallel"
        assert parallel.health.as_dict() == comcast_result.health.as_dict()

    def test_span_tree_identical_serial_vs_parallel(
        self, internet, standard_vps
    ):
        """Workers never open spans, so the span tree — ids, parents,
        attributes — is byte-identical between serial and parallel runs,
        and so are the exported regions."""

        def one_run(parallel):
            pipeline = CableInferencePipeline(
                internet.network, internet.comcast, standard_vps,
                sweep_vps=2, parallel=parallel,
            )
            result = pipeline.run()
            return pipeline, result

        serial_pipe, serial_result = one_run(parallel=0)
        parallel_pipe, parallel_result = one_run(parallel=3)
        assert (
            serial_pipe.obs.structural_dicts()
            == parallel_pipe.obs.structural_dicts()
        )
        for name in sorted(serial_result.regions):
            assert region_to_json(parallel_result.regions[name]) == (
                region_to_json(serial_result.regions[name])
            ), f"region {name} diverged under parallel"

    def test_trace_seed_changes_span_ids_not_structure(
        self, internet, standard_vps
    ):
        def ids_for(trace_seed):
            pipeline = CableInferencePipeline(
                internet.network, internet.comcast, standard_vps,
                sweep_vps=2, trace_seed=trace_seed,
            )
            pipeline.run()
            names = [s.name for s in pipeline.obs.spans]
            return names, [s.span_id for s in pipeline.obs.spans]

        names_a, ids_a = ids_for(0)
        names_b, ids_b = ids_for(99)
        assert names_a == names_b
        assert ids_a != ids_b

    def test_profiler_reported_phases(self, internet, standard_vps):
        pipeline = CableInferencePipeline(
            internet.network, internet.comcast, standard_vps, sweep_vps=6,
            parallel=2, profile=True,
        )
        pipeline.run()
        report = pipeline.profiler.as_dict()
        assert set(report["phases_s"]) == {
            "collect", "aliases", "ip2co", "adjacency", "refine", "entries"
        }
        assert report["total_s"] > 0
        assert report["peak_rss_kb"] > 0
