"""§7.2.2's controlled experiments validating the Verizon inference.

The paper drove from San Diego north to Irvine tracerouting to the
per-EdgeCO speedtest servers: when the nearest server switched from
Vista, CA to Azusa, CA, the EdgeCO bits in the addresses switched at
the same time.  A long stationary experiment showed the bits stable at
one location over days.
"""

import pytest

from repro.net.addresses import Ipv6FieldCodec
from repro.topology.geography import great_circle_km

#: Waypoints of the drive: San Diego -> Oceanside -> Irvine.
DRIVE_POINTS = [
    (32.72, -117.16),
    (32.95, -117.22),
    (33.20, -117.30),   # nearest Vista here
    (33.45, -117.60),
    (33.68, -117.83),   # Irvine: Azusa's turf
]

_FIELDS = Ipv6FieldCodec({"backbone": (16, 32), "edgeco": (32, 40)})


class TestDriveExperiment:
    def test_edgeco_bits_switch_with_nearest_speedtest(self, internet):
        verizon = internet.mobile_carriers["verizon"]
        observed = []
        for lat, lon in DRIVE_POINTS:
            attachment = verizon.attach(lat, lon)
            fields = _FIELDS.decode(attachment.user_prefix.network_address)
            # The nearest speedtest server (by rDNS) names the EdgeCO.
            nearest = min(
                verizon.regions,
                key=lambda spec: great_circle_km(
                    lat, lon,
                    verizon._region_cities[spec.name].lat,
                    verizon._region_cities[spec.name].lon,
                ),
            )
            observed.append(
                (verizon.speedtest_hostname(nearest), fields["edgeco"],
                 attachment.region.name)
            )
        # Southern waypoints: Vista; northern: Azusa.
        assert observed[0][0] == "vist.ost.myvzw.com"
        assert observed[-1][0] == "azus.ost.myvzw.com"
        # The EdgeCO bits switch exactly when the speedtest server does.
        switches_server = [
            a[0] != b[0] for a, b in zip(observed, observed[1:])
        ]
        switches_bits = [
            a[1] != b[1] for a, b in zip(observed, observed[1:])
        ]
        assert switches_server == switches_bits
        assert any(switches_bits)  # the drive does cross the boundary

    def test_backbone_bits_stable_within_backbone_region(self, internet):
        """Vista and Azusa share the LAX backbone region, so the /32
        (backbone) bits stay constant across the switch."""
        verizon = internet.mobile_carriers["verizon"]
        backbones = set()
        for lat, lon in DRIVE_POINTS:
            attachment = verizon.attach(lat, lon)
            fields = _FIELDS.decode(attachment.user_prefix.network_address)
            backbones.add(fields["backbone"])
        assert len(backbones) == 1

    def test_stationary_bits_stable_across_reattaches(self, internet):
        """The multi-day stationary experiment: EdgeCO and backbone bits
        stay put while the PGW bits cycle."""
        verizon = internet.mobile_carriers["verizon"]
        codec = Ipv6FieldCodec(
            {"backbone": (16, 32), "edgeco": (32, 40), "pgw": (40, 44)}
        )
        samples = [
            codec.decode(verizon.attach(32.72, -117.16).user_prefix.network_address)
            for _ in range(10)
        ]
        assert len({s["backbone"] for s in samples}) == 1
        assert len({s["edgeco"] for s in samples}) == 1
        assert len({s["pgw"] for s in samples}) > 1  # PGWs cycle
