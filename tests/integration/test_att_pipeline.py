"""Integration: the full §6 pipeline against AT&T's San Diego region."""

import ipaddress

import pytest


class TestFig13RouterLevel:
    def test_two_backbone_routers(self, att_topology):
        assert len(att_topology.backbone_routers) == 2

    def test_four_agg_routers(self, att_topology):
        assert len(att_topology.agg_routers) == 4

    def test_edge_router_count(self, att_topology):
        assert len(att_topology.edge_routers) == 84


class TestFig13CoLevel:
    def test_single_backbone_co_via_full_mesh(self, att_topology):
        assert att_topology.backbone_fully_meshed
        assert att_topology.backbone_co_count == 1

    def test_forty_two_edge_cos(self, att_topology):
        assert len(att_topology.edge_cos) == 42

    def test_two_routers_per_edge_co(self, att_topology):
        assert att_topology.routers_per_edge_co == pytest.approx(2.0)


class TestTable6Prefixes:
    def test_six_edge_prefixes(self, att_topology):
        assert len(att_topology.edge_prefixes) == 6

    def test_one_agg_prefix_in_separate_block(self, att_topology):
        assert len(att_topology.agg_prefixes) == 1
        agg_prefix = ipaddress.ip_network(next(iter(att_topology.agg_prefixes)))
        edge_pool = ipaddress.ip_network("71.128.0.0/10")
        assert not agg_prefix.subnet_of(edge_pool)

    def test_prefixes_match_ground_truth(self, internet, att_topology):
        truth = internet.att.router_prefixes["sndgca"]
        assert att_topology.edge_prefixes == {str(p) for p in truth["edge"]}
        assert att_topology.agg_prefixes == {str(p) for p in truth["agg"]}


class TestRouterGrouping:
    def test_alias_groups_match_real_routers(self, internet, att_topology):
        net = internet.network
        for group in att_topology.edge_routers:
            owners = {
                net.owner_router(addr).uid
                for addr in group
                if net.owner_router(addr) is not None
            }
            assert len(owners) == 1

    def test_edge_cos_group_real_co_mates(self, internet, att_topology):
        """Routers grouped into one EdgeCO share a ground-truth CO."""
        net = internet.network
        for co_group in att_topology.edge_cos:
            true_cos = set()
            for rep in co_group:
                router = net.owner_router(rep)
                if router is not None and router.co is not None:
                    true_cos.add(router.co.uid)
            assert len(true_cos) == 1, co_group
