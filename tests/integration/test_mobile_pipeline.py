"""Integration: ShipTraceroute corpus + the §7 IPv6 analysis."""

import pytest

from repro.infer.mobile_ipv6 import MobileIPv6Analyzer


@pytest.fixture(scope="module")
def analyses(ship_results):
    campaign, results = ship_results
    analyzer = MobileIPv6Analyzer(campaign.celldb)
    return {name: analyzer.analyze(result) for name, result in results.items()}


class TestCampaignShape:
    def test_success_rates_near_paper(self, ship_results):
        _campaign, results = ship_results
        assert 0.70 <= results["att-mobile"].success_rate <= 0.92
        assert 0.75 <= results["verizon"].success_rate <= 0.95
        assert 0.60 <= results["tmobile"].success_rate <= 0.85
        assert (
            results["tmobile"].success_rate
            < results["verizon"].success_rate
        )

    def test_broad_state_coverage(self, ship_results):
        _campaign, results = ship_results
        for result in results.values():
            assert len(result.states_covered()) >= 30  # paper: 40


class TestFig16Fields:
    def test_att_region_field(self, analyses):
        report = analyses["att-mobile"].user_report
        assert any(start >= 32 and end <= 40 for start, end in report.geo_fields)

    def test_verizon_hierarchical_fields(self, analyses):
        report = analyses["verizon"].user_report
        assert len(report.geo_fields) >= 2
        assert any(start <= 40 < end for start, end in report.cycling_fields)

    def test_tmobile_pgw_byte(self, analyses):
        report = analyses["tmobile"].user_report
        assert any(start == 32 for start, end in report.cycling_fields)
        assert not report.geo_fields


class TestTables7And8:
    def test_att_eleven_regions(self, analyses):
        assert analyses["att-mobile"].region_count == 11

    def test_att_pgw_counts_match_table7(self, internet, analyses):
        truth = sorted(
            spec.pgw_count for spec in internet.mobile_carriers["att-mobile"].regions
        )
        inferred = sorted(analyses["att-mobile"].pgw_counts.values())
        # Every region observed; counts recovered within one PGW.
        assert len(inferred) == len(truth)
        matched = sum(1 for a, b in zip(inferred, truth) if abs(a - b) <= 1)
        assert matched >= len(truth) - 1

    def test_verizon_region_count_near_table8(self, analyses):
        assert 24 <= analyses["verizon"].region_count <= 32


class TestFig17Classification:
    def test_att_single_edgeco(self, analyses):
        assert analyses["att-mobile"].topology_class == "single-edgeco-per-region"

    def test_verizon_shared_backbone(self, analyses):
        assert analyses["verizon"].topology_class == "shared-backbone-multi-edgeco"

    def test_tmobile_multi_backbone(self, analyses):
        analysis = analyses["tmobile"]
        assert analysis.topology_class == "distributed-multi-backbone"
        assert len(analysis.backbone_providers) == 3


class TestFig18Latency:
    def test_att_plains_latency_exceeds_verizon(self, ship_results):
        """AT&T's 11 huge regions make Montana/North Dakota phones
        backhaul to Chicago; Verizon's denser EdgeCOs stay closer
        (Fig 18a vs 18b, §7.3)."""
        import statistics

        _campaign, results = ship_results

        def plains_mean(result):
            rtts = [
                r.min_rtt_to_server_ms
                for r in result.successful_rounds()
                if r.state in ("MT", "ND", "SD")
            ]
            return statistics.fmean(rtts)

        assert plains_mean(results["att-mobile"]) > 1.1 * plains_mean(
            results["verizon"]
        )

    def test_tmobile_gulf_anomaly(self, ship_results):
        """Rounds near the Gulf coast attach to the distant Columbia SC
        site and show elevated latency (Fig 18c)."""
        _campaign, results = ship_results
        gulf = [
            r for r in results["tmobile"].successful_rounds()
            if r.attachment.region.name == "TMO-COLUMSC" and r.state in ("AL", "MS")
        ]
        others = [
            r for r in results["tmobile"].successful_rounds()
            if r.state in ("TX", "LA") and r.attachment.region.name != "TMO-COLUMSC"
        ]
        if gulf and others:
            import statistics

            assert statistics.fmean(
                r.min_rtt_to_server_ms for r in gulf
            ) > statistics.fmean(r.min_rtt_to_server_ms for r in others)
