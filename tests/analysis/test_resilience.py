"""Unit tests for the §8 resilience analysis."""

from collections import Counter

import pytest

from repro.analysis.resilience import (
    FailureImpact,
    ResilienceAnalyzer,
    compare_regions,
)
from repro.errors import ReproError
from repro.infer.refine import RegionRefiner


def _region(edges):
    counter = Counter()
    for a, b in edges:
        counter[(a, b)] += 3
    return RegionRefiner().refine("r", counter)


@pytest.fixture()
def dual_star():
    edges = [("A1", f"E{i}") for i in range(6)]
    edges += [("A2", f"E{i}") for i in range(6)]
    return _region(edges)


@pytest.fixture()
def single_star():
    return _region([("HUB", f"E{i}") for i in range(6)])


class TestCoFailure:
    def test_dual_star_survives_one_agg(self, dual_star):
        analyzer = ResilienceAnalyzer(dual_star)
        impact = analyzer.co_failure("A1")
        assert impact.disconnected_edge_cos == ()
        assert impact.disconnected_fraction == 0.0

    def test_single_star_hub_is_fatal(self, single_star):
        analyzer = ResilienceAnalyzer(single_star)
        impact = analyzer.co_failure("HUB")
        assert impact.disconnected_fraction == 1.0
        assert len(impact.disconnected_edge_cos) == 6

    def test_edge_failure_is_local(self, dual_star):
        analyzer = ResilienceAnalyzer(dual_star)
        impact = analyzer.co_failure("E0")
        assert impact.disconnected_edge_cos == ()

    def test_unknown_co_rejected(self, dual_star):
        with pytest.raises(ReproError):
            ResilienceAnalyzer(dual_star).co_failure("NOPE")


class TestSweep:
    def test_spof_detection(self, single_star):
        sweep = ResilienceAnalyzer(single_star).sweep()
        assert sweep.single_points_of_failure() == ["HUB"]
        assert sweep.worst_case.failed_co == "HUB"

    def test_dual_star_has_no_spof(self, dual_star):
        sweep = ResilienceAnalyzer(dual_star).sweep()
        assert sweep.single_points_of_failure() == []
        assert sweep.mean_impact == 0.0

    def test_multi_level_spof(self):
        """A single top AggCO above a redundant lower layer is still a
        single point of failure (the Nashville shape, §6.3)."""
        edges = [("TOP", "S1"), ("TOP", "S2")]
        edges += [("S1", f"E{i}") for i in range(4)]
        edges += [("S2", f"E{i}") for i in range(4)]
        region = _region(edges)
        analyzer = ResilienceAnalyzer(region, entry_cos={"TOP"})
        sweep = analyzer.sweep()
        assert "TOP" in sweep.single_points_of_failure()
        assert ResilienceAnalyzer(region, entry_cos={"TOP"}).co_failure(
            "S1"
        ).disconnected_fraction == 0.0

    def test_include_edges_sweeps_everything(self, dual_star):
        sweep = ResilienceAnalyzer(dual_star).sweep(include_edges=True)
        assert len(sweep.impacts) == dual_star.graph.number_of_nodes()


class TestCompare:
    def test_ranking(self, dual_star, single_star):
        worst = compare_regions({"dual": dual_star, "single": single_star})
        assert worst["single"] == 1.0
        assert worst["dual"] == 0.0

    def test_empty_region_rejected(self):
        import networkx as nx

        from repro.infer.refine import RefinedRegion, RefineStats

        empty = RefinedRegion("x", nx.DiGraph(), set(), set(), [], RefineStats())
        with pytest.raises(ReproError):
            ResilienceAnalyzer(empty)


class TestOnGroundTruthTopology:
    def test_charter_southeast_is_fragile(self, internet):
        """The no-redundancy Charter region shows worse single-failure
        impact than its redundant siblings (built from ground truth)."""
        worst = {}
        for name in ("southeast", "socal"):
            truth = internet.charter.regions[name]
            counter = Counter()
            for up, down in truth.edge_pairs():
                counter[(up, down)] += 3
            refined = RegionRefiner().refine(name, counter)
            entries = {local for _outside, local in truth.entries}
            sweep = ResilienceAnalyzer(refined, entry_cos=entries).sweep()
            worst[name] = sweep.worst_case.disconnected_fraction
        assert worst["southeast"] > worst["socal"]
        assert worst["southeast"] > 0.15
