"""Unit tests for CDFs, hex binning, and table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.cdf import Cdf
from repro.analysis.hexbin import HexBinner
from repro.analysis.tables import render_table
from repro.errors import ReproError


class TestCdf:
    def test_fraction_at(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf.fraction_at(2) == 0.5
        assert cdf.fraction_at(0) == 0.0
        assert cdf.fraction_at(9) == 1.0

    def test_fraction_above_complements(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf.fraction_above(2) == pytest.approx(0.5)

    def test_median(self):
        assert Cdf([5, 1, 9, 7, 3]).median == 5

    def test_percentile_bounds(self):
        cdf = Cdf([1, 2, 3])
        with pytest.raises(ReproError):
            cdf.percentile(101)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            Cdf([])

    def test_series_monotonic(self):
        cdf = Cdf([3, 1, 4, 1, 5, 9, 2, 6])
        fractions = [f for _v, f in cdf.series(20)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_single_value_series(self):
        assert Cdf([7, 7]).series() == [(7.0, 1.0)]

    def test_ascii_plot_renders(self):
        text = Cdf(range(100)).ascii_plot(width=40, height=6, label="ms")
        assert "#" in text and "ms" in text

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_fraction_at_is_monotone(self, samples):
        cdf = Cdf(samples)
        lo, hi = min(samples), max(samples)
        assert cdf.fraction_at(lo - 1) <= cdf.fraction_at(hi + 1)
        assert cdf.fraction_at(hi) == 1.0


class TestHexBinner:
    def test_same_point_same_cell(self):
        binner = HexBinner()
        assert binner.cell_for(33.0, -117.0) == binner.cell_for(33.0, -117.0)

    def test_distant_points_different_cells(self):
        binner = HexBinner()
        assert binner.cell_for(33.0, -117.0) != binner.cell_for(45.0, -90.0)

    def test_bin_min_keeps_minimum(self):
        binner = HexBinner()
        binned = binner.bin_min([
            (33.0, -117.0, 80.0),
            (33.01, -117.01, 50.0),
            (45.0, -90.0, 120.0),
        ])
        values = sorted(binned.values())
        assert values == [50.0, 120.0]

    def test_invalid_cell_size(self):
        with pytest.raises(ReproError):
            HexBinner(cell_deg=0)

    def test_ascii_map(self):
        binner = HexBinner()
        binned = binner.bin_min([
            (33.0, -117.0, 45.0), (40.0, -100.0, 95.0), (45.0, -80.0, 170.0),
        ])
        art = HexBinner.ascii_map(binned)
        assert len(art.splitlines()) >= 2

    def test_ascii_map_empty_rejected(self):
        with pytest.raises(ReproError):
            HexBinner.ascii_map({})

    @given(st.floats(min_value=25, max_value=49),
           st.floats(min_value=-124, max_value=-67))
    def test_cell_center_is_close(self, lat, lon):
        binner = HexBinner(cell_deg=1.6)
        cell = binner.cell_for(lat, lon)
        assert abs(cell.lat - lat) < 4.0
        assert abs(cell.lon - lon) < 4.0


class TestRenderTable:
    def test_basic(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [["1"]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ReproError):
            render_table(["a", "b"], [["only-one"]])

    def test_no_headers_rejected(self):
        with pytest.raises(ReproError):
            render_table([], [])
