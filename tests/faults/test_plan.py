"""FaultPlan: seeded, order-independent, no-op by default."""

from repro.faults import FaultPlan


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        keys = [("1.2.3.4", "5.6.7.8", 0, ttl) for ttl in range(1, 30)]
        a = FaultPlan(seed=7, probe_loss=0.3)
        b = FaultPlan(seed=7, probe_loss=0.3)
        assert [a.probe_lost(k) for k in keys] == [b.probe_lost(k) for k in keys]

    def test_different_seeds_differ(self):
        keys = [("1.2.3.4", "5.6.7.8", 0, ttl) for ttl in range(1, 200)]
        a = FaultPlan(seed=1, probe_loss=0.5)
        b = FaultPlan(seed=2, probe_loss=0.5)
        assert [a.probe_lost(k) for k in keys] != [b.probe_lost(k) for k in keys]

    def test_order_independent(self):
        """A decision depends only on the event identity, never on how
        many draws happened before it — the property resume relies on."""
        plan = FaultPlan(seed=3, probe_loss=0.5, rdns_timeout=0.5)
        key = ("9.9.9.9", "8.8.8.8", 4, 11)
        first = plan.probe_lost(key)
        for ttl in range(1, 500):  # burn hundreds of unrelated decisions
            plan.probe_lost(("a", "b", 0, ttl))
            plan.rdns_timed_out("7.7.7.7", ttl)
        assert plan.probe_lost(key) == first

    def test_loss_rate_approximate(self):
        plan = FaultPlan(seed=0, probe_loss=0.2)
        hits = sum(plan.probe_lost(("k", i)) for i in range(5000))
        assert 0.17 < hits / 5000 < 0.23


class TestNoOpPlan:
    def test_empty_plan_inactive(self):
        assert not FaultPlan().active
        assert FaultPlan(seed=99).active is False

    def test_empty_plan_injects_nothing(self):
        plan = FaultPlan(seed=5)
        assert not any(plan.probe_lost(("k", i)) for i in range(200))
        assert not plan.rate_limited("r1", ("k", 0))
        assert not plan.rdns_timed_out("1.1.1.1", 0)
        assert not plan.vp_flapped("vp", 0)
        assert not plan.lsp_down("t1", 0)
        assert plan.doomed_vps(["a", "b"]) == ()

    def test_any_fault_activates(self):
        assert FaultPlan(probe_loss=0.1).active
        assert FaultPlan(vp_dropout=1).active
        assert FaultPlan(lsp_flap=0.1).active


class TestVpDropout:
    def test_doomed_picks_stable_across_orderings(self):
        plan = FaultPlan(seed=4, vp_dropout=2)
        names = [f"vp{i}" for i in range(8)]
        assert plan.doomed_vps(names) == plan.doomed_vps(list(reversed(names)))

    def test_doomed_count_capped_by_fleet(self):
        plan = FaultPlan(seed=4, vp_dropout=10)
        assert len(plan.doomed_vps(["a", "b"])) == 2


class TestRateLimiting:
    def test_only_some_routers_police(self):
        plan = FaultPlan(seed=6, rate_limit_share=0.5)
        policed = [
            uid for uid in (f"r{i}" for i in range(50))
            if plan.router_rate_limits(uid)
        ]
        assert 0 < len(policed) < 50

    def test_unpoliced_router_never_limits(self):
        plan = FaultPlan(seed=6, rate_limit_share=0.5)
        clean = next(
            uid for uid in (f"r{i}" for i in range(50))
            if not plan.router_rate_limits(uid)
        )
        assert not any(plan.rate_limited(clean, ("k", i)) for i in range(100))

    def test_policed_router_partially_answers(self):
        plan = FaultPlan(seed=6, rate_limit_share=1.0, rate_limit_pass=0.5)
        eaten = sum(plan.rate_limited("r0", ("k", i)) for i in range(1000))
        assert 400 < eaten < 600


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(seed=9, probe_loss=0.1, vp_dropout=2,
                         vp_dropout_after=100, lsp_flap=0.05)
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_from_dict_ignores_unknown_keys(self):
        assert FaultPlan.from_dict({"seed": 1, "future_field": 3}).seed == 1


class TestWorkerFaults:
    def test_keyed_on_shard_and_attempt(self):
        """A retried shard draws a fresh fate — the property that lets
        a crash-fated attempt succeed on its retry."""
        plan = FaultPlan(seed=11, worker_crash=0.5)
        fates = {
            (shard, attempt): plan.worker_crashed(shard, attempt)
            for shard in (f"s/{i:04d}-abcd1234" for i in range(10))
            for attempt in (1, 2, 3)
        }
        again = FaultPlan(seed=11, worker_crash=0.5)
        assert fates == {
            key: again.worker_crashed(*key) for key in fates
        }
        # Some shard's fate must differ across attempts.
        assert any(
            fates[(s, 1)] != fates[(s, 2)]
            for s in {key[0] for key in fates}
        )

    def test_worker_faults_activate_the_plan(self):
        assert FaultPlan(worker_crash=0.1).active
        assert FaultPlan(worker_stall=0.1).active
        assert FaultPlan(worker_slow=0.1).active
        assert not FaultPlan().worker_crashed("s", 1)

    def test_failure_point_always_within_shard(self):
        plan = FaultPlan(seed=2, worker_crash=1.0)
        for count in (1, 2, 7, 100):
            for attempt in (1, 2):
                index = plan.failure_point("s/0000-aa", attempt, count)
                assert 0 <= index < count
        assert plan.failure_point("s/0000-aa", 1, 0) == 0

    def test_crash_and_stall_points_drawn_independently(self):
        plan = FaultPlan(seed=8, worker_crash=1.0, worker_stall=1.0)
        crash = [plan.failure_point(f"s{i}", 1, 1000, kind="crash")
                 for i in range(20)]
        stall = [plan.failure_point(f"s{i}", 1, 1000, kind="stall")
                 for i in range(20)]
        assert crash != stall

    def test_round_trip_keeps_worker_fields(self):
        plan = FaultPlan(seed=4, worker_crash=0.2, worker_stall=0.1,
                         worker_slow=0.3, worker_slow_ms=25.0)
        assert FaultPlan.from_dict(plan.as_dict()) == plan


class TestRetryJitter:
    """Satellite 6: retry backoff jitter rides the seeded fault RNG."""

    def test_seeded_and_reproducible(self):
        a = FaultPlan(seed=7)
        b = FaultPlan(seed=7)
        draws = [(key, n) for key in ("shard-0", "job-abc") for n in (1, 2, 3)]
        assert [a.retry_jitter(k, n) for k, n in draws] \
            == [b.retry_jitter(k, n) for k, n in draws]

    def test_seed_and_key_dependent(self):
        base = FaultPlan(seed=7).retry_jitter("shard-0", 1)
        assert base != FaultPlan(seed=8).retry_jitter("shard-0", 1)
        assert base != FaultPlan(seed=7).retry_jitter("shard-1", 1)
        assert base != FaultPlan(seed=7).retry_jitter("shard-0", 2)

    def test_unit_interval(self):
        plan = FaultPlan(seed=0)
        for attempt in range(1, 20):
            assert 0.0 <= plan.retry_jitter("s", attempt) < 1.0

    def test_order_independent(self):
        plan = FaultPlan(seed=5)
        first = plan.retry_jitter("s9", 3)
        for n in range(200):
            plan.retry_jitter(f"other-{n}", 1)
        assert plan.retry_jitter("s9", 3) == first
