"""Shared fixtures: a toy network with a small vantage point fleet."""

from __future__ import annotations

import pytest

from repro.measure.vantage import VantagePoint, attach_host


@pytest.fixture()
def fleet(toy_network):
    """Three measurement hosts hanging off the toy diamond's router a."""
    net, routers = toy_network
    vps = []
    for index in range(3):
        host, addr = attach_host(
            net, routers["a"], f"probe{index}", f"10.9.{index}.0/30"
        )
        vps.append(VantagePoint(f"vp{index}", "transit", host, addr))
    return net, routers, vps
