"""CampaignRunner: failover, checkpoint/resume, graceful degradation."""

import pytest

from repro.errors import CampaignInterrupted
from repro.faults import FaultInjector, FaultPlan
from repro.io.checkpoint import CampaignCheckpoint, trace_to_dict
from repro.measure.runner import CampaignRunner
from repro.measure.traceroute import Tracerouter

TARGETS = ["10.0.0.14", "10.0.0.6", "198.18.5.1", "198.18.5.9"]


def _jobs(vps, targets=TARGETS):
    return [(vp, target) for vp in vps for target in targets]


class TestFaultFreePath:
    def test_matches_plain_nested_loop(self, fleet):
        net, _routers, vps = fleet
        manual = []
        tracer = Tracerouter(net)
        for vp, target in _jobs(vps):
            trace = tracer.trace(vp.host, target, src_address=vp.src_address)
            trace.vp_name = vp.name
            if trace.hops:
                manual.append(trace)

        runner = CampaignRunner(Tracerouter(net), vps)
        ran = runner.run(_jobs(vps), stage="s")
        assert [trace_to_dict(t) for t in ran] == [
            trace_to_dict(t) for t in manual
        ]
        assert not runner.health.degraded
        assert runner.health.targets_reassigned == 0

    def test_empty_traces_counted_not_returned(self, fleet):
        net, _routers, vps = fleet
        runner = CampaignRunner(Tracerouter(net), vps[:1])
        traces = runner.run([(vps[0], "203.0.113.1")], stage="s")
        assert traces == []
        assert runner.health.empty_traces == 1
        assert runner.health.traces_run == 1


class TestFailover:
    def _plan(self):
        # Seed 1 dooms vp0 (first in job order), so its death leaves
        # pending jobs to fail over; after=5 kills it two traces in.
        return FaultPlan(seed=1, vp_dropout=1, vp_dropout_after=5)

    def test_dead_vp_jobs_reassigned(self, fleet):
        net, _routers, vps = fleet
        net.attach_faults(FaultInjector(self._plan()))
        runner = CampaignRunner(Tracerouter(net), vps)
        traces = runner.run(_jobs(vps), stage="s")
        doomed = runner.health.vps_lost
        assert len(doomed) == 1
        # Every target kept full coverage: one trace per (vp, target) job.
        assert len(traces) == len(_jobs(vps))
        assert runner.health.targets_reassigned > 0
        # Reassigned jobs ran from a survivor, not the dead VP.
        dead = doomed[0]
        executed_after_death = [
            t for t in traces if t.vp_name != dead
        ]
        assert executed_after_death

    def test_no_failover_skips_instead(self, fleet):
        net, _routers, vps = fleet
        net.attach_faults(FaultInjector(self._plan()))
        runner = CampaignRunner(Tracerouter(net), vps, failover=False)
        traces = runner.run(_jobs(vps), stage="s")
        assert runner.health.targets_skipped > 0
        assert runner.health.degraded
        assert len(traces) < len(_jobs(vps))


class TestDegradation:
    def test_below_min_vps_returns_partial(self, fleet):
        net, _routers, vps = fleet
        plan = FaultPlan(seed=1, vp_dropout=1, vp_dropout_after=5)
        net.attach_faults(FaultInjector(plan))
        runner = CampaignRunner(Tracerouter(net), vps, min_vps=3)
        traces = runner.run(_jobs(vps), stage="s")  # must not raise
        assert runner.health.degraded
        assert runner.health.targets_skipped > 0
        assert 0 < len(traces) < len(_jobs(vps))


class TestCheckpointResume:
    PLAN = FaultPlan(seed=1, probe_loss=0.15, vp_dropout=1,
                     vp_dropout_after=5)

    def _uninterrupted(self, net, vps):
        net.attach_faults(FaultInjector(self.PLAN))
        runner = CampaignRunner(Tracerouter(net), vps)
        return runner.run(_jobs(vps), stage="s")

    def test_interrupt_saves_checkpoint(self, fleet, tmp_path):
        net, _routers, vps = fleet
        net.attach_faults(FaultInjector(self.PLAN))
        checkpoint = CampaignCheckpoint(tmp_path / "camp.json")
        runner = CampaignRunner(
            Tracerouter(net), vps, checkpoint=checkpoint, stop_after=5
        )
        with pytest.raises(CampaignInterrupted):
            runner.run(_jobs(vps), stage="s")
        loaded = CampaignCheckpoint.load(tmp_path / "camp.json")
        assert len(loaded.stage_done("s")) == 5
        assert not loaded.stage_complete("s")
        assert loaded.health["interrupted"] is True

    def test_resume_converges_on_uninterrupted_output(self, fleet, tmp_path):
        net, _routers, vps = fleet
        reference = [
            trace_to_dict(t) for t in self._uninterrupted(net, vps)
        ]

        # Kill a second campaign mid-stage...
        net.attach_faults(FaultInjector(self.PLAN))
        checkpoint = CampaignCheckpoint(tmp_path / "camp.json")
        runner = CampaignRunner(
            Tracerouter(net), vps, checkpoint=checkpoint, stop_after=5
        )
        with pytest.raises(CampaignInterrupted):
            runner.run(_jobs(vps), stage="s")

        # ...then resume it with a fresh tracer, as a new process would.
        loaded = CampaignCheckpoint.load(tmp_path / "camp.json")
        net.attach_faults(FaultInjector(self.PLAN))
        resumed = CampaignRunner.resumed(Tracerouter(net), vps, loaded)
        traces = resumed.run(_jobs(vps), stage="s")
        assert [trace_to_dict(t) for t in traces] == reference
        assert resumed.health.resumed is True
        assert resumed.health.interrupted is False

    def test_complete_stage_loads_wholesale(self, fleet, tmp_path):
        net, _routers, vps = fleet
        checkpoint = CampaignCheckpoint(tmp_path / "camp.json")
        runner = CampaignRunner(Tracerouter(net), vps, checkpoint=checkpoint)
        first = runner.run(_jobs(vps), stage="s")

        loaded = CampaignCheckpoint.load(tmp_path / "camp.json")
        tracer = Tracerouter(net)
        rerun = CampaignRunner.resumed(tracer, vps, loaded)
        again = rerun.run(_jobs(vps), stage="s")
        assert [trace_to_dict(t) for t in again] == [
            trace_to_dict(t) for t in first
        ]
        assert tracer.traces_run == 0  # nothing re-executed
