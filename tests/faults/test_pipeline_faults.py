"""End-to-end fault tolerance of the cable pipeline (one small region)."""

import ipaddress

import pytest

from repro.errors import CampaignInterrupted
from repro.faults import FaultPlan
from repro.infer.pipeline import CableInferencePipeline
from repro.io.export import campaign_health_to_json, region_to_json

REGION = "saltlake"


class _RegionPipeline(CableInferencePipeline):
    """The §5 pipeline restricted to one region's targets, for speed.

    Customer /24s are filtered by the region's announced prefixes;
    rDNS-harvested infrastructure targets (which live in a shared infra
    pool) are filtered by the region tag in their hostname.
    """

    def slash24_targets(self):
        nets = self.isp.region_prefixes[REGION]
        return [
            t for t in super().slash24_targets()
            if any(ipaddress.ip_address(t) in n for n in nets)
        ]

    def rdns_targets(self):
        targets = []
        for address in super().rdns_targets():
            hostname = self.network.rdns.snapshot_lookup(address)
            parsed = self.parser.regional_co(hostname, self.isp.name)
            if parsed is not None and parsed[0] == REGION:
                targets.append(address)
        return targets


@pytest.fixture()
def small_world():
    from repro.topology.internet import SimulatedInternet

    internet = SimulatedInternet(
        seed=23, include_telco=False, include_mobile=False
    )
    return internet, list(internet.build_standard_vps())


def _pipeline(internet, fleet, **kwargs):
    return _RegionPipeline(
        internet.network, internet.comcast, fleet,
        sweep_vps=4, **kwargs,
    )


def _region_json(result):
    return (
        region_to_json(result.regions[REGION])
        if REGION in result.regions
        else None
    )


class TestFaultyCampaignCompletes:
    def test_loss_and_dropouts_yield_health_not_exception(self, small_world):
        internet, fleet = small_world
        plan = FaultPlan(seed=5, probe_loss=0.10, vp_dropout=2,
                         vp_dropout_after=100)
        result = _pipeline(
            internet, fleet, attempts=2, faults=plan
        ).run()
        health = result.health
        assert health is not None
        assert health.probes_lost > 0
        assert len(health.vps_lost) == 2
        assert "lost" in health.summary()
        # The health report exports alongside the topology artifacts.
        assert '"campaign-health"' in campaign_health_to_json(health)
        # The network fixture is left clean for other users.
        assert internet.network.faults is None

    def test_retries_recover_silent_hops(self, small_world):
        internet, fleet = small_world
        plan = FaultPlan(seed=5, probe_loss=0.25)

        naive = _pipeline(internet, fleet, attempts=1, faults=plan).run()
        resilient = _pipeline(internet, fleet, attempts=3, faults=plan).run()

        def silent(result):
            return sum(
                1 for t in result.traces for h in t.hops if h.address is None
            )

        assert silent(resilient) < silent(naive)
        assert resilient.health.probes_retried > 0


class TestCheckpointResume:
    PLAN = FaultPlan(seed=5, probe_loss=0.05, vp_dropout=1,
                     vp_dropout_after=400)

    def test_resumed_run_matches_uninterrupted(self, small_world, tmp_path):
        internet, fleet = small_world
        reference = _pipeline(
            internet, fleet, attempts=2, faults=self.PLAN
        ).run()
        assert _region_json(reference) is not None

        path = tmp_path / "campaign.json"
        with pytest.raises(CampaignInterrupted):
            _pipeline(
                internet, fleet, attempts=2, faults=self.PLAN,
                checkpoint_path=path, stop_after=150,
            ).run()
        assert path.exists()

        resumed = _pipeline(
            internet, fleet, attempts=2, faults=self.PLAN,
            checkpoint_path=path, resume=True,
        ).run()
        assert resumed.health.resumed is True
        assert _region_json(resumed) == _region_json(reference)

    def test_resume_without_checkpoint_starts_fresh(self, small_world, tmp_path):
        internet, fleet = small_world
        result = _pipeline(
            internet, fleet,
            checkpoint_path=tmp_path / "missing.json", resume=True,
        ).run()
        assert _region_json(result) is not None
