"""FaultInjector: stats bookkeeping, VP lifecycle, checkpointed state."""

from repro.faults import FaultInjector, FaultPlan


def _injector(**plan_kwargs):
    return FaultInjector(FaultPlan(**plan_kwargs))


class TestStats:
    def test_probe_loss_counted(self):
        injector = _injector(seed=1, probe_loss=0.5)
        hits = sum(injector.probe_lost(("k", i)) for i in range(100))
        assert injector.stats.probes_lost == hits > 0

    def test_rdns_timeouts_counted(self):
        injector = _injector(seed=1, rdns_timeout=0.5)
        hits = sum(injector.rdns_timeout("1.2.3.4", i) for i in range(100))
        assert injector.stats.rdns_timeouts == hits > 0

    def test_rdns_fallback_counter_is_transient(self):
        """Without a caller token, repeated digs for one address use a
        call counter, so a timeout on the first try can clear later."""
        injector = _injector(seed=2, rdns_timeout=0.5)
        outcomes = [injector.rdns_timeout("9.9.9.9") for _ in range(50)]
        assert True in outcomes and False in outcomes


class TestVpLifecycle:
    def test_doomed_vp_dies_at_threshold(self):
        injector = _injector(seed=3, vp_dropout=1, vp_dropout_after=100)
        names = ["vp-a", "vp-b", "vp-c"]
        injector.register_fleet(names)
        doomed = injector.plan.doomed_vps(names)[0]
        assert injector.vp_alive(doomed)
        assert injector.vp_add_probes(doomed, 99) is True
        assert injector.vp_add_probes(doomed, 1) is False
        assert not injector.vp_alive(doomed)
        assert injector.stats.vps_killed == [doomed]

    def test_undoomed_vp_never_dies(self):
        injector = _injector(seed=3, vp_dropout=1, vp_dropout_after=10)
        names = ["vp-a", "vp-b", "vp-c"]
        injector.register_fleet(names)
        doomed = set(injector.plan.doomed_vps(names))
        survivor = next(n for n in names if n not in doomed)
        assert injector.vp_add_probes(survivor, 10_000) is True


class TestTunnels:
    def test_down_tunnels_empty_without_flap(self):
        injector = _injector(seed=4)
        assert injector.down_tunnels([], ("t",)) == frozenset()

    def test_down_tunnels_keyed_per_trace(self):
        class _Tunnel:
            def __init__(self, tid):
                self.tunnel_id = tid

        injector = _injector(seed=4, lsp_flap=0.5)
        tunnels = [_Tunnel(f"t{i}") for i in range(10)]
        first = injector.down_tunnels(tunnels, ("trace", 1))
        again = injector.down_tunnels(tunnels, ("trace", 1))
        other = injector.down_tunnels(tunnels, ("trace", 2))
        assert first == again
        assert first != other  # some trace differs at 0.5 flap rate


class TestCheckpointState:
    def test_state_round_trip_preserves_deaths(self):
        injector = _injector(seed=5, vp_dropout=2, vp_dropout_after=10)
        names = [f"vp{i}" for i in range(6)]
        injector.register_fleet(names)
        doomed = injector.plan.doomed_vps(names)
        injector.vp_add_probes(doomed[0], 10)  # kill the first
        injector.vp_add_probes(doomed[1], 6)   # wound the second

        restored = _injector(seed=5, vp_dropout=2, vp_dropout_after=10)
        restored.restore_state(injector.state_dict())
        assert not restored.vp_alive(doomed[0])
        assert restored.vp_alive(doomed[1])
        # The wounded VP's probe count survived: 4 more probes kill it.
        assert restored.vp_add_probes(doomed[1], 4) is False
        assert restored.stats.vps_killed[-1] == doomed[1]

    def test_state_dict_is_json_ready(self):
        import json

        injector = _injector(seed=5, vp_dropout=1, vp_dropout_after=5)
        injector.register_fleet(["a", "b"])
        injector.probe_lost(("k", 1))
        assert json.loads(json.dumps(injector.state_dict()))
