"""Unit and property tests for alias resolution."""

import pytest
from hypothesis import given, strategies as st

from repro.alias.mercator import MercatorProber
from repro.alias.midar import MidarProber
from repro.alias.resolve import AliasResolver, AliasSets, _UnionFind
from repro.net.network import Network
from repro.net.router import ReplyPolicy, Router


@pytest.fixture()
def multi_iface_net():
    """src -- r1 -- r2, where r1 and r2 each have two interfaces."""
    net = Network()
    src = net.add_router(Router("src"))
    r1 = net.add_router(Router("r1"))
    r2 = net.add_router(Router("r2"))
    net.connect(src, r1, "10.0.0.1", "10.0.0.2", prefixlen=30)
    net.connect(r1, r2, "10.0.0.5", "10.0.0.6", prefixlen=30)
    return net, src, r1, r2


class TestMercator:
    def test_far_side_interface_reveals_alias(self, multi_iface_net):
        net, src, r1, _r2 = multi_iface_net
        pair = MercatorProber(net).probe(src, "10.0.0.5")
        # Probing r1's far interface: the reply comes from the near one.
        assert pair == ("10.0.0.5", "10.0.0.2")

    def test_near_side_interface_reveals_nothing(self, multi_iface_net):
        net, src, _r1, _r2 = multi_iface_net
        assert MercatorProber(net).probe(src, "10.0.0.2") is None

    def test_unresponsive_target(self, multi_iface_net):
        net, src, r1, _r2 = multi_iface_net
        r1.policy = ReplyPolicy(respond_prob=0.0)
        assert MercatorProber(net).probe(src, "10.0.0.5") is None

    def test_unknown_target(self, multi_iface_net):
        net, src, _r1, _r2 = multi_iface_net
        assert MercatorProber(net).probe(src, "203.0.113.1") is None

    def test_probe_all_counts(self, multi_iface_net):
        net, src, _r1, _r2 = multi_iface_net
        prober = MercatorProber(net)
        prober.probe_all(src, ["10.0.0.5", "10.0.0.2", "10.0.0.6"])
        assert prober.probes_sent == 3


class TestMidar:
    def test_same_router_passes_mbt(self, multi_iface_net):
        net, src, _r1, _r2 = multi_iface_net
        prober = MidarProber(net)
        assert prober.test_pair(src, "10.0.0.2", "10.0.0.5")

    def test_different_routers_fail_mbt(self, multi_iface_net):
        net, src, _r1, _r2 = multi_iface_net
        prober = MidarProber(net)
        assert not prober.test_pair(src, "10.0.0.2", "10.0.0.6")

    def test_unresponsive_fails(self, multi_iface_net):
        net, src, r1, _r2 = multi_iface_net
        r1.policy = ReplyPolicy(respond_prob=0.0)
        assert not MidarProber(net).test_pair(src, "10.0.0.2", "10.0.0.5")

    def test_mbt_requires_two_samples_each(self):
        assert not MidarProber.monotonic_bounds_test([(1, 5)], [(2, 6), (3, 7)])

    def test_mbt_accepts_interleaved_counter(self):
        a = [(1, 100), (3, 102), (5, 104)]
        b = [(2, 101), (4, 103), (6, 105)]
        assert MidarProber.monotonic_bounds_test(a, b)

    def test_mbt_rejects_non_monotonic(self):
        a = [(1, 100), (3, 102)]
        b = [(2, 5000), (4, 5002)]
        assert not MidarProber.monotonic_bounds_test(a, b)

    def test_mbt_allows_wraparound(self):
        a = [(1, 65530), (3, 65534)]
        b = [(2, 65532), (4, 2)]
        assert MidarProber.monotonic_bounds_test(a, b)

    @given(st.integers(min_value=0, max_value=65535),
           st.integers(min_value=1, max_value=3))
    def test_mbt_accepts_any_true_shared_counter(self, start, step):
        counter = start
        a, b = [], []
        for clock in range(8):
            counter = (counter + step) % 65536
            (a if clock % 2 == 0 else b).append((clock, counter))
        assert MidarProber.monotonic_bounds_test(a, b)


class TestUnionFind:
    def test_groups(self):
        uf = _UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.union("x", "y")
        groups = sorted(sorted(g) for g in uf.groups())
        assert groups == [["a", "b", "c"], ["x", "y"]]

    def test_singletons_excluded(self):
        uf = _UnionFind()
        uf.find("alone")
        assert uf.groups() == []


class TestAliasSets:
    def test_membership(self):
        sets = AliasSets([{"10.0.0.1", "10.0.0.2"}])
        assert sets.are_aliases("10.0.0.1", "10.0.0.2")
        assert not sets.are_aliases("10.0.0.1", "10.0.0.9")
        assert sets.group_of("10.0.0.9") is None


class TestResolver:
    def test_resolves_toy_router_groups(self, multi_iface_net):
        net, src, r1, r2 = multi_iface_net
        resolver = AliasResolver(net)
        addresses = ["10.0.0.2", "10.0.0.5", "10.0.0.6"]
        sets = resolver.resolve(src, addresses, include_p2p_peers=False)
        assert sets.are_aliases("10.0.0.2", "10.0.0.5")
        assert not sets.are_aliases("10.0.0.5", "10.0.0.6")

    def test_groups_match_ground_truth_on_internet(self, internet, standard_vps):
        """Property: every produced alias group is a subset of one real
        router's address set (no false merges)."""
        net = internet.network
        vp = standard_vps[0]
        region = internet.comcast.regions["denver"]
        addresses = [
            str(iface.address)
            for co in region.cos.values()
            for router in co.routers
            for iface in router.interfaces
        ]
        sets = AliasResolver(net, p2p_prefixlen=30).resolve(
            vp.host, addresses, src_address=vp.src_address
        )
        checked = 0
        for group in sets.groups:
            owners = {
                net.owner_router(address).uid
                for address in group
                if net.owner_router(address) is not None
            }
            assert len(owners) == 1, group
            checked += 1
        assert checked > 5
