"""Additional energy-model paths: wake exclusion, scaling, state table."""

import random

import pytest

from repro.energy.model import (
    EnergyTrace,
    PhoneEnergyModel,
    RadioState,
    STATE_CURRENT_MA,
)


class TestWakeExclusion:
    def test_include_wake_false_is_cheaper(self):
        model = PhoneEnergyModel()
        with_wake = model.traceroute_round(
            50, rng=random.Random(1), include_wake=True
        )
        without = model.traceroute_round(
            50, rng=random.Random(1), include_wake=False
        )
        assert without.total_mah < with_wake.total_mah
        assert with_wake.total_mah - without.total_mah >= 1.4  # >= min wake

    def test_wake_duration_accounted(self):
        model = PhoneEnergyModel()
        with_wake = model.traceroute_round(
            10, rng=random.Random(1), include_wake=True
        )
        without = model.traceroute_round(
            10, rng=random.Random(1), include_wake=False
        )
        assert with_wake.duration_s > without.duration_s


class TestScaling:
    def test_energy_roughly_linear_in_targets(self):
        model = PhoneEnergyModel()
        small = model.traceroute_round(
            100, rng=random.Random(2), include_wake=False
        ).total_mah
        large = model.traceroute_round(
            400, rng=random.Random(2), include_wake=False
        ).total_mah
        assert 3.0 < large / small < 5.0

    def test_larger_batches_save_more(self):
        slow = PhoneEnergyModel(parallel_batch=2)
        fast = PhoneEnergyModel(parallel_batch=16)
        assert fast.round_energy_mah(parallel=True) < slow.round_energy_mah(
            parallel=True
        )

    def test_fully_responsive_network_shrinks_the_gap(self):
        """The saving comes from unresponsive-hop timeouts, so with no
        loss the two modes converge (the Fig 14 mechanism)."""
        lossless = PhoneEnergyModel(unresponsive_rate=0.0)
        lossy = PhoneEnergyModel(unresponsive_rate=0.2)

        def saving(model):
            old = model.round_energy_mah(parallel=False)
            new = model.round_energy_mah(parallel=True)
            return 1 - new / old

        assert saving(lossy) > saving(lossless)


class TestStateTable:
    def test_all_states_have_currents(self):
        assert set(STATE_CURRENT_MA) == set(RadioState)

    def test_tx_is_the_hungriest(self):
        assert STATE_CURRENT_MA[RadioState.TX] == max(STATE_CURRENT_MA.values())

    def test_airplane_sleep_is_the_thriftiest(self):
        assert STATE_CURRENT_MA[RadioState.SLEEP_AIRPLANE] == min(
            STATE_CURRENT_MA.values()
        )
