"""Tests for the CLI and the package's public API surface."""

import json

import pytest

import repro
from repro.cli import build_parser, main


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_lazy_exports_resolve(self):
        assert repro.CableInferencePipeline.__name__ == "CableInferencePipeline"
        assert repro.AttInferencePipeline.__name__ == "AttInferencePipeline"
        assert repro.MobileIPv6Analyzer.__name__ == "MobileIPv6Analyzer"
        assert repro.SimulatedInternet.__name__ == "SimulatedInternet"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.NotAThing

    def test_error_hierarchy(self):
        from repro.errors import (
            AddressError,
            InferenceError,
            MeasurementError,
            ReproError,
            RoutingError,
            TopologyError,
        )

        for exc in (AddressError, InferenceError, MeasurementError,
                    RoutingError, TopologyError):
            assert issubclass(exc, ReproError)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_cable_args(self):
        args = build_parser().parse_args(
            ["map-cable", "comcast", "--sweep-vps", "4"]
        )
        assert args.isp == "comcast" and args.sweep_vps == 4

    def test_bad_isp_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map-cable", "frontier"])

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "9", "energy"])
        assert args.seed == 9


class TestEnergyCommand:
    def test_prints_comparison(self, capsys):
        assert main(["energy", "--targets", "80"]) == 0
        out = capsys.readouterr().out
        assert "saving:" in out and "battery life" in out


class TestShipCommand:
    def test_runs_and_exports(self, tmp_path, capsys):
        assert main(["--seed", "5", "ship", "--json-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "att-mobile" in out and "verizon" in out
        documents = sorted(tmp_path.glob("*.json"))
        assert len(documents) == 3
        payload = json.loads(documents[0].read_text())
        assert payload["kind"] == "mobile-carrier"


class TestMapAttCommand:
    def test_unknown_region_fails_cleanly(self, capsys):
        code = main(["map-att", "nowhere"])
        assert code == 2
        assert "unknown region" in capsys.readouterr().err


class TestSupervisedFlags:
    def test_worker_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["map-cable", "comcast"])
        assert args.workers == 0
        assert args.shard_deadline == 60.0
        assert args.max_shard_retries == 2
        assert args.pace_ms == 0.0
        assert args.worker_crash == args.worker_stall == args.worker_slow == 0.0

    def test_worker_flags_accept_values(self):
        args = build_parser().parse_args(
            ["map-cable", "comcast", "--workers", "4",
             "--shard-deadline", "5", "--max-shard-retries", "1",
             "--pace-ms", "0.5", "--worker-crash", "0.2"]
        )
        assert args.workers == 4 and args.shard_deadline == 5.0
        assert args.max_shard_retries == 1 and args.pace_ms == 0.5
        assert args.worker_crash == 0.2

    def test_parallel_flag_is_gone(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map-cable", "comcast", "--parallel", "4"])


class TestCorruptCheckpointResume:
    def test_resume_from_corrupt_checkpoint_is_a_clean_error(
        self, tmp_path, capsys
    ):
        """Satellite of the supervised-execution PR: a truncated or
        garbled checkpoint on ``--resume`` must exit 3 with one
        ``error:`` line, never a traceback."""
        bad = tmp_path / "campaign.ckpt"
        bad.write_text('{"version": 1, "stages": {TRUNCATED')
        code = main(["map-cable", "comcast", "--sweep-vps", "2",
                     "--resume", str(bad)])
        assert code == 3
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:")
        assert "\n" not in err
        assert "Traceback" not in err
