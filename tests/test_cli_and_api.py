"""Tests for the CLI and the package's public API surface."""

import json

import pytest

import repro
from repro.cli import build_parser, main


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_lazy_exports_resolve(self):
        assert repro.CableInferencePipeline.__name__ == "CableInferencePipeline"
        assert repro.AttInferencePipeline.__name__ == "AttInferencePipeline"
        assert repro.MobileIPv6Analyzer.__name__ == "MobileIPv6Analyzer"
        assert repro.SimulatedInternet.__name__ == "SimulatedInternet"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.NotAThing

    def test_error_hierarchy(self):
        from repro.errors import (
            AddressError,
            InferenceError,
            MeasurementError,
            ReproError,
            RoutingError,
            TopologyError,
        )

        for exc in (AddressError, InferenceError, MeasurementError,
                    RoutingError, TopologyError):
            assert issubclass(exc, ReproError)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_cable_args(self):
        args = build_parser().parse_args(
            ["map-cable", "comcast", "--sweep-vps", "4"]
        )
        assert args.isp == "comcast" and args.sweep_vps == 4

    def test_bad_isp_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map-cable", "frontier"])

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "9", "energy"])
        assert args.seed == 9


class TestEnergyCommand:
    def test_prints_comparison(self, capsys):
        assert main(["energy", "--targets", "80"]) == 0
        out = capsys.readouterr().out
        assert "saving:" in out and "battery life" in out


class TestShipCommand:
    def test_runs_and_exports(self, tmp_path, capsys):
        assert main(["--seed", "5", "ship", "--json-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "att-mobile" in out and "verizon" in out
        documents = sorted(tmp_path.glob("*.json"))
        assert len(documents) == 3
        payload = json.loads(documents[0].read_text())
        assert payload["kind"] == "mobile-carrier"


class TestMapAttCommand:
    def test_unknown_region_fails_cleanly(self, capsys):
        code = main(["map-att", "nowhere"])
        assert code == 2
        assert "unknown region" in capsys.readouterr().err
