"""Unit tests for vantage points and the cellular substrate."""

import pytest

from repro.errors import MeasurementError
from repro.measure.cellular import CellDatabase, signal_available
from repro.measure.vantage import VantagePoint, VantagePointSet, attach_host
from repro.net.router import Router
from repro.topology.geography import Geography


class TestVantagePoints:
    def test_kind_validation(self):
        host = Router("h")
        with pytest.raises(MeasurementError):
            VantagePoint("vp", "satellite", host, "10.0.0.1")

    def test_set_rejects_duplicates(self):
        fleet = VantagePointSet()
        vp = VantagePoint("vp-1", "ark", Router("h"), "10.0.0.1")
        fleet.add(vp)
        with pytest.raises(MeasurementError):
            fleet.add(VantagePoint("vp-1", "ark", Router("h2"), "10.0.0.2"))

    def test_get_missing(self):
        with pytest.raises(MeasurementError):
            VantagePointSet().get("nope")

    def test_of_kind_and_iteration_order(self):
        fleet = VantagePointSet()
        fleet.add(VantagePoint("b", "cloud", Router("h1"), "10.0.0.1"))
        fleet.add(VantagePoint("a", "ark", Router("h2"), "10.0.0.2"))
        assert [vp.name for vp in fleet] == ["a", "b"]
        assert len(fleet.of_kind("cloud")) == 1

    def test_attach_host(self, toy_network):
        net, routers = toy_network
        host, addr = attach_host(net, routers["dst"], "probe", "198.18.9.0/30")
        assert net.owner_router(addr) is host
        path = net.forwarding_path(routers["src"], host)
        assert path[-1] is host

    def test_attach_host_requires_slash30(self, toy_network):
        net, routers = toy_network
        with pytest.raises(MeasurementError):
            attach_host(net, routers["dst"], "probe", "198.18.9.0/29")


class TestCellDatabase:
    def test_roundtrip(self):
        db = CellDatabase()
        tower = db.serving_cell(32.71, -117.16)
        lat, lon = db.locate(tower.cellid)
        assert lat == pytest.approx(tower.lat)
        assert lon == pytest.approx(tower.lon)

    def test_quantization_error_bounded(self):
        db = CellDatabase(grid_deg=0.2)
        assert db.quantization_error_km(32.71, -117.16) < 20.0

    def test_same_cell_for_nearby_points(self):
        db = CellDatabase()
        a = db.serving_cell(32.70, -117.16)
        b = db.serving_cell(32.71, -117.15)
        assert a.cellid == b.cellid

    def test_invalid_grid(self):
        with pytest.raises(MeasurementError):
            CellDatabase(grid_deg=0)


class TestSignalModel:
    def test_signal_near_metro(self):
        geo = Geography()
        assert signal_available(34.05, -118.24, geo)  # downtown LA

    def test_no_signal_in_the_void(self):
        geo = Geography()
        # Middle of Nevada's empty quarter.
        assert not signal_available(39.5, -116.5, geo, max_km=60)

    def test_coverage_radius_scales_with_max_km(self):
        geo = Geography()
        # ~60 km outside Spokane: reachable for a generous radius,
        # unreachable for a tight one.
        point = (47.66, -118.2)
        assert signal_available(*point, geo, max_km=120)
        assert not signal_available(*point, geo, max_km=40)
