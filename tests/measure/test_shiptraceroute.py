"""Unit tests for the ShipTraceroute campaign driver."""

import pytest

from repro.errors import MeasurementError
from repro.measure.shiptraceroute import (
    DEFAULT_ITINERARY,
    ShipTracerouteCampaign,
)
from repro.topology.geography import Geography
from repro.topology.mobile import build_mobile_carriers


@pytest.fixture(scope="module")
def campaign():
    geo = Geography()
    return ShipTracerouteCampaign(build_mobile_carriers(geo, seed=5), geo, seed=5)


class TestRouteGeometry:
    def test_waypoints_follow_state_chain(self, campaign):
        waypoints = campaign.leg_waypoints(("San Diego", "CA"), ("Seattle", "WA"))
        states = [w.state for w in waypoints]
        assert states[0] == "CA" and states[-1] == "WA"
        assert "OR" in states

    def test_hourly_positions_cover_leg(self, campaign):
        waypoints = campaign.leg_waypoints(("San Diego", "CA"), ("Seattle", "WA"))
        positions = campaign.hourly_positions(waypoints)
        assert len(positions) > 15  # ~1800 km at 75 km/h plus hub dwell
        lats = [p[0] for p in positions]
        assert max(lats) > 45  # reaches the Pacific Northwest

    def test_hub_dwell_repeats_a_position(self, campaign):
        waypoints = campaign.leg_waypoints(("San Diego", "CA"), ("Phoenix", "AZ"))
        positions = campaign.hourly_positions(waypoints)
        from collections import Counter

        most_common = Counter(positions).most_common(1)[0][1]
        assert most_common >= 12  # the sorting-hub dwell

    def test_itinerary_has_twelve_legs(self):
        assert len(DEFAULT_ITINERARY) == 12


class TestCampaign:
    def test_requires_carriers(self):
        with pytest.raises(MeasurementError):
            ShipTracerouteCampaign({}, Geography())

    def test_run_phone_is_deterministic(self, campaign):
        carrier = campaign.carriers["verizon"]
        leg = [DEFAULT_ITINERARY[0]]
        first = campaign.run_phone(carrier, itinerary=leg)
        # Reset the carrier's attach counters for a fair replay.
        carrier._attach_counters.clear()
        second = campaign.run_phone(carrier, itinerary=leg)
        assert first.attempted == second.attempted
        assert [r.success for r in first.rounds] == [r.success for r in second.rounds]

    def test_successful_rounds_have_observables(self, campaign):
        carrier = campaign.carriers["att-mobile"]
        result = campaign.run_phone(carrier, itinerary=[DEFAULT_ITINERARY[0]])
        good = result.successful_rounds()
        assert good
        for round_ in good[:5]:
            assert round_.cellid is not None
            assert round_.attachment is not None
            assert round_.trace is not None and round_.trace.completed
            assert round_.min_rtt_to_server_ms > 0

    def test_failed_rounds_have_no_observables(self, campaign):
        carrier = campaign.carriers["tmobile"]
        result = campaign.run_phone(carrier, itinerary=[DEFAULT_ITINERARY[2]])
        failed = [r for r in result.rounds if not r.success]
        assert failed  # the ME->FL leg crosses weak-signal stretches
        for round_ in failed:
            assert round_.trace is None and round_.cellid is None

    def test_success_rate_bounds(self, campaign):
        carrier = campaign.carriers["verizon"]
        result = campaign.run_phone(carrier, itinerary=DEFAULT_ITINERARY[:4])
        assert 0.5 < result.success_rate <= 1.0

    def test_states_covered_accumulates(self, campaign):
        carrier = campaign.carriers["att-mobile"]
        result = campaign.run_phone(carrier, itinerary=DEFAULT_ITINERARY[:2])
        assert {"CA", "AZ"} <= result.states_covered()
