"""Unit tests for the scamper façade and the radio energy model."""

import random

import pytest

from repro.energy.model import EnergyTrace, PhoneEnergyModel, RadioState, STATE_CURRENT_MA
from repro.errors import MeasurementError
from repro.measure.scamper import Scamper


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def model(self):
        return PhoneEnergyModel()

    def test_parallel_cheaper_than_sequential(self, model):
        old = model.round_energy_mah(parallel=False)
        new = model.round_energy_mah(parallel=True)
        assert new < old

    def test_saving_matches_fig14(self, model):
        """The paper reports a 38 % reduction (8.6 -> 5.3 mAh)."""
        old = model.round_energy_mah(parallel=False)
        new = model.round_energy_mah(parallel=True)
        saving = 1 - new / old
        assert 0.30 < saving < 0.48
        assert 7.0 < old < 11.0
        assert 4.0 < new < 7.0

    def test_wake_cost_in_measured_range(self, model):
        rng = random.Random(3)
        for _ in range(20):
            assert 1.4 <= model.wake_energy_mah(rng) <= 2.6

    def test_sleep_airplane_cheaper_than_connected(self, model):
        airplane = model.sleep_energy_mah(55, airplane=True)
        connected = model.sleep_energy_mah(55, airplane=False)
        assert airplane < connected
        assert airplane == pytest.approx(
            STATE_CURRENT_MA[RadioState.SLEEP_AIRPLANE] * 55 / 60
        )

    def test_battery_life_about_twelve_days(self, model):
        days = model.battery_life_days(parallel=True)
        assert 10.0 < days < 15.0

    def test_parallel_extends_battery_life(self, model):
        assert model.battery_life_days(parallel=True) > model.battery_life_days(
            parallel=False
        )

    def test_trace_is_cumulative(self, model):
        trace = model.traceroute_round(20, rng=random.Random(0))
        energies = [e for _t, e in trace.samples]
        times = [t for t, _e in trace.samples]
        assert energies == sorted(energies)
        assert times == sorted(times)

    def test_more_targets_cost_more(self, model):
        small = model.round_energy_mah(n_targets=50)
        large = model.round_energy_mah(n_targets=500)
        assert large > small

    def test_empty_trace(self):
        assert EnergyTrace().total_mah == 0.0
        assert EnergyTrace().duration_s == 0.0


class TestScamper:
    def test_mode_validation(self):
        with pytest.raises(MeasurementError):
            Scamper(mode="warp")

    def test_round_energy_by_mode(self):
        sequential = Scamper(mode="sequential").round_energy(100)
        parallel = Scamper(mode="parallel").round_energy(100)
        assert parallel.total_mah < sequential.total_mah

    def test_run_round_needs_network(self):
        from repro.net.router import Router

        with pytest.raises(MeasurementError):
            Scamper(mode="parallel").run_round(Router("r"), ["10.0.0.1"])

    def test_run_round_on_toy_network(self, toy_network):
        net, routers = toy_network
        scamper = Scamper(network=net, mode="parallel")
        outcome = scamper.run_round(
            routers["src"], ["10.0.0.14", "10.0.0.6"]
        )
        assert len(outcome.traces) == 2
        assert outcome.energy_mah > 0
        assert outcome.mode == "parallel"
