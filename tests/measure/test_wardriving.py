"""Unit tests for the McTraceroute wardriving campaign."""

import pytest

from repro.errors import MeasurementError
from repro.measure.traceroute import Hop, TraceResult
from repro.measure.wardriving import McTracerouteCampaign


@pytest.fixture(scope="module")
def campaign(internet):
    wardriving = McTracerouteCampaign(
        internet.network, internet.att, seed=17, target_share=0.4
    )
    wardriving.place_hotspots(internet.att.regions["lsanca"], count=58)
    return wardriving


class TestPlacement:
    def test_hotspot_count(self, campaign):
        assert len(campaign.hotspots) == 58

    def test_target_share_near_configured(self, campaign):
        on_target = sum(1 for h in campaign.hotspots if h.on_target_isp)
        assert 12 <= on_target <= 35  # ~40% of 58 (paper: 23)

    def test_usable_vps_are_wifi(self, campaign):
        for vp in campaign.usable_vps():
            assert vp.kind == "wifi"

    def test_competitor_hotspots_have_no_vp(self, campaign):
        for hotspot in campaign.hotspots:
            if hotspot.isp_name == "competitor":
                assert hotspot.vp is None

    def test_empty_region_rejected(self, internet):
        from repro.topology.co import Region

        wardriving = McTracerouteCampaign(internet.network, internet.att)
        with pytest.raises(MeasurementError):
            wardriving.place_hotspots(Region("empty", "att"), count=5)


class TestSweep:
    def test_sweep_produces_traces(self, campaign, internet):
        import re

        pattern = re.compile(r"lightspeed\.lsanca\.sbcglobal\.net$")
        targets = internet.network.rdns.addresses_matching(pattern)[:20]
        traces = campaign.sweep(targets)
        assert traces
        assert all(t.vp_name.startswith("mcd-") for t in traces)

    def test_distinct_paths_skips_access_hop(self):
        hops_a = [Hop(1, "10.0.0.1"), Hop(2, "10.0.0.5"), Hop(3, "10.0.0.9")]
        hops_b = [Hop(1, "10.0.9.1"), Hop(2, "10.0.0.5"), Hop(3, "10.0.0.9")]
        traces = [
            TraceResult("a", "10.0.0.9", hops_a, completed=True),
            TraceResult("b", "10.0.0.9", hops_b, completed=True),
        ]
        # Identical past the first hop: one distinct path.
        assert len(McTracerouteCampaign.distinct_ip_paths(traces)) == 1
