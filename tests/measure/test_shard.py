"""Deterministic sharding: stable ids, full coverage, ordered merge."""

import pytest

from repro.measure.shard import (
    OVERPARTITION,
    Shard,
    merge_shard_results,
    plan_shards,
    shard_size_for,
)

JOBS = [(f"vp{i % 3}", f"198.18.5.{i}") for i in range(100)]


class TestPlanning:
    def test_same_inputs_same_shards(self):
        first = plan_shards(JOBS, "s", shard_size=10)
        second = plan_shards(JOBS, "s", shard_size=10)
        assert [s.shard_id for s in first] == [s.shard_id for s in second]
        assert [s.jobs for s in first] == [s.jobs for s in second]

    def test_every_job_covered_exactly_once_in_order(self):
        shards = plan_shards(JOBS, "s", shard_size=7)
        flattened = [job for shard in shards for job in shard.jobs]
        assert flattened == JOBS

    def test_id_embeds_stage_index_and_content_digest(self):
        shard = plan_shards(JOBS, "slash24", shard_size=10)[3]
        assert shard.shard_id.startswith("slash24/0003-")
        # Different job content at the same index → different id.
        other = plan_shards(list(reversed(JOBS)), "slash24", shard_size=10)[3]
        assert other.shard_id != shard.shard_id

    def test_default_size_overpartitions_per_worker(self):
        shards = plan_shards(JOBS, "s", workers=4)
        # Blast radius of one crash: at most ceil(jobs / (workers ×
        # OVERPARTITION)) jobs ride on any single shard.
        size = shard_size_for(len(JOBS), workers=4)
        assert size == 4  # ceil(100 / (4 × OVERPARTITION))
        assert OVERPARTITION * 4 == 32
        assert len(shards[0].jobs) == size
        assert len(shards) == 25  # ceil(100 / 4): well above the pool width

    def test_empty_jobs_plan_nothing(self):
        assert plan_shards([], "s") == []

    def test_round_trip_through_dict(self):
        shard = plan_shards(JOBS, "s", shard_size=10, flow_id=2)[0]
        assert Shard.from_dict(shard.as_dict()) == shard


class TestMerge:
    def test_merge_restores_job_order(self):
        shards = plan_shards(JOBS, "s", shard_size=9)
        by_id = {s.shard_id: [f"r:{vp}:{t}" for vp, t in s.jobs]
                 for s in shards}
        merged = merge_shard_results(list(reversed(shards)), by_id)
        assert merged == [f"r:{vp}:{t}" for vp, t in JOBS]

    def test_missing_shard_contributes_nothing(self):
        shards = plan_shards(JOBS, "s", shard_size=50)
        by_id = {shards[1].shard_id: list(shards[1].jobs)}
        assert merge_shard_results(shards, by_id) == list(shards[1].jobs)

    def test_wrong_result_count_raises(self):
        shards = plan_shards(JOBS, "s", shard_size=50)
        by_id = {shards[0].shard_id: ["only-one"]}
        with pytest.raises(ValueError, match="1 results for 50 jobs"):
            merge_shard_results(shards, by_id)
