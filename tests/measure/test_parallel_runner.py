"""ParallelCampaignRunner: byte-identical to serial in every regime."""

import pytest

from repro.errors import CampaignInterrupted
from repro.faults import FaultInjector, FaultPlan
from repro.io.checkpoint import CampaignCheckpoint, trace_to_dict
from repro.measure.parallel import ParallelCampaignRunner
from repro.measure.runner import CampaignRunner
from repro.measure.traceroute import Tracerouter
from repro.measure.vantage import VantagePoint, attach_host

TARGETS = ["10.0.0.14", "10.0.0.6", "198.18.5.1", "198.18.5.9"]


@pytest.fixture()
def fleet(toy_network):
    """Three measurement hosts hanging off the toy diamond's router a."""
    net, routers = toy_network
    vps = []
    for index in range(3):
        host, addr = attach_host(
            net, routers["a"], f"probe{index}", f"10.9.{index}.0/30"
        )
        vps.append(VantagePoint(f"vp{index}", "transit", host, addr))
    return net, routers, vps


def _jobs(vps, targets=TARGETS):
    return [(vp, target) for vp in vps for target in targets]


def _corpus(runner, jobs):
    return [trace_to_dict(t) for t in runner.run(jobs, stage="s")]


class TestFaultFreeParity:
    def test_corpus_byte_identical_to_serial(self, fleet):
        net, _routers, vps = fleet
        serial = CampaignRunner(Tracerouter(net), vps)
        reference = _corpus(serial, _jobs(vps))

        parallel = ParallelCampaignRunner(Tracerouter(net), vps, workers=3)
        assert _corpus(parallel, _jobs(vps)) == reference

    def test_health_counters_match_serial(self, fleet):
        net, _routers, vps = fleet
        serial = CampaignRunner(Tracerouter(net), vps)
        serial.run(_jobs(vps), stage="s")

        parallel = ParallelCampaignRunner(Tracerouter(net), vps, workers=3)
        parallel.run(_jobs(vps), stage="s")
        assert parallel.health.as_dict() == serial.health.as_dict()

    def test_single_worker_degenerates_cleanly(self, fleet):
        net, _routers, vps = fleet
        serial = CampaignRunner(Tracerouter(net), vps)
        reference = _corpus(serial, _jobs(vps))

        parallel = ParallelCampaignRunner(Tracerouter(net), vps, workers=1)
        assert _corpus(parallel, _jobs(vps)) == reference


class TestFaultedParity:
    def _run_serial(self, net, vps, plan):
        net.attach_faults(FaultInjector(plan))
        runner = CampaignRunner(Tracerouter(net), vps)
        corpus = _corpus(runner, _jobs(vps))
        return corpus, runner.health.as_dict()

    def _run_parallel(self, net, vps, plan, workers=3):
        net.attach_faults(FaultInjector(plan))
        runner = ParallelCampaignRunner(Tracerouter(net), vps, workers=workers)
        corpus = _corpus(runner, _jobs(vps))
        return corpus, runner.health.as_dict()

    def test_probe_loss_parity(self, fleet):
        net, _routers, vps = fleet
        plan = FaultPlan(seed=7, probe_loss=0.15, rdns_timeout=0.1)
        reference, ref_health = self._run_serial(net, vps, plan)
        corpus, health = self._run_parallel(net, vps, plan)
        assert corpus == reference
        assert health == ref_health

    def test_vp_death_and_failover_parity(self, fleet):
        # VP death reorders work across VPs — the hard case.  The doomed
        # VP's unconsumed speculations must be discarded and its failed-
        # over jobs re-probed synchronously under the stand-in's identity.
        net, _routers, vps = fleet
        plan = FaultPlan(seed=1, probe_loss=0.15, vp_dropout=1,
                         vp_dropout_after=5)
        reference, ref_health = self._run_serial(net, vps, plan)
        corpus, health = self._run_parallel(net, vps, plan)
        assert corpus == reference
        assert health == ref_health
        assert health["vps_lost"]  # the scenario actually exercised death

    def test_lsp_flap_parity(self, fleet):
        net, _routers, vps = fleet
        plan = FaultPlan(seed=11, lsp_flap=0.3, probe_loss=0.05)
        reference, ref_health = self._run_serial(net, vps, plan)
        corpus, health = self._run_parallel(net, vps, plan)
        assert corpus == reference
        assert health == ref_health


class TestCheckpointResumeParity:
    PLAN = FaultPlan(seed=1, probe_loss=0.15, vp_dropout=1,
                     vp_dropout_after=5)

    def test_resume_converges_on_serial_output(self, fleet, tmp_path):
        net, _routers, vps = fleet
        net.attach_faults(FaultInjector(self.PLAN))
        reference = _corpus(CampaignRunner(Tracerouter(net), vps), _jobs(vps))

        # Kill a parallel campaign mid-stage...
        net.attach_faults(FaultInjector(self.PLAN))
        checkpoint = CampaignCheckpoint(tmp_path / "camp.json")
        runner = ParallelCampaignRunner(
            Tracerouter(net), vps, checkpoint=checkpoint, stop_after=5,
            workers=3,
        )
        with pytest.raises(CampaignInterrupted):
            runner.run(_jobs(vps), stage="s")

        # ...then resume it in parallel, as a new process would.
        loaded = CampaignCheckpoint.load(tmp_path / "camp.json")
        net.attach_faults(FaultInjector(self.PLAN))
        resumed = ParallelCampaignRunner.resumed(
            Tracerouter(net), vps, loaded, workers=3
        )
        traces = resumed.run(_jobs(vps), stage="s")
        assert [trace_to_dict(t) for t in traces] == reference
        assert resumed.health.resumed is True

    def test_serial_checkpoint_resumable_in_parallel(self, fleet, tmp_path):
        # Mixed-mode: a serial campaign's checkpoint picked up by the
        # parallel runner (e.g. operator adds --parallel when resuming).
        net, _routers, vps = fleet
        net.attach_faults(FaultInjector(self.PLAN))
        reference = _corpus(CampaignRunner(Tracerouter(net), vps), _jobs(vps))

        net.attach_faults(FaultInjector(self.PLAN))
        checkpoint = CampaignCheckpoint(tmp_path / "camp.json")
        serial = CampaignRunner(
            Tracerouter(net), vps, checkpoint=checkpoint, stop_after=5
        )
        with pytest.raises(CampaignInterrupted):
            serial.run(_jobs(vps), stage="s")

        loaded = CampaignCheckpoint.load(tmp_path / "camp.json")
        net.attach_faults(FaultInjector(self.PLAN))
        resumed = ParallelCampaignRunner.resumed(
            Tracerouter(net), vps, loaded, workers=2
        )
        traces = resumed.run(_jobs(vps), stage="s")
        assert [trace_to_dict(t) for t in traces] == reference
