"""Traceroute behaviour under reply policies and rDNS epochs."""

import ipaddress

import pytest

from repro.measure.traceroute import Tracerouter
from repro.net.router import ReplyPolicy


class TestInternalOnlyFiltering:
    def test_filtered_hops_show_stars_for_external_sources(self, toy_network):
        net, routers = toy_network
        policy = ReplyPolicy(
            internal_only=(ipaddress.ip_network("10.0.0.0/8"),)
        )
        routers["b1"].policy = policy
        routers["b2"].policy = policy
        external = Tracerouter(net).trace(
            routers["src"], "10.0.0.14", src_address="203.0.113.9"
        )
        internal = Tracerouter(net).trace(
            routers["src"], "10.0.0.14", src_address="10.0.0.1"
        )
        assert external.hops[1].address is None
        assert internal.hops[1].address is not None

    def test_destination_echo_also_filtered(self, toy_network):
        net, routers = toy_network
        routers["dst"].policy = ReplyPolicy(
            internal_only=(ipaddress.ip_network("10.0.0.0/8"),)
        )
        external = Tracerouter(net).trace(
            routers["src"], "10.0.0.14", src_address="203.0.113.9"
        )
        assert not external.completed


class TestRdnsEpochs:
    def test_trace_reports_live_zone_not_snapshot(self, toy_network):
        """Hop rDNS uses dig (the live zone), so a fixed record shows
        its new name even when the bulk snapshot still has the old one."""
        net, routers = toy_network
        net.rdns.set_stale("10.0.0.2", "old-name.example.net", in_dig=False)
        net.rdns.set("10.0.0.2", "new-name.example.net", snapshot=False)
        trace = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        assert trace.hops[0].rdns == "new-name.example.net"

    def test_stale_live_record_is_faithfully_reported(self, toy_network):
        """The engine reports what DNS says — staleness is the
        *inference* layer's problem, not the prober's."""
        net, routers = toy_network
        net.rdns.set_stale("10.0.0.2", "wrong-co.example.net", in_dig=True)
        trace = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        assert trace.hops[0].rdns == "wrong-co.example.net"


class TestProbeAccounting:
    def test_unroutable_counts_trace_but_no_probes(self, toy_network):
        """An unroutable target still counts as a trace run, but no
        per-TTL probes were answered or even sent into the topology."""
        net, routers = toy_network
        tracer = Tracerouter(net)
        tracer.trace(routers["src"], "203.0.113.1")
        assert tracer.traces_run == 1
        assert tracer.probes_sent == 0

    def test_source_address_defaults_to_first_interface(self, toy_network):
        net, routers = toy_network
        trace = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        assert trace.src_address == "10.0.0.1"
