"""Unit tests for the traceroute engine on the toy network."""

import pytest

from repro.measure.traceroute import Hop, TraceResult, Tracerouter
from repro.net.router import ReplyPolicy


class TestTrace:
    def test_reaches_destination(self, toy_network):
        net, routers = toy_network
        tracer = Tracerouter(net)
        result = tracer.trace(routers["src"], "10.0.0.14")
        assert result.completed
        assert result.hops[-1].address == "10.0.0.14"

    def test_hop_count(self, toy_network):
        net, routers = toy_network
        result = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        assert len(result.hops) == 3  # a, b*, dst

    def test_reply_addresses_are_inbound(self, toy_network):
        net, routers = toy_network
        result = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        first_hop = result.hops[0]
        assert first_hop.address == "10.0.0.2"  # a's iface toward src

    def test_rtts_monotonic(self, toy_network):
        net, routers = toy_network
        result = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        rtts = [h.rtt_ms for h in result.hops]
        assert rtts == sorted(rtts)

    def test_reply_ttl_decreases(self, toy_network):
        net, routers = toy_network
        result = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        ttls = [h.reply_ttl for h in result.hops]
        assert ttls == sorted(ttls, reverse=True)

    def test_nonexistent_target_in_routed_prefix(self, toy_network):
        net, routers = toy_network
        result = Tracerouter(net).trace(routers["src"], "198.18.5.200")
        assert not result.completed
        assert result.hops[-1].address is None  # dst never echoes

    def test_unroutable_target(self, toy_network):
        net, routers = toy_network
        result = Tracerouter(net).trace(routers["src"], "203.0.113.1")
        assert result.hops == [] and not result.completed

    def test_silent_router_shows_star(self, toy_network):
        net, routers = toy_network
        routers["a"].policy = ReplyPolicy(respond_prob=0.0)
        result = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        assert result.hops[0].address is None
        assert result.completed  # destination still reached

    def test_flow_determinism(self, toy_network):
        net, routers = toy_network
        tracer = Tracerouter(net)
        first = tracer.trace(routers["src"], "10.0.0.14", flow_id=9)
        second = tracer.trace(routers["src"], "10.0.0.14", flow_id=9)
        assert [h.address for h in first.hops] == [h.address for h in second.hops]

    def test_flows_explore_ecmp(self, toy_network):
        net, routers = toy_network
        tracer = Tracerouter(net)
        middles = set()
        for flow in range(32):
            result = tracer.trace(routers["src"], "10.0.0.14", flow_id=flow)
            middles.add(result.hops[1].address)
        assert len(middles) == 2  # both b1 and b2 observed

    def test_max_ttl_truncates(self, toy_network):
        net, routers = toy_network
        tracer = Tracerouter(net, max_ttl=1)
        result = tracer.trace(routers["src"], "10.0.0.14")
        assert len(result.hops) == 1 and not result.completed

    def test_probes_counted(self, toy_network):
        """probes_sent counts one probe per TTL per attempt;
        traces_run keeps the per-traceroute count."""
        net, routers = toy_network
        tracer = Tracerouter(net)
        traces = tracer.trace_many(routers["src"], ["10.0.0.14", "10.0.0.6"])
        assert tracer.traces_run == 2
        assert tracer.probes_sent == sum(len(t.hops) for t in traces)
        assert tracer.probes_sent > tracer.traces_run

    def test_retries_counted(self, toy_network):
        net, routers = toy_network
        tracer = Tracerouter(net, attempts=3)
        trace = tracer.trace(routers["src"], "10.0.0.14")
        # Every hop answered on the first try: no retries consumed.
        assert tracer.probes_retried == 0
        assert all(h.attempts == 1 for h in trace.hops)

    def test_rdns_attached(self, toy_network):
        net, routers = toy_network
        net.rdns.set("10.0.0.2", "a.example.net")
        result = Tracerouter(net).trace(routers["src"], "10.0.0.14")
        assert result.hops[0].rdns == "a.example.net"


class TestTraceResultHelpers:
    def _result(self, completed=True):
        hops = [
            Hop(1, "10.0.0.1"),
            Hop(2, None),
            Hop(3, "10.0.0.5"),
            Hop(4, "10.0.0.9"),
        ]
        return TraceResult("192.0.2.1", "10.0.0.9", hops, completed=completed)

    def test_responsive_addresses(self):
        assert self._result().responsive_addresses() == [
            "10.0.0.1", "10.0.0.5", "10.0.0.9",
        ]

    def test_adjacent_pairs_skip_silent_gaps(self):
        assert self._result().adjacent_pairs() == [("10.0.0.5", "10.0.0.9")]

    def test_exclude_final_echo(self):
        pairs = self._result().adjacent_pairs(exclude_final_echo=True)
        assert pairs == []

    def test_final_echo_kept_when_incomplete(self):
        pairs = self._result(completed=False).adjacent_pairs(
            exclude_final_echo=True
        )
        assert pairs == [("10.0.0.5", "10.0.0.9")]

    def test_empty_hops(self):
        result = TraceResult("a", "b", [])
        assert result.adjacent_pairs() == []
        assert result.responsive_addresses() == []
