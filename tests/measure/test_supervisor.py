"""SupervisedCampaignRunner: crash-tolerant pool, serial-identical corpus.

Every test runs real ``spawn``-context worker processes over the toy
substrate (the same diamond the ``toy_network`` fixture builds), so
what is exercised here is the actual supervisor loop: heartbeats,
SIGKILL recovery, stall detection, poison quarantine, and checkpointed
shard reuse.
"""

import json

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.io.checkpoint import CampaignCheckpoint, trace_to_dict
from repro.measure.runner import CampaignRunner
from repro.measure.substrates import WorkerSpec, toy_substrate
from repro.measure.supervisor import (
    SupervisedCampaignRunner,
    _trace_from_wire,
    _trace_to_wire,
)

SPEC = WorkerSpec("repro.measure.substrates:toy_substrate", {"hosts": 3})
TARGETS = [f"198.18.5.{i}" for i in range(1, 41)]


def _jobs(vps):
    return [(vp, target) for vp in vps.values() for target in TARGETS]


def _corpus(traces):
    return json.dumps([trace_to_dict(t) for t in traces], sort_keys=True)


def _serial_corpus(plan_kwargs=None):
    tracer, vps = toy_substrate(hosts=3)
    if plan_kwargs:
        tracer.network.attach_faults(FaultInjector(FaultPlan(**plan_kwargs)))
    return _corpus(CampaignRunner(tracer, list(vps.values())).run(
        _jobs(vps), stage="s"
    ))


def _supervised(plan_kwargs=None, checkpoint=None, **kwargs):
    tracer, vps = toy_substrate(hosts=3)
    if plan_kwargs:
        tracer.network.attach_faults(FaultInjector(FaultPlan(**plan_kwargs)))
    runner = SupervisedCampaignRunner(
        tracer, list(vps.values()), worker_spec=SPEC, checkpoint=checkpoint,
        workers=2, shard_size=10, **kwargs,
    )
    traces = runner.run(_jobs(vps), stage="s")
    return _corpus(traces), runner


class TestWireFormat:
    def test_round_trip_and_json_safety(self):
        tracer, vps = toy_substrate(hosts=1)
        vp = vps["vp0"]
        trace = tracer.trace(vp.host, "198.18.5.1", src_address=vp.src_address)
        trace.vp_name = vp.name
        wire = _trace_to_wire(trace)
        assert trace_to_dict(_trace_from_wire(wire)) == trace_to_dict(trace)
        # A shard parked in the checkpoint JSON-round-trips its wire
        # tuples into lists; rebuilding must accept that form too.
        relisted = json.loads(json.dumps(wire))
        assert trace_to_dict(_trace_from_wire(relisted)) == trace_to_dict(trace)


class TestFaultFreeParity:
    def test_corpus_byte_identical_to_serial(self):
        corpus, runner = _supervised()
        assert corpus == _serial_corpus()
        assert runner.health.shards_planned == 12
        assert runner.health.shards_poisoned == 0
        assert runner.health.workers_crashed == 0
        assert not runner.health.degraded


class TestCrashRecovery:
    def test_sigkilled_worker_shard_is_retried_and_corpus_matches(self):
        # worker_crash faults SIGKILL the worker mid-shard, between
        # heartbeats; the supervisor must see the pipe drop, charge the
        # running shard, and rerun it on a fresh worker.
        plan = dict(seed=11, worker_crash=0.3)
        corpus, runner = _supervised(plan)
        assert runner.health.workers_crashed > 0
        assert runner.health.shards_retried >= runner.health.workers_crashed
        assert runner.health.workers_spawned > 2  # replacements spawned
        assert corpus == _serial_corpus(plan)
        # Recovered completely: degradation recorded, nothing dropped.
        assert runner.health.shards_poisoned == 0
        assert runner.health.targets_skipped == 0

    def test_stalled_worker_is_killed_on_heartbeat_timeout(self):
        plan = dict(seed=7, worker_stall=0.25)
        corpus, runner = _supervised(
            plan, heartbeat_interval=0.05, heartbeat_timeout=0.5,
        )
        assert runner.health.workers_stalled > 0
        assert corpus == _serial_corpus(plan)


class TestPoisonQuarantine:
    def test_exhausted_retries_quarantine_the_shard(self):
        corpus, runner = _supervised(
            dict(seed=3, worker_crash=1.0), max_shard_retries=0,
        )
        assert runner.health.shards_poisoned == runner.health.shards_planned
        assert runner.health.targets_skipped == len(TARGETS) * 3
        assert runner.health.degraded
        assert corpus == "[]"
        assert len(runner.quarantine) == runner.health.shards_poisoned
        record = runner.quarantine.records[0]
        assert record.stage == "supervisor"
        assert record.category == "poison-shard"
        assert record.dropped


class TestCheckpointResume:
    def test_completed_shards_are_reused_without_spawning(self, tmp_path):
        path = tmp_path / "ckpt.json"
        first = CampaignCheckpoint(path)
        tracer, vps = toy_substrate(hosts=3)
        runner = SupervisedCampaignRunner(
            tracer, list(vps.values()), worker_spec=SPEC, checkpoint=first,
            workers=2, shard_size=10,
        )
        # Speculate only — the stage is never replayed, so the shard
        # payloads stay parked in the checkpoint (a supervisor killed
        # between speculation and replay leaves exactly this state).
        runner._precompute(_jobs(vps), "s", 0)
        first.save()
        assert runner.health.shards_planned == 12

        resumed = CampaignCheckpoint.load(path)
        corpus, second = _supervised(checkpoint=resumed)
        assert second.health.shards_reused == 12
        assert second.health.workers_spawned == 0
        assert corpus == _serial_corpus()
        # Replay completed the stage: parked payloads are dropped.
        assert resumed.shard_results("s") == {}


class TestPacing:
    def test_pace_rides_the_tracer_config_to_workers(self):
        tracer, vps = toy_substrate(hosts=3)
        tracer.pace_ms = 0.01
        runner = SupervisedCampaignRunner(
            tracer, list(vps.values()), worker_spec=SPEC, workers=2,
            shard_size=40,
        )
        traces = runner.run(_jobs(vps), stage="s")
        assert len(traces) == len(TARGETS) * 3
        # Pacing is pure wall-clock: the corpus bytes must not move.
        assert _corpus(traces) == _serial_corpus()


class TestValidation:
    def test_bad_worker_spec_fails_eagerly(self):
        with pytest.raises(Exception, match="not importable"):
            WorkerSpec("repro.not.a.module:factory")


class TestGracefulShutdown:
    """Satellite: Ctrl-C / SIGTERM must checkpoint and leak nothing."""

    def test_interrupt_flushes_checkpoint_and_terminates_workers(
        self, tmp_path, monkeypatch
    ):
        import multiprocessing
        import time

        from repro.errors import CampaignInterrupted
        from repro.measure import supervisor as supervisor_module

        path = tmp_path / "campaign.ckpt"
        tracer, vps = toy_substrate(hosts=3)
        runner = SupervisedCampaignRunner(
            tracer, list(vps.values()), worker_spec=SPEC,
            checkpoint=CampaignCheckpoint(path), workers=2, shard_size=10,
        )
        real_wait = supervisor_module._conn_wait
        polls = {"count": 0}

        def interrupting_wait(conns, timeout=None):
            polls["count"] += 1
            if polls["count"] > 6:
                raise KeyboardInterrupt
            return real_wait(conns, timeout=timeout)

        monkeypatch.setattr(supervisor_module, "_conn_wait",
                            interrupting_wait)
        with pytest.raises(CampaignInterrupted, match="checkpoint"):
            runner.run(_jobs(vps), stage="s")

        assert runner.health.interrupted
        # The checkpoint was flushed on the way out with honest health.
        saved = CampaignCheckpoint.load(path)
        assert saved.health["interrupted"] is True
        # No leaked spawn processes: the pool was torn down.
        deadline = time.monotonic() + 10
        while multiprocessing.active_children() \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

        # A resume from that checkpoint completes the campaign and the
        # corpus is byte-identical to the serial reference.
        monkeypatch.setattr(supervisor_module, "_conn_wait", real_wait)
        tracer2, vps2 = toy_substrate(hosts=3)
        resumed = SupervisedCampaignRunner.resumed(
            tracer2, list(vps2.values()), CampaignCheckpoint.load(path),
            worker_spec=SPEC, workers=2, shard_size=10,
        )
        corpus = _corpus(resumed.run(_jobs(vps2), stage="s"))
        assert corpus == _serial_corpus()
        assert resumed.health.resumed
        assert not resumed.health.interrupted
