"""Unit tests for ping and the TTL-limited echo trick."""

import ipaddress

import pytest

from repro.measure.ping import Pinger
from repro.net.router import ReplyPolicy


class TestPing:
    def test_basic_ping(self, toy_network):
        net, routers = toy_network
        result = Pinger(net).ping(routers["src"], "10.0.0.14", count=10)
        assert result.responded and result.received == 10
        assert result.min_rtt_ms is not None
        assert result.min_rtt_ms <= result.median_rtt_ms

    def test_nonexistent_address(self, toy_network):
        net, routers = toy_network
        result = Pinger(net).ping(routers["src"], "198.18.5.200", count=5)
        assert not result.responded

    def test_unroutable_address(self, toy_network):
        net, routers = toy_network
        result = Pinger(net).ping(routers["src"], "203.0.113.1", count=5)
        assert not result.responded

    def test_echo_filter_blocks_external(self, toy_network):
        net, routers = toy_network
        routers["dst"].policy = ReplyPolicy(
            echo_internal_only=(ipaddress.ip_network("10.0.0.0/8"),)
        )
        blocked = Pinger(net).ping(
            routers["src"], "10.0.0.14", src_address="203.0.113.9"
        )
        allowed = Pinger(net).ping(
            routers["src"], "10.0.0.14", src_address="10.0.0.1"
        )
        assert not blocked.responded and allowed.responded

    def test_min_rtt_close_to_geometry(self, toy_network):
        net, routers = toy_network
        result = Pinger(net, jitter_ms=0.0).ping(routers["src"], "10.0.0.14")
        # 3 links x 10 km => one-way 0.15 ms + 3 hop processing.
        expected = 2 * (3 * (10 / 200.0 + 0.05)) + 0.1
        assert result.min_rtt_ms == pytest.approx(expected, abs=0.05)


class TestTtlLimitedPing:
    def test_expires_at_middle_hop(self, toy_network):
        net, routers = toy_network
        result = Pinger(net).ttl_limited_ping(
            routers["src"], "10.0.0.14", ttl=1, count=5
        )
        assert result.responded
        direct = Pinger(net).ping(routers["src"], "10.0.0.14", count=5)
        assert result.min_rtt_ms < direct.min_rtt_ms

    def test_works_even_when_echo_blocked(self, toy_network):
        """The §6.3 trick: the penultimate device answers TTL expiry
        even though it refuses direct echo from outside."""
        net, routers = toy_network
        routers["b1"].policy = ReplyPolicy(
            echo_internal_only=(ipaddress.ip_network("10.0.0.0/8"),)
        )
        routers["b2"].policy = routers["b1"].policy
        external = "203.0.113.9"
        result = Pinger(net).ttl_limited_ping(
            routers["src"], "10.0.0.14", ttl=2, src_address=external
        )
        assert result.responded

    def test_ttl_at_destination_returns_nothing(self, toy_network):
        net, routers = toy_network
        result = Pinger(net).ttl_limited_ping(
            routers["src"], "10.0.0.14", ttl=3, count=5
        )
        assert not result.responded  # expiring at dst is not a transit reply

    def test_ttl_beyond_path(self, toy_network):
        net, routers = toy_network
        result = Pinger(net).ttl_limited_ping(
            routers["src"], "10.0.0.14", ttl=9, count=5
        )
        assert not result.responded

    def test_unroutable(self, toy_network):
        net, routers = toy_network
        result = Pinger(net).ttl_limited_ping(
            routers["src"], "203.0.113.1", ttl=1
        )
        assert not result.responded
