"""Shared fixtures.

Unit tests use the small hand-built ``toy_network``; integration tests
share session-scoped campaign results so the expensive sweeps run once.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.net.network import Network
from repro.net.router import ReplyPolicy, Router

# Property-based tests: "ci" pins the derandomized profile so runs are
# reproducible across workers; "dev" (default) explores fresh examples.
hypothesis_settings.register_profile(
    "ci", max_examples=60, derandomize=True, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.register_profile("dev", max_examples=30, deadline=None)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture()
def toy_network():
    """A 6-router diamond with a routed customer prefix.

    Delegates to :func:`repro.measure.substrates.toy_network` so the
    fixture and the substrate a spawned supervisor worker rebuilds are
    the same network by construction.
    """
    from repro.measure.substrates import toy_network as build

    return build()


@pytest.fixture(scope="session")
def internet():
    """A full simulated internet, built once per test session."""
    from repro.topology.internet import SimulatedInternet

    return SimulatedInternet(seed=3)


@pytest.fixture(scope="session")
def standard_vps(internet):
    return list(internet.build_standard_vps())


@pytest.fixture(scope="session")
def comcast_result(internet, standard_vps):
    """One full Comcast-like pipeline run shared by integration tests."""
    from repro.infer.pipeline import CableInferencePipeline

    pipeline = CableInferencePipeline(
        internet.network, internet.comcast, standard_vps, sweep_vps=6
    )
    return pipeline.run()


@pytest.fixture(scope="session")
def att_topology(internet):
    """One full AT&T San Diego pipeline run."""
    from repro.infer.att import AttInferencePipeline
    from repro.measure.wardriving import McTracerouteCampaign

    internal = list(internet.telco_internal_vps())
    campaign = McTracerouteCampaign(internet.network, internet.att, seed=3)
    campaign.place_hotspots(internet.att.regions["sndgca"], count=58)
    pipeline = AttInferencePipeline(internet.network, internal)
    return pipeline.run_region(
        "sndgca", extra_vps=campaign.usable_vps(), dpr_stride=2
    )


@pytest.fixture(scope="session")
def ship_results(internet):
    """One full ShipTraceroute campaign over all three carriers."""
    from repro.measure.shiptraceroute import ShipTracerouteCampaign

    campaign = ShipTracerouteCampaign(
        internet.mobile_carriers, internet.geography, seed=3
    )
    return campaign, campaign.run()
