"""Guardrails end-to-end: pipeline quarantine and CLI diagnostics.

The pipeline runs here reuse the one-small-region restriction from the
fault-tolerance tests so a full §5 campaign stays cheap.
"""

import ipaddress
import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan
from repro.infer.pipeline import CableInferencePipeline
from repro.io.export import region_to_json
from repro.validate import quarantine_report_from_json, quarantine_report_to_json

REGION = "saltlake"

STALE_PLAN = FaultPlan(seed=5, stale_rdns=0.25)


class _RegionPipeline(CableInferencePipeline):
    """The §5 pipeline restricted to one region's targets, for speed."""

    def slash24_targets(self):
        nets = self.isp.region_prefixes[REGION]
        return [
            t for t in super().slash24_targets()
            if any(ipaddress.ip_address(t) in n for n in nets)
        ]

    def rdns_targets(self):
        targets = []
        for address in super().rdns_targets():
            hostname = self.network.rdns.snapshot_lookup(address)
            parsed = self.parser.regional_co(hostname, self.isp.name)
            if parsed is not None and parsed[0] == REGION:
                targets.append(address)
        return targets


@pytest.fixture(scope="module")
def small_world():
    from repro.topology.internet import SimulatedInternet

    internet = SimulatedInternet(
        seed=23, include_telco=False, include_mobile=False
    )
    return internet, list(internet.build_standard_vps())


def _run(small_world, **kwargs):
    internet, fleet = small_world
    return _RegionPipeline(
        internet.network, internet.comcast, fleet, sweep_vps=4, **kwargs
    ).run()


class TestCleanSubstrate:
    def test_lenient_output_is_byte_identical_to_off(self, small_world):
        plain = _run(small_world)
        guarded = _run(small_world, validate="lenient")
        assert plain.quarantine is None
        assert guarded.quarantine is not None
        assert (
            region_to_json(guarded.regions[REGION])
            == region_to_json(plain.regions[REGION])
        )
        # Whatever the guard recorded on the clean substrate is advisory
        # noise the stages already dropped — nothing repaired.
        assert all(
            r.category in ("alias-tie", "p2p-tie", "cross-region")
            for r in guarded.quarantine.records
        )

    def test_strict_completes_on_clean_substrate(self, small_world):
        result = _run(small_world, validate="strict")
        assert REGION in result.regions
        assert result.quarantine.policy == "strict"


class TestStaleRdnsCampaign:
    def test_lenient_quarantines_conflicting_records(self, small_world):
        result = _run(small_world, validate="lenient", faults=STALE_PLAN)
        report = result.quarantine
        assert report, "stale rDNS must produce quarantined records"
        categories = {r.category for r in report.records}
        assert categories & {"alias-tie", "p2p-tie", "cross-region"}
        assert "quarantined" in report.summary()

    def test_report_roundtrips_through_artifact(self, small_world):
        result = _run(small_world, validate="lenient", faults=STALE_PLAN)
        text = quarantine_report_to_json(result.quarantine)
        loaded = quarantine_report_from_json(text)
        assert loaded.as_dict() == result.quarantine.as_dict()


# ----------------------------------------------------------------------
# CLI diagnostics (no campaign; artifact-directory and checkpoint paths)
# ----------------------------------------------------------------------
def _good_region_payload():
    return {
        "schema": 1, "kind": "cable-region", "name": "testville",
        "agg_cos": ["A"], "edge_cos": ["E1", "E2"], "agg_groups": [["A"]],
        "edges": [
            {"from": "A", "to": "E1", "observations": 3, "inferred": False},
            {"from": "A", "to": "E2", "observations": 2, "inferred": False},
        ],
        "stats": {"initial_edges": 2, "removed_edge_edges": 0,
                  "added_ring_edges": 0, "final_edges": 2},
    }


def _edge_to_edge_payload():
    payload = _good_region_payload()
    payload["edges"].append(
        {"from": "E1", "to": "E2", "observations": 2, "inferred": False}
    )
    payload["stats"]["final_edges"] = 3
    return payload


class TestCliArtifacts:
    def test_truncated_artifact_strict_single_line_diagnostic(
        self, tmp_path, capsys
    ):
        text = json.dumps(_good_region_payload(), indent=2)
        (tmp_path / "comcast-testville.json").write_text(text[: len(text) // 2])
        rc = main(["resilience", "--from-json", str(tmp_path),
                   "--validate", "strict"])
        assert rc == 3
        err_lines = capsys.readouterr().err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error: comcast-testville.json: ")

    def test_wrong_type_artifact_names_json_path(self, tmp_path, capsys):
        payload = _good_region_payload()
        payload["edges"][0]["observations"] = "three"
        (tmp_path / "bad.json").write_text(json.dumps(payload))
        rc = main(["resilience", "--from-json", str(tmp_path),
                   "--validate", "strict"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "$.edges[0].observations" in err

    def test_invariant_corrupt_artifact_strict_fails(self, tmp_path, capsys):
        (tmp_path / "bad.json").write_text(json.dumps(_edge_to_edge_payload()))
        rc = main(["resilience", "--from-json", str(tmp_path),
                   "--validate", "strict"])
        assert rc == 3
        assert "edge-to-edge" in capsys.readouterr().err

    def test_invariant_corrupt_artifact_lenient_repairs(self, tmp_path, capsys):
        (tmp_path / "bad.json").write_text(json.dumps(_edge_to_edge_payload()))
        rc = main(["resilience", "--from-json", str(tmp_path),
                   "--validate", "off"])
        assert rc == 0
        rc = main(["resilience", "--from-json", str(tmp_path),
                   "--validate", "lenient"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "validation: " in out
        assert "refine/edge-to-edge" in out

    def test_good_artifacts_pass_strict(self, tmp_path, capsys):
        (tmp_path / "good.json").write_text(json.dumps(_good_region_payload()))
        # Non-region artifacts in the same directory are skipped by kind.
        (tmp_path / "notes.json").write_text(json.dumps({"kind": "misc"}))
        rc = main(["resilience", "--from-json", str(tmp_path),
                   "--validate", "strict"])
        assert rc == 0
        assert "testville" in capsys.readouterr().out


class TestCliCheckpoint:
    def test_corrupt_checkpoint_strict_single_line_diagnostic(
        self, tmp_path, capsys
    ):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({
            "schema": 1, "kind": "campaign-checkpoint",
            "stages": {"slash24": {"complete": True, "done": [],
                                   "traces": [{"src": "10.0.0.1"}]}},
        }))
        rc = main(["map-cable", "comcast", "--sweep-vps", "2",
                   "--resume", str(path), "--validate", "strict"])
        assert rc == 3
        err_lines = capsys.readouterr().err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error: corrupt checkpoint")
        assert "$.stages.slash24.traces[0]" in err_lines[0]
