"""Unit tests for the artifact schema validator."""

import json

import pytest

from repro.errors import ReproError, SchemaError
from repro.validate.schema import (
    ANY,
    ARTIFACT_SCHEMAS,
    ListOf,
    MapOf,
    Opt,
    artifact_kind,
    check,
    parse_artifact,
    validate_artifact,
)


class TestCheck:
    def test_scalar_types(self):
        check("x", str)
        check(3, int)
        check(3.5, float)
        check(3, float)  # JSON number: int acceptable as float
        check(True, bool)
        check(None, (str, type(None)))

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError, match=r"\$: expected int, got bool"):
            check(True, int)

    def test_bool_is_not_float(self):
        with pytest.raises(SchemaError):
            check(True, float)

    def test_missing_field_names_path(self):
        with pytest.raises(SchemaError, match=r"\$\.stats\.final: missing"):
            check({"stats": {}}, {"stats": {"final": int}})

    def test_wrong_type_names_path(self):
        with pytest.raises(SchemaError, match=r"\$\.n: expected int, got string"):
            check({"n": "five"}, {"n": int})

    def test_list_index_in_path(self):
        with pytest.raises(SchemaError, match=r"\$\.xs\[2\]"):
            check({"xs": [1, 2, "three"]}, {"xs": ListOf(int)})

    def test_nested_list_path(self):
        spec = ListOf(ListOf(str))
        with pytest.raises(SchemaError, match=r"\$\[0\]\[1\]"):
            check([["ok", 7]], spec)

    def test_map_of(self):
        check({"a": 1, "b": 2}, MapOf(int))
        with pytest.raises(SchemaError, match=r"\$\.b"):
            check({"a": 1, "b": "x"}, MapOf(int))

    def test_optional_key_absent_ok(self):
        check({}, {"maybe": Opt(int)})

    def test_optional_key_present_checked(self):
        with pytest.raises(SchemaError, match=r"\$\.maybe"):
            check({"maybe": "x"}, {"maybe": Opt(int)})

    def test_any_accepts_everything(self):
        check({"weird": [1, {"nested": None}]}, {"weird": ANY})

    def test_extra_keys_tolerated(self):
        check({"known": 1, "future": "field"}, {"known": int})


class TestArtifacts:
    def _minimal_region(self):
        return {
            "schema": 1, "kind": "cable-region", "name": "r",
            "agg_cos": ["A"], "edge_cos": ["E"], "agg_groups": [["A"]],
            "edges": [{"from": "A", "to": "E", "observations": 3,
                       "inferred": False}],
            "stats": {"initial_edges": 1, "removed_edge_edges": 0,
                      "added_ring_edges": 0, "final_edges": 1},
        }

    def test_valid_region_passes(self):
        validate_artifact(self._minimal_region())

    def test_kind_mismatch(self):
        with pytest.raises(SchemaError, match="expected 'telco-region'"):
            validate_artifact(self._minimal_region(), kind="telco-region")

    def test_unknown_kind(self):
        with pytest.raises(SchemaError, match="unknown artifact kind"):
            validate_artifact({"schema": 1, "kind": "mystery"})

    def test_bad_version(self):
        payload = self._minimal_region()
        payload["schema"] = 99
        with pytest.raises(SchemaError, match="unsupported cable-region"):
            validate_artifact(payload)

    def test_missing_kind(self):
        with pytest.raises(SchemaError, match=r"\$\.kind"):
            artifact_kind({"schema": 1})

    def test_non_object_payload(self):
        with pytest.raises(SchemaError, match=r"\$: expected object"):
            artifact_kind([1, 2, 3])

    def test_parse_rejects_invalid_json(self):
        with pytest.raises(SchemaError, match="not valid JSON"):
            parse_artifact("{trunca")

    def test_parse_roundtrip(self):
        text = json.dumps(self._minimal_region())
        payload = parse_artifact(text, kind="cable-region")
        assert payload["name"] == "r"

    def test_every_kind_has_schema_and_version(self):
        from repro.validate.schema import ARTIFACT_VERSIONS

        assert set(ARTIFACT_SCHEMAS) == set(ARTIFACT_VERSIONS)

    def test_schema_errors_are_repro_errors(self):
        assert issubclass(SchemaError, ReproError)
