"""Unit tests for the per-stage invariant guard."""

from collections import Counter
from types import SimpleNamespace

import networkx as nx
import pytest

from repro.errors import InferenceError, InvariantViolation
from repro.infer.ip2co import CoConflict, Ip2CoMapping
from repro.infer.refine import RefinedRegion, RefineStats
from repro.validate import InvariantGuard, QuarantineReport


def _mapping(entries, conflicts=()):
    mapping = Ip2CoMapping()
    mapping.mapping.update(entries)
    mapping.conflicts.extend(conflicts)
    return mapping


def _aliases(*groups):
    return SimpleNamespace(groups=[set(g) for g in groups])


def _adjacencies(per_region, cross=None):
    return SimpleNamespace(
        per_region={r: Counter(pairs) for r, pairs in per_region.items()},
        cross_region_pairs=Counter(cross or {}),
    )


def _region(edges, aggs, edge_cos, groups=None):
    graph = nx.DiGraph()
    for node in aggs | edge_cos:
        graph.add_node(node)
    for a, b, w in edges:
        graph.add_edge(a, b, weight=w, inferred=False)
    return RefinedRegion(
        name="testville", graph=graph, agg_cos=set(aggs),
        edge_cos=set(edge_cos), agg_groups=[set(g) for g in (groups or [])],
        stats=RefineStats(),
    )


class TestPolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(InferenceError, match="unknown validation policy"):
            InvariantGuard("paranoid")

    def test_off_is_a_noop(self):
        guard = InvariantGuard("off")
        region = _region([("E1", "E2", 3)], aggs=set(), edge_cos={"E1", "E2"})
        guard.check_region(region)
        assert region.graph.has_edge("E1", "E2")
        assert not guard.report

    def test_external_report_is_used(self):
        report = QuarantineReport("lenient")
        guard = InvariantGuard("lenient", report=report)
        guard.check_adjacencies(_adjacencies({"r": {("A", "A"): 2}}))
        assert len(report) == 1


class TestMapping:
    def test_conflicts_are_advisory_under_strict(self):
        conflict = CoConflict(
            address="10.0.0.1",
            candidates=(("denver", "aurora"), ("denver", "boulder")),
            source="alias-tie",
        )
        guard = InvariantGuard("strict")
        guard.check_mapping(_mapping({}, [conflict]))  # must not raise
        assert guard.report.counts() == {"ip2co/alias-tie": 1}

    def test_malformed_co_strict_raises(self):
        mapping = _mapping({"10.0.0.1": ("denver",)})
        with pytest.raises(InvariantViolation, match="malformed-co"):
            InvariantGuard("strict").check_mapping(mapping)

    def test_malformed_co_lenient_drops(self):
        mapping = _mapping({"10.0.0.1": ("denver",), "10.0.0.2": ("d", "co")})
        guard = InvariantGuard("lenient")
        guard.check_mapping(mapping)
        assert "10.0.0.1" not in mapping.mapping
        assert "10.0.0.2" in mapping.mapping
        assert guard.report.counts() == {"ip2co/malformed-co": 1}

    def test_alias_span_strict_raises(self):
        mapping = _mapping({"10.0.0.1": ("d", "a"), "10.0.0.2": ("d", "b")})
        with pytest.raises(InvariantViolation, match="alias-span"):
            InvariantGuard("strict").check_mapping(
                mapping, _aliases({"10.0.0.1", "10.0.0.2"})
            )

    def test_alias_span_lenient_keeps_majority(self):
        mapping = _mapping({
            "10.0.0.1": ("d", "a"), "10.0.0.2": ("d", "a"),
            "10.0.0.3": ("d", "b"),
        })
        guard = InvariantGuard("lenient")
        guard.check_mapping(
            mapping, _aliases({"10.0.0.1", "10.0.0.2", "10.0.0.3"})
        )
        assert mapping.mapping == {"10.0.0.1": ("d", "a"), "10.0.0.2": ("d", "a")}
        assert guard.report.dropped_count() == 1

    def test_alias_span_lenient_tie_drops_all(self):
        mapping = _mapping({"10.0.0.1": ("d", "a"), "10.0.0.2": ("d", "b")})
        guard = InvariantGuard("lenient")
        guard.check_mapping(mapping, _aliases({"10.0.0.1", "10.0.0.2"}))
        assert mapping.mapping == {}

    def test_consistent_alias_group_passes(self):
        mapping = _mapping({"10.0.0.1": ("d", "a"), "10.0.0.2": ("d", "a")})
        guard = InvariantGuard("strict")
        guard.check_mapping(mapping, _aliases({"10.0.0.1", "10.0.0.2"}))
        assert not guard.report


class TestAdjacencies:
    def test_cross_region_is_advisory(self):
        adj = _adjacencies({}, cross={("d", "a", "slc", "b"): 5})
        guard = InvariantGuard("strict")
        guard.check_adjacencies(adj)  # must not raise
        assert guard.report.counts() == {"adjacency/cross-region": 1}
        assert guard.report.records[0].count == 5

    def test_self_loop_strict_raises(self):
        adj = _adjacencies({"d": {("A", "A"): 2}})
        with pytest.raises(InvariantViolation, match="self-loop"):
            InvariantGuard("strict").check_adjacencies(adj)

    def test_self_loop_lenient_deletes(self):
        adj = _adjacencies({"d": {("A", "A"): 2, ("A", "B"): 3}})
        guard = InvariantGuard("lenient")
        guard.check_adjacencies(adj)
        assert dict(adj.per_region["d"]) == {("A", "B"): 3}
        assert guard.report.dropped_count() == 1

    def test_non_positive_weight_lenient_deletes(self):
        adj = _adjacencies({"d": {("A", "B"): 0}})
        guard = InvariantGuard("lenient")
        guard.check_adjacencies(adj)
        assert not dict(adj.per_region["d"])
        assert guard.report.counts() == {"adjacency/non-positive-weight": 1}


class TestRegion:
    def test_role_overlap_lenient_prefers_agg(self):
        region = _region([("A", "E", 2)], aggs={"A"}, edge_cos={"A", "E"})
        guard = InvariantGuard("lenient")
        guard.check_region(region)
        assert region.agg_cos == {"A"}
        assert region.edge_cos == {"E"}
        assert guard.report.counts() == {"refine/role-overlap": 1}

    def test_role_overlap_strict_raises(self):
        region = _region([("A", "E", 2)], aggs={"A"}, edge_cos={"A", "E"})
        with pytest.raises(InvariantViolation, match="role-overlap"):
            InvariantGuard("strict").check_region(region)

    def test_unknown_co_role_dropped(self):
        region = _region([("A", "E", 2)], aggs={"A"}, edge_cos={"E"})
        region.edge_cos.add("GHOST")
        guard = InvariantGuard("lenient")
        guard.check_region(region)
        assert "GHOST" not in region.edge_cos
        assert guard.report.counts() == {"refine/role-unknown-co": 1}

    def test_uncovered_co_becomes_edge(self):
        region = _region([("A", "E", 2)], aggs={"A"}, edge_cos={"E"})
        region.graph.add_node("LONER")
        guard = InvariantGuard("lenient")
        guard.check_region(region)
        assert "LONER" in region.edge_cos

    def test_group_member_must_be_agg(self):
        region = _region([("A", "E", 2)], aggs={"A"}, edge_cos={"E"},
                         groups=[{"A", "E"}])
        guard = InvariantGuard("lenient")
        guard.check_region(region)
        assert region.agg_groups == [{"A"}]
        assert guard.report.counts() == {"refine/group-not-agg": 1}

    def test_empty_group_removed_after_repair(self):
        region = _region([("A", "E", 2)], aggs={"A"}, edge_cos={"E"},
                         groups=[{"E"}])
        guard = InvariantGuard("lenient")
        guard.check_region(region)
        assert region.agg_groups == []

    def test_observed_zero_weight_edge_removed(self):
        region = _region([("A", "E", 0)], aggs={"A"}, edge_cos={"E"})
        guard = InvariantGuard("lenient")
        guard.check_region(region)
        assert not region.graph.has_edge("A", "E")

    def test_inferred_ring_edge_may_have_zero_weight(self):
        region = _region([], aggs={"A"}, edge_cos={"E"})
        region.graph.add_edge("A", "E", weight=0, inferred=True)
        guard = InvariantGuard("strict")
        guard.check_region(region)
        assert region.graph.has_edge("A", "E")

    def test_surviving_edge_to_edge_lenient_removed(self):
        region = _region(
            [("A", "E1", 3), ("E1", "E2", 2)],
            aggs={"A"}, edge_cos={"E1", "E2"},
        )
        guard = InvariantGuard("lenient")
        guard.check_region(region)
        assert not region.graph.has_edge("E1", "E2")
        assert guard.report.counts() == {"refine/edge-to-edge": 1}

    def test_edge_to_edge_strict_raises(self):
        region = _region(
            [("A", "E1", 3), ("E1", "E2", 2)],
            aggs={"A"}, edge_cos={"E1", "E2"},
        )
        with pytest.raises(InvariantViolation, match="edge-to-edge"):
            InvariantGuard("strict").check_region(region)

    def test_small_agg_exception_keeps_edges(self):
        # E1 feeds two COs no AggCO reaches: B.3's small-AggCO
        # exception keeps those edges, so the guard must too.
        region = _region(
            [("A", "E1", 3), ("E1", "E2", 2), ("E1", "E3", 2)],
            aggs={"A"}, edge_cos={"E1", "E2", "E3"},
        )
        guard = InvariantGuard("strict")
        guard.check_region(region)
        assert region.graph.has_edge("E1", "E2")
        assert region.graph.has_edge("E1", "E3")

    def test_clean_region_passes_strict(self):
        region = _region(
            [("A", "B", 4), ("B", "A", 4), ("A", "E1", 2), ("B", "E2", 2)],
            aggs={"A", "B"}, edge_cos={"E1", "E2"}, groups=[{"A", "B"}],
        )
        guard = InvariantGuard("strict")
        guard.check_region(region)
        assert not guard.report
