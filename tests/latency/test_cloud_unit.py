"""Unit tests for latency-campaign helpers (pure parts)."""

import pytest

from repro.errors import MeasurementError
from repro.infer.pipeline import CableInferenceResult
from repro.latency.cloud import CloudLatencyCampaign, EdgeCoLatency
from repro.net.network import Network


class TestBuckets:
    def test_default_buckets(self):
        latencies = {"a": 3.5, "b": 4.2, "c": 4.9, "d": 9.5, "e": 20.0}
        buckets = CloudLatencyCampaign.bucket_latencies(latencies)
        assert buckets["3-4ms"] == 1
        assert buckets["4-5ms"] == 2
        assert buckets["9-10ms"] == 1
        # 20 ms falls outside all buckets (like the paper's table).
        assert sum(buckets.values()) == 4

    def test_custom_edges(self):
        buckets = CloudLatencyCampaign.bucket_latencies(
            {"a": 1.0}, edges=[(0, 2)]
        )
        assert buckets == {"0-2ms": 1}


class TestClosestVm:
    def _sample(self, region, co, rtt, vp):
        return EdgeCoLatency(region, co, "10.0.0.1", rtt, vp)

    def test_majority_winner(self):
        samples = {
            "vm-east": [
                self._sample("r", "co1", 5.0, "vm-east"),
                self._sample("r", "co2", 5.0, "vm-east"),
            ],
            "vm-west": [
                self._sample("r", "co1", 9.0, "vm-west"),
                self._sample("r", "co2", 9.0, "vm-west"),
                self._sample("r", "co3", 2.0, "vm-west"),
            ],
        }
        assert CloudLatencyCampaign.closest_vm_for(samples) == "vm-east"

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            CloudLatencyCampaign.closest_vm_for({})


class TestEdgeCoAddresses:
    def test_requires_mapping(self):
        campaign = CloudLatencyCampaign(Network())
        result = CableInferenceResult(isp="x", mapping=None)
        with pytest.raises(MeasurementError):
            campaign.edge_co_addresses(result)

    def test_filters_to_edge_cos(self):
        from collections import Counter

        from repro.infer.ip2co import Ip2CoMapping
        from repro.infer.refine import RegionRefiner

        counter = Counter({("AGG", "E1"): 3, ("AGG", "E2"): 3})
        refined = RegionRefiner().refine("r", counter)
        mapping = Ip2CoMapping(mapping={
            "10.0.0.1": ("r", "E1"),
            "10.0.0.2": ("r", "AGG"),
            "10.0.0.3": ("r", "E2"),
        })
        result = CableInferenceResult(
            isp="x", regions={"r": refined}, mapping=mapping
        )
        per_co = CloudLatencyCampaign.edge_co_addresses(result)
        assert set(per_co) == {("r", "E1"), ("r", "E2")}
        assert per_co[("r", "E1")] == ["10.0.0.1"]
