"""Property-based round-trip and adversarial-input tests for artifact IO.

Two claims, checked over generated inputs:

* serialize → parse is the identity on region graphs and campaign
  checkpoints (no field silently dropped or coerced);
* any truncation or structured mutation of a valid artifact surfaces
  as a :class:`~repro.errors.ReproError` with a JSON path — never a
  raw ``KeyError``/``TypeError`` escaping from loader internals.
"""

import json
import tempfile
from pathlib import Path

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.errors import CheckpointError, ReproError, SchemaError
from repro.infer.refine import RefinedRegion, RefineStats
from repro.io.checkpoint import CampaignCheckpoint, trace_to_dict
from repro.io.export import region_from_json, region_to_json
from repro.measure.traceroute import Hop, TraceResult

co_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=2, max_size=8),
    min_size=2, max_size=8, unique=True,
)


@st.composite
def regions(draw):
    names = draw(co_names)
    split = draw(st.integers(min_value=1, max_value=len(names) - 1))
    aggs, edge_cos = set(names[:split]), set(names[split:])
    graph = nx.DiGraph()
    graph.add_nodes_from(names)
    for agg in sorted(aggs):
        for dst in sorted(edge_cos):
            if draw(st.booleans()):
                graph.add_edge(
                    agg, dst,
                    weight=draw(st.integers(min_value=0, max_value=50)),
                    inferred=draw(st.booleans()),
                )
    group_size = draw(st.integers(min_value=0, max_value=len(aggs)))
    groups = [set(sorted(aggs)[:group_size])] if group_size else []
    stats = RefineStats(
        initial_edges=draw(st.integers(min_value=0, max_value=100)),
        removed_edge_edges=draw(st.integers(min_value=0, max_value=20)),
        added_ring_edges=draw(st.integers(min_value=0, max_value=20)),
        final_edges=graph.number_of_edges(),
    )
    return RefinedRegion(
        name=draw(st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12
        )),
        graph=graph, agg_cos=aggs, edge_cos=edge_cos,
        agg_groups=groups, stats=stats,
    )


class TestRegionRoundTrip:
    @given(regions())
    def test_serialize_parse_is_identity(self, region):
        loaded = region_from_json(region_to_json(region))
        assert loaded.name == region.name
        assert loaded.agg_cos == region.agg_cos
        assert loaded.edge_cos == region.edge_cos
        assert [set(g) for g in loaded.agg_groups] == region.agg_groups
        assert set(loaded.graph.nodes) == set(region.graph.nodes)
        assert {
            (a, b): (d["weight"], d["inferred"])
            for a, b, d in loaded.graph.edges(data=True)
        } == {
            (a, b): (d.get("weight", 0), bool(d.get("inferred", False)))
            for a, b, d in region.graph.edges(data=True)
        }
        assert loaded.stats.initial_edges == region.stats.initial_edges
        assert loaded.stats.final_edges == region.stats.final_edges

    @given(regions(), st.data())
    def test_truncated_region_never_leaks_raw_errors(self, region, data):
        text = region_to_json(region)
        cut = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
        with pytest.raises(ReproError):
            region_from_json(text[:cut])

    @given(regions(), st.data())
    def test_mutated_region_raises_schema_error(self, region, data):
        payload = json.loads(region_to_json(region))
        mutation = data.draw(st.sampled_from([
            "drop-key", "edges-not-list", "edge-bad-type", "edge-missing-key",
            "undeclared-endpoint", "group-not-agg", "stats-bad-type",
            "bad-kind", "bad-version",
        ]))
        if mutation == "drop-key":
            del payload[data.draw(st.sampled_from(
                ["name", "agg_cos", "edge_cos", "agg_groups", "edges", "stats"]
            ))]
        elif mutation == "edges-not-list":
            payload["edges"] = 123
        elif mutation == "edge-bad-type":
            payload["edges"] = [{"from": "a", "to": "b",
                                 "observations": "three", "inferred": False}]
        elif mutation == "edge-missing-key":
            payload["edges"] = [{"from": "a", "observations": 1,
                                 "inferred": False}]
        elif mutation == "undeclared-endpoint":
            payload["edges"] = [{"from": "zz-undeclared", "to": "zz-ghost",
                                 "observations": 1, "inferred": False}]
        elif mutation == "group-not-agg":
            payload["agg_groups"] = [sorted(payload["edge_cos"])]
        elif mutation == "stats-bad-type":
            payload["stats"]["final_edges"] = None
        elif mutation == "bad-kind":
            payload["kind"] = "cable-regions"
        elif mutation == "bad-version":
            payload["schema"] = 999
        with pytest.raises(SchemaError, match=r"\$"):
            region_from_json(json.dumps(payload))


addresses = st.from_regex(r"10\.(\d|[1-9]\d)\.(\d|[1-9]\d)\.(\d|[1-9]\d)",
                          fullmatch=True)

hops = st.builds(
    Hop,
    index=st.integers(min_value=1, max_value=32),
    address=st.one_of(st.none(), addresses),
    rdns=st.one_of(st.none(), st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz.-", min_size=1, max_size=20
    )),
    rtt_ms=st.one_of(st.none(), st.floats(
        min_value=0.0, max_value=500.0, allow_nan=False
    )),
    reply_ttl=st.one_of(st.none(), st.integers(min_value=1, max_value=255)),
    attempts=st.integers(min_value=1, max_value=3),
)

traces = st.builds(
    TraceResult,
    src_address=addresses,
    dst_address=addresses,
    hops=st.lists(hops, max_size=6),
    completed=st.booleans(),
    flow_id=st.integers(min_value=0, max_value=2**16),
    vp_name=st.text(alphabet="abcdefghijklmnopqrstuvwxyz-", max_size=12),
)


class TestCheckpointRoundTrip:
    @given(st.lists(traces, max_size=5),
           st.lists(st.tuples(st.text(max_size=8), st.text(max_size=8)),
                    max_size=5, unique=True),
           st.booleans())
    def test_stage_roundtrip(self, stage_traces, done, complete):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ckpt.json"
            checkpoint = CampaignCheckpoint(path)
            checkpoint.record_stage("slash24", stage_traces, done, complete)
            checkpoint.save()
            loaded = CampaignCheckpoint.load(path)
        assert loaded.stage_complete("slash24") == complete
        assert loaded.stage_done("slash24") == set(done)
        assert (
            [trace_to_dict(t) for t in loaded.stage_traces("slash24")]
            == [trace_to_dict(t) for t in stage_traces]
        )

    @given(st.lists(traces, min_size=1, max_size=3), st.data())
    def test_truncated_checkpoint_raises_checkpoint_error(
        self, stage_traces, data
    ):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ckpt.json"
            checkpoint = CampaignCheckpoint(path)
            checkpoint.record_stage("slash24", stage_traces, [], True)
            checkpoint.save()
            text = path.read_text()
            cut = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
            path.write_text(text[:cut])
            with pytest.raises(CheckpointError):
                CampaignCheckpoint.load(path)

    @given(st.lists(traces, min_size=1, max_size=3), st.data())
    def test_mutated_checkpoint_raises_checkpoint_error(
        self, stage_traces, data
    ):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ckpt.json"
            checkpoint = CampaignCheckpoint(path)
            checkpoint.record_stage("slash24", stage_traces, [], True)
            checkpoint.save()
            payload = json.loads(path.read_text())
            mutation = data.draw(st.sampled_from([
                "hop-index-string", "trace-missing-dst", "stage-not-object",
                "done-not-list", "wrong-kind",
            ]))
            if mutation == "hop-index-string":
                payload["stages"]["slash24"]["traces"][0]["hops"] = [
                    {"i": "one", "addr": None}
                ]
            elif mutation == "trace-missing-dst":
                del payload["stages"]["slash24"]["traces"][0]["dst"]
            elif mutation == "stage-not-object":
                payload["stages"]["slash24"] = "done"
            elif mutation == "done-not-list":
                payload["stages"]["slash24"]["done"] = {"vp": "t"}
            elif mutation == "wrong-kind":
                payload["kind"] = "campaign-health"
            path.write_text(json.dumps(payload))
            with pytest.raises(CheckpointError, match="checkpoint"):
                CampaignCheckpoint.load(path)
