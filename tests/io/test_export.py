"""Unit tests for topology serialization."""

import json
from collections import Counter

import pytest

from repro.errors import ReproError
from repro.infer.refine import RegionRefiner
from repro.io.export import (
    att_topology_to_json,
    carrier_analysis_to_json,
    region_from_json,
    region_to_dot,
    region_to_json,
)


@pytest.fixture()
def region():
    counter = Counter()
    for i in range(5):
        counter[("A1", f"E{i}")] = 4
        counter[("A2", f"E{i}")] = 4
    return RegionRefiner().refine("testregion", counter)


class TestRegionJson:
    def test_roundtrip(self, region):
        text = region_to_json(region)
        restored = region_from_json(text)
        assert restored.name == region.name
        assert restored.agg_cos == region.agg_cos
        assert restored.edge_cos == region.edge_cos
        assert set(restored.graph.edges) == set(region.graph.edges)
        assert restored.stats.final_edges == region.stats.final_edges

    def test_document_shape(self, region):
        payload = json.loads(region_to_json(region))
        assert payload["schema"] == 1
        assert payload["kind"] == "cable-region"
        assert all(
            {"from", "to", "observations", "inferred"} <= set(e)
            for e in payload["edges"]
        )

    def test_wrong_schema_rejected(self, region):
        payload = json.loads(region_to_json(region))
        payload["schema"] = 99
        with pytest.raises(ReproError):
            region_from_json(json.dumps(payload))

    def test_wrong_kind_rejected(self, region):
        payload = json.loads(region_to_json(region))
        payload["kind"] = "something-else"
        with pytest.raises(ReproError):
            region_from_json(json.dumps(payload))

    def test_inferred_edges_survive_roundtrip(self):
        counter = Counter()
        edges = [f"E{i}" for i in range(6)]
        for e in edges:
            counter[("A1", e)] = 4
        for e in edges[:-1]:
            counter[("A2", e)] = 4
        region = RegionRefiner().refine("r", counter)
        restored = region_from_json(region_to_json(region))
        assert restored.graph["A2"]["E5"]["inferred"]


class TestDot:
    def test_dot_structure(self, region):
        dot = region_to_dot(region)
        assert dot.startswith('digraph "testregion"')
        assert '"A1" [shape=box' in dot
        assert '"A1" -> "E0";' in dot
        assert dot.rstrip().endswith("}")

    def test_inferred_edges_dashed(self):
        counter = Counter()
        edges = [f"E{i}" for i in range(6)]
        for e in edges:
            counter[("A1", e)] = 4
        for e in edges[:-1]:
            counter[("A2", e)] = 4  # A2 misses E5 -> ring completion
        region = RegionRefiner().refine("r", counter)
        dot = region_to_dot(region)
        assert '"A2" -> "E5" [style=dashed];' in dot


class TestAttAndMobileJson:
    def test_att_topology_document(self, att_topology):
        payload = json.loads(att_topology_to_json(att_topology))
        assert payload["kind"] == "telco-region"
        assert payload["backbone_co_count"] == 1
        assert len(payload["edge_cos"]) == 42
        assert len(payload["edge_prefixes"]) == 6

    def test_carrier_analysis_document(self, ship_results):
        from repro.infer.mobile_ipv6 import MobileIPv6Analyzer

        campaign, results = ship_results
        analysis = MobileIPv6Analyzer(campaign.celldb).analyze(
            results["att-mobile"]
        )
        payload = json.loads(carrier_analysis_to_json(analysis))
        assert payload["kind"] == "mobile-carrier"
        assert payload["region_count"] == 11
        assert payload["topology_class"] == "single-edgeco-per-region"
