"""Campaign checkpoints with binary corpus sidecars: round-trip,
auto-detection on load, and tamper detection."""

import pytest

from repro.errors import CheckpointError
from repro.io.checkpoint import CampaignCheckpoint, trace_to_dict
from repro.measure.traceroute import Hop, TraceResult


def _traces():
    return [
        TraceResult(
            "192.0.2.1", "10.0.0.9",
            [Hop(1, "10.0.0.1", rtt_ms=1.5), Hop(2, None), Hop(3, "10.0.0.9")],
            completed=True, flow_id=3, vp_name="vp-east",
        ),
        TraceResult("192.0.2.1", "10.0.1.1", [Hop(1, "10.0.0.1")]),
    ]


def _dicts(traces):
    return [trace_to_dict(t) for t in traces]


@pytest.fixture()
def saved(tmp_path):
    path = tmp_path / "campaign.json"
    checkpoint = CampaignCheckpoint(path, corpus_format="binary")
    checkpoint.record_stage(
        "slash24", _traces(), done=[("vp-east", "10.0.0.9")], complete=True
    )
    checkpoint.save()
    return path


class TestBinarySidecars:
    def test_rejects_unknown_format(self, tmp_path):
        with pytest.raises(CheckpointError, match="unknown corpus format"):
            CampaignCheckpoint(tmp_path / "c.json", corpus_format="msgpack")

    def test_save_writes_sidecar_and_pointer(self, saved):
        sidecar = saved.with_name("campaign.slash24.corpus.npz")
        assert sidecar.exists()
        import json

        record = json.loads(saved.read_text())["stages"]["slash24"]
        assert record["traces"] == []
        assert record["corpus"]["format"] == "binary"
        assert record["corpus"]["file"] == sidecar.name

    def test_load_autodetects_binary_and_round_trips(self, saved):
        loaded = CampaignCheckpoint.load(saved)
        assert loaded.corpus_format == "binary"
        assert _dicts(loaded.stage_traces("slash24")) == _dicts(_traces())
        assert loaded.stage_done("slash24") == {("vp-east", "10.0.0.9")}
        assert loaded.stage_complete("slash24")

    def test_resave_after_load_keeps_binary_format(self, saved):
        loaded = CampaignCheckpoint.load(saved)
        loaded.record_stage("rdns", _traces()[:1], done=[], complete=False)
        loaded.save()
        assert saved.with_name("campaign.rdns.corpus.npz").exists()

    def test_pending_traces_readable_before_save(self, tmp_path):
        checkpoint = CampaignCheckpoint(
            tmp_path / "c.json", corpus_format="binary"
        )
        checkpoint.record_stage("slash24", _traces(), done=[], complete=False)
        assert _dicts(checkpoint.stage_traces("slash24")) == _dicts(_traces())

    def test_tampered_sidecar_is_detected(self, saved):
        sidecar = saved.with_name("campaign.slash24.corpus.npz")
        sidecar.write_bytes(sidecar.read_bytes()[:-1] + b"X")
        loaded = CampaignCheckpoint.load(saved)
        with pytest.raises(CheckpointError, match="digest mismatch"):
            loaded.stage_traces("slash24")

    def test_missing_sidecar_is_detected(self, saved):
        saved.with_name("campaign.slash24.corpus.npz").unlink()
        loaded = CampaignCheckpoint.load(saved)
        with pytest.raises(CheckpointError, match="missing corpus sidecar"):
            loaded.stage_traces("slash24")

    def test_json_checkpoint_unaffected(self, tmp_path):
        path = tmp_path / "campaign.json"
        checkpoint = CampaignCheckpoint(path)  # default json format
        checkpoint.record_stage("slash24", _traces(), done=[], complete=True)
        checkpoint.save()
        assert list(tmp_path.glob("*.npz")) == []
        loaded = CampaignCheckpoint.load(path)
        assert loaded.corpus_format == "json"
        assert _dicts(loaded.stage_traces("slash24")) == _dicts(_traces())
