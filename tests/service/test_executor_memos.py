"""The executor must clear the process-wide address memos between
jobs: in a long-running service every job brings a fresh address space
(seeds differ), so an uncleaned memo grows monotonically forever."""

import pytest

from repro.perf import cache
from repro.service.executor import JobExecutor
from repro.service.spec import JobSpec


@pytest.fixture()
def executor(tmp_path):
    return JobExecutor(tmp_path / "jobs")


def _memo_size() -> int:
    return len(cache._normalize_memo) + len(cache._p2p_memo)


def _run(executor, job_id, seed):
    spec = JobSpec(pipeline="toy", seed=seed, targets=6, hosts=2)
    return executor.execute(job_id, spec, "full", attempt=1)


class TestMemoHygiene:
    def test_preseeded_garbage_is_dropped(self, executor):
        cache._normalize_memo["203.0.113.99"] = "203.0.113.99"
        cache._p2p_memo[("203.0.113.99", 30)] = None
        result = _run(executor, "job-a", seed=1)
        assert result.artifacts
        assert "203.0.113.99" not in cache._normalize_memo
        assert ("203.0.113.99", 30) not in cache._p2p_memo

    def test_memo_size_does_not_grow_across_jobs(self, executor):
        _run(executor, "job-a", seed=1)
        after_first = _memo_size()
        _run(executor, "job-b", seed=2)
        after_second = _memo_size()
        # Each job starts from empty memos, so the residue after job B
        # reflects job B's own address space only — not A's plus B's.
        assert after_second <= after_first

    def test_memos_cleared_even_when_the_job_raises(
        self, executor, monkeypatch
    ):
        import repro.measure.substrates as substrates

        def boom(**kwargs):
            # Simulate a job dying mid-dispatch with memo entries in
            # play; the executor's finally must still clean up.
            cache._normalize_memo["203.0.113.99"] = "203.0.113.99"
            raise RuntimeError("substrate exploded")

        monkeypatch.setattr(substrates, "toy_substrate", boom)
        with pytest.raises(RuntimeError, match="substrate exploded"):
            executor.execute(
                "job-x", JobSpec(pipeline="toy", seed=1), "full", attempt=1
            )
        assert "203.0.113.99" not in cache._normalize_memo
        assert not cache._p2p_memo
