"""JobStore: write-ahead journal, replay, snapshots, corruption fuzz."""

import json

import pytest

from repro.errors import ServiceError
from repro.service.spec import JobSpec
from repro.service.store import COMPACT_EVERY, JobStore


def _store(tmp_path, **kwargs):
    return JobStore.open(tmp_path / "state", **kwargs)


class TestLifecycle:
    def test_submit_dedup_and_replay(self, tmp_path):
        store = _store(tmp_path)
        spec = JobSpec(seed=1, targets=4)
        record, created = store.submit(spec)
        assert created and record.state == "queued"
        again, created_again = store.submit(spec)
        assert not created_again
        assert again.job_id == record.job_id
        assert again.dedup_count == 1
        store.close()

        replayed = _store(tmp_path)
        clone = replayed.jobs[record.job_id]
        assert clone.state == "queued"
        assert clone.dedup_count == 1
        assert clone.spec == spec
        replayed.close()

    def test_full_transition_history_replays_identically(self, tmp_path):
        store = _store(tmp_path)
        record, _ = store.submit(JobSpec(seed=2, targets=4))
        job_id = record.job_id
        store.append("start", job_id=job_id, owner="e1",
                     expires_at=100.0, fidelity="full")
        store.append("heartbeat", job_id=job_id, expires_at=200.0)
        store.append("retry", job_id=job_id, outcome="error",
                     error="boom", degraded=True, not_before=5.0,
                     fidelity="reduced")
        store.append("start", job_id=job_id, owner="e1",
                     expires_at=300.0, fidelity="reduced")
        store.append("done", job_id=job_id, degraded=False,
                     artifacts={"corpus.json": {"sha256": "ab", "bytes": 2}})
        before = store.jobs[job_id].as_dict()
        store.close()

        replayed = _store(tmp_path)
        assert replayed.jobs[job_id].as_dict() == before
        assert replayed.jobs[job_id].state == "done"
        assert replayed.jobs[job_id].attempts == 2
        replayed.close()

    def test_compaction_snapshot_plus_tail_replay(self, tmp_path):
        store = _store(tmp_path)
        first, _ = store.submit(JobSpec(seed=3, targets=4))
        store.compact()
        assert store.journal_path.read_text() == ""
        second, _ = store.submit(JobSpec(seed=4, targets=4))
        store.close()

        replayed = _store(tmp_path)
        assert set(replayed.jobs) == {first.job_id, second.job_id}
        replayed.close()

    def test_auto_compaction_after_threshold(self, tmp_path):
        store = _store(tmp_path)
        record, _ = store.submit(JobSpec(seed=5, targets=4))
        for _ in range(COMPACT_EVERY):
            store.append("heartbeat", job_id=record.job_id, expires_at=9.0)
        assert store.snapshot_path.exists()
        assert len(store.journal_path.read_text().splitlines()) < COMPACT_EVERY
        store.close()

    def test_release_requeues_with_backoff_deadline(self, tmp_path):
        store = _store(tmp_path)
        record, _ = store.submit(JobSpec(seed=6, targets=4))
        store.append("start", job_id=record.job_id, owner="e1",
                     expires_at=10.0, fidelity="full")
        store.append("release", job_id=record.job_id,
                     reason="lease expired", not_before=42.0)
        assert record.state == "queued"
        assert record.not_before == 42.0
        assert record.lease is None
        assert record.attempt_log[-1]["outcome"] == "interrupted"
        store.close()


class TestCorruptionFuzz:
    """The journal variants of the satellite-3 fuzz matrix."""

    def _seeded(self, tmp_path):
        store = _store(tmp_path)
        record, _ = store.submit(JobSpec(seed=7, targets=4))
        store.append("heartbeat", job_id=record.job_id, expires_at=1.0)
        store.close()
        return store.journal_path, record.job_id

    def test_torn_final_line_is_tolerated_and_repaired(self, tmp_path):
        journal, job_id = self._seeded(tmp_path)
        with open(journal, "a") as handle:
            handle.write('{"seq": 99, "op": "done", "job_id"')
        replayed = _store(tmp_path)
        assert replayed.jobs[job_id].state == "queued"
        # The repair truncated the torn bytes so the next append is clean.
        assert not journal.read_text().rstrip().endswith('"job_id"')
        replayed.close()

    def test_garbled_mid_file_line_raises_service_error(self, tmp_path):
        journal, _ = self._seeded(tmp_path)
        lines = journal.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServiceError, match="corrupt service journal"):
            _store(tmp_path)

    def test_non_object_line_raises_service_error(self, tmp_path):
        journal, _ = self._seeded(tmp_path)
        content = journal.read_text()
        journal.write_text('["not", "an", "entry"]\n' + content)
        with pytest.raises(ServiceError, match="corrupt service journal"):
            _store(tmp_path)

    def test_empty_journal_is_fine(self, tmp_path):
        journal, job_id = self._seeded(tmp_path)
        store = _store(tmp_path)
        store.compact()
        store.close()
        replayed = _store(tmp_path)
        assert job_id in replayed.jobs
        replayed.close()

    def test_corrupt_snapshot_raises_service_error(self, tmp_path):
        store = _store(tmp_path)
        store.submit(JobSpec(seed=8, targets=4))
        store.compact()
        store.close()
        text = store.snapshot_path.read_text()
        store.snapshot_path.write_text(text[: len(text) // 2])
        with pytest.raises(ServiceError, match="corrupt service snapshot"):
            _store(tmp_path)

    def test_schema_invalid_snapshot_raises_service_error(self, tmp_path):
        store = _store(tmp_path)
        store.submit(JobSpec(seed=9, targets=4))
        store.compact()
        store.close()
        payload = json.loads(store.snapshot_path.read_text())
        del payload["jobs"]
        store.snapshot_path.write_text(json.dumps(payload))
        with pytest.raises(ServiceError, match="corrupt service snapshot"):
            _store(tmp_path)


class TestAccessControl:
    def test_two_writers_share_the_journal(self, tmp_path):
        """Cooperating writers interleave appends at line granularity."""
        first = _store(tmp_path)
        second = _store(tmp_path)
        record, _ = first.submit(JobSpec(seed=30, targets=4))
        # The second writer sees the first's append after a refresh...
        second.refresh()
        assert record.job_id in second.jobs
        # ...and its own appends continue the shared seq numbering.
        entry = second.append("heartbeat", job_id=record.job_id,
                              expires_at=5.0)
        assert entry["seq"] == first.seq + 1
        first.refresh()
        assert first.seq == second.seq
        first.close()
        second.close()

    def test_duplicate_executor_id_is_refused(self, tmp_path):
        store = _store(tmp_path)
        store.acquire_executor_lock("e1")
        rival = _store(tmp_path)
        with pytest.raises(ServiceError, match="already running"):
            rival.acquire_executor_lock("e1")
        rival.acquire_executor_lock("e2")
        rival.close()
        store.close()
        # Released on close: the id is claimable again.
        reopened = _store(tmp_path)
        reopened.acquire_executor_lock("e1")
        reopened.close()

    def test_claim_is_compare_and_swap(self, tmp_path):
        """Two racing claims: exactly one wins, the loser gets None."""
        first = _store(tmp_path)
        second = _store(tmp_path)
        record, _ = first.submit(JobSpec(seed=31, targets=4))
        token = first.try_claim(record.job_id, "e1", expires_at=50.0, now=1.0)
        assert token is not None
        assert second.try_claim(record.job_id, "e2", expires_at=50.0,
                                now=1.0) is None
        first.close()
        second.close()

    def test_fencing_token_blocks_a_zombie_settle(self, tmp_path):
        """A reclaimed lease's old owner cannot settle over the new one."""
        zombie = _store(tmp_path, clock=lambda: 0.0)
        other = _store(tmp_path, clock=lambda: 0.0)
        record, _ = zombie.submit(JobSpec(seed=32, targets=4))
        job_id = record.job_id
        old_token = zombie.try_claim(job_id, "e1", expires_at=1.0, now=0.0)
        # The lease expires; another executor reclaims and re-claims.
        other.append("release", job_id=job_id, reason="lease expired",
                     not_before=0.0)
        new_token = other.try_claim(job_id, "e2", expires_at=99.0, now=2.0)
        assert new_token is not None and new_token != old_token
        # The zombie's heartbeat and settle are refused pre-journal.
        assert not zombie.try_heartbeat(job_id, "e1", old_token,
                                        expires_at=500.0)
        assert not zombie.settle(job_id, "e1", old_token, "done",
                                 degraded=False, artifacts={})
        # The live owner's settle goes through.
        assert other.settle(job_id, "e2", new_token, "done",
                            degraded=False, artifacts={})
        other.refresh()
        assert other.jobs[job_id].state == "done"
        zombie.close()
        other.close()

    def test_events_ring_survives_compaction(self, tmp_path):
        store = _store(tmp_path)
        record, _ = store.submit(JobSpec(seed=33, targets=4))
        store.append("start", job_id=record.job_id, owner="e1",
                     expires_at=10.0, fidelity="full")
        store.compact()
        store.close()
        replayed = _store(tmp_path)
        ops = [e["op"] for e in replayed.jobs[record.job_id].events]
        assert ops == ["submit", "start"]
        seqs = [e["seq"] for e in replayed.jobs[record.job_id].events]
        assert seqs == sorted(seqs)
        replayed.close()

    def test_readonly_open_coexists_and_refuses_writes(self, tmp_path):
        store = _store(tmp_path)
        record, _ = store.submit(JobSpec(seed=10, targets=4))
        reader = _store(tmp_path, readonly=True)
        assert record.job_id in reader.jobs
        with pytest.raises(ServiceError, match="read-only"):
            reader.append("heartbeat", job_id=record.job_id, expires_at=1.0)
        reader.close()
        store.close()

    def test_readonly_open_does_not_repair_a_torn_tail(self, tmp_path):
        store = _store(tmp_path)
        store.submit(JobSpec(seed=11, targets=4))
        store.close()
        with open(store.journal_path, "a") as handle:
            handle.write('{"torn')
        before = store.journal_path.read_bytes()
        reader = _store(tmp_path, readonly=True)
        reader.close()
        assert store.journal_path.read_bytes() == before
