"""CampaignService: retries, backpressure, degradation, drain, leases."""

import json

import pytest

from repro.service import CampaignService, JobSpec
from repro.service.service import DRAIN_MARKER
from repro.service.spec import job_spec_to_json
from repro.validate.schema import parse_artifact


def _service(tmp_path, **kwargs):
    options = {
        "tick_s": 0.001, "backoff_base_s": 0.001, "lease_s": 5.0,
    }
    options.update(kwargs)
    return CampaignService(tmp_path / "state", **options)


def _toy(**kwargs):
    options = {"pipeline": "toy", "seed": 1, "targets": 4, "hosts": 2}
    options.update(kwargs)
    return JobSpec(**options)


class TestRetryAndPoison:
    def test_chaos_failure_retries_then_succeeds(self, tmp_path):
        service = _service(tmp_path)
        record, disposition = service.submit(_toy(chaos={"fail_attempts": 2}))
        assert disposition == "admitted"
        service.run(until_idle=True)
        final = service.store.jobs[record.job_id]
        assert final.state == "done"
        assert final.attempts == 3
        outcomes = [entry["outcome"] for entry in final.attempt_log]
        assert outcomes == ["error", "error", "done"]
        assert "corpus.json" in final.artifacts

    def test_poison_job_quarantined_with_validated_artifact(self, tmp_path):
        service = _service(tmp_path, max_attempts=2)
        record, _ = service.submit(_toy(chaos={"fail_attempts": 99}))
        service.run(until_idle=True)
        final = service.store.jobs[record.job_id]
        assert final.state == "failed"
        assert final.attempts == 2
        assert final.failure["reason"] == "attempt budget exhausted"
        assert final.failure["artifact"] == "failure.json"
        artifact_path = service.store.job_dir(record.job_id) / "failure.json"
        report = parse_artifact(
            artifact_path.read_text(), kind="quarantine-report"
        )
        assert report["records"][0]["category"] == "poison-job"
        assert report["records"][0]["subject"] == record.job_id
        # The digest in the record matches the artifact on disk.
        from repro.obs import sha256_text

        assert final.artifacts["failure.json"]["sha256"] == sha256_text(
            artifact_path.read_text()
        )

    def test_terminal_record_exported_and_valid(self, tmp_path):
        service = _service(tmp_path)
        record, _ = service.submit(_toy())
        service.run(until_idle=True)
        payload = parse_artifact(
            (service.store.job_dir(record.job_id) / "record.json").read_text(),
            kind="job-record",
        )
        assert payload["state"] == "done"

    def test_backoff_is_seeded_and_reproducible(self, tmp_path):
        first = _service(tmp_path, seed=3)
        second = CampaignService(tmp_path / "other", seed=3,
                                 tick_s=0.001, backoff_base_s=0.001)
        diverged = CampaignService(tmp_path / "diverged", seed=4,
                                   tick_s=0.001, backoff_base_s=0.001)
        delays = [s.scheduler.backoff_s("job-a", n) for s in (first, second)
                  for n in (1, 2, 3)]
        assert delays[:3] == delays[3:]
        assert delays[:3] != [
            diverged.scheduler.backoff_s("job-a", n) for n in (1, 2, 3)
        ]
        # Exponential shape survives the jitter (factor in [0.5, 1.5)).
        assert delays[1] > delays[0]
        for service in (first, second, diverged):
            service.store.close()


class TestAdmission:
    def test_queue_full_rejected_with_reason(self, tmp_path):
        service = _service(tmp_path, queue_limit=2)
        service.submit(_toy(seed=1))
        service.submit(_toy(seed=2))
        record, disposition = service.submit(_toy(seed=3))
        assert record is None
        assert "queue full (2/2)" in disposition
        assert len(service.store.rejected) == 1
        assert service.store.rejected[0]["reason"] == disposition
        service.store.close()

    def test_duplicate_submission_dedupes(self, tmp_path):
        service = _service(tmp_path)
        first, _ = service.submit(_toy(seed=7))
        second, disposition = service.submit(_toy(seed=7, name="renamed"))
        assert disposition == "deduped"
        assert second.job_id == first.job_id
        assert service.store.jobs[first.job_id].dedup_count == 1
        service.store.close()

    def test_shedding_halves_the_limit_after_bad_attempts(self, tmp_path):
        service = _service(tmp_path, queue_limit=4, max_attempts=1)
        for seed in range(3):
            service.submit(_toy(seed=seed, chaos={"fail_attempts": 99}))
        service.run(until_idle=True)
        assert service.scheduler.recent_bad_attempts() >= 3
        assert service.scheduler.shedding()
        assert service.scheduler.effective_queue_limit() == 2
        accepted = []
        for seed in range(10, 14):
            record, disposition = service.submit(_toy(seed=seed))
            accepted.append(record is not None)
        assert accepted == [True, True, False, False]
        _, reason = service.submit(_toy(seed=99))
        assert "shedding load" in reason

    def test_invalid_inbox_spec_rejected_not_fatal(self, tmp_path):
        service = _service(tmp_path)
        (service.store.inbox_dir / "bad.json").write_text("{not json")
        good = _toy(seed=5)
        (service.store.inbox_dir / "good.json").write_text(
            job_spec_to_json(good)
        )
        taken = service.ingest_inbox()
        assert taken == 2
        assert len(service.store.jobs) == 1
        assert any(
            "invalid job spec" in entry["reason"]
            for entry in service.store.rejected
        )
        assert not list(service.store.inbox_dir.glob("*.json"))
        service.store.close()


class TestDegradation:
    def test_degraded_attempts_walk_down_the_fidelity_ladder(self, tmp_path):
        service = _service(tmp_path, max_attempts=4)
        record, _ = service.submit(_toy(
            seed=5, targets=8, allow_degraded=True,
            faults={"vp_dropout": 2, "vp_dropout_after": 1},
        ))
        service.run(until_idle=True)
        final = service.store.jobs[record.job_id]
        assert final.state == "done"
        assert final.fidelity == "minimal"
        ladder = [entry["fidelity"] for entry in final.attempt_log]
        assert ladder == ["full", "reduced", "minimal"]
        assert all(entry["degraded"] for entry in final.attempt_log)

    def test_without_opt_in_degraded_result_ships_at_full(self, tmp_path):
        service = _service(tmp_path, max_attempts=4)
        record, _ = service.submit(_toy(
            seed=5, targets=8, allow_degraded=False,
            faults={"vp_dropout": 2, "vp_dropout_after": 1},
        ))
        service.run(until_idle=True)
        final = service.store.jobs[record.job_id]
        assert final.state == "done"
        assert final.attempts == 1
        assert final.fidelity == "full"
        assert final.attempt_log[0]["degraded"]


class TestSchedulingAndDrain:
    def test_priority_wins_then_submission_order(self, tmp_path):
        service = _service(tmp_path)
        low, _ = service.submit(_toy(seed=1))
        high, _ = service.submit(_toy(seed=2, priority=5))
        service.run(until_idle=True)
        jobs = service.store.jobs
        first_start = jobs[high.job_id].attempt_log[0]["started_at"]
        second_start = jobs[low.job_id].attempt_log[0]["started_at"]
        assert first_start <= second_start

    def test_drain_marker_stops_the_loop_without_admitting(self, tmp_path):
        service = _service(tmp_path)
        service.submit(_toy(seed=1))
        (service.state_dir / DRAIN_MARKER).touch()
        executed = service.run()
        assert executed == 0
        assert service.store.jobs  # nothing lost
        assert not (service.state_dir / DRAIN_MARKER).exists()
        # Flush happened: snapshot + obs exports on disk.
        assert (service.state_dir / "snapshot.json").exists()
        assert (service.state_dir / "service-metrics.json").exists()
        assert (service.state_dir / "service-trace.json").exists()

    def test_max_jobs_bounds_the_loop(self, tmp_path):
        service = _service(tmp_path)
        service.submit(_toy(seed=1))
        service.submit(_toy(seed=2))
        assert service.run(max_jobs=1) == 1

    def test_metrics_and_spans_published(self, tmp_path):
        service = _service(tmp_path)
        record, _ = service.submit(_toy(seed=1, chaos={"fail_attempts": 1}))
        service.run(until_idle=True)
        metrics = json.loads(
            (service.state_dir / "service-metrics.json").read_text()
        )
        counters = metrics["counters"]
        assert counters["service.jobs_submitted"] == 1
        assert counters["service.attempts"] == 2
        assert counters["service.retries"] == 1
        assert counters["service.jobs_done"] == 1
        assert metrics["gauges"]["service.queue_depth"] == 0
        spans = json.loads(
            (service.state_dir / "service-trace.json").read_text()
        )["spans"]
        job_spans = [s for s in spans if s["name"] == f"job:{record.job_id}"]
        assert len(job_spans) == 2
        assert [s["attributes"]["outcome"] for s in job_spans] \
            == ["error", "done"]


class TestLeases:
    def test_own_stale_lease_reclaimed_on_restart(self, tmp_path):
        service = _service(tmp_path)
        record, _ = service.submit(_toy(seed=7))
        service.store.append(
            "start", job_id=record.job_id, owner="executor",
            expires_at=service.clock() + 1000, fidelity="full",
        )
        service.store.close()
        reborn = _service(tmp_path)
        revived = reborn.store.jobs[record.job_id]
        assert revived.state == "queued"
        assert revived.attempts == 1  # the killed attempt charged budget
        reborn.run(until_idle=True)
        assert reborn.store.jobs[record.job_id].state == "done"

    def test_foreign_lease_waits_for_expiry(self, tmp_path):
        service = _service(tmp_path)
        record, _ = service.submit(_toy(seed=8))
        service.store.append(
            "start", job_id=record.job_id, owner="other-host",
            expires_at=service.clock() + 10_000, fidelity="full",
        )
        service.store.close()
        reborn = _service(tmp_path)
        assert reborn.store.jobs[record.job_id].state == "running"
        reborn._reclaim_expired()
        assert reborn.store.jobs[record.job_id].state == "running"
        reborn.store.close()

    def test_expired_foreign_lease_reclaimed(self, tmp_path):
        service = _service(tmp_path)
        record, _ = service.submit(_toy(seed=9))
        service.store.append(
            "start", job_id=record.job_id, owner="other-host",
            expires_at=service.clock() - 1.0, fidelity="full",
        )
        service.store.close()
        reborn = _service(tmp_path)
        reborn.run(until_idle=True)
        final = reborn.store.jobs[record.job_id]
        assert final.state == "done"
        assert final.attempt_log[0]["outcome"] == "interrupted"

    def test_heartbeat_extends_the_lease_during_execution(self, tmp_path):
        service = _service(tmp_path, lease_s=0.05)
        record, _ = service.submit(_toy(seed=3, targets=30, hosts=3))
        service.run(until_idle=True)
        final = service.store.jobs[record.job_id]
        assert final.state == "done"
        heartbeats = service.metrics.counter_value("service.heartbeats")
        assert heartbeats >= 1


class TestPoisonShardLinkage:
    """Satellite 2: poison-shard quarantine rides into the job record."""

    def test_supervised_job_links_validated_quarantine_artifact(
        self, tmp_path
    ):
        service = _service(tmp_path)
        record, _ = service.submit(_toy(
            seed=3, targets=4, hosts=2, workers=2,
            faults={"worker_crash": 1.0},
        ))
        service.run(until_idle=True)
        final = service.store.jobs[record.job_id]
        # Every shard poisoned: the campaign still completes (degraded,
        # empty corpus) and the quarantine is exported and linked.
        assert final.state == "done"
        assert final.attempt_log[-1]["degraded"]
        assert "quarantine.json" in final.artifacts
        artifact_path = service.store.job_dir(record.job_id) \
            / "quarantine.json"
        report = parse_artifact(
            artifact_path.read_text(), kind="quarantine-report"
        )
        categories = {entry["category"] for entry in report["records"]}
        assert "poison-shard" in categories
        from repro.obs import sha256_text

        assert final.artifacts["quarantine.json"]["sha256"] \
            == sha256_text(artifact_path.read_text())
