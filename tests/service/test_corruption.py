"""Corruption fuzz matrix (satellite 3): checkpoints and journals.

Truncated, garbled, and empty state files must surface as one-line
``error:`` diagnostics with exit 3 — never a traceback — for both
:meth:`CampaignCheckpoint.load` (CLI ``--resume``) and the service's
job journal / snapshot (CLI ``service status`` / ``service run``).
"""

import json

import pytest

from repro.cli import main
from repro.errors import CheckpointError, ServiceError
from repro.io.checkpoint import CampaignCheckpoint
from repro.service.spec import JobSpec
from repro.service.store import JobStore

CHECKPOINT_VARIANTS = {
    "empty": "",
    "truncated": '{"schema": 1, "kind": "campaign-checkpoint", "stages',
    "garbled-json": "\x00\x01not json at all\x7f",
    "wrong-kind": json.dumps({"schema": 1, "kind": "cable-region"}),
    "schema-violation": json.dumps(
        {"schema": 1, "kind": "campaign-checkpoint", "stages": "nope",
         "health": {}, "injector": {}, "shards": {}}
    ),
}

JOURNAL_VARIANTS = {
    "garbled-first-line": lambda text: "@@corrupt@@\n" + text,
    "truncated-first-line": lambda text: text[: len(text) // 2 or 1]
    + ("\n" + text if "\n" in text else ""),
    "non-object-line": lambda text: '"just a string"\n' + text,
    "missing-op": lambda text: '{"seq": 1}\n' + text,
}


def _one_line_error(capsys):
    err = capsys.readouterr().err.strip()
    assert err.startswith("error:")
    assert "\n" not in err
    assert "Traceback" not in err
    return err


class TestCheckpointFuzz:
    @pytest.mark.parametrize("variant", sorted(CHECKPOINT_VARIANTS))
    def test_load_raises_checkpoint_error(self, tmp_path, variant):
        path = tmp_path / "campaign.ckpt"
        path.write_text(CHECKPOINT_VARIANTS[variant])
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(path)

    @pytest.mark.parametrize("variant", sorted(CHECKPOINT_VARIANTS))
    def test_cli_resume_exits_3_with_one_line(self, tmp_path, capsys, variant):
        path = tmp_path / "campaign.ckpt"
        path.write_text(CHECKPOINT_VARIANTS[variant])
        code = main(["map-cable", "comcast", "--sweep-vps", "2",
                     "--resume", str(path)])
        assert code == 3
        _one_line_error(capsys)

    def test_direct_load_of_missing_checkpoint_is_clean(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CampaignCheckpoint.load(tmp_path / "absent.ckpt")


class TestJournalFuzz:
    def _seeded_state(self, tmp_path):
        state = tmp_path / "state"
        store = JobStore.open(state)
        record, _ = store.submit(JobSpec(seed=1, targets=4))
        store.append("heartbeat", job_id=record.job_id, expires_at=1.0)
        store.close()
        return state

    @pytest.mark.parametrize("variant", sorted(JOURNAL_VARIANTS))
    def test_corrupt_journal_raises_service_error(self, tmp_path, variant):
        state = self._seeded_state(tmp_path)
        journal = state / "journal.jsonl"
        journal.write_text(JOURNAL_VARIANTS[variant](journal.read_text()))
        with pytest.raises(ServiceError, match="corrupt service journal"):
            JobStore.open(state)

    @pytest.mark.parametrize("variant", sorted(JOURNAL_VARIANTS))
    @pytest.mark.parametrize("command", ["status", "run"])
    def test_cli_exits_3_with_one_line(self, tmp_path, capsys, variant,
                                       command):
        state = self._seeded_state(tmp_path)
        journal = state / "journal.jsonl"
        journal.write_text(JOURNAL_VARIANTS[variant](journal.read_text()))
        argv = ["service", command, str(state)]
        if command == "run":
            argv.append("--until-idle")
        code = main(argv)
        assert code == 3
        err = _one_line_error(capsys)
        assert "journal" in err

    def test_corrupt_snapshot_exits_3(self, tmp_path, capsys):
        state = self._seeded_state(tmp_path)
        store = JobStore.open(state)
        store.compact()
        store.close()
        snapshot = state / "snapshot.json"
        snapshot.write_text(snapshot.read_text()[:40])
        code = main(["service", "status", str(state)])
        assert code == 3
        err = _one_line_error(capsys)
        assert "snapshot" in err

    def test_torn_tail_is_not_an_error(self, tmp_path, capsys):
        state = self._seeded_state(tmp_path)
        with open(state / "journal.jsonl", "a") as handle:
            handle.write('{"seq": 9, "op": "done", "job_')
        assert main(["service", "status", str(state)]) == 0
        assert "queued" in capsys.readouterr().out
