"""The read-only HTTP plane: routes, verification, events, diffs.

One module-scoped state directory is built by a real service run (one
JSON-corpus job, one binary-corpus job) plus two hand-driven records
(a done job with no corpus artifact, a parked queued job); every test
reads it through :class:`ServiceAPI` (sockets-free) or a live
:class:`ServiceHTTPServer`.
"""

import json
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.obs import sha256_bytes
from repro.service import (
    CampaignService,
    JobSpec,
    ServiceAPI,
    ServiceHTTPServer,
    load_job_corpus,
)
from repro.service.store import JobStore
from repro.validate.schema import parse_artifact


@pytest.fixture(scope="module")
def plane(tmp_path_factory):
    state_dir = tmp_path_factory.mktemp("http-plane") / "state"
    service = CampaignService(
        state_dir, tick_s=0.001, backoff_base_s=0.001, lease_s=5.0,
    )
    base, _ = service.submit(
        JobSpec(pipeline="toy", seed=1, targets=4, hosts=2)
    )
    other, _ = service.submit(
        JobSpec(pipeline="toy", seed=2, targets=6, hosts=3,
                corpus_format="binary")
    )
    service.run(until_idle=True)
    # A done job with no corpus artifact, driven by hand through the
    # store protocol (claim -> settle) so the diff route's 400 path is
    # reachable without a pipeline that skips corpus export.
    bare, _ = service.store.submit(
        JobSpec(pipeline="toy", seed=3, targets=2, hosts=2, name="bare")
    )
    now = time.time()
    token = service.store.try_claim(
        bare.job_id, "hand", expires_at=now + 60.0, now=now
    )
    assert token is not None
    assert service.store.settle(
        bare.job_id, "hand", token, "done", artifacts={}
    )
    # A queued job nobody ever claims.
    parked, _ = service.store.submit(
        JobSpec(pipeline="toy", seed=4, targets=2, hosts=2, name="parked")
    )
    service.store.close()
    yield SimpleNamespace(
        state_dir=state_dir,
        api=ServiceAPI(state_dir),
        base=base.job_id,
        other=other.job_id,
        bare=bare.job_id,
        parked=parked.job_id,
    )


def _json_of(body):
    return json.loads(body.decode())


def _http_get(port, path):
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _oracle_summary(corpus):
    """(COs, links) recomputed from the ``to_traces`` object graph."""
    traces = corpus.to_traces()
    cos = sorted({
        address for trace in traces
        for address in trace.responsive_addresses()
    })
    links = sorted({
        pair for trace in traces
        for pair in trace.adjacent_pairs(exclude_final_echo=True)
    })
    return cos, [list(pair) for pair in links]


class TestRoutes:
    def test_jobs_index_matches_the_store_snapshot(self, plane):
        status, ctype, body = plane.api.handle("/jobs")
        assert status == 200
        assert ctype == "application/json"
        payload = _json_of(body)
        store = JobStore.open(plane.state_dir, readonly=True)
        assert payload["seq"] == store.seq
        assert set(payload["jobs"]) == set(store.jobs)
        for job_id, summary in payload["jobs"].items():
            record = store.jobs[job_id]
            assert summary["state"] == record.state
            assert summary["attempts"] == record.attempts
            assert summary["artifacts"] == sorted(record.artifacts)

    def test_job_route_returns_the_validated_record(self, plane):
        status, _ctype, body = plane.api.handle(f"/jobs/{plane.base}")
        assert status == 200
        payload = parse_artifact(body.decode(), kind="job-record")
        assert payload["job_id"] == plane.base
        assert payload["state"] == "done"

    def test_metrics_merges_executors_and_store_gauges(self, plane):
        status, _ctype, body = plane.api.handle("/metrics")
        assert status == 200
        payload = _json_of(body)
        assert "executor" in payload["executors"]
        assert payload["store"]["jobs_total"] == 4
        assert payload["store"]["terminal"] == 3
        assert payload["store"]["queued"] == 1


class TestErrorPaths:
    @pytest.mark.parametrize("path", [
        "/",
        "/nope",
        "/jobs/short",  # not a 12-hex job id -> no route matches
        "/jobs/ffffffffffff",
        "/jobs/ffffffffffff/events",
        "/jobs/ffffffffffff/artifacts/corpus.json",
    ])
    def test_unknown_routes_and_jobs_are_404(self, plane, path):
        status, ctype, body = plane.api.handle(path)
        assert status == 404
        assert ctype.startswith("text/plain")
        assert body.startswith(b"error: ")
        assert body.decode().count("\n") == 1  # one-line contract

    def test_unknown_artifact_is_404(self, plane):
        status, _ctype, body = plane.api.handle(
            f"/jobs/{plane.base}/artifacts/missing.json"
        )
        assert status == 404
        assert b"has no artifact" in body

    def test_bad_events_cursor_is_400(self, plane):
        status, _ctype, body = plane.api.handle(
            f"/jobs/{plane.base}/events?after=bogus"
        )
        assert status == 400
        assert body == b"error: bad events cursor: 'bogus'\n"


class TestArtifacts:
    def test_json_artifact_served_byte_identical(self, plane):
        status, ctype, body = plane.api.handle(
            f"/jobs/{plane.base}/artifacts/corpus.json"
        )
        assert status == 200
        assert ctype == "application/json"
        on_disk = plane.state_dir / "jobs" / plane.base / "corpus.json"
        assert body == on_disk.read_bytes()

    def test_binary_artifact_served_byte_identical(self, plane):
        status, ctype, body = plane.api.handle(
            f"/jobs/{plane.other}/artifacts/corpus.npz"
        )
        assert status == 200
        assert ctype == "application/octet-stream"
        on_disk = plane.state_dir / "jobs" / plane.other / "corpus.npz"
        assert body == on_disk.read_bytes()
        store = JobStore.open(plane.state_dir, readonly=True)
        meta = store.jobs[plane.other].artifacts["corpus.npz"]
        assert sha256_bytes(body) == meta["sha256"]

    @pytest.mark.parametrize("name_attr,artifact", [
        ("base", "corpus.json"),
        ("other", "corpus.npz"),
    ])
    def test_corrupted_artifact_is_502_not_silent(self, plane, name_attr,
                                                  artifact):
        job_id = getattr(plane, name_attr)
        path = plane.state_dir / "jobs" / job_id / artifact
        original = path.read_bytes()
        path.write_bytes(b"tampered\nbytes")
        try:
            status, ctype, body = plane.api.handle(
                f"/jobs/{job_id}/artifacts/{artifact}"
            )
        finally:
            path.write_bytes(original)
        assert status == 502
        assert ctype.startswith("text/plain")
        assert body.startswith(b"error: ")
        assert b"sha256" in body
        assert body.decode().count("\n") == 1
        # The pristine bytes serve again after restoration.
        status, _ctype, body = plane.api.handle(
            f"/jobs/{job_id}/artifacts/{artifact}"
        )
        assert status == 200
        assert body == original


class TestDiff:
    def test_diff_matches_the_object_graph_oracle(self, plane):
        status, _ctype, body = plane.api.handle(
            f"/jobs/{plane.base}/diff/{plane.other}"
        )
        assert status == 200
        payload = parse_artifact(body.decode(), kind="topology-diff")
        store = JobStore.open(plane.state_dir, readonly=True)
        summaries = {}
        for job_id in (plane.base, plane.other):
            corpus = load_job_corpus(
                store.job_dir(job_id), store.jobs[job_id]
            )
            summaries[job_id] = _oracle_summary(corpus)
        base_cos, base_links = summaries[plane.base]
        other_cos, other_links = summaries[plane.other]
        assert payload["cos_added"] == sorted(
            set(other_cos) - set(base_cos)
        )
        assert payload["cos_removed"] == sorted(
            set(base_cos) - set(other_cos)
        )
        as_pairs = lambda links: {tuple(pair) for pair in links}  # noqa: E731
        assert as_pairs(payload["links_added"]) == (
            as_pairs(other_links) - as_pairs(base_links)
        )
        assert as_pairs(payload["links_removed"]) == (
            as_pairs(base_links) - as_pairs(other_links)
        )
        assert payload["counts"] == {
            "base_cos": len(base_cos),
            "other_cos": len(other_cos),
            "base_links": len(base_links),
            "other_links": len(other_links),
        }
        # hosts=2 vs hosts=3 substrates genuinely differ, so the diff
        # is exercising more than empty-set equality.
        assert payload["cos_added"] or payload["cos_removed"]

    def test_diff_is_symmetricly_inverted(self, plane):
        _s, _c, forward = plane.api.handle(
            f"/jobs/{plane.base}/diff/{plane.other}"
        )
        _s, _c, backward = plane.api.handle(
            f"/jobs/{plane.other}/diff/{plane.base}"
        )
        fwd, bwd = _json_of(forward), _json_of(backward)
        assert fwd["cos_added"] == bwd["cos_removed"]
        assert fwd["links_removed"] == bwd["links_added"]

    def test_diff_of_a_queued_job_is_400(self, plane):
        status, _ctype, body = plane.api.handle(
            f"/jobs/{plane.parked}/diff/{plane.base}"
        )
        assert status == 400
        assert b"is queued, not done" in body

    def test_diff_without_a_corpus_artifact_is_400(self, plane):
        status, _ctype, body = plane.api.handle(
            f"/jobs/{plane.base}/diff/{plane.bare}"
        )
        assert status == 400
        assert b"no corpus artifact" in body


class TestEventsOverHTTP:
    def test_cursor_is_monotonic_across_a_server_restart(self, plane):
        server = ServiceHTTPServer(plane.state_dir, port=0).start()
        try:
            status, body = _http_get(
                server.port, f"/jobs/{plane.base}/events"
            )
        finally:
            server.stop()
        assert status == 200
        first = parse_artifact(body.decode(), kind="job-events")
        seqs = [event["seq"] for event in first["events"]]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        ops = [event["op"] for event in first["events"]]
        assert ops[0] == "submit"
        assert ops[-1] == "done"
        assert first["cursor"] == seqs[-1]

        # A brand-new server over the same state dir: replaying the
        # old cursor yields nothing new and never rewinds.
        server = ServiceHTTPServer(plane.state_dir, port=0).start()
        try:
            status, body = _http_get(
                server.port,
                f"/jobs/{plane.base}/events?after={first['cursor']}",
            )
            assert status == 200
            resumed = parse_artifact(body.decode(), kind="job-events")
            assert resumed["events"] == []
            assert resumed["cursor"] == first["cursor"]
            status, body = _http_get(
                server.port, f"/jobs/{plane.base}/events"
            )
            assert parse_artifact(
                body.decode(), kind="job-events"
            ) == first
            # Error bodies travel the socket path too.
            status, body = _http_get(server.port, "/jobs/ffffffffffff")
            assert status == 404
            assert body.startswith(b"error: ")
        finally:
            server.stop()
