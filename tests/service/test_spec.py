"""JobSpec: validation, content addressing, fidelity ladder."""

import pytest

from repro.errors import ServiceError
from repro.service.spec import (
    FIDELITY_LEVELS,
    JobSpec,
    degrade,
    job_id_for,
    job_spec_from_json,
    job_spec_to_json,
    spec_hash,
)


class TestValidation:
    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ServiceError, match="unknown pipeline"):
            JobSpec(pipeline="warp")

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ServiceError, match="unknown fidelity"):
            JobSpec(fidelity="ultra")

    def test_unknown_fault_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown fault-plan field"):
            JobSpec(faults={"probe_loss": 0.1, "gamma_rays": 1.0})

    def test_known_fault_fields_accepted(self):
        spec = JobSpec(faults={"probe_loss": 0.2, "worker_crash": 0.1})
        assert spec.faults["probe_loss"] == 0.2


class TestContentAddressing:
    def test_hash_stable_and_id_is_prefix(self):
        spec = JobSpec(seed=3, targets=12)
        assert spec_hash(spec) == spec_hash(JobSpec(seed=3, targets=12))
        assert job_id_for(spec) == spec_hash(spec)[:12]

    def test_name_and_priority_do_not_enter_the_hash(self):
        base = JobSpec(seed=5)
        renamed = JobSpec(seed=5, name="portfolio-a", priority=9)
        assert spec_hash(base) == spec_hash(renamed)

    def test_output_relevant_fields_change_the_hash(self):
        base = JobSpec(seed=5)
        assert spec_hash(base) != spec_hash(JobSpec(seed=6))
        assert spec_hash(base) != spec_hash(JobSpec(seed=5, fidelity="reduced"))
        assert spec_hash(base) != spec_hash(
            JobSpec(seed=5, faults={"probe_loss": 0.1})
        )

    def test_json_round_trip_preserves_hash_and_metadata(self):
        spec = JobSpec(
            pipeline="map-cable", seed=2, isp="charter", sweep_vps=6,
            faults={"probe_loss": 0.05}, chaos={"fail_attempts": 2},
            name="charter-map", priority=3,
        )
        clone = job_spec_from_json(job_spec_to_json(spec))
        assert clone == spec
        assert spec_hash(clone) == spec_hash(spec)

    def test_invalid_artifact_rejected(self):
        with pytest.raises(Exception, match="kind"):
            job_spec_from_json('{"schema": 1, "kind": "job-record"}')


class TestFidelityLadder:
    def test_degrade_walks_down_and_sticks_at_bottom(self):
        assert degrade("full") == "reduced"
        assert degrade("reduced") == "minimal"
        assert degrade("minimal") == "minimal"

    def test_ladder_order(self):
        assert FIDELITY_LEVELS == ("full", "reduced", "minimal")
