"""The PR's acceptance invariant: SIGKILL the service anywhere, lose nothing.

A real ``repro service run`` subprocess is SIGKILLed at arbitrary
points, restarted against the same state directory, and must converge:
every job reaches a terminal state, no job is duplicated or lost, and
deterministic specs produce byte-identical topology artifacts to an
uninterrupted run.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.service.spec import JobSpec, job_id_for, job_spec_to_json
from repro.service.store import JobStore

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

#: Deterministic portfolio: two clean jobs plus one that chaos-fails
#: its first attempt (the retry path must survive the kills too).
SPECS = [
    JobSpec(pipeline="toy", seed=1, targets=30, hosts=3),
    JobSpec(pipeline="toy", seed=2, targets=24, hosts=2),
    JobSpec(pipeline="toy", seed=3, targets=20, hosts=2,
            chaos={"fail_attempts": 1}),
]


def _env():
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spool(state: pathlib.Path) -> "list[str]":
    inbox = state / "inbox"
    inbox.mkdir(parents=True, exist_ok=True)
    ids = []
    for spec in SPECS:
        job_id = job_id_for(spec)
        (inbox / f"{job_id}.json").write_text(job_spec_to_json(spec))
        ids.append(job_id)
    return ids


def _run_args(state: pathlib.Path) -> "list[str]":
    return [
        sys.executable, "-m", "repro", "service", "run", str(state),
        "--until-idle", "--tick-s", "0.001", "--backoff-base-s", "0.001",
        "--max-attempts", "6", "--lease-s", "10",
    ]


def _run_to_completion(state: pathlib.Path) -> None:
    result = subprocess.run(
        _run_args(state), env=_env(), capture_output=True, text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr


def _artifact_bytes(state: pathlib.Path, job_id: str) -> bytes:
    return (state / "jobs" / job_id / "corpus.json").read_bytes()


class TestKillRestartInvariant:
    def test_sigkill_anywhere_converges_to_identical_artifacts(
        self, tmp_path
    ):
        # Reference: the same portfolio, never interrupted.
        clean = tmp_path / "clean"
        ids = _spool(clean)
        _run_to_completion(clean)

        # Victim: SIGKILLed at staggered points across restarts, so the
        # kills land during startup, mid-campaign, and mid-retry.
        state = tmp_path / "state"
        assert _spool(state) == ids
        for delay in (0.8, 1.6, 2.4):
            proc = subprocess.Popen(
                _run_args(state), env=_env(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            try:
                proc.wait(timeout=delay)
                break  # finished before this kill could land
            except subprocess.TimeoutExpired:
                proc.send_signal(signal.SIGKILL)
                proc.wait()
        _run_to_completion(state)

        store = JobStore.open(state, readonly=True)
        reference = JobStore.open(clean, readonly=True)
        try:
            # No duplicated or lost jobs.
            assert sorted(store.jobs) == sorted(ids)
            # Every job terminal; the chaos job consumed its one
            # planned failure and still finished.
            for job_id in ids:
                record = store.jobs[job_id]
                assert record.terminal, (job_id, record.state)
                assert record.state == "done", (job_id, record.state)
            # Byte-identical topology artifacts for deterministic specs.
            for job_id in ids:
                assert _artifact_bytes(state, job_id) \
                    == _artifact_bytes(clean, job_id), job_id
                assert store.jobs[job_id].artifacts["corpus.json"]["sha256"] \
                    == reference.jobs[job_id].artifacts["corpus.json"]["sha256"]
        finally:
            store.close()
            reference.close()

    def test_sigterm_drains_cleanly_with_exit_0(self, tmp_path):
        state = tmp_path / "state"
        _spool(state)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "service", "run", str(state),
             "--tick-s", "0.01"],
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        # Wait for the store lock to exist (the loop is up right after),
        # then ask for a graceful drain.
        deadline = time.monotonic() + 30
        lock = state / "lock"
        while not lock.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert lock.exists()
        time.sleep(1.0)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert "attempt(s) executed" in out
        # State survived the drain and is reopenable.
        store = JobStore.open(state, readonly=True)
        assert len(store.jobs) + len(list(store.inbox_dir.glob("*.json"))) \
            >= len(SPECS)  # every spec admitted or still spooled, never lost
        store.close()
