"""Determinism regression: everything is seeded, nothing reads global
RNG state, so same seed ⇒ same world and same measurements."""

from repro.faults import FaultInjector, FaultPlan
from repro.measure.traceroute import Tracerouter
from repro.net.network import Network
from repro.topology.cable import build_comcast_like
from repro.topology.geography import Geography
from repro.topology.mobile import build_mobile_carriers


def _build():
    net = Network()
    return net, build_comcast_like(net, Geography(), seed=42)


class TestSameSeedSameWorld:
    def test_identical_address_plan(self):
        net_a, _ = _build()
        net_b, _ = _build()
        assert sorted(net_a.all_addresses()) == sorted(net_b.all_addresses())

    def test_identical_rdns(self):
        net_a, _ = _build()
        net_b, _ = _build()
        assert list(net_a.rdns.snapshot_items()) == list(net_b.rdns.snapshot_items())

    def test_identical_co_tags(self):
        _net_a, isp_a = _build()
        _net_b, isp_b = _build()
        tags_a = sorted(
            isp_a.co_tag(co)
            for region in isp_a.regions.values()
            for co in region.cos.values()
        )
        tags_b = sorted(
            isp_b.co_tag(co)
            for region in isp_b.regions.values()
            for co in region.cos.values()
        )
        assert tags_a == tags_b

    def test_identical_traceroutes(self):
        results = []
        for _ in range(2):
            net, isp = _build()
            src = isp.regions["seattle"].edge_cos[0].routers[0]
            dst = str(
                isp.regions["denver"].edge_cos[0].routers[0].interfaces[0].address
            )
            trace = Tracerouter(net).trace(src, dst, flow_id=7)
            results.append([(h.address, h.rtt_ms) for h in trace.hops])
        assert results[0] == results[1]

    def test_identical_mobile_attachments(self):
        prefixes = []
        for _ in range(2):
            carriers = build_mobile_carriers(Geography(), seed=42)
            attachment = carriers["verizon"].attach(40.7, -74.0)
            prefixes.append(str(attachment.user_prefix))
        assert prefixes[0] == prefixes[1]

    def test_different_seeds_differ(self):
        nets = []
        for seed in (1, 2):
            net = Network()
            build_comcast_like(net, Geography(), seed=seed)
            nets.append(sorted(
                name for _a, name in net.rdns.snapshot_items()
            ))
        assert nets[0] != nets[1]


class TestFaultDeterminism:
    """The fault substrate must never perturb the fault-free world."""

    def _endpoints(self, net, isp):
        src = isp.regions["seattle"].edge_cos[0].routers[0]
        dst = str(
            isp.regions["denver"].edge_cos[0].routers[0].interfaces[0].address
        )
        return src, dst

    def _hops(self, trace):
        return [(h.address, h.rdns, h.rtt_ms, h.attempts) for h in trace.hops]

    def test_empty_plan_identical_to_no_plan(self):
        net, isp = _build()
        src, dst = self._endpoints(net, isp)
        bare = Tracerouter(net).trace(src, dst, flow_id=7)
        net.attach_faults(FaultInjector(FaultPlan()))
        injected = Tracerouter(net).trace(src, dst, flow_id=7)
        net.detach_faults()
        assert self._hops(bare) == self._hops(injected)

    def test_retry_config_alone_identical_to_seed(self):
        """attempts>1 with nothing to retry reproduces attempts=1 exactly
        (the first attempt of every probe keeps its historical key)."""
        net, isp = _build()
        src, dst = self._endpoints(net, isp)
        single = Tracerouter(net).trace(src, dst, flow_id=7)
        triple = Tracerouter(net, attempts=3).trace(src, dst, flow_id=7)
        assert self._hops(single) == self._hops(triple)

    def test_same_seed_same_faulty_trace(self):
        results = []
        for _ in range(2):
            net, isp = _build()
            src, dst = self._endpoints(net, isp)
            net.attach_faults(
                FaultInjector(FaultPlan(seed=9, probe_loss=0.3, lsp_flap=0.2))
            )
            trace = Tracerouter(net, attempts=2).trace(src, dst, flow_id=7)
            results.append(self._hops(trace))
        assert results[0] == results[1]

    def test_fault_seeds_differ(self):
        results = []
        for fault_seed in (1, 2):
            net, isp = _build()
            src = isp.regions["seattle"].edge_cos[0].routers[0]
            net.attach_faults(
                FaultInjector(FaultPlan(seed=fault_seed, probe_loss=0.5))
            )
            tracer = Tracerouter(net)
            traces = [
                tracer.trace(src, dst, flow_id=f)
                for f in range(4)
                for dst in [
                    str(
                        isp.regions["denver"].edge_cos[0]
                        .routers[0].interfaces[0].address
                    )
                ]
            ]
            results.append([self._hops(t) for t in traces])
        assert results[0] != results[1]
