#!/usr/bin/env python3
"""Map a cable ISP's regional networks end to end (the §5 case study).

Runs the full two-phase inference pipeline against the Comcast-like
ISP — traceroute campaigns from 47 vantage points, alias resolution,
IP→CO mapping, adjacency pruning, graph refinement — then scores the
inferred CO graphs against the generator's ground truth and prints a
per-region report.

Run:  python examples/map_cable_region.py          (all regions, ~1 min)
      python examples/map_cable_region.py newengland   (focus report)
"""

import statistics
import sys

from repro.analysis.tables import render_table
from repro.infer.aggtype import classify_aggregation
from repro.infer.metrics import score_region, single_upstream_fraction
from repro.infer.pipeline import CableInferencePipeline
from repro.topology.internet import SimulatedInternet


def main() -> None:
    focus = sys.argv[1] if len(sys.argv) > 1 else ""
    print("Building the simulated internet...")
    internet = SimulatedInternet(seed=7, include_telco=False, include_mobile=False)
    fleet = list(internet.build_standard_vps())
    print(f"  vantage points: {len(fleet)}")

    print("Running the two-phase pipeline against the Comcast-like ISP...")
    pipeline = CableInferencePipeline(
        internet.network, internet.comcast, fleet, sweep_vps=8
    )
    result = pipeline.run()
    print(
        f"  {len(result.traces)} traceroutes, "
        f"{len(result.followup_traces)} MPLS follow-ups, "
        f"{len(result.aliases)} alias sets, "
        f"{len(result.mapping)} IP→CO mappings\n"
    )

    tag_of_co = {
        uid: internet.comcast.co_tag(co)
        for region in internet.comcast.regions.values()
        for uid, co in region.cos.items()
    }
    rows = []
    scores = []
    for name in sorted(result.regions):
        inferred = result.regions[name]
        truth = internet.comcast.regions[name]
        score = score_region(inferred, truth, tag_of_co)
        scores.append(score)
        rows.append([
            name,
            inferred.graph.number_of_nodes(),
            len(inferred.agg_cos),
            classify_aggregation(inferred),
            truth.agg_type,
            f"{score.edge_precision:.2f}",
            f"{score.edge_recall:.2f}",
        ])
    print(render_table(
        ["region", "COs", "AggCOs", "inferred type", "true type",
         "edge precision", "edge recall"],
        rows,
        title="Inferred regional topologies vs ground truth",
    ))
    print(
        f"\nmean edge F1: "
        f"{statistics.fmean(s.edge_f1 for s in scores):.3f}; "
        f"single-upstream EdgeCOs: "
        f"{single_upstream_fraction(list(result.regions.values())):.1%}"
    )

    if focus and focus in result.regions:
        inferred = result.regions[focus]
        print(f"\n--- {focus}: inferred CO graph ---")
        for agg in sorted(inferred.agg_cos):
            downstream = sorted(inferred.graph.successors(agg))
            print(f"  AggCO {agg} -> {len(downstream)} COs: {downstream[:8]}...")
        entry_rows = [
            [e.outside_tag, e.outside_region or "(backbone)", e.co_tag]
            for e in result.entries if e.region == focus
        ]
        if entry_rows:
            print(render_table(
                ["entry from", "via", "into CO"], entry_rows,
                title=f"\nEntries into {focus}",
            ))


if __name__ == "__main__":
    main()
