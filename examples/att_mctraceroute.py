#!/usr/bin/env python3
"""Map AT&T's San Diego regional network with McTraceroute (§6).

Wardrives the region's fast-food WiFi for internal vantage points, runs
the lspgw bootstrap + prefix discovery + MPLS Direct Path Revelation
pipeline, and prints the Fig 13 router- and CO-level topology along
with the Table 6 prefix inventory.

Run:  python examples/att_mctraceroute.py
"""

from repro.analysis.tables import render_table
from repro.infer.att import AttInferencePipeline
from repro.measure.wardriving import McTracerouteCampaign
from repro.topology.internet import SimulatedInternet

REGION = "sndgca"


def main() -> None:
    print("Building the simulated internet (telco only)...")
    internet = SimulatedInternet(seed=7, include_cable=False, include_mobile=False)
    internal = list(internet.telco_internal_vps())
    print(f"  Ark/Atlas probes inside AT&T regions: {len(internal)}")

    print(f"Wardriving {REGION}: visiting 58 restaurants...")
    campaign = McTracerouteCampaign(internet.network, internet.att, seed=7)
    campaign.place_hotspots(internet.att.regions[REGION], count=58)
    wifi = campaign.usable_vps()
    print(f"  {len(wifi)} of 58 restaurants use AT&T for their WiFi\n")

    pipeline = AttInferencePipeline(internet.network, internal)
    topology = pipeline.run_region(REGION, extra_vps=wifi, dpr_stride=2)

    print("Inferred router-level topology (the paper's Fig 13a):")
    print(f"  backbone routers: {len(topology.backbone_routers)}")
    print(f"  aggregation routers: {len(topology.agg_routers)}")
    print(f"  EdgeCO routers: {len(topology.edge_routers)}")

    print("\nInferred CO-level topology (Fig 13b):")
    print(
        f"  BackboneCOs: {topology.backbone_co_count} "
        f"(backbone↔agg full mesh: {topology.backbone_fully_meshed})"
    )
    print(f"  AggCOs: {len(topology.agg_routers)} (one agg router each)")
    print(
        f"  EdgeCOs: {len(topology.edge_cos)} with "
        f"{topology.routers_per_edge_co:.1f} routers per CO"
    )

    rows = [["Edge CO", p] for p in sorted(topology.edge_prefixes)]
    rows += [["Aggregation CO", p] for p in sorted(topology.agg_prefixes)]
    print()
    print(render_table(
        ["Central Office type", "prefix"], rows,
        title="Inferred router prefixes (the paper's Table 6)",
    ))

    # The §6.1 visibility comparison: hotspots vs research platforms.
    import re

    pattern = re.compile(rf"lightspeed\.{REGION}\.sbcglobal\.net$")
    targets = internet.network.rdns.addresses_matching(pattern)[:120]
    wifi_paths = McTracerouteCampaign.distinct_ip_paths(campaign.sweep(targets))
    print(
        f"\nMcTraceroute observed {len(wifi_paths)} distinct IP paths "
        f"from {len(wifi)} hotspots — far more than the handful of "
        "research-platform VPs can see (§6.1)."
    )


if __name__ == "__main__":
    main()
