#!/usr/bin/env python3
"""Quickstart: build a simulated internet, traceroute into a cable
region, and read CO identifiers out of the rDNS — the Fig 5 workflow.

Run:  python examples/quickstart.py
"""

from repro.measure.traceroute import Tracerouter
from repro.rdns.regexes import HostnameParser
from repro.topology.internet import SimulatedInternet


def main() -> None:
    print("Building the simulated internet (transit, clouds, ISPs)...")
    internet = SimulatedInternet(seed=7, include_mobile=False)
    network = internet.network
    print(
        f"  {len(network.routers)} routers, {len(network.links)} links, "
        f"{len(network.rdns)} PTR records\n"
    )

    # A cloud VM probes into a Charter-like region, as in Fig 5a.
    vm = internet.cloud_vm("gcp", "us-west2")
    tracer = Tracerouter(network)
    parser = HostnameParser()

    region = internet.charter.regions["socal"]
    target_co = region.edge_cos[3]
    target = str(target_co.routers[0].interfaces[0].address)
    print(f"traceroute from {vm.name} to {target} (an EdgeCO router):")
    trace = tracer.trace(vm.host, target, src_address=vm.src_address)
    for hop in trace.hops:
        name = hop.rdns or ""
        rtt = f"{hop.rtt_ms:7.2f} ms" if hop.rtt_ms is not None else "      *"
        print(f"  {hop.index:>2}  {hop.address or '*':<16} {rtt}  {name}")

    print("\nWhat the hostnames reveal (the paper's Fig 5 reading):")
    for hop in trace.hops:
        parsed = parser.parse(hop.rdns)
        if parsed is None:
            continue
        if parsed.role == "backbone":
            print(f"  hop {hop.index}: backbone PoP at {parsed.co_tag!r}")
        else:
            print(
                f"  hop {hop.index}: {parsed.role} CO {parsed.co_tag!r} "
                f"in regional network {parsed.region!r}"
            )


if __name__ == "__main__":
    main()
