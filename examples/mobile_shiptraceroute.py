#!/usr/bin/env python3
"""Map the mobile carriers by shipping phones cross-country (§7).

Ships one phone per carrier along the 12-leg national itinerary,
then runs the IPv6 bit-field analysis: which address bits encode the
region, the EdgeCO, and the packet gateway (Fig 16); how many regions
and PGWs each carrier operates (Tables 7–8); and which of the three
aggregation designs each carrier uses (Fig 17).

Run:  python examples/mobile_shiptraceroute.py
"""

from repro.analysis.tables import render_table
from repro.infer.mobile_ipv6 import MobileIPv6Analyzer
from repro.measure.shiptraceroute import ShipTracerouteCampaign
from repro.topology.geography import Geography
from repro.topology.mobile import build_mobile_carriers


def main() -> None:
    geography = Geography()
    carriers = build_mobile_carriers(geography, seed=7)
    campaign = ShipTracerouteCampaign(carriers, geography, seed=7)

    print("Shipping three phones along the 12-leg itinerary...")
    results = campaign.run()
    rows = [
        [name, r.attempted, r.succeeded, f"{r.success_rate:.0%}",
         len(r.states_covered())]
        for name, r in sorted(results.items())
    ]
    print(render_table(
        ["carrier", "rounds", "succeeded", "rate", "states"], rows,
        title="Round success per carrier (§7.1.1)",
    ))

    analyzer = MobileIPv6Analyzer(campaign.celldb)
    for name, result in sorted(results.items()):
        analysis = analyzer.analyze(result)
        print(f"\n=== {name} ===")
        print("  user-address bit fields (Fig 16):")
        for row in analysis.user_report.describe():
            print(f"    {row}")
        print(f"  regions observed: {analysis.region_count}")
        providers = ", ".join(sorted(analysis.backbone_providers)) or "own backbone"
        print(f"  backbone providers: {providers}")
        print(f"  topology class (Fig 17): {analysis.topology_class}")
        sample = sorted(analysis.pgw_counts.items())[:8]
        print(f"  PGWs per region (sample): {dict(sample)}")


if __name__ == "__main__":
    main()
