#!/usr/bin/env python3
"""Where should edge computing live? (§5.5's latency analysis.)

Measures the RTT from every U.S. cloud region to every inferred cable
EdgeCO (Fig 10a) and from each EdgeCO to its serving AggCO (Fig 10b),
then reports how many users each placement brings under the 5 ms AR/VR
budget.

Run:  python examples/edge_computing_latency.py
"""

from repro.analysis.cdf import Cdf
from repro.infer.metrics import edge_to_agg_ratio
from repro.infer.pipeline import CableInferencePipeline
from repro.latency.cloud import CloudLatencyCampaign
from repro.topology.internet import SimulatedInternet


def main() -> None:
    print("Building the simulated internet and mapping the cable ISP...")
    internet = SimulatedInternet(seed=7, include_telco=False, include_mobile=False)
    fleet = list(internet.build_standard_vps())
    result = CableInferencePipeline(
        internet.network, internet.comcast, fleet, sweep_vps=8
    ).run()

    campaign = CloudLatencyCampaign(internet.network)
    per_co = campaign.edge_co_addresses(result)
    vms = internet.all_cloud_vms()
    print(f"  {len(per_co)} EdgeCOs, {len(vms)} cloud regions\n")

    nearest = campaign.nearest_cloud_rtts(vms, per_co)
    cloud_cdf = Cdf([s.min_rtt_ms for s in nearest.values()])
    print("RTT from the nearest cloud region to each EdgeCO (Fig 10a):")
    print(cloud_cdf.ascii_plot(label="RTT ms"))
    print(
        f"  -> {cloud_cdf.fraction_above(5.0):.0%} of EdgeCOs are MORE than "
        "5 ms from the nearest cloud: the cloud alone cannot serve AR/VR.\n"
    )

    agg_samples = campaign.edge_to_agg_rtts(vms[0], result, per_co)
    agg_cdf = Cdf([s.min_rtt_ms for s in agg_samples])
    print("RTT from each EdgeCO to its serving AggCO (Fig 10b):")
    print(agg_cdf.ascii_plot(label="RTT ms"))
    ratio = edge_to_agg_ratio(list(result.regions.values()))
    print(
        f"  -> {agg_cdf.fraction_at(5.0):.0%} of EdgeCOs are WITHIN 5 ms of "
        f"their AggCO, and there are {ratio:.1f}x fewer AggCOs than EdgeCOs:"
        "\n     placing edge compute in AggCOs meets the latency budget at a"
        "\n     fraction of the deployment cost (§5.5, §8)."
    )


if __name__ == "__main__":
    main()
