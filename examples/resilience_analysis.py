#!/usr/bin/env python3
"""Resilience of inferred regional topologies (§6.3, §8).

Maps the Comcast-like ISP, then sweeps single-CO failures over every
inferred region graph: which COs are single points of failure, and how
do the paper's three aggregation shapes (Fig 8) differ in blast radius?
The Christmas 2020 Nashville incident — one BackboneCO serving a whole
region — is the motivating case.

Run:  python examples/resilience_analysis.py
"""

from repro.analysis.resilience import ResilienceAnalyzer
from repro.analysis.tables import render_table
from repro.infer.aggtype import classify_aggregation
from repro.infer.pipeline import CableInferencePipeline
from repro.topology.internet import SimulatedInternet


def main() -> None:
    print("Mapping the Comcast-like ISP...")
    internet = SimulatedInternet(seed=7, include_telco=False, include_mobile=False)
    fleet = list(internet.build_standard_vps())
    result = CableInferencePipeline(
        internet.network, internet.comcast, fleet, sweep_vps=8
    ).run()

    rows = []
    by_type: dict = {}
    for name in sorted(result.regions):
        region = result.regions[name]
        sweep = ResilienceAnalyzer(region).sweep()
        worst = sweep.worst_case
        spofs = sweep.single_points_of_failure()
        agg_type = classify_aggregation(region)
        by_type.setdefault(agg_type, []).append(worst.disconnected_fraction)
        rows.append([
            name, agg_type, f"{worst.disconnected_fraction:.0%}",
            worst.failed_co, len(spofs),
        ])
    print(render_table(
        ["region", "type", "worst failure", "at CO", "SPOFs"],
        rows,
        title="Single-CO failure impact per inferred region",
    ))

    print("\nBlast radius by aggregation shape (Fig 8):")
    for agg_type in ("single", "two", "multi"):
        values = by_type.get(agg_type, [])
        if values:
            mean = sum(values) / len(values)
            print(f"  {agg_type:>6}: mean worst-case {mean:.0%} of EdgeCOs "
                  f"({len(values)} regions)")
    print(
        "\nSingle-AggCO regions concentrate all EdgeCOs behind one "
        "building — the Nashville shape (§6.3); dual-AggCO regions "
        "survive any one CO failure."
    )


if __name__ == "__main__":
    main()
