"""Per-ISP hostname regexes.

The paper hand-crafted regexes to extract CO identifiers and regional
network names from rDNS (§5, Fig 5):

* Comcast-style: ``po-1-1-cbr01.troutdale.or.bverton.comcast.net`` —
  role code (``ar``/``cbr``/``rur``), CO location (city + state), and
  region tag; backbone routers sit under ``ibone``.
* Charter-style: ``agg1.sndhcaax01r.socal.rr.com`` — a CLLI-based CO
  tag (plus a device-type letter) and region tag; backbone routers sit
  under ``tbone`` with ``-bcr`` labels.
* AT&T: ``cr2.sd2ca.ip.att.net`` backbone routers and
  ``107-200-91-1.lightspeed.sndgca.sbcglobal.net`` lightspeed gateways.
* Verizon: ``…alter.net`` backbone and ``…ost.myvzw.com`` speedtest
  hosts.

Parsing never consults ground truth — only the hostname text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ParsedHostname:
    """Semantic fields extracted from one hostname."""

    isp: str
    #: Regional network tag ("socal", "bverton", "sndgca"…); "ibone" /
    #: "tbone" style backbone zones normalize to role="backbone" with
    #: the PoP location in co_tag.
    region: str
    #: CO identifier within the region (building-level for CLLI tags,
    #: metro-level for city tags).
    co_tag: str
    #: "agg" | "edge" | "backbone" | "lspgw" | "unknown" — as hinted by
    #: the name alone (graph heuristics make the real role call).
    role: str
    raw: str


_COMCAST_REGIONAL = re.compile(
    r"^[a-z]+(?:-\d+)+-(?P<role>ar|cbr|rur)\d*\."
    r"(?P<city>[a-z0-9]+)\.(?P<state>[a-z]{2})\."
    r"(?P<region>[a-z0-9]+)\.(?P<isp>[a-z0-9]+)\.net$"
)
_COMCAST_BACKBONE = re.compile(
    r"^[a-z]+(?:-\d+)+-cr\d+\.(?P<city>[a-z0-9]+)\.(?P<state>[a-z]{2})\."
    r"ibone\.(?P<isp>[a-z0-9]+)\.net$"
)
_CHARTER_REGIONAL = re.compile(
    r"^(?P<role>agg|tge|bun)\d*\.(?P<tag>[a-z][a-z0-9]{5,11})(?P<kind>[rhm])\."
    r"(?P<region>[a-z0-9]+)\.rr\.com$"
)
_CHARTER_BACKBONE = re.compile(
    r"^bu-[a-z]+\d*\.(?P<tag>[a-z0-9]+)-bcr\d+\.tbone\.rr\.com$"
)
_ATT_BACKBONE = re.compile(
    r"^cr\d+\.(?P<tag>[a-z0-9]{4,6})\.ip\.att\.net$"
)
_ATT_LSPGW = re.compile(
    r"^(?P<ip>[\d-]+-\d+)\.lightspeed\.(?P<region>[a-z]{6})\.sbcglobal\.net$"
)
_VZ_BACKBONE = re.compile(r"\.alter\.net$")
_VZ_SPEEDTEST = re.compile(r"^(?P<code>[a-z0-9]{3,6})\.ost\.myvzw\.com$")

_COMCAST_ROLES = {"ar": "agg", "cbr": "edge", "rur": "edge"}

#: Hostname ISP labels operated by the same carrier as the pipeline's
#: ISP name.  Backbone-adjacency routing matches the parsed label
#: against the exact ISP *or* one of its declared aliases — never a
#: string prefix, which would let a parsed ``"at"`` claim ``"att"``
#: adjacencies.  Keys are pipeline ISP names; values are the extra
#: hostname labels that carrier answers to.
ISP_ALIASES: "dict[str, frozenset[str]]" = {
    "att": frozenset({"sbcglobal"}),
    "verizon": frozenset({"alter", "myvzw"}),
}


class HostnameParser:
    """Stateless hostname → :class:`ParsedHostname` extraction."""

    def parse(self, hostname: "str | None") -> Optional[ParsedHostname]:
        """Parse any known ISP hostname; None when nothing matches."""
        if not hostname:
            return None
        name = hostname.strip().lower()
        match = _COMCAST_REGIONAL.match(name)
        if match:
            return ParsedHostname(
                isp=match.group("isp"),
                region=match.group("region"),
                co_tag=f"{match.group('city')}.{match.group('state')}",
                role=_COMCAST_ROLES[match.group("role")],
                raw=name,
            )
        match = _COMCAST_BACKBONE.match(name)
        if match:
            return ParsedHostname(
                isp=match.group("isp"),
                region="ibone",
                co_tag=f"{match.group('city')}.{match.group('state')}",
                role="backbone",
                raw=name,
            )
        match = _CHARTER_REGIONAL.match(name)
        if match:
            return ParsedHostname(
                isp="charter",
                region=match.group("region"),
                co_tag=match.group("tag"),
                role="agg" if match.group("kind") == "r" else "edge",
                raw=name,
            )
        match = _CHARTER_BACKBONE.match(name)
        if match:
            return ParsedHostname(
                isp="charter", region="tbone",
                co_tag=match.group("tag"), role="backbone", raw=name,
            )
        match = _ATT_BACKBONE.match(name)
        if match:
            return ParsedHostname(
                isp="att", region=match.group("tag"),
                co_tag=match.group("tag"), role="backbone", raw=name,
            )
        match = _ATT_LSPGW.match(name)
        if match:
            return ParsedHostname(
                isp="att", region=match.group("region"),
                co_tag=match.group("region"), role="lspgw", raw=name,
            )
        match = _VZ_SPEEDTEST.match(name)
        if match:
            return ParsedHostname(
                isp="verizon", region="", co_tag=match.group("code"),
                role="edge", raw=name,
            )
        if _VZ_BACKBONE.search(name):
            return ParsedHostname(
                isp="verizon", region="", co_tag="", role="backbone", raw=name,
            )
        return None

    def regional_co(self, hostname: "str | None", isp: str) -> "Optional[tuple[str, str]]":
        """(region, co_tag) when the hostname names a regional CO of *isp*."""
        return self.regional_co_of(self.parse(hostname), isp)

    @staticmethod
    def regional_co_of(parsed: "ParsedHostname | None", isp: str) -> "Optional[tuple[str, str]]":
        """The :meth:`regional_co` decision over an already-parsed name.

        Split out so memoizing layers that cache the parse can reuse
        the exact classification logic.
        """
        if parsed is None or parsed.isp != isp:
            return None
        if parsed.role in ("backbone", "lspgw"):
            return None
        return parsed.region, parsed.co_tag

    def is_backbone(self, hostname: "str | None", isp: "str | None" = None) -> bool:
        """Whether the hostname names a backbone router."""
        parsed = self.parse(hostname)
        if parsed is None or parsed.role != "backbone":
            return False
        return isp is None or parsed.isp == isp


#: Regexes a campaign uses to harvest probe targets from the Rapid7
#: snapshot (§5.1's "every address with rDNS matching one of our
#: regexes" and §6.1's lspgw harvest).
CABLE_PATTERNS = {
    "comcast": re.compile(r"\.[a-z0-9]+\.comcast\.net$"),
    "charter": re.compile(r"\.rr\.com$"),
    "att-lspgw": re.compile(r"\.lightspeed\.[a-z]{6}\.sbcglobal\.net$"),
}
