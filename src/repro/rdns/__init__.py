"""Hostname semantics: per-ISP regexes and CLLI geolocation."""

from repro.rdns.clli import parse_clli, clli_state
from repro.rdns.regexes import (
    CABLE_PATTERNS,
    HostnameParser,
    ParsedHostname,
)

__all__ = [
    "CABLE_PATTERNS",
    "HostnameParser",
    "ParsedHostname",
    "clli_state",
    "parse_clli",
]
