"""CLLI-code handling.

Common Language Location Identifier codes name telephone-plant
buildings: four letters of city abbreviation, two letters of state, and
an optional building designator (``SNDGCA01`` = a San Diego, CA
building).  Charter embeds CLLI-style strings in its rDNS (Fig 5a) and
AT&T uses six-character city+state region tags in its lightspeed names
(Fig 12); both geolocate a router to a building or metro.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.topology.geography import Geography, clli_city_code

_CLLI_RE = re.compile(r"^([A-Z]{4})([A-Z]{2})(\w*)$", re.IGNORECASE)

#: The 50 states + DC, for validating the state part of a CLLI.
_STATES = {
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "DC", "FL", "GA", "HI",
    "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN",
    "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH",
    "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA",
    "WV", "WI", "WY",
}


@dataclass(frozen=True)
class Clli:
    """A parsed CLLI code: city abbreviation, state, building part."""

    city_code: str
    state: str
    building: str = ""

    @property
    def place(self) -> str:
        """City+state part (the metro identifier)."""
        return f"{self.city_code}{self.state}"


def parse_clli(text: str) -> Optional[Clli]:
    """Parse a CLLI-style string; None when the state part is invalid."""
    match = _CLLI_RE.match(text.strip())
    if match is None:
        return None
    city_code, state, building = match.groups()
    if state.upper() not in _STATES:
        return None
    return Clli(city_code.upper(), state.upper(), building.upper())


def clli_state(text: str) -> Optional[str]:
    """The state encoded in a CLLI-style string, if valid."""
    parsed = parse_clli(text)
    return parsed.state if parsed else None


def geolocate_clli(code: Clli, geography: Geography):
    """Best-effort metro lookup for a CLLI city code (None if unknown)."""
    for city in geography.cities_in(code.state) if code.state in {
        c for c in geography.states()
    } else []:
        if clli_city_code(city.name) == code.city_code:
            return city
    return None
