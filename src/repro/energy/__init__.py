"""Smartphone radio energy model (Fig 14)."""

from repro.energy.model import (
    EnergyTrace,
    PhoneEnergyModel,
    RadioState,
)

__all__ = ["EnergyTrace", "PhoneEnergyModel", "RadioState"]
