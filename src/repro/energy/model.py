"""Radio power-state energy model for ShipTraceroute phones (§7.1.2).

Reproduces the Fig 14 experiment: a Samsung-A71-class phone wakes from
airplane mode once an hour, runs a round of traceroutes to ~266
destinations, and sleeps again.  The modified scamper probes several
consecutive hops *in parallel*, which collapses the time the radio
spends waiting on unresponsive hops — the dominant energy cost — and
cuts round energy from ~8.6 mAh to ~5.3 mAh (≈38 %).

The model is an explicit event simulation over radio states:

* ``TX`` — transmitting a probe burst (high current, milliseconds);
* ``CONNECTED_IDLE`` — radio attached, waiting for replies;
* ``SLEEP_AIRPLANE`` / ``SLEEP_CONNECTED`` — between rounds;
* plus a fixed-cost airplane-mode exit (re-registration) per wake.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class RadioState(enum.Enum):
    """Power states of the phone's cellular radio."""

    TX = "tx"
    CONNECTED_IDLE = "connected_idle"
    SLEEP_AIRPLANE = "sleep_airplane"
    SLEEP_CONNECTED = "sleep_connected"
    WAKING = "waking"


#: Effective current draw per state, in mA (device-level averages).
STATE_CURRENT_MA = {
    RadioState.TX: 700.0,
    RadioState.CONNECTED_IDLE: 45.0,
    RadioState.SLEEP_AIRPLANE: 9.8,
    RadioState.SLEEP_CONNECTED: 15.8,
    RadioState.WAKING: 360.0,
}


@dataclass
class EnergyTrace:
    """A time series of (seconds, cumulative mAh) samples plus totals."""

    samples: "list[tuple[float, float]]" = field(default_factory=list)

    def record(self, seconds: float, mah: float) -> None:
        """Append one cumulative (time, energy) sample."""
        self.samples.append((seconds, mah))

    @property
    def total_mah(self) -> float:
        """Total energy of the trace, in mAh."""
        return self.samples[-1][1] if self.samples else 0.0

    @property
    def duration_s(self) -> float:
        """Wall-clock duration of the trace, in seconds."""
        return self.samples[-1][0] if self.samples else 0.0


@dataclass
class PhoneEnergyModel:
    """Energy accounting for one measurement phone."""

    battery_mah: float = 4500.0
    #: Probe transmit burst duration, seconds.
    tx_burst_s: float = 0.002
    #: Per-hop reply wait for responsive hops (mean RTT incl. RAN).
    responsive_wait_s: float = 0.12
    #: scamper's per-hop timeout for unresponsive hops.
    timeout_s: float = 1.2
    #: Fraction of hops that never answer.
    unresponsive_rate: float = 0.10
    #: How many consecutive hops the modified scamper probes at once.
    parallel_batch: int = 8
    #: Airplane-mode exit cost range, mAh (measured 1.4–2.6 in §7.1.2).
    wake_mah_range: "tuple[float, float]" = (1.4, 2.6)
    wake_duration_s: float = 25.0

    # -- building blocks ---------------------------------------------------
    def wake_energy_mah(self, rng: random.Random) -> float:
        """Energy to exit airplane mode and re-register."""
        low, high = self.wake_mah_range
        return rng.uniform(low, high)

    def sleep_energy_mah(self, minutes: float, airplane: bool = True) -> float:
        """Energy spent asleep between rounds."""
        state = RadioState.SLEEP_AIRPLANE if airplane else RadioState.SLEEP_CONNECTED
        return STATE_CURRENT_MA[state] * (minutes / 60.0)

    def _hop_responsive(self, rng: random.Random) -> bool:
        return rng.random() >= self.unresponsive_rate

    # -- a traceroute round ---------------------------------------------
    def traceroute_round(
        self,
        n_targets: int,
        hops_per_target: int = 8,
        parallel: bool = True,
        rng: "random.Random | None" = None,
        include_wake: bool = True,
    ) -> EnergyTrace:
        """Simulate one round of traceroutes; return the energy trace.

        ``parallel=False`` models off-the-shelf scamper (one hop at a
        time, paying the full timeout for every unresponsive hop);
        ``parallel=True`` models the ShipTraceroute modification that
        probes ``parallel_batch`` consecutive hops at once, so a batch
        waits only for its slowest member.
        """
        rng = rng or random.Random(0)
        trace = EnergyTrace()
        clock = 0.0
        mah = 0.0
        trace.record(clock, mah)
        if include_wake:
            mah += self.wake_energy_mah(rng)
            clock += self.wake_duration_s
            trace.record(clock, mah)

        idle_ma = STATE_CURRENT_MA[RadioState.CONNECTED_IDLE]
        tx_ma = STATE_CURRENT_MA[RadioState.TX]
        for _target in range(n_targets):
            hops = [self._hop_responsive(rng) for _ in range(hops_per_target)]
            if parallel:
                batches = [
                    hops[i: i + self.parallel_batch]
                    for i in range(0, hops_per_target, self.parallel_batch)
                ]
            else:
                batches = [[hop] for hop in hops]
            for batch in batches:
                # One burst per probe in the batch.
                tx_time = self.tx_burst_s * len(batch)
                mah += tx_ma * tx_time / 3600.0
                clock += tx_time
                if all(batch):
                    waits = [
                        rng.uniform(0.5, 1.5) * self.responsive_wait_s
                        for _ in batch
                    ]
                    wait = max(waits)
                else:
                    wait = self.timeout_s
                mah += idle_ma * wait / 3600.0
                clock += wait
            trace.record(clock, mah)
        return trace

    # -- headline numbers -----------------------------------------------
    def round_energy_mah(self, n_targets: int = 266, parallel: bool = True,
                         seed: int = 0) -> float:
        """Mean energy of one round (the Fig 14 totals)."""
        trace = self.traceroute_round(
            n_targets, parallel=parallel, rng=random.Random(seed)
        )
        return trace.total_mah

    def battery_life_days(self, n_targets: int = 266, parallel: bool = True,
                          round_interval_min: float = 60.0, seed: int = 0) -> float:
        """Days of hourly rounds on one charge (§7.1.2's ~12 days)."""
        round_mah = self.round_energy_mah(n_targets, parallel=parallel, seed=seed)
        trace = self.traceroute_round(
            n_targets, parallel=parallel, rng=random.Random(seed)
        )
        sleep_min = max(0.0, round_interval_min - trace.duration_s / 60.0)
        per_cycle = round_mah + self.sleep_energy_mah(sleep_min, airplane=True)
        cycles = self.battery_mah / per_cycle
        return cycles * round_interval_min / (60.0 * 24.0)
