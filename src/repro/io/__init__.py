"""Serialization of inferred topologies (JSON and Graphviz DOT)."""

from repro.io.export import (
    att_topology_to_json,
    carrier_analysis_to_json,
    region_from_json,
    region_to_dot,
    region_to_json,
)

__all__ = [
    "att_topology_to_json",
    "carrier_analysis_to_json",
    "region_from_json",
    "region_to_dot",
    "region_to_json",
]
