"""Serialization: inferred topologies (JSON/DOT) and campaign checkpoints."""

from repro.io.atomic import atomic_write_text
from repro.io.checkpoint import (
    CampaignCheckpoint,
    trace_from_dict,
    trace_to_dict,
)
from repro.io.export import (
    att_topology_from_json,
    att_topology_to_json,
    campaign_health_from_json,
    campaign_health_to_json,
    carrier_analysis_to_json,
    region_from_json,
    region_to_dot,
    region_to_json,
)

__all__ = [
    "CampaignCheckpoint",
    "atomic_write_text",
    "att_topology_from_json",
    "att_topology_to_json",
    "campaign_health_from_json",
    "campaign_health_to_json",
    "carrier_analysis_to_json",
    "region_from_json",
    "region_to_dot",
    "region_to_json",
    "trace_from_dict",
    "trace_to_dict",
]
