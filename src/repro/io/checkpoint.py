"""Campaign checkpoints: versioned JSON persistence of partial sweeps.

A long traceroute campaign that dies at hour five should not restart at
hour zero.  :class:`CampaignCheckpoint` persists, per campaign stage,
the traces already collected, the (vantage point, target) jobs already
executed, the campaign health counters, and the fault injector's state
(per-VP probe counts and dead VPs), so a resumed run continues exactly
where the checkpointed one stopped and — because every fault decision
is keyed on event identity, not call order — converges on the same
final output as a run that was never interrupted.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

from repro.errors import CheckpointError, SchemaError
from repro.io.atomic import atomic_write_text
from repro.measure.traceroute import Hop, TraceResult
from repro.validate.schema import validate_artifact

CHECKPOINT_SCHEMA_VERSION = 1


def trace_to_dict(trace: TraceResult) -> "dict[str, object]":
    """Serialize one traceroute to a JSON-ready dict."""
    return {
        "src": trace.src_address,
        "dst": trace.dst_address,
        "completed": trace.completed,
        "flow_id": trace.flow_id,
        "vp": trace.vp_name,
        "hops": [
            {
                "i": hop.index,
                "addr": hop.address,
                "rdns": hop.rdns,
                "rtt": hop.rtt_ms,
                "rttl": hop.reply_ttl,
                "tries": hop.attempts,
            }
            for hop in trace.hops
        ],
    }


def trace_from_dict(payload: "dict[str, object]") -> TraceResult:
    """Round-trip a serialized traceroute."""
    return TraceResult(
        src_address=payload["src"],
        dst_address=payload["dst"],
        hops=[
            Hop(
                index=h["i"],
                address=h["addr"],
                rdns=h.get("rdns"),
                rtt_ms=h.get("rtt"),
                reply_ttl=h.get("rttl"),
                attempts=h.get("tries", 1),
            )
            for h in payload["hops"]
        ],
        completed=payload.get("completed", False),
        flow_id=payload.get("flow_id", 0),
        vp_name=payload.get("vp", ""),
    )


class CampaignCheckpoint:
    """One campaign's on-disk progress, divided into named stages.

    Stages are the sweeps of a multi-phase campaign (e.g. ``slash24``,
    ``rdns``, ``followup``); a stage is either *complete* (its traces
    load wholesale on resume) or partial (its done-set is skipped and
    the remaining jobs re-run).
    """

    def __init__(self, path: "str | pathlib.Path",
                 corpus_format: str = "json") -> None:
        if corpus_format not in ("json", "binary"):
            raise CheckpointError(
                f"unknown corpus format {corpus_format!r} "
                "(expected 'json' or 'binary')"
            )
        self.path = pathlib.Path(path)
        #: "json" inlines stage traces in the checkpoint document;
        #: "binary" stores them in a columnar ``.npz`` sidecar per
        #: stage, with the stage record carrying file + sha256.
        self.corpus_format = corpus_format
        self._stages: "dict[str, dict]" = {}
        self._health: "dict[str, object]" = {}
        self._injector: "dict[str, object]" = {}
        #: Per-stage raw shard payloads from the supervised executor:
        #: ``{stage: {shard_id: payload}}``.  Cleared when the stage
        #: completes (its traces become canonical).
        self._shards: "dict[str, dict[str, dict]]" = {}
        #: Stage traces recorded but not yet flushed to their binary
        #: sidecar (written by :meth:`save`).
        self._pending_corpora: "dict[str, list[TraceResult]]" = {}

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "CampaignCheckpoint":
        """Read a checkpoint file, validating schema and kind."""
        checkpoint = cls(path)
        try:
            payload = json.loads(checkpoint.path.read_text())
        except FileNotFoundError as exc:
            raise CheckpointError(f"no checkpoint at {checkpoint.path}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {checkpoint.path}: {exc}"
            ) from exc
        try:
            validate_artifact(payload, kind="campaign-checkpoint")
        except SchemaError as exc:
            raise CheckpointError(
                f"corrupt checkpoint {checkpoint.path}: {exc}"
            ) from exc
        checkpoint._stages = payload.get("stages", {})
        checkpoint._health = payload.get("health", {})
        checkpoint._injector = payload.get("injector", {})
        checkpoint._shards = payload.get("shards", {})
        if any(record.get("corpus") for record in checkpoint._stages.values()):
            # A checkpoint written with binary sidecars keeps that
            # format across resume cycles.
            checkpoint.corpus_format = "binary"
        return checkpoint

    def save(self) -> None:
        """Atomically write the checkpoint (write-then-rename).

        Binary-format stages flush their trace corpus to an ``.npz``
        sidecar first, so the JSON document (written last) only ever
        points at a sidecar that is already fully on disk.
        """
        for name, traces in self._pending_corpora.items():
            self._stages[name]["corpus"] = self._write_sidecar(name, traces)
        self._pending_corpora.clear()
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "kind": "campaign-checkpoint",
            "stages": self._stages,
            "health": self._health,
            "injector": self._injector,
            "shards": self._shards,
        }
        atomic_write_text(self.path, json.dumps(payload, sort_keys=True))

    # ------------------------------------------------------------------
    # Binary corpus sidecars
    # ------------------------------------------------------------------
    def _sidecar_path(self, stage: str) -> pathlib.Path:
        return self.path.with_name(f"{self.path.stem}.{stage}.corpus.npz")

    def _write_sidecar(self, stage: str,
                       traces: "list[TraceResult]") -> "dict[str, str]":
        from repro.corpus import TraceCorpus, save_corpus

        sidecar = self._sidecar_path(stage)
        save_corpus(sidecar, TraceCorpus.from_traces(traces))
        return {
            "format": "binary",
            "file": sidecar.name,
            "sha256": hashlib.sha256(sidecar.read_bytes()).hexdigest(),
        }

    def _load_sidecar(self, stage: str, pointer: "dict[str, str]"
                      ) -> "list[TraceResult]":
        from repro.corpus import load_corpus

        if pointer.get("format") != "binary":
            raise CheckpointError(
                f"stage {stage!r}: unknown corpus format "
                f"{pointer.get('format')!r}"
            )
        sidecar = self.path.with_name(pointer["file"])
        try:
            digest = hashlib.sha256(sidecar.read_bytes()).hexdigest()
        except OSError as exc:
            raise CheckpointError(
                f"stage {stage!r}: missing corpus sidecar {sidecar}: {exc}"
            ) from exc
        if digest != pointer["sha256"]:
            raise CheckpointError(
                f"stage {stage!r}: corpus sidecar {sidecar} digest "
                f"mismatch (expected {pointer['sha256']}, got {digest})"
            )
        try:
            return load_corpus(sidecar).to_traces()
        except SchemaError as exc:
            raise CheckpointError(
                f"stage {stage!r}: corrupt corpus sidecar {sidecar}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def stage(self, name: str) -> "dict | None":
        """The stored record for stage *name*, if any."""
        return self._stages.get(name)

    def record_stage(
        self,
        name: str,
        traces: "list[TraceResult]",
        done: "list[tuple[str, str]]",
        complete: bool,
    ) -> None:
        """Store (in memory) a stage's progress; call :meth:`save` to persist."""
        if self.corpus_format == "binary":
            self._stages[name] = {
                "complete": complete,
                "done": [list(pair) for pair in done],
                "traces": [],
            }
            self._pending_corpora[name] = list(traces)
            return
        self._stages[name] = {
            "complete": complete,
            "done": [list(pair) for pair in done],
            "traces": [trace_to_dict(t) for t in traces],
        }

    def stage_traces(self, name: str) -> "list[TraceResult]":
        record = self._stages.get(name) or {}
        if name in self._pending_corpora:
            return list(self._pending_corpora[name])
        pointer = record.get("corpus")
        if pointer:
            return self._load_sidecar(name, pointer)
        return [trace_from_dict(t) for t in record.get("traces", [])]

    def stage_done(self, name: str) -> "set[tuple[str, str]]":
        record = self._stages.get(name) or {}
        return {tuple(pair) for pair in record.get("done", [])}

    def stage_complete(self, name: str) -> bool:
        record = self._stages.get(name) or {}
        return bool(record.get("complete", False))

    # ------------------------------------------------------------------
    # Supervised-executor shard results
    # ------------------------------------------------------------------
    def record_shard(self, stage: str, shard_id: str,
                     payload: "dict[str, object]") -> None:
        """Store (in memory) one completed shard's raw results."""
        self._shards.setdefault(stage, {})[shard_id] = payload

    def shard_results(self, stage: str) -> "dict[str, dict]":
        """Completed shard payloads for *stage*, keyed by shard id."""
        return dict(self._shards.get(stage, {}))

    def clear_shards(self, stage: str) -> None:
        """Drop *stage*'s shard payloads (called once it completes)."""
        self._shards.pop(stage, None)

    # ------------------------------------------------------------------
    @property
    def health(self) -> "dict[str, object]":
        return self._health

    @health.setter
    def health(self, payload: "dict[str, object]") -> None:
        self._health = payload

    @property
    def injector_state(self) -> "dict[str, object]":
        return self._injector

    @injector_state.setter
    def injector_state(self, payload: "dict[str, object]") -> None:
        self._injector = payload
