"""Atomic file writes shared by every artifact exporter.

A campaign killed mid-write must never leave a half-serialized artifact
where the next run (or a resumed one) will trust it.  Write to a
temporary sibling, then ``os.replace`` — atomic on POSIX within one
filesystem — exactly as the checkpoint layer has always done.
"""

from __future__ import annotations

import os
import pathlib


def atomic_write_text(path: "str | pathlib.Path", text: str) -> pathlib.Path:
    """Write *text* to *path* via write-temp-then-rename; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path
