"""Atomic file writes shared by every artifact exporter.

A campaign killed mid-write must never leave a half-serialized artifact
where the next run (or a resumed one) will trust it.  Write to a
temporary sibling, then ``os.replace`` — atomic on POSIX within one
filesystem — exactly as the checkpoint layer has always done.
"""

from __future__ import annotations

import os
import pathlib


def atomic_write_text(path: "str | pathlib.Path", text: str) -> pathlib.Path:
    """Write *text* to *path* via write-temp-then-rename; returns the path.

    The temp file is fsynced before the rename so a crash (or power
    loss) immediately after the replace cannot surface a truncated
    file; the parent directory is fsynced best-effort so the rename
    itself is durable.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path
