"""Export inferred topologies as JSON documents and Graphviz DOT.

A downstream user of the pipelines (resilience studies, edge-placement
planning, visualization) needs the inferred CO graphs as artifacts, not
as live Python objects.  The JSON schema is versioned and row-oriented;
`region_from_json` round-trips it back into a
:class:`~repro.infer.refine.RefinedRegion`.

Every loader validates its input against the typed schemas in
:mod:`repro.validate.schema` before touching a field, so corrupt or
truncated artifacts surface as :class:`~repro.errors.SchemaError` with
the offending JSON path in the message — never a raw ``KeyError``.
"""

from __future__ import annotations

import json

import networkx as nx

from repro.errors import SchemaError
from repro.infer.att import AttRegionTopology
from repro.infer.mobile_ipv6 import CarrierAnalysis
from repro.infer.refine import RefinedRegion, RefineStats
from repro.validate.schema import parse_artifact

SCHEMA_VERSION = 1


def region_to_json(region: RefinedRegion) -> str:
    """Serialize one refined region graph."""
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "cable-region",
        "name": region.name,
        "agg_cos": sorted(region.agg_cos),
        "edge_cos": sorted(region.edge_cos),
        "agg_groups": [sorted(group) for group in region.agg_groups],
        "edges": [
            {
                "from": a,
                "to": b,
                "observations": int(data.get("weight", 0)),
                "inferred": bool(data.get("inferred", False)),
            }
            for a, b, data in sorted(region.graph.edges(data=True))
        ],
        "stats": {
            "initial_edges": region.stats.initial_edges,
            "removed_edge_edges": region.stats.removed_edge_edges,
            "added_ring_edges": region.stats.added_ring_edges,
            "final_edges": region.stats.final_edges,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def region_from_json(text: str) -> RefinedRegion:
    """Round-trip a serialized region back into a RefinedRegion."""
    payload = parse_artifact(text, kind="cable-region")
    declared = set(payload["agg_cos"]) | set(payload["edge_cos"])
    graph = nx.DiGraph()
    for node in payload["agg_cos"] + payload["edge_cos"]:
        graph.add_node(node)
    for index, edge in enumerate(payload["edges"]):
        for key in ("from", "to"):
            if edge[key] not in declared:
                raise SchemaError(
                    f"$.edges[{index}].{key}: CO {edge[key]!r} is not "
                    f"declared in agg_cos or edge_cos"
                )
        graph.add_edge(
            edge["from"], edge["to"],
            weight=edge["observations"], inferred=edge["inferred"],
        )
    for index, group in enumerate(payload["agg_groups"]):
        for member in group:
            if member not in payload["agg_cos"]:
                raise SchemaError(
                    f"$.agg_groups[{index}]: member {member!r} is not "
                    f"an AggCO"
                )
    stats = RefineStats(
        initial_edges=payload["stats"]["initial_edges"],
        removed_edge_edges=payload["stats"]["removed_edge_edges"],
        added_ring_edges=payload["stats"]["added_ring_edges"],
        final_edges=payload["stats"]["final_edges"],
    )
    return RefinedRegion(
        name=payload["name"],
        graph=graph,
        agg_cos=set(payload["agg_cos"]),
        edge_cos=set(payload["edge_cos"]),
        agg_groups=[set(group) for group in payload["agg_groups"]],
        stats=stats,
    )


def region_to_dot(region: RefinedRegion) -> str:
    """Graphviz DOT rendering: AggCOs as boxes, inferred edges dashed."""
    lines = [f'digraph "{region.name}" {{', "  rankdir=TB;"]
    for agg in sorted(region.agg_cos):
        lines.append(f'  "{agg}" [shape=box, style=filled, fillcolor=orange];')
    for edge_co in sorted(region.edge_cos):
        lines.append(f'  "{edge_co}" [shape=ellipse];')
    for a, b, data in sorted(region.graph.edges(data=True)):
        style = ' [style=dashed]' if data.get("inferred") else ""
        lines.append(f'  "{a}" -> "{b}"{style};')
    lines.append("}")
    return "\n".join(lines)


def att_topology_to_json(topology: AttRegionTopology) -> str:
    """Serialize an inferred AT&T region (Fig 13-style content)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "telco-region",
        "region": topology.region,
        "backbone_routers": [sorted(g) for g in topology.backbone_routers],
        "agg_routers": [sorted(g) for g in topology.agg_routers],
        "edge_routers": [sorted(g) for g in topology.edge_routers],
        "edge_cos": [sorted(g) for g in topology.edge_cos],
        "edge_prefixes": sorted(topology.edge_prefixes),
        "agg_prefixes": sorted(topology.agg_prefixes),
        "backbone_fully_meshed": topology.backbone_fully_meshed,
        "backbone_co_count": topology.backbone_co_count,
        "router_edges": sorted(list(pair) for pair in topology.router_edges),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def att_topology_from_json(text: str) -> AttRegionTopology:
    """Round-trip a serialized AT&T region (schema-validated)."""
    payload = parse_artifact(text, kind="telco-region")
    for index, pair in enumerate(payload["router_edges"]):
        if len(pair) != 2:
            raise SchemaError(
                f"$.router_edges[{index}]: expected a 2-element pair, "
                f"got {len(pair)} elements"
            )
    topology = AttRegionTopology(
        region=payload["region"],
        backbone_routers=[set(g) for g in payload["backbone_routers"]],
        agg_routers=[set(g) for g in payload["agg_routers"]],
        edge_routers=[set(g) for g in payload["edge_routers"]],
        edge_cos=[set(g) for g in payload["edge_cos"]],
        edge_prefixes=set(payload["edge_prefixes"]),
        agg_prefixes=set(payload["agg_prefixes"]),
        router_edges={(a, b) for a, b in payload["router_edges"]},
        backbone_fully_meshed=payload["backbone_fully_meshed"],
    )
    if topology.backbone_co_count != payload["backbone_co_count"]:
        raise SchemaError(
            f"$.backbone_co_count: {payload['backbone_co_count']} "
            f"contradicts the serialized backbone routers "
            f"(derived {topology.backbone_co_count})"
        )
    return topology


def carrier_analysis_to_json(analysis: CarrierAnalysis) -> str:
    """Serialize a mobile carrier's §7.2 analysis."""

    def report(r):
        return {
            "prefix_bits": r.prefix_bits,
            "geo_fields": [list(f) for f in r.geo_fields],
            "cycling_fields": [list(f) for f in r.cycling_fields],
            "subscriber_fields": [list(f) for f in r.subscriber_fields],
        }

    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "mobile-carrier",
        "carrier": analysis.carrier,
        "user_report": report(analysis.user_report),
        "hop_reports": {
            str(pos): report(r) for pos, r in analysis.hop_reports.items()
        },
        "region_count": analysis.region_count,
        "pgw_counts": dict(sorted(analysis.pgw_counts.items())),
        "backbone_providers": sorted(analysis.backbone_providers),
        "topology_class": analysis.topology_class,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def campaign_health_to_json(health) -> str:
    """Serialize a :class:`~repro.measure.runner.CampaignHealth` report.

    Takes the dataclass (or anything with ``as_dict``) so campaign
    drivers can archive their cost/loss accounting next to the
    topology artifacts it qualifies.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "campaign-health",
        "health": health.as_dict(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def campaign_health_from_json(text: str):
    """Round-trip a serialized campaign health report (schema-validated)."""
    from repro.measure.runner import CampaignHealth

    payload = parse_artifact(text, kind="campaign-health")
    return CampaignHealth.from_dict(payload["health"])
