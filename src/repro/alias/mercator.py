"""Mercator-style alias resolution.

Mercator sends a probe to one interface address of a router and checks
the source address of the reply: many routers reply from the interface
facing the prober rather than the probed address, so a mismatch pairs
the two addresses as aliases of one router.
"""

from __future__ import annotations

from repro.net.addresses import parse_ip
from repro.net.network import Network
from repro.net.router import Router


class MercatorProber:
    """Common-source-address alias probing against a :class:`Network`.

    ``attempts`` retries unanswered probes with fresh probe identities,
    recovering targets whose first probe was lost or rate-limited under
    fault injection; the first attempt keeps the historical identity.
    """

    def __init__(self, network: Network, attempts: int = 1) -> None:
        self.network = network
        self.attempts = max(1, attempts)
        self.probes_sent = 0
        self.probes_retried = 0

    def probe(self, src: Router, target_address: str,
              src_address: "str | None" = None) -> "tuple[str, str] | None":
        """Probe one address; return an alias pair if revealed.

        Returns ``(target, reply_source)`` when the reply came from a
        different address than the one probed, ``None`` otherwise
        (including when the target does not answer).
        """
        source = src_address or (
            str(src.interfaces[0].address) if src.interfaces else "0.0.0.0"
        )
        target = str(parse_ip(target_address))
        owner = self.network.owner_router(target)
        if owner is None:
            self.probes_sent += 1
            return None
        faults = self.network.faults
        base_key = (source, target, "mercator")
        answered = False
        for attempt in range(self.attempts):
            key = base_key if attempt == 0 else (*base_key, f"a{attempt}")
            self.probes_sent += 1
            if attempt:
                self.probes_retried += 1
            if faults is not None and faults.probe_lost(key):
                continue
            if owner.probe_response(source, key, faults=faults):
                answered = True
                break
        if not answered:
            return None
        from repro.errors import RoutingError

        try:
            path = self.network.forwarding_path(src, owner, flow_id=0)
        except RoutingError:
            return None
        inbound = self.network.inbound_interfaces(path)
        reply_source = str(owner.reply_address(inbound[-1], target))
        if reply_source != target:
            return (target, reply_source)
        return None

    def probe_all(self, src: Router, addresses,
                  src_address: "str | None" = None) -> "list[tuple[str, str]]":
        """Probe many addresses; return all alias pairs discovered."""
        pairs = []
        for address in addresses:
            pair = self.probe(src, address, src_address=src_address)
            if pair is not None:
                pairs.append(pair)
        return pairs
