"""Combined alias resolution pipeline.

Mirrors §5.1: run Mercator over all candidate addresses to seed alias
pairs, generate structural candidate pairs (point-to-point subnet
peers and same-/24 neighbours), confirm candidates with MIDAR's
monotonic bounds test, and union-find the surviving pairs into alias
sets ("router groups").
"""

from __future__ import annotations

from repro.alias.mercator import MercatorProber
from repro.alias.midar import MidarProber
from repro.net.addresses import p2p_peer, parse_ip
from repro.net.network import Network
from repro.net.router import Router
from repro.errors import AddressError


class _UnionFind:
    """Minimal union-find over string keys."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        """Root of *key*'s set (path-compressing)."""
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, a: str, b: str) -> None:
        """Merge the sets containing *a* and *b*."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def groups(self) -> "list[set[str]]":
        """All non-singleton sets."""
        buckets: dict[str, set[str]] = {}
        for key in self._parent:
            buckets.setdefault(self.find(key), set()).add(key)
        return [members for members in buckets.values() if len(members) > 1]


class AliasSets:
    """The outcome of alias resolution: disjoint sets of addresses."""

    def __init__(self, groups: "list[set[str]]") -> None:
        self.groups = [set(g) for g in groups]
        self._of: dict[str, int] = {}
        for index, group in enumerate(self.groups):
            for address in group:
                self._of[address] = index

    def __len__(self) -> int:
        return len(self.groups)

    def group_of(self, address: str) -> "set[str] | None":
        """The alias set containing *address*, if any."""
        index = self._of.get(str(parse_ip(address)))
        return self.groups[index] if index is not None else None

    def are_aliases(self, a: str, b: str) -> bool:
        """Whether two addresses were resolved to the same router."""
        ia = self._of.get(str(parse_ip(a)))
        return ia is not None and ia == self._of.get(str(parse_ip(b)))


class AliasResolver:
    """Mercator seeding + structural candidates + MIDAR confirmation."""

    def __init__(self, network: Network, p2p_prefixlen: int = 30,
                 attempts: int = 1) -> None:
        self.network = network
        self.mercator = MercatorProber(network, attempts=attempts)
        self.midar = MidarProber(network, attempts=attempts)
        self.p2p_prefixlen = p2p_prefixlen

    def candidate_pairs(self, addresses: "list[str]") -> "list[tuple[str, str]]":
        """Structural candidates: same-/24 neighbours sharing a router-ish gap.

        MIDAR's elimination stage narrows internet-scale inputs; here,
        addresses numerically adjacent inside one /24 are the plausible
        same-router pairs our generators can produce.
        """
        normalized = sorted(
            {str(parse_ip(a)) for a in addresses}, key=lambda a: int(parse_ip(a))
        )
        pairs = []
        for first, second in zip(normalized, normalized[1:]):
            ia, ib = int(parse_ip(first)), int(parse_ip(second))
            if ia >> 8 == ib >> 8 and ib - ia <= 8:
                pairs.append((first, second))
        return pairs

    def resolve(
        self,
        src: Router,
        addresses: "list[str]",
        src_address: "str | None" = None,
        include_p2p_peers: bool = False,
    ) -> AliasSets:
        """Run the full pipeline and return alias sets.

        ``include_p2p_peers`` additionally probes the point-to-point
        peer of every input address (the paper includes /30 peers in its
        alias runs, App. B.1).
        """
        universe = [str(parse_ip(a)) for a in addresses]
        if include_p2p_peers:
            extended = set(universe)
            for address in universe:
                try:
                    extended.add(str(p2p_peer(address, self.p2p_prefixlen)))
                except AddressError:
                    continue
            universe = sorted(extended)

        uf = _UnionFind()
        # Mercator seeds: reply-source mismatches are confirmed aliases.
        for target, reply_source in self.mercator.probe_all(
            src, universe, src_address=src_address
        ):
            uf.union(target, reply_source)
        # MIDAR confirmation of structural candidates.
        for addr_a, addr_b in self.candidate_pairs(universe):
            if uf.find(addr_a) == uf.find(addr_b):
                continue
            if self.midar.test_pair(src, addr_a, addr_b, src_address=src_address):
                uf.union(addr_a, addr_b)
        return AliasSets(uf.groups())
