"""MIDAR-style alias resolution: the Monotonic Bounds Test.

MIDAR (Keys et al. 2013) exploits routers that generate IP-ID values
from one shared, monotonically increasing counter across all their
interfaces.  Probing two addresses in an interleaved schedule and
checking that the merged IP-ID time series is still monotonic (modulo
16-bit wraparound) confirms — with high probability — that the two
addresses share a counter, i.e. a router.

The full MIDAR system shards internet-scale candidate sets by estimated
counter velocity; in the simulation every router advances its counter
only when probed, so velocity-based sharding would be degenerate.  The
resolver in :mod:`repro.alias.resolve` instead feeds candidate pairs
from structural hints (shared subnets, traceroute adjacency, Mercator
seeds), which is the role MIDAR's elimination stage plays.
"""

from __future__ import annotations

from repro.net.addresses import parse_ip
from repro.net.network import Network
from repro.net.router import Router

_WRAP = 65536


class MidarProber:
    """Interleaved IP-ID sampling and the Monotonic Bounds Test."""

    def __init__(self, network: Network, samples_per_round: int = 4,
                 attempts: int = 1) -> None:
        self.network = network
        self.samples_per_round = samples_per_round
        self.attempts = max(1, attempts)
        self.probes_sent = 0
        self.probes_retried = 0

    def sample(self, src: Router, addresses,
               src_address: "str | None" = None) -> "dict[str, list[tuple[int, int]]]":
        """Collect interleaved (time, ipid) samples for each address.

        The schedule probes all addresses round-robin so that samples of
        different addresses interleave in time, as MIDAR requires.
        Unresponsive addresses get empty sample lists.
        """
        source = src_address or (
            str(src.interfaces[0].address) if src.interfaces else "0.0.0.0"
        )
        series: "dict[str, list[tuple[int, int]]]" = {
            str(parse_ip(a)): [] for a in addresses
        }
        faults = self.network.faults
        clock = 0
        for round_index in range(self.samples_per_round):
            for address in series:
                clock += 1
                owner = self.network.owner_router(address)
                if owner is None:
                    self.probes_sent += 1
                    continue
                base_key = (source, address, "midar", round_index)
                for attempt in range(self.attempts):
                    key = base_key if attempt == 0 else (*base_key, f"a{attempt}")
                    self.probes_sent += 1
                    if attempt:
                        self.probes_retried += 1
                    if faults is not None and faults.probe_lost(key):
                        continue
                    if not owner.probe_response(source, key, faults=faults):
                        continue
                    series[address].append((clock, owner.next_ipid()))
                    break
        return series

    @staticmethod
    def monotonic_bounds_test(
        series_a: "list[tuple[int, int]]", series_b: "list[tuple[int, int]]"
    ) -> bool:
        """True when the merged (time, ipid) series is mod-2^16 monotonic.

        Requires at least two samples on each side; the merged sequence
        must increase at every step, allowing a single small wraparound
        step (< half the counter space) at a time.
        """
        if len(series_a) < 2 or len(series_b) < 2:
            return False
        merged = sorted(series_a + series_b)
        total_advance = 0
        for (_, prev), (_, cur) in zip(merged, merged[1:]):
            step = (cur - prev) % _WRAP
            if step == 0 or step > _WRAP // 2:
                return False
            total_advance += step
        # A genuine shared counter advances roughly once per probe; an
        # accidental monotonic interleaving of two independent counters
        # would show implausibly large total advance.
        return total_advance < _WRAP // 2

    def test_pair(self, src: Router, addr_a: str, addr_b: str,
                  src_address: "str | None" = None) -> bool:
        """Sample two addresses together and run the MBT."""
        series = self.sample(src, [addr_a, addr_b], src_address=src_address)
        return self.monotonic_bounds_test(
            series[str(parse_ip(addr_a))], series[str(parse_ip(addr_b))]
        )
