"""Alias resolution: grouping IP addresses into routers.

Two classic techniques, both used by the paper (§5.1):

* :mod:`repro.alias.mercator` — common source-address probing
  (Govindan & Tangmunarunkit 2000);
* :mod:`repro.alias.midar` — IP-ID monotonic-bounds testing at scale
  (Keys et al. 2013).

:mod:`repro.alias.resolve` combines them into the alias sets the
IP→CO mapping step consumes.
"""

from repro.alias.mercator import MercatorProber
from repro.alias.midar import MidarProber
from repro.alias.resolve import AliasResolver, AliasSets

__all__ = ["AliasResolver", "AliasSets", "MercatorProber", "MidarProber"]
