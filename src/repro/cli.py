"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's campaigns:

* ``build``       — build the simulated internet and print its inventory;
* ``map-cable``   — run the §5 pipeline against a cable ISP;
* ``map-att``     — run the §6 pipeline against a telco region;
* ``ship``        — run the §7 ShipTraceroute campaign and IPv6 analysis;
* ``energy``      — print the Fig 14 energy comparison;
* ``resilience``  — single-failure sweeps over inferred region graphs;
* ``bias``        — the measurement-bias lab (``report`` / ``place`` /
  ``stream``): species-style coverage estimation, VP-placement
  optimization against ground truth, and streaming incremental
  inference over finished service corpora;
* ``service``     — the resilient campaign service (``run`` / ``submit``
  / ``status`` / ``drain``): a crash-safe job queue over the mapping
  pipelines with leases, retries, backpressure, and graceful drain.

Every command accepts ``--seed``; exporting commands accept ``--json-dir``
(and ``--dot-dir`` for cable regions) to write artifacts.
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
from collections import Counter


def _build_internet(args, **kwargs):
    from repro.topology.internet import SimulatedInternet

    return SimulatedInternet(seed=args.seed, **kwargs)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_build(args) -> int:
    """Build the simulated internet and print its inventory."""
    internet = _build_internet(args)
    network = internet.network
    print(f"routers: {len(network.routers)}")
    print(f"links: {len(network.links)}")
    print(f"ptr records: {len(network.rdns)}")
    for isp in (internet.comcast, internet.charter, internet.att):
        total_cos = sum(len(r.cos) for r in isp.regions.values())
        print(f"{isp.name}: {len(isp.regions)} regions, {total_cos} COs")
    for name, carrier in sorted(internet.mobile_carriers.items()):
        print(f"{name}: {len(carrier.regions)} mobile regions")
    return 0


def _export_corpus(args, result) -> None:
    """Write the collected corpora to ``--corpus-out`` (+ ``.followup``).

    JSON mode writes the validated ``trace-corpus`` artifact; binary
    mode writes the columnar ``.npz`` container.  Both load back through
    the schema layer.
    """
    from repro.corpus import TraceCorpus, corpus_to_json, save_corpus
    from repro.io.atomic import atomic_write_text

    out = pathlib.Path(args.corpus_out)
    followup_out = out.with_name(f"{out.stem}.followup{out.suffix}")
    corpora = (
        (out, TraceCorpus.from_traces(result.traces)),
        (followup_out, TraceCorpus.from_traces(result.followup_traces)),
    )
    for path, corpus in corpora:
        if args.corpus_format == "binary":
            save_corpus(path, corpus)
        else:
            atomic_write_text(path, corpus_to_json(corpus) + "\n")
        print(f"wrote {len(corpus)}-trace corpus to {path}")


def cmd_map_cable(args) -> int:
    """Run the §5 pipeline against a cable ISP, optionally exporting."""
    from repro.faults import FaultPlan
    from repro.infer.pipeline import CableInferencePipeline
    from repro.io.atomic import atomic_write_text
    from repro.io.export import region_to_dot, region_to_json
    from repro.validate.quarantine import quarantine_report_to_json

    internet = _build_internet(args, include_telco=False, include_mobile=False)
    isp = getattr(internet, args.isp)
    fleet = list(internet.build_standard_vps())
    route_model = None
    if args.route_model != "spf":
        from repro.bias.routemodel import build_route_model

        route_model = build_route_model(internet, args.route_model)
    faults = None
    if (args.faults or args.vp_dropouts or args.stale_rdns
            or args.worker_crash or args.worker_stall or args.worker_slow):
        faults = FaultPlan(
            seed=args.fault_seed,
            probe_loss=args.faults,
            vp_dropout=args.vp_dropouts,
            vp_dropout_after=args.vp_dropout_after,
            stale_rdns=args.stale_rdns,
            worker_crash=args.worker_crash,
            worker_stall=args.worker_stall,
            worker_slow=args.worker_slow,
        )
    worker_spec = None
    if args.workers > 1:
        from repro.measure.substrates import WorkerSpec

        # Workers rebuild exactly the substrate this command built:
        # same seed, same build flags.
        worker_spec = WorkerSpec(
            "repro.measure.substrates:cable_substrate",
            {"seed": args.seed, "include_telco": False,
             "include_mobile": False},
        )
    pipeline = CableInferencePipeline(
        internet.network, isp, fleet, sweep_vps=args.sweep_vps,
        attempts=args.attempts, faults=faults,
        checkpoint_path=args.resume or args.checkpoint,
        resume=bool(args.resume), min_vps=args.min_vps,
        validate=args.validate, workers=args.workers,
        worker_spec=worker_spec, shard_deadline=args.shard_deadline,
        max_shard_retries=args.max_shard_retries, pace_ms=args.pace_ms,
        profile=args.profile, trace_seed=args.seed,
        corpus_format=args.corpus_format, route_model=route_model,
    )
    result = pipeline.run()
    if args.corpus_out:
        _export_corpus(args, result)
    if pipeline.profiler is not None:
        for line in pipeline.profiler.report():
            print(line)
    if args.trace_out:
        path = atomic_write_text(pathlib.Path(args.trace_out),
                                 pipeline.obs.to_json() + "\n")
        print(f"wrote span trace to {path}")
    if args.metrics_out:
        path = atomic_write_text(pathlib.Path(args.metrics_out),
                                 pipeline.metrics.to_json() + "\n")
        print(f"wrote metrics snapshot to {path}")
    if result.health is not None and (
        faults is not None or args.resume or args.attempts > 1
        or args.validate != "off" or args.workers > 1
    ):
        line = f"campaign health: {result.health.summary()}"
        if result.quarantine is not None:
            line += f"; {result.quarantine.summary()}"
        print(line)
    types = Counter(result.aggregation_types().values())
    print(f"{args.isp}: {len(result.regions)} regions inferred "
          f"({types['single']} single / {types['two']} two / "
          f"{types['multi']} multi-level)")
    for name in sorted(result.regions):
        region = result.regions[name]
        print(f"  {name}: {region.graph.number_of_nodes()} COs, "
              f"{len(region.agg_cos)} AggCOs")
    if args.json_dir:
        from repro.obs import build_run_manifest, write_run_manifest

        directory = pathlib.Path(args.json_dir)
        artifacts = {}
        for name, region in result.regions.items():
            text = region_to_json(region)
            artifacts[f"{args.isp}-{name}.json"] = text
            atomic_write_text(directory / f"{args.isp}-{name}.json", text)
        print(f"wrote {len(result.regions)} JSON files to {directory}")
        if result.quarantine is not None and result.quarantine:
            text = quarantine_report_to_json(result.quarantine)
            artifacts[f"{args.isp}-quarantine.json"] = text
            path = atomic_write_text(
                directory / f"{args.isp}-quarantine.json", text
            )
            print(f"wrote quarantine report to {path}")
        if result.health is not None:
            from repro.io.export import campaign_health_to_json

            text = campaign_health_to_json(result.health)
            artifacts[f"{args.isp}-health.json"] = text
            path = atomic_write_text(
                directory / f"{args.isp}-health.json", text
            )
            print(f"wrote campaign health to {path}")
        manifest = build_run_manifest(
            command="map-cable",
            seed=args.seed,
            parameters={
                "isp": args.isp,
                "sweep_vps": args.sweep_vps,
                "attempts": args.attempts,
                "workers": args.workers,
                "validate": args.validate,
                "route_model": args.route_model,
            },
            tracer=pipeline.obs,
            metrics=pipeline.metrics,
            fault_plan=faults,
            artifacts=artifacts,
        )
        path = write_run_manifest(
            directory / f"{args.isp}-manifest.json", manifest
        )
        print(f"wrote run manifest to {path}")
    if args.dot_dir:
        directory = pathlib.Path(args.dot_dir)
        for name, region in result.regions.items():
            atomic_write_text(
                directory / f"{args.isp}-{name}.dot", region_to_dot(region)
            )
        print(f"wrote {len(result.regions)} DOT files to {directory}")
    return 0


def cmd_map_att(args) -> int:
    """Run the §6 pipeline against one telco region."""
    from repro.infer.att import AttInferencePipeline
    from repro.io.export import att_topology_to_json
    from repro.measure.wardriving import McTracerouteCampaign

    internet = _build_internet(args, include_cable=False, include_mobile=False)
    if args.region not in internet.att.regions:
        print(f"unknown region {args.region!r}; available: "
              f"{', '.join(sorted(internet.att.regions))}", file=sys.stderr)
        return 2
    internal = list(internet.telco_internal_vps())
    wardriving = McTracerouteCampaign(internet.network, internet.att,
                                      seed=args.seed)
    wardriving.place_hotspots(internet.att.regions[args.region], count=58)
    topology = AttInferencePipeline(internet.network, internal).run_region(
        args.region, extra_vps=wardriving.usable_vps(), dpr_stride=2
    )
    print(f"{args.region}: {len(topology.backbone_routers)} backbone + "
          f"{len(topology.agg_routers)} agg + "
          f"{len(topology.edge_routers)} edge routers; "
          f"{topology.backbone_co_count} BackboneCO(s), "
          f"{len(topology.edge_cos)} EdgeCOs")
    if args.json_dir:
        from repro.io.atomic import atomic_write_text

        path = atomic_write_text(
            pathlib.Path(args.json_dir) / f"att-{args.region}.json",
            att_topology_to_json(topology),
        )
        print(f"wrote {path}")
    return 0


def cmd_ship(args) -> int:
    """Run the §7 ShipTraceroute campaign and the IPv6 analysis."""
    from repro.infer.mobile_ipv6 import MobileIPv6Analyzer
    from repro.io.export import carrier_analysis_to_json
    from repro.measure.shiptraceroute import ShipTracerouteCampaign
    from repro.topology.geography import Geography
    from repro.topology.mobile import build_mobile_carriers

    geography = Geography()
    carriers = build_mobile_carriers(geography, seed=args.seed)
    campaign = ShipTracerouteCampaign(carriers, geography, seed=args.seed)
    results = campaign.run()
    analyzer = MobileIPv6Analyzer(campaign.celldb)
    for name, result in sorted(results.items()):
        analysis = analyzer.analyze(result)
        print(f"{name}: {result.succeeded}/{result.attempted} rounds "
              f"({result.success_rate:.0%}), {analysis.region_count} regions, "
              f"{analysis.topology_class}")
        if args.json_dir:
            from repro.io.atomic import atomic_write_text

            atomic_write_text(
                pathlib.Path(args.json_dir) / f"{name}.json",
                carrier_analysis_to_json(analysis),
            )
    return 0


def cmd_energy(args) -> int:
    """Print the Fig 14 energy comparison."""
    from repro.energy.model import PhoneEnergyModel

    model = PhoneEnergyModel()
    old = model.traceroute_round(args.targets, parallel=False,
                                 rng=random.Random(args.seed))
    new = model.traceroute_round(args.targets, parallel=True,
                                 rng=random.Random(args.seed))
    print(f"sequential (off-the-shelf): {old.total_mah:.1f} mAh per round")
    print(f"parallel (ShipTraceroute):  {new.total_mah:.1f} mAh per round")
    print(f"saving: {1 - new.total_mah / old.total_mah:.0%}")
    print(f"battery life at hourly rounds: "
          f"{model.battery_life_days(args.targets, parallel=True):.1f} days")
    return 0


def _load_region_artifacts(directory, validate):
    """Load every cable-region JSON in *directory*, schema-validated.

    Non-region artifacts (health, quarantine reports) sitting in the
    same export directory are skipped by kind; anything unparseable is
    a hard :class:`SchemaError` naming the file.  Under ``strict`` or
    ``lenient`` the refinement invariants are also checked — a
    schema-valid artifact can still be structurally corrupt.
    """
    import json as _json

    from repro.errors import SchemaError
    from repro.io.export import region_from_json
    from repro.validate.invariants import InvariantGuard

    guard = InvariantGuard(validate) if validate != "off" else None
    regions = {}
    for path in sorted(pathlib.Path(directory).glob("*.json")):
        text = path.read_text()
        try:
            try:
                kind = _json.loads(text).get("kind")
            except (_json.JSONDecodeError, AttributeError) as exc:
                raise SchemaError(f"$: not a JSON artifact: {exc}") from None
            if kind != "cable-region":
                continue
            region = region_from_json(text)
            if guard is not None:
                guard.check_region(region)
        except SchemaError as exc:
            raise SchemaError(f"{path.name}: {exc}") from None
        regions[region.name] = region
    return regions, guard


def cmd_resilience(args) -> int:
    """Sweep single-CO failures over inferred region graphs (§8)."""
    from repro.analysis.resilience import ResilienceAnalyzer

    if args.from_json:
        regions, guard = _load_region_artifacts(args.from_json, args.validate)
        if guard is not None and guard.report:
            print(f"validation: {guard.report.summary()}")
        label = f"{args.from_json} ({len(regions)} artifacts)"
    else:
        from repro.infer.pipeline import CableInferencePipeline

        internet = _build_internet(
            args, include_telco=False, include_mobile=False
        )
        isp = getattr(internet, args.isp)
        fleet = list(internet.build_standard_vps())
        regions = CableInferencePipeline(
            internet.network, isp, fleet, sweep_vps=args.sweep_vps,
            validate=args.validate,
        ).run().regions
        label = args.isp
    print(f"{label}: worst single-CO failure per region")
    for name in sorted(regions):
        sweep = ResilienceAnalyzer(regions[name]).sweep()
        worst = sweep.worst_case
        spofs = sweep.single_points_of_failure()
        print(f"  {name}: worst {worst.disconnected_fraction:.0%} "
              f"({worst.failed_co}); {len(spofs)} SPOF(s)")
    return 0


def _spec_from_args(args) -> "object":
    from repro.service.spec import JobSpec, job_spec_from_json

    if args.spec:
        source = pathlib.Path(args.spec)
        return job_spec_from_json(source.read_text())
    faults = {}
    if args.faults:
        faults["probe_loss"] = args.faults
    if args.worker_crash:
        faults["worker_crash"] = args.worker_crash
    if args.worker_stall:
        faults["worker_stall"] = args.worker_stall
    chaos = {}
    if args.chaos_fail_attempts:
        chaos["fail_attempts"] = args.chaos_fail_attempts
    return JobSpec(
        pipeline=args.pipeline,
        seed=args.job_seed,
        fidelity=args.fidelity,
        allow_degraded=args.allow_degraded,
        workers=args.workers,
        targets=args.targets,
        hosts=args.hosts,
        isp=args.isp,
        sweep_vps=args.sweep_vps,
        faults=faults,
        chaos=chaos,
        corpus_format=args.corpus_format,
        name=args.name,
        priority=args.priority,
    )


def cmd_bias(args) -> int:
    """The measurement-bias lab (``report`` / ``place`` / ``stream``)."""
    internet = None
    if args.bias_command in ("report", "place"):
        internet = _build_internet(
            args, include_telco=False, include_mobile=False
        )
    from repro.bias import BiasLab, VpPlacementOptimizer, bias_report_to_json
    from repro.io.atomic import atomic_write_text

    if args.bias_command == "report":
        lab = BiasLab(
            internet, isp=args.isp, vp_count=args.vps,
            targets_per_region=args.targets_per_region,
            rdns_fraction=args.rdns_fraction, placement_k=args.k,
            seed=args.seed, route_model=args.route_model,
        )
        result = lab.run()
        text = bias_report_to_json(result)
        cos, links = result.co_species, result.link_species
        print(f"{args.isp} bias report (route model {args.route_model}, "
              f"{result.vp_count} VPs, {result.targets} targets)")
        print(f"  COs:   {cos.estimate.observed} observed, "
              f"chao1 {cos.estimate.chao1:.1f} vs truth {cos.truth} "
              f"(rel err {cos.relative_error:.1%})")
        print(f"  links: {links.estimate.observed} observed, "
              f"chao1 {links.estimate.chao1:.1f} vs truth {links.truth} "
              f"(rel err {links.relative_error:.1%})")
        placement = result.placement
        print(f"  placement k={placement.k}: edge recall "
              f"{placement.edge_recall:.1%} vs random "
              f"{placement.random_recall:.1%}; chosen: "
              f"{', '.join(placement.chosen)}")
        stream = result.stream
        print(f"  streaming: {stream.traces} traces, parity "
              f"{'OK' if stream.parity else 'BROKEN'}, "
              f"{stream.epoch_changes} epoch change(s) detected")
        if args.out:
            path = atomic_write_text(pathlib.Path(args.out), text + "\n")
            print(f"wrote bias report to {path}")
        if args.trace_out:
            path = atomic_write_text(pathlib.Path(args.trace_out),
                                     lab.obs.to_json() + "\n")
            print(f"wrote span trace to {path}")
        if args.metrics_out:
            path = atomic_write_text(pathlib.Path(args.metrics_out),
                                     lab.metrics.to_json() + "\n")
            print(f"wrote metrics snapshot to {path}")
        return 0 if stream.parity else 3
    if args.bias_command == "place":
        isp = getattr(internet, args.isp)
        optimizer = VpPlacementOptimizer(
            internet, isp, list(internet.build_standard_vps()),
            targets_per_region=args.targets_per_region, seed=args.seed,
        )
        placement = optimizer.optimize(args.k, restarts=args.restarts)
        baseline = optimizer.random_baseline(args.k)
        print(f"{args.isp} placement k={placement.k}: "
              f"{placement.covered_edges}/{placement.total_edges} edges "
              f"({placement.edge_recall:.1%}); random baseline "
              f"{baseline:.1%}")
        for name, gain in zip(placement.chosen, placement.marginal_gains):
            print(f"  {name}: +{gain} edges")
        return 0
    # stream: incremental inference over a service state directory.
    from repro.bias.incremental import IncrementalCoGraph, ingest_from_store
    from repro.rdns.regexes import HostnameParser

    internet = _build_internet(args, include_telco=False, include_mobile=False)
    graph = IncrementalCoGraph(
        internet.network.rdns, args.isp, parser=HostnameParser()
    )
    traces, cursor = ingest_from_store(
        graph, pathlib.Path(args.state_dir), after_seq=args.after_seq
    )
    snapshot = graph.snapshot()
    print(f"ingested {traces} trace(s) from {args.state_dir} "
          f"(cursor {args.after_seq} -> {cursor})")
    print(f"snapshot: {len(snapshot.regions)} region(s), "
          f"digest {snapshot.digest[:16]}")
    for name in sorted(snapshot.regions):
        region = snapshot.regions[name]
        print(f"  {name}: {region.graph.number_of_nodes()} COs, "
              f"{len(region.agg_cos)} AggCOs")
    return 0


def cmd_service(args) -> int:
    """The resilient campaign service front end."""
    from repro.io.atomic import atomic_write_text
    from repro.service.service import DRAIN_MARKER, CampaignService
    from repro.service.spec import job_id_for, job_spec_to_json
    from repro.service.store import JobStore

    state_dir = pathlib.Path(args.state_dir)
    if args.service_command == "run":
        service = CampaignService(
            state_dir,
            executor_id=args.executor_id,
            queue_limit=args.queue_limit,
            max_attempts=args.max_attempts,
            lease_s=args.lease_s,
            tick_s=args.tick_s,
            backoff_base_s=args.backoff_base_s,
            seed=args.seed,
        )
        executed = service.run(until_idle=args.until_idle,
                               max_jobs=args.max_jobs)
        jobs = service.store.jobs.values()
        done = sum(1 for r in jobs if r.state == "done")
        failed = sum(1 for r in jobs if r.state == "failed")
        print(f"service: {executed} attempt(s) executed; "
              f"{done} done, {failed} failed, "
              f"{sum(1 for r in jobs if not r.terminal)} live")
        return 0
    if args.service_command == "submit":
        spec = _spec_from_args(args)
        job_id = job_id_for(spec)
        inbox = state_dir / "inbox"
        inbox.mkdir(parents=True, exist_ok=True)
        # The spool write is atomic, so a concurrently running service
        # never ingests a half-written spec.
        atomic_write_text(inbox / f"{job_id}.json", job_spec_to_json(spec))
        print(f"submitted {job_id} ({spec.pipeline}, fidelity "
              f"{spec.fidelity}) to {inbox}")
        return 0
    if args.service_command == "serve":
        from repro.service.http import ServiceHTTPServer

        server = ServiceHTTPServer(state_dir, host=args.host, port=args.port)
        print(f"serving {state_dir} on http://{server.address} "
              "(read-only; Ctrl-C to stop)")
        server.serve_forever()
        return 0
    if args.service_command == "status":
        store = JobStore.open(state_dir, readonly=True)
        jobs = sorted(store.jobs.values(), key=lambda r: r.submitted_seq)
        states = Counter(record.state for record in jobs)
        summary = ", ".join(
            f"{states[state]} {state}" for state in
            ("queued", "running", "done", "failed") if states[state]
        ) or "empty"
        print(f"service state at {state_dir}: {summary}; "
              f"{len(store.rejected)} rejected")
        for record in jobs:
            lease = ""
            if record.lease is not None:
                lease = f" lease={record.lease['owner']}"
            failure = ""
            if record.failure is not None:
                failure = f" failure={record.failure['reason']!r}"
            print(f"  {record.job_id} {record.state:7s} "
                  f"{record.spec.pipeline} fidelity={record.fidelity} "
                  f"attempts={record.attempts}{lease}{failure}")
        return 0
    # drain: ask a running service to stop admitting and exit cleanly.
    state_dir.mkdir(parents=True, exist_ok=True)
    (state_dir / DRAIN_MARKER).touch()
    print(f"drain requested at {state_dir}")
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Inferring Regional Access Network "
                    "Topologies' (IMC 2021) on a simulated substrate.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("build", help="build the simulated internet")

    map_cable = sub.add_parser("map-cable", help="run the §5 cable pipeline")
    map_cable.add_argument("isp", choices=("comcast", "charter"))
    map_cable.add_argument("--sweep-vps", type=int, default=8)
    map_cable.add_argument("--json-dir")
    map_cable.add_argument("--dot-dir")
    map_cable.add_argument(
        "--attempts", type=int, default=1,
        help="per-hop probe attempts (scamper -q; default 1)")
    map_cable.add_argument(
        "--faults", type=float, default=0.0, metavar="RATE",
        help="inject this probe-loss rate (0..1)")
    map_cable.add_argument(
        "--vp-dropouts", type=int, default=0, metavar="N",
        help="inject N mid-campaign vantage point dropouts")
    map_cable.add_argument(
        "--vp-dropout-after", type=int, default=5000, metavar="PROBES",
        help="probes a doomed VP sends before dying (default 5000)")
    map_cable.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan (default 0)")
    map_cable.add_argument(
        "--checkpoint", metavar="PATH",
        help="write campaign checkpoints to PATH")
    map_cable.add_argument(
        "--resume", metavar="PATH",
        help="resume a campaign from the checkpoint at PATH")
    map_cable.add_argument(
        "--min-vps", type=int, default=1,
        help="degrade (skip remaining jobs) below this many live VPs")
    map_cable.add_argument(
        "--validate", choices=("strict", "lenient", "off"), default="off",
        help="per-stage invariant checking: strict fails fast, lenient "
             "drops and quarantines conflicting records (default off)")
    map_cable.add_argument(
        "--stale-rdns", type=float, default=0.0, metavar="RATE",
        help="inject this rate of stale PTR lookups (0..1), the "
             "paper's conflicting-rDNS noise source")
    map_cable.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run the campaign on N supervised worker processes "
             "(crash-tolerant, byte-identical corpus; default 0 = serial)")
    map_cable.add_argument(
        "--shard-deadline", type=float, default=60.0, metavar="SECONDS",
        help="wall-clock deadline per shard before the worker is killed "
             "and the shard retried (default 60)")
    map_cable.add_argument(
        "--max-shard-retries", type=int, default=2, metavar="N",
        help="retries before a failing shard is quarantined as poison "
             "(default 2)")
    map_cable.add_argument(
        "--pace-ms", type=float, default=0.0, metavar="MS",
        help="real inter-trace pacing, modelling probe RTT and ICMP "
             "rate limits; the latency-bound regime where --workers "
             "shows its speedup (default 0 = unpaced)")
    map_cable.add_argument(
        "--worker-crash", type=float, default=0.0, metavar="RATE",
        help="chaos: per-(shard, attempt) probability a worker is "
             "SIGKILLed mid-shard (0..1)")
    map_cable.add_argument(
        "--worker-stall", type=float, default=0.0, metavar="RATE",
        help="chaos: per-(shard, attempt) probability a worker stops "
             "heartbeating mid-shard (0..1)")
    map_cable.add_argument(
        "--worker-slow", type=float, default=0.0, metavar="RATE",
        help="chaos: per-(shard, attempt) probability a worker runs "
             "slow but completes (0..1)")
    map_cable.add_argument(
        "--profile", action="store_true",
        help="print per-phase wall-clock and peak-RSS accounting")
    map_cable.add_argument(
        "--trace-out", metavar="PATH",
        help="write the run's hierarchical span trace (JSON) to PATH")
    map_cable.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the run's metrics-registry snapshot (JSON) to PATH")
    map_cable.add_argument(
        "--corpus-format", choices=("json", "binary"), default="json",
        help="corpus representation: json keeps the object-graph "
             "inference path and inline checkpoint traces; binary runs "
             "the vectorized columnar path with .npz checkpoint "
             "sidecars (digest-identical output; default json)")
    map_cable.add_argument(
        "--route-model", choices=("spf", "valley-free", "hot-potato"),
        default="spf",
        help="forwarding policy for the campaign: delay-weighted SPF "
             "(default), valley-free AS policy, or per-AS hot-potato "
             "early exit (see repro.bias.routemodel); recorded in the "
             "run manifest")
    map_cable.add_argument(
        "--corpus-out", metavar="PATH",
        help="export the collected trace corpus to PATH (validated "
             "trace-corpus JSON, or .npz when --corpus-format binary); "
             "the follow-up corpus lands next to it as *.followup")

    map_att = sub.add_parser("map-att", help="run the §6 telco pipeline")
    map_att.add_argument("region", nargs="?", default="sndgca")
    map_att.add_argument("--json-dir")

    ship = sub.add_parser("ship", help="run the §7 ShipTraceroute campaign")
    ship.add_argument("--json-dir")

    energy = sub.add_parser("energy", help="print the Fig 14 energy numbers")
    energy.add_argument("--targets", type=int, default=266)

    resilience = sub.add_parser(
        "resilience", help="single-failure sweeps over inferred regions"
    )
    resilience.add_argument("isp", nargs="?", default="comcast",
                            choices=("comcast", "charter"))
    resilience.add_argument("--sweep-vps", type=int, default=8)
    resilience.add_argument(
        "--from-json", metavar="DIR",
        help="analyze exported cable-region artifacts from DIR instead "
             "of re-running the measurement pipeline")
    resilience.add_argument(
        "--validate", choices=("strict", "lenient", "off"), default="off",
        help="invariant checking for loaded artifacts / the pipeline "
             "(default off; artifact schemas are always validated)")

    bias = sub.add_parser(
        "bias",
        help="measurement-bias lab: species coverage estimation, VP "
             "placement optimization, streaming incremental inference",
    )
    bsub = bias.add_subparsers(dest="bias_command", required=True)

    breport = bsub.add_parser(
        "report", help="run the full seeded lab and print/export the "
                       "validated bias-report artifact"
    )
    breport.add_argument("--isp", choices=("comcast", "charter"),
                         default="comcast")
    breport.add_argument("--route-model",
                         choices=("spf", "valley-free", "hot-potato"),
                         default="spf",
                         help="forwarding policy for the lab campaign "
                              "(default spf)")
    breport.add_argument("--vps", type=int, default=6,
                         help="external vantage points probing (default 6)")
    breport.add_argument("--targets-per-region", type=int, default=24,
                         help="/24 targets each VP samples per region "
                              "(default 24)")
    breport.add_argument("--rdns-fraction", type=float, default=0.15,
                         help="fraction of rDNS-known infrastructure "
                              "addresses each VP probes (default 0.15)")
    breport.add_argument("--k", type=int, default=4,
                         help="placement-optimizer budget (default 4)")
    breport.add_argument("--out", metavar="PATH",
                         help="write the validated bias-report JSON to PATH")
    breport.add_argument("--trace-out", metavar="PATH",
                         help="write the run's span trace (JSON) to PATH")
    breport.add_argument("--metrics-out", metavar="PATH",
                         help="write the run's metrics snapshot to PATH")

    bplace = bsub.add_parser(
        "place", help="optimize VP placement against ground truth"
    )
    bplace.add_argument("--isp", choices=("comcast", "charter"),
                        default="comcast")
    bplace.add_argument("--k", type=int, default=4,
                        help="vantage points to choose (default 4)")
    bplace.add_argument("--targets-per-region", type=int, default=24,
                        help="/24 targets sampled per region (default 24)")
    bplace.add_argument("--restarts", type=int, default=4,
                        help="seeded stochastic restarts (default 4)")

    bstream = bsub.add_parser(
        "stream", help="stream finished service corpora through the "
                       "incremental inference engine"
    )
    bstream.add_argument("state_dir", help="campaign-service state directory")
    bstream.add_argument("--isp", choices=("comcast", "charter"),
                         default="comcast")
    bstream.add_argument("--after-seq", type=int, default=0,
                         help="resume cursor: only ingest jobs submitted "
                              "after this sequence number (default 0)")

    service = sub.add_parser(
        "service",
        help="resilient campaign service: crash-safe job queue, leases, "
             "backpressure, graceful drain",
    )
    ssub = service.add_subparsers(dest="service_command", required=True)

    srun = ssub.add_parser("run", help="run the service loop")
    srun.add_argument("state_dir", help="service state directory")
    srun.add_argument("--executor-id", default="executor",
                      help="stable lease-owner id; a restart with the same "
                           "id reclaims its own leases immediately")
    srun.add_argument("--queue-limit", type=int, default=32,
                      help="admission limit on live jobs (default 32; "
                           "halves while shedding load)")
    srun.add_argument("--max-attempts", type=int, default=3,
                      help="attempt budget before a job is quarantined "
                           "as failed (default 3)")
    srun.add_argument("--lease-s", type=float, default=30.0,
                      help="lease duration; heartbeats extend it while an "
                           "attempt runs (default 30)")
    srun.add_argument("--tick-s", type=float, default=0.05,
                      help="idle loop tick (default 0.05)")
    srun.add_argument("--backoff-base-s", type=float, default=0.05,
                      help="retry backoff base; doubles per attempt with "
                           "seeded jitter (default 0.05)")
    srun.add_argument("--until-idle", action="store_true",
                      help="exit once every job is terminal and the inbox "
                           "is empty (soak/CI mode)")
    srun.add_argument("--max-jobs", type=int, default=None, metavar="N",
                      help="exit after N executed attempts")

    ssubmit = ssub.add_parser(
        "submit", help="spool a job spec into the service inbox"
    )
    ssubmit.add_argument("state_dir", help="service state directory")
    ssubmit.add_argument("--spec", metavar="PATH",
                         help="submit this job-spec artifact verbatim "
                              "(overrides the flags below)")
    ssubmit.add_argument("--pipeline", choices=("toy", "map-cable"),
                         default="toy")
    ssubmit.add_argument("--job-seed", type=int, default=0,
                         help="campaign seed inside the job (default 0)")
    ssubmit.add_argument("--fidelity",
                         choices=("full", "reduced", "minimal"),
                         default="full")
    ssubmit.add_argument("--allow-degraded", action="store_true",
                         help="let degraded attempts retry at lower "
                              "fidelity instead of shipping degraded maps")
    ssubmit.add_argument("--workers", type=int, default=0,
                         help="supervised worker processes (default 0 = "
                              "serial)")
    ssubmit.add_argument("--targets", type=int, default=8,
                         help="toy pipeline: probed targets (default 8)")
    ssubmit.add_argument("--hosts", type=int, default=2,
                         help="toy pipeline: per-side host count")
    ssubmit.add_argument("--isp", choices=("comcast", "charter"),
                         default="comcast",
                         help="map-cable pipeline: target ISP")
    ssubmit.add_argument("--sweep-vps", type=int, default=8,
                         help="map-cable pipeline: sweep VP count")
    ssubmit.add_argument("--faults", type=float, default=0.0, metavar="RATE",
                         help="inject this probe-loss rate (0..1)")
    ssubmit.add_argument("--worker-crash", type=float, default=0.0,
                         metavar="RATE",
                         help="chaos: per-(shard, attempt) worker SIGKILL "
                              "probability")
    ssubmit.add_argument("--worker-stall", type=float, default=0.0,
                         metavar="RATE",
                         help="chaos: per-(shard, attempt) worker stall "
                              "probability")
    ssubmit.add_argument("--chaos-fail-attempts", type=int, default=0,
                         metavar="N",
                         help="service chaos: fail the job's first N "
                              "attempts (exercises retry/poison paths)")
    ssubmit.add_argument("--corpus-format", choices=("json", "binary"),
                         default="json",
                         help="toy pipeline corpus artifact: JSON trace "
                              "list or columnar .npz (default json)")
    ssubmit.add_argument("--name", default="",
                         help="submission label (not part of the dedup "
                              "hash)")
    ssubmit.add_argument("--priority", type=int, default=0,
                         help="scheduling priority, higher first "
                              "(default 0)")

    sserve = ssub.add_parser(
        "serve", help="serve jobs/artifacts/diffs/events over HTTP "
                      "(read-only; never contends with executors)"
    )
    sserve.add_argument("state_dir", help="service state directory")
    sserve.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    sserve.add_argument("--port", type=int, default=8642,
                        help="bind port; 0 picks an ephemeral one "
                             "(default 8642)")

    sstatus = ssub.add_parser(
        "status", help="print the job table from a state directory"
    )
    sstatus.add_argument("state_dir", help="service state directory")

    sdrain = ssub.add_parser(
        "drain", help="ask a running service to drain and exit"
    )
    sdrain.add_argument("state_dir", help="service state directory")

    return parser


_COMMANDS = {
    "build": cmd_build,
    "map-cable": cmd_map_cable,
    "map-att": cmd_map_att,
    "ship": cmd_ship,
    "energy": cmd_energy,
    "resilience": cmd_resilience,
    "bias": cmd_bias,
    "service": cmd_service,
}


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code.

    Any :class:`~repro.errors.ReproError` — a corrupt artifact, a
    broken pipeline invariant under ``--validate strict``, a bad
    checkpoint — exits non-zero with a single-line diagnostic instead
    of a traceback.
    """
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
