"""Performance layer: memoization, profiling, benchmark substrates.

The inference hot path re-derives the same facts millions of times —
``str(parse_ip(...))`` normalization, PTR lookups, hostname regex
parses, point-to-point peer computation.  All of those are pure (or
pure *per epoch* of the rDNS store / fault injector), so this package
centralizes their memoization where invalidation can be reasoned about
in one place, plus the wall-clock/RSS profiler and the synthetic-region
corpus generator the benchmark harness runs against.
"""

from repro.perf.cache import (
    InferenceCache,
    memoization_disabled,
    memoization_enabled,
    normalize_address,
    p2p_peer_str,
)
from repro.perf.profile import PhaseProfiler

__all__ = [
    "InferenceCache",
    "PhaseProfiler",
    "memoization_disabled",
    "memoization_enabled",
    "normalize_address",
    "p2p_peer_str",
]
