"""Shared, fault-injection-safe memoization for the inference hot path.

Profiling the cable pipeline shows three dominant costs, all pure
recomputation: address-string normalization (``str(parse_ip(s))``),
point-to-point peer derivation, and PTR-lookup + hostname-regex parsing
repeated once per IP *pair* instead of once per IP.  Two kinds of memo
live here:

* **Module-level memos** (:func:`normalize_address`,
  :func:`p2p_peer_str`) for computations that are pure functions of
  their string argument — safe to share process-wide and never
  invalidated.  :func:`memoization_disabled` turns them off so the
  benchmark harness can measure the unmemoized baseline.
* **:class:`InferenceCache`** for facts that are pure only *per epoch*
  of an :class:`~repro.net.dns.RdnsStore`: a combined PTR lookup
  changes when the store mutates or when a different fault injector is
  attached (stale-rDNS injection rewrites lookups per address).  The
  cache watches both and drops its lookup-derived entries whenever
  either changes, so fault-injection campaigns see exactly the answers
  the uncached path would produce.

What is deliberately **not** cached: ``RdnsStore.dig`` — under fault
injection a bare dig consults a per-address call counter (transient
timeouts), so its result is call-order dependent.
"""

from __future__ import annotations

import contextlib
import re
import statistics
from dataclasses import dataclass

from repro.errors import AddressError
from repro.net.addresses import p2p_peer, parse_ip
from repro.obs.metrics import MetricsRegistry

_MISS = object()

#: Process-wide switch for the module-level memos (benchmark baseline).
_enabled = True

_normalize_memo: "dict[str, str]" = {}
_p2p_memo: "dict[tuple[str, int], str | None]" = {}

#: Canonical IPv4 dotted quad: four 0–255 octets, no leading zeros.
#: Strings matching this are already in ``str(parse_ip(s))`` form and
#: carry their octets in the groups, so the memo-miss paths below can
#: skip ``ipaddress`` parsing entirely.  Anything else (IPv6,
#: non-canonical quads, garbage) falls through to the slow path.
_OCTET = r"(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9][0-9]|[0-9])"
_DOTTED_QUAD = re.compile(rf"^{_OCTET}\.{_OCTET}\.{_OCTET}\.{_OCTET}$")


def memoization_enabled() -> bool:
    """Whether the module-level memos are active."""
    return _enabled


@contextlib.contextmanager
def memoization_disabled():
    """Temporarily disable the module-level memos (baseline timing)."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


def normalize_address(value) -> str:
    """``str(parse_ip(value))`` with a process-wide memo for strings.

    Address normalization is a pure function of the input string, yet
    it was the single hottest call in the pipeline (one ``ipaddress``
    parse per hop per trace).  Non-string inputs (already-parsed
    address objects) skip the memo.
    """
    if not isinstance(value, str) or not _enabled:
        return str(parse_ip(value))
    cached = _normalize_memo.get(value)
    if cached is None:
        if _DOTTED_QUAD.match(value):
            cached = value  # already canonical
        else:
            cached = str(parse_ip(value))
        _normalize_memo[value] = cached
    return cached


def p2p_peer_str(address: str, prefixlen: int = 30) -> "str | None":
    """The point-to-point peer of *address* as a string, or None.

    Wraps :func:`repro.net.addresses.p2p_peer`, converting the
    ``AddressError`` raised for network/broadcast addresses into None —
    every caller in the inference path catches-and-skips, so the memo
    can store the failure too.
    """
    if not _enabled:
        try:
            return str(p2p_peer(address, prefixlen))
        except AddressError:
            return None
    key = (address, prefixlen)
    cached = _p2p_memo.get(key, _MISS)
    if cached is _MISS:
        match = _DOTTED_QUAD.match(address) if prefixlen in (30, 31) else None
        if match is not None:
            last = int(match.group(4))
            if prefixlen == 31:
                peer_last: "int | None" = last ^ 1
            else:
                low2 = last & 0b11
                # low2 0/3 are the /30's network and broadcast
                # addresses — no peer, matching the AddressError path.
                peer_last = (
                    last + 1 if low2 == 0b01
                    else last - 1 if low2 == 0b10
                    else None
                )
            cached = (
                None if peer_last is None else
                f"{match.group(1)}.{match.group(2)}"
                f".{match.group(3)}.{peer_last}"
            )
        else:
            cached = _p2p_peer_slow(address, prefixlen)
        _p2p_memo[key] = cached
    return cached


def _p2p_peer_slow(address: str, prefixlen: int) -> "str | None":
    try:
        return str(p2p_peer(address, prefixlen))
    except AddressError:
        return None


def clear_module_memos() -> None:
    """Drop the process-wide memos (tests and benchmark isolation)."""
    _normalize_memo.clear()
    _p2p_memo.clear()


@dataclass
class CacheStats:
    """Hit/miss accounting, reported by ``--profile``.

    Since the observability layer landed this is a *snapshot view*:
    the canonical store is the cache's ``cache.*`` counters in its
    :class:`~repro.obs.metrics.MetricsRegistry`, and
    :attr:`InferenceCache.stats` materializes one of these on access.
    """

    lookup_hits: int = 0
    lookup_misses: int = 0
    parse_hits: int = 0
    parse_misses: int = 0
    invalidations: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {
            "lookup_hits": self.lookup_hits,
            "lookup_misses": self.lookup_misses,
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "invalidations": self.invalidations,
        }


class InferenceCache:
    """Memoizes PTR lookups and hostname parses for one rDNS store.

    Shared by the IP→CO mapper, the adjacency extractor, and the region
    refiner so each address is looked up and each hostname parsed once
    per campaign, not once per use site.

    Invalidation: lookup-derived entries are dropped whenever the
    store's mutation ``epoch`` advances or a different fault injector
    is attached (identity comparison — stale-rDNS injection changes
    what ``lookup`` returns per address).  Hostname parses are pure and
    survive invalidation.
    """

    def __init__(self, rdns, parser, metrics: "MetricsRegistry | None" = None) -> None:
        self.rdns = rdns
        self.parser = parser
        #: Registry the hit/miss counters live in.  Sharing the run's
        #: registry (the pipeline does) makes cache behaviour part of
        #: the exported metrics snapshot; a private one is created
        #: otherwise so the counters always exist.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_lookup_hits = self.metrics.counter("cache.lookup_hits")
        self._c_lookup_misses = self.metrics.counter("cache.lookup_misses")
        self._c_parse_hits = self.metrics.counter("cache.parse_hits")
        self._c_parse_misses = self.metrics.counter("cache.parse_misses")
        self._c_invalidations = self.metrics.counter("cache.invalidations")
        self._lookup: "dict[str, str | None]" = {}
        self._parse: "dict[str, object]" = {}
        self._threshold: "dict[tuple[int, ...], float]" = {}
        self._epoch = getattr(rdns, "epoch", 0)
        self._faults = getattr(rdns, "faults", None)

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the registry-backed hit/miss counters."""
        return CacheStats(
            lookup_hits=int(self._c_lookup_hits.value),
            lookup_misses=int(self._c_lookup_misses.value),
            parse_hits=int(self._c_parse_hits.value),
            parse_misses=int(self._c_parse_misses.value),
            invalidations=int(self._c_invalidations.value),
        )

    # ------------------------------------------------------------------
    def _check_generation(self) -> None:
        rdns = self.rdns
        epoch = getattr(rdns, "epoch", 0)
        faults = getattr(rdns, "faults", None)
        if epoch != self._epoch or faults is not self._faults:
            self._lookup.clear()
            self._epoch = epoch
            self._faults = faults
            self._c_invalidations.inc()

    # ------------------------------------------------------------------
    def lookup(self, address: str) -> "str | None":
        """Memoized combined PTR lookup (dig-over-snapshot priority)."""
        self._check_generation()
        cached = self._lookup.get(address, _MISS)
        if cached is _MISS:
            cached = self.rdns.lookup(address)
            self._lookup[address] = cached
            self._c_lookup_misses.inc()
        else:
            self._c_lookup_hits.inc()
        return cached

    def parse(self, hostname: "str | None"):
        """Memoized hostname parse (pure; never invalidated)."""
        if hostname is None:
            return None
        cached = self._parse.get(hostname, _MISS)
        if cached is _MISS:
            cached = self.parser.parse(hostname)
            self._parse[hostname] = cached
            self._c_parse_misses.inc()
        else:
            self._c_parse_hits.inc()
        return cached

    def parsed_lookup(self, address: str):
        """Parsed hostname of *address*'s combined PTR lookup."""
        return self.parse(self.lookup(address))

    def regional_co(self, address: str, isp: str):
        """(region, co_tag) when *address*'s name is a regional CO of *isp*."""
        return self.parser.regional_co_of(self.parsed_lookup(address), isp)

    def degree_threshold(self, degrees: "tuple[int, ...]") -> float:
        """Memoized mean + pstdev over an out-degree multiset.

        Region refinement recomputes the AggCO threshold for every
        region and every ablation rerun; the degree tuple is the whole
        input, so the statistic memoizes cleanly.
        """
        cached = self._threshold.get(degrees)
        if cached is None:
            cached = statistics.fmean(degrees) + statistics.pstdev(degrees)
            self._threshold[degrees] = cached
        return cached
