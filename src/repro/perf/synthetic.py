"""Synthetic large-region corpora for the benchmark harness.

Builds a deterministic traceroute corpus shaped like a real cable-ISP
campaign — regional COs with Comcast-style rDNS, backbone prefixes,
MPLS tunnels whose interiors only the follow-up (DPR) corpus reveals,
stale cross-region PTR records, and single-observation noise — without
paying for packet-level simulation.  The benchmark runs the *inference*
phase (IP→CO mapping, adjacency extraction/pruning, refinement, entry
inference) over this corpus in both unmemoized-baseline and optimized
configurations.

Everything is drawn from one seeded ``random.Random``; the same
arguments always produce byte-identical corpora.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.alias.resolve import AliasSets
from repro.measure.traceroute import Hop, TraceResult
from repro.net.dns import RdnsStore


@dataclass
class SyntheticCorpus:
    """One generated campaign: corpora plus the stores inference reads."""

    isp: str
    rdns: RdnsStore
    traces: "list[TraceResult]" = field(default_factory=list)
    followups: "list[TraceResult]" = field(default_factory=list)
    aliases: AliasSets = field(default_factory=lambda: AliasSets([]))
    co_count: int = 0
    link_pairs: int = 0


@dataclass
class SyntheticPlan:
    """A generated campaign as bare address chains, before any trace
    materialization.

    The plan is the single source both corpus shapes derive from:
    :func:`build_synthetic_region_corpus` lifts the chains into
    :class:`TraceResult` object graphs (the digest-parity oracle),
    :func:`build_synthetic_columnar_corpus` streams them straight into
    a :class:`~repro.corpus.columnar.CorpusBuilder` with no per-hop
    objects at all — the rewritten trace-accumulation path.  Every RNG
    draw happens while planning, so both shapes are byte-equivalent
    views of the same campaign.
    """

    isp: str
    rdns: RdnsStore
    trace_chains: "list[list[str]]" = field(default_factory=list)
    followup_chains: "list[list[str]]" = field(default_factory=list)
    aliases: AliasSets = field(default_factory=lambda: AliasSets([]))
    co_count: int = 0
    link_pairs: int = 0


#: Chain endpoints shared by both materializations.
_SRC_ADDRESS = "192.0.2.1"
_EMPTY_DST = "192.0.2.2"


def _trace(addresses: "list[str]") -> TraceResult:
    hops = [
        Hop(index=i + 1, address=address)
        for i, address in enumerate(addresses)
    ]
    return TraceResult(
        src_address=_SRC_ADDRESS,
        dst_address=addresses[-1] if addresses else _EMPTY_DST,
        hops=hops,
    )


def build_synthetic_region_plan(
    regions: int = 2,
    cos_per_region: int = 30,
    aggs_per_region: int = 3,
    link_variants: int = 4,
    traces: int = 20000,
    followups: int = 1200,
    stale_edges: int = 8,
    backbone_pops: int = 4,
    tunnel_share: float = 0.25,
    seed: int = 2021,
) -> SyntheticPlan:
    """Generate a campaign plan over ``regions × cos_per_region`` COs.

    Defaults produce 60 COs and 20k main-corpus chains — the "large
    synthetic region" scale the PR-3 benchmark is defined over.
    """
    rng = random.Random(seed)
    corpus = SyntheticPlan(isp="comcast", rdns=RdnsStore())
    rdns = corpus.rdns
    corpus.co_count = regions * cos_per_region

    def region_name(r: int) -> str:
        return f"region{r:02d}"

    def co_city(c: int) -> str:
        return f"co{c:02d}"

    # ------------------------------------------------------------------
    # Plant: per region, aggs_per_region AggCOs feed the remaining
    # EdgeCOs, every edge dual-homed to two aggs, each physical link
    # observed through `link_variants` interface-address pairs.
    # ------------------------------------------------------------------
    agg_ips: "dict[tuple[int, int], list[str]]" = {}
    links: "list[dict]" = []
    for r in range(regions):
        edges = list(range(aggs_per_region, cos_per_region))
        per_agg_count = [0] * aggs_per_region
        for e in edges:
            homes = [e % aggs_per_region, (e + 1) % aggs_per_region]
            for li, a in enumerate(homes):
                l_index = per_agg_count[a]
                per_agg_count[a] += 1
                pairs = []
                for v in range(link_variants):
                    agg_ip = f"10.{r}.{a}.{10 + 8 * l_index + v}"
                    edge_ip = f"10.{r}.{e}.{10 + 8 * li + v}"
                    rdns.set(
                        agg_ip,
                        f"ae-{l_index}-{v}-ar01.{co_city(a)}.ca."
                        f"{region_name(r)}.comcast.net",
                    )
                    rdns.set(
                        edge_ip,
                        f"po-{li}-{v}-cbr01.{co_city(e)}.ca."
                        f"{region_name(r)}.comcast.net",
                    )
                    pairs.append((agg_ip, edge_ip))
                    agg_ips.setdefault((r, a), []).append(agg_ip)
                links.append({
                    "region": r, "agg": a, "edge": e,
                    "pairs": pairs,
                    "mid": f"10.{r}.{e}.{240 + li}",
                    "tunnel": rng.random() < tunnel_share,
                })
    corpus.link_pairs = sum(len(link["pairs"]) for link in links)

    # Backbone PoPs: traces may enter the region through one of these.
    backbone_ips = []
    for k in range(backbone_pops):
        bb_ip = f"10.200.{k}.1"
        rdns.set(bb_ip, f"be-1-cr01.bbpop{k:02d}.ca.ibone.comcast.net")
        backbone_ips.append(bb_ip)

    # Stale PTR records: a handful of edge interfaces keep the hostname
    # of a CO in *another* region (equipment moved, zone did not) —
    # these become the cross-region adjacencies B.2 prunes.
    if regions > 1:
        stale_candidates = [link for link in links if not link["tunnel"]]
        rng.shuffle(stale_candidates)
        for link in stale_candidates[:stale_edges]:
            other_r = (link["region"] + 1) % regions
            donor_e = aggs_per_region  # first edge CO of the donor region
            donor = (
                f"po-9-9-cbr01.{co_city(donor_e)}.ca."
                f"{region_name(other_r)}.comcast.net"
            )
            _, edge_ip = link["pairs"][0]
            rdns.set_stale(edge_ip, donor)

    # ------------------------------------------------------------------
    # Main corpus: `traces` sweeps, each riding backbone → agg → edge,
    # sometimes trailing into a customer address or a false edge→edge
    # hop (the refinement stage's food).
    # ------------------------------------------------------------------
    for _ in range(traces):
        link = links[rng.randrange(len(links))]
        agg_ip, edge_ip = link["pairs"][rng.randrange(link_variants)]
        chain: "list[str]" = []
        if rng.random() < 0.4:
            chain.append(backbone_ips[rng.randrange(len(backbone_ips))])
        chain.extend((agg_ip, edge_ip))
        roll = rng.random()
        if roll < 0.1:
            # False EdgeCO→EdgeCO adjacency (stale rDNS in the wild).
            other = links[rng.randrange(len(links))]
            if other["region"] == link["region"] and other["edge"] != link["edge"]:
                chain.append(other["pairs"][0][1])
        elif roll < 0.4:
            chain.append(f"10.{link['region']}.{link['edge']}.{200 + rng.randrange(4)}")
        corpus.trace_chains.append(chain)

    # ------------------------------------------------------------------
    # Follow-up (DPR) corpus: one probe per revealed interior.  Tunnel
    # links show their mid hop (entry/exit separated ⇒ pruned as MPLS);
    # plain links confirm direct adjacency.  Reversed and duplicate-hop
    # traces are deliberately present: correct extraction must scan
    # occurrence pairs in path order, not first-occurrence indices.
    # ------------------------------------------------------------------
    followup_pool: "list[list[str]]" = []
    for link in links:
        for agg_ip, edge_ip in link["pairs"]:
            if link["tunnel"]:
                followup_pool.append([agg_ip, link["mid"], edge_ip])
            else:
                followup_pool.append([agg_ip, edge_ip])
                # Red herrings that must NOT separate the pair:
                followup_pool.append([edge_ip, link["mid"], agg_ip])
                followup_pool.append([agg_ip, edge_ip, agg_ip])
    rng.shuffle(followup_pool)
    corpus.followup_chains = (
        followup_pool[: followups if followups else len(followup_pool)]
    )

    # Alias sets: each AggCO's interfaces belong to one router.
    groups = [
        set(ips) for (_r, _a), ips in sorted(agg_ips.items())
    ]
    corpus.aliases = AliasSets(groups)
    return corpus


def build_synthetic_region_corpus(**kwargs) -> SyntheticCorpus:
    """The planned campaign as :class:`TraceResult` object graphs."""
    plan = build_synthetic_region_plan(**kwargs)
    return SyntheticCorpus(
        isp=plan.isp,
        rdns=plan.rdns,
        traces=[_trace(chain) for chain in plan.trace_chains],
        followups=[_trace(chain) for chain in plan.followup_chains],
        aliases=plan.aliases,
        co_count=plan.co_count,
        link_pairs=plan.link_pairs,
    )


def build_synthetic_columnar_corpus(**kwargs):
    """The planned campaign accumulated straight into columnar corpora.

    Returns ``(plan, corpus, followup_corpus)``: the chains stream
    through :class:`~repro.corpus.columnar.CorpusBuilder.add_path`
    without constructing a single :class:`Hop` or :class:`TraceResult`
    — the trace-accumulation hot path the benchmark measures.  The
    result is column-identical to ``TraceCorpus.from_traces`` over
    :func:`build_synthetic_region_corpus`'s objects for equal kwargs.
    """
    from repro.corpus import CorpusBuilder

    plan = build_synthetic_region_plan(**kwargs)

    def accumulate(chains: "list[list[str]]"):
        builder = CorpusBuilder()
        for chain in chains:
            builder.add_path(
                _SRC_ADDRESS, chain[-1] if chain else _EMPTY_DST, chain
            )
        return builder.build()

    return plan, accumulate(plan.trace_chains), accumulate(plan.followup_chains)
