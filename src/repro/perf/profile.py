"""Lightweight phase profiler: wall clock per pipeline phase, peak RSS.

Backs the CLI's ``--profile`` flag and the benchmark harness.  Peak RSS
comes from ``resource.getrusage`` and is therefore monotone over the
process lifetime — the benchmark harness runs each measured mode in its
own subprocess for that reason.
"""

from __future__ import annotations

import contextlib
import resource
import sys
import time


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize to KiB.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


class PhaseProfiler:
    """Accumulates wall-clock time per named phase.

    Phases may repeat (the campaign runner executes several stages);
    durations accumulate under the same name, in first-seen order.
    """

    def __init__(self) -> None:
        self.phases: "dict[str, float]" = {}

    @contextlib.contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    def as_dict(self) -> "dict[str, object]":
        return {
            "phases_s": {name: round(sec, 4) for name, sec in self.phases.items()},
            "total_s": round(self.total_seconds, 4),
            "peak_rss_kb": peak_rss_kb(),
        }

    def report(self) -> "list[str]":
        """Human-readable lines for CLI output."""
        lines = []
        total = self.total_seconds
        for name, seconds in self.phases.items():
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"{name:<16} {seconds:8.3f}s  {share:5.1f}%")
        lines.append(f"{'total':<16} {total:8.3f}s")
        lines.append(f"{'peak rss':<16} {peak_rss_kb() / 1024.0:8.1f} MiB")
        return lines
