"""Phase profiler — a flat view over the observability span tree.

Historically this module owned its own wall-clock accounting; it is now
a *view* over :class:`repro.obs.span.Tracer`: ``phase()`` opens a
top-level span and the per-phase totals are
:meth:`~repro.obs.span.Tracer.phase_totals`, so ``--profile`` output
and the ``run-manifest`` stage summaries agree by construction (they
read the same tree).  Peak RSS still comes from ``resource.getrusage``
and is therefore monotone over the process lifetime — the benchmark
harness runs each measured mode in its own subprocess for that reason.
"""

from __future__ import annotations

import resource
import sys

from repro.obs.span import Tracer


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize to KiB.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


class PhaseProfiler:
    """Accumulates wall-clock time per named phase.

    Phases may repeat (the campaign runner executes several stages);
    durations accumulate under the same name, in first-seen order.
    Construct it over an existing :class:`Tracer` to view a pipeline's
    span tree, or bare to own a private one (the benchmark harness).
    """

    def __init__(self, tracer: "Tracer | None" = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()

    def phase(self, name: str):
        """Context manager timing one (top-level) phase."""
        return self.tracer.span(name)

    @property
    def phases(self) -> "dict[str, float]":
        """Total seconds per top-level phase, in first-seen order."""
        return self.tracer.phase_totals()

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    def as_dict(self) -> "dict[str, object]":
        return {
            "phases_s": {name: round(sec, 4) for name, sec in self.phases.items()},
            "total_s": round(self.total_seconds, 4),
            "peak_rss_kb": peak_rss_kb(),
        }

    def report(self) -> "list[str]":
        """Human-readable lines for CLI output."""
        lines = []
        phases = self.phases
        total = sum(phases.values())
        for name, seconds in phases.items():
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"{name:<16} {seconds:8.3f}s  {share:5.1f}%")
        lines.append(f"{'total':<16} {total:8.3f}s")
        lines.append(f"{'peak rss':<16} {peak_rss_kb() / 1024.0:8.1f} MiB")
        return lines
