"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from repro.errors import ReproError


def render_table(headers: "list[str]", rows: "list[list[object]]",
                 title: str = "") -> str:
    """Render a fixed-width table; benchmarks print these to mirror the
    paper's tables row for row."""
    if not headers:
        raise ReproError("a table needs headers")
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ReproError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
