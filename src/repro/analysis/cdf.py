"""Empirical CDFs with an ASCII renderer for the Fig 7/10 benchmarks."""

from __future__ import annotations

import bisect

from repro.errors import ReproError


class Cdf:
    """An empirical cumulative distribution over a sample."""

    def __init__(self, samples) -> None:
        self.samples = sorted(float(s) for s in samples)
        if not self.samples:
            raise ReproError("a CDF needs at least one sample")

    def __len__(self) -> int:
        return len(self.samples)

    def fraction_at(self, value: float) -> float:
        """P(X <= value)."""
        return bisect.bisect_right(self.samples, value) / len(self.samples)

    def fraction_above(self, value: float) -> float:
        """P(X > value)."""
        return 1.0 - self.fraction_at(value)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 <= q <= 100)."""
        if not 0 <= q <= 100:
            raise ReproError(f"percentile out of range: {q}")
        index = min(len(self.samples) - 1, int(q / 100.0 * len(self.samples)))
        return self.samples[index]

    @property
    def median(self) -> float:
        return self.percentile(50)

    def series(self, points: int = 50) -> "list[tuple[float, float]]":
        """(value, fraction) pairs suitable for plotting or printing."""
        lo, hi = self.samples[0], self.samples[-1]
        if hi == lo:
            return [(lo, 1.0)]
        step = (hi - lo) / points
        return [
            (lo + i * step, self.fraction_at(lo + i * step))
            for i in range(points + 1)
        ]

    def ascii_plot(self, width: int = 60, height: int = 12,
                   label: str = "") -> str:
        """A terminal rendering of the CDF (benchmarks print these)."""
        rows = []
        series = self.series(points=width - 1)
        for level in range(height, -1, -1):
            frac = level / height
            line = "".join(
                "#" if f >= frac - 1e-9 else " " for _v, f in series
            )
            rows.append(f"{frac:4.2f} |{line}")
        lo, hi = self.samples[0], self.samples[-1]
        rows.append("     +" + "-" * width)
        rows.append(f"      {lo:<10.2f}{label:^{max(0, width - 20)}}{hi:>10.2f}")
        return "\n".join(rows)
