"""Resilience analysis over inferred CO topologies (§8 future work).

The paper closes by proposing that the inferred regional topologies be
used to study resilience: which CO or link failures disconnect how many
EdgeCOs (and therefore how many last-mile customers)?  §6.3 gives the
motivating incident — the Christmas 2020 attack on AT&T's Nashville
office took down the whole region, consistent with the region having a
single BackboneCO.

This module implements that analysis over refined region graphs:

* single-CO failure impact (how many EdgeCOs lose all upstream paths);
* the set of single points of failure;
* a region-level resilience score comparable across ISPs and regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ReproError
from repro.infer.refine import RefinedRegion


@dataclass(frozen=True)
class FailureImpact:
    """Consequences of removing one CO from a region graph."""

    region: str
    failed_co: str
    #: EdgeCOs left with no path from any entry CO.
    disconnected_edge_cos: "tuple[str, ...]"
    total_edge_cos: int

    @property
    def disconnected_fraction(self) -> float:
        if self.total_edge_cos == 0:
            return 0.0
        return len(self.disconnected_edge_cos) / self.total_edge_cos


@dataclass
class RegionResilience:
    """The full single-failure sweep of one region."""

    region: str
    impacts: "list[FailureImpact]" = field(default_factory=list)

    def single_points_of_failure(self, threshold: float = 0.5) -> "list[str]":
        """COs whose loss disconnects more than *threshold* of EdgeCOs."""
        return [
            impact.failed_co
            for impact in self.impacts
            if impact.disconnected_fraction > threshold
        ]

    @property
    def worst_case(self) -> "FailureImpact | None":
        if not self.impacts:
            return None
        return max(self.impacts, key=lambda i: i.disconnected_fraction)

    @property
    def mean_impact(self) -> float:
        if not self.impacts:
            return 0.0
        return sum(i.disconnected_fraction for i in self.impacts) / len(self.impacts)


class ResilienceAnalyzer:
    """Single-failure sweeps over refined region graphs."""

    def __init__(self, region: RefinedRegion,
                 entry_cos: "set[str] | None" = None) -> None:
        if region.graph.number_of_nodes() == 0:
            raise ReproError(f"region {region.name!r} has an empty graph")
        self.region = region
        # Traffic enters through COs with no upstream inside the region
        # (the top AggCOs fed by backbone entries), unless told otherwise.
        if entry_cos is None:
            entry_cos = {
                node for node in region.graph.nodes
                if region.graph.in_degree(node) == 0
                and region.graph.out_degree(node) > 0
            }
        if not entry_cos:
            entry_cos = set(region.agg_cos)
        self.entry_cos = set(entry_cos)

    # ------------------------------------------------------------------
    def _reachable_edges(self, graph: nx.DiGraph,
                         entries: "set[str]") -> "set[str]":
        reachable: "set[str]" = set()
        for entry in entries:
            if entry in graph:
                reachable |= nx.descendants(graph, entry)
                reachable.add(entry)
        return {node for node in reachable if node in self.region.edge_cos}

    def co_failure(self, co: str) -> FailureImpact:
        """Impact of losing one CO (fiber cut at the building, §6.3)."""
        graph = self.region.graph
        if co not in graph:
            raise ReproError(f"{co!r} is not a CO of region {self.region.name}")
        baseline = self._reachable_edges(graph, self.entry_cos)
        degraded = graph.copy()
        degraded.remove_node(co)
        entries = self.entry_cos - {co}
        surviving = self._reachable_edges(degraded, entries)
        lost = tuple(sorted(baseline - surviving - {co}))
        return FailureImpact(
            region=self.region.name,
            failed_co=co,
            disconnected_edge_cos=lost,
            total_edge_cos=len(baseline),
        )

    def sweep(self, include_edges: bool = False) -> RegionResilience:
        """Fail every aggregating CO (optionally every CO) in turn."""
        result = RegionResilience(self.region.name)
        targets = sorted(
            node for node in self.region.graph.nodes
            if include_edges or self.region.graph.out_degree(node) > 0
        )
        for co in targets:
            result.impacts.append(self.co_failure(co))
        return result


def compare_regions(regions: "dict[str, RefinedRegion]") -> "dict[str, float]":
    """Worst-case single-failure impact per region (the cross-region
    resilience comparison §8 proposes)."""
    out = {}
    for name, region in sorted(regions.items()):
        sweep = ResilienceAnalyzer(region).sweep()
        worst = sweep.worst_case
        out[name] = worst.disconnected_fraction if worst else 0.0
    return out
