"""Analysis and rendering helpers shared by examples and benchmarks."""

from repro.analysis.cdf import Cdf
from repro.analysis.hexbin import HexBinner
from repro.analysis.tables import render_table

__all__ = ["Cdf", "HexBinner", "render_table"]
