"""Hexagonal binning for the Fig 18 latency maps.

Fig 18 colours hexagons by the minimum RTT measured from that location;
the binner maps (lat, lon) samples onto a hex grid and aggregates the
per-bin minimum, plus an ASCII map renderer for the benchmark output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class HexCell:
    """One hexagon: axial coordinates plus its centre."""

    q: int
    r: int
    lat: float
    lon: float


class HexBinner:
    """Bins (lat, lon, value) samples onto a pointy-top hex grid."""

    def __init__(self, cell_deg: float = 1.6) -> None:
        if cell_deg <= 0:
            raise ReproError("hex cell size must be positive")
        self.cell_deg = cell_deg

    def cell_for(self, lat: float, lon: float) -> HexCell:
        """The hex cell containing a coordinate (axial rounding)."""
        size = self.cell_deg
        q = (math.sqrt(3) / 3 * lon - 1.0 / 3 * lat) / size
        r = (2.0 / 3 * lat) / size
        # Cube-coordinate rounding.
        x, z = q, r
        y = -x - z
        rx, ry, rz = round(x), round(y), round(z)
        dx, dy, dz = abs(rx - x), abs(ry - y), abs(rz - z)
        if dx > dy and dx > dz:
            rx = -ry - rz
        elif dy <= dz:
            rz = -rx - ry
        center_lat = 3.0 / 2 * size * rz
        center_lon = math.sqrt(3) * size * (rx + rz / 2.0)
        return HexCell(int(rx), int(rz), center_lat, center_lon)

    def bin_min(self, samples: "list[tuple[float, float, float]]") -> "dict[HexCell, float]":
        """Per-hex minimum of (lat, lon, value) samples (Fig 18's metric)."""
        best: "dict[HexCell, float]" = {}
        for lat, lon, value in samples:
            cell = self.cell_for(lat, lon)
            if cell not in best or value < best[cell]:
                best[cell] = value
        return best

    @staticmethod
    def ascii_map(binned: "dict[HexCell, float]",
                  thresholds: "list[float]" = None,
                  glyphs: str = ".:-=+*#@") -> str:
        """Render binned values as a rough ASCII map (west→east, north↑).

        Values are mapped to glyphs by threshold; darker glyph = higher
        value, matching Fig 18's colour scale.
        """
        if not binned:
            raise ReproError("nothing to render")
        thresholds = thresholds or [40, 60, 80, 100, 120, 140, 160]
        cells = list(binned.items())
        lats = [c.lat for c, _v in cells]
        lons = [c.lon for c, _v in cells]
        lat_step = 1.8
        lon_step = 1.8
        rows = int((max(lats) - min(lats)) / lat_step) + 1
        cols = int((max(lons) - min(lons)) / lon_step) + 1
        grid = [[" "] * cols for _ in range(rows)]
        for cell, value in cells:
            row = rows - 1 - int((cell.lat - min(lats)) / lat_step)
            col = int((cell.lon - min(lons)) / lon_step)
            level = sum(1 for t in thresholds if value >= t)
            grid[row][col] = glyphs[min(level, len(glyphs) - 1)]
        return "\n".join("".join(line) for line in grid)
