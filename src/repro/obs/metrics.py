"""A process-wide metrics registry: counters, gauges, histograms.

Zero-dependency and deliberately small: a metric is a named scalar (or
scalar summary) registered on first use, snapshot as plain JSON with
sorted keys so two runs' snapshots diff cleanly.  Names are dotted
paths by convention (``campaign.probes_sent``, ``cache.lookup_hits``,
``faults.stale_lookups``).

Three instrument kinds:

* :class:`Counter` — monotonically increasing count (cache hits,
  quarantined records);
* :class:`Gauge` — last-written value (fleet size, health snapshots
  published from cumulative component counters);
* :class:`Histogram` — count/sum/min/max summary of observations
  (per-stage trace counts, durations).

Producers either hold a bound instrument (the hot-path pattern used by
:class:`~repro.perf.cache.InferenceCache`) or publish a snapshot of
their own counters at sync points (the pattern used by
:class:`~repro.measure.runner.CampaignHealth`,
:class:`~repro.measure.traceroute.Tracerouter`, and
:class:`~repro.faults.injector.FaultStats`).
"""

from __future__ import annotations

import json


def labeled(name: str, **labels) -> str:
    """``name{key=value,...}`` — the flat label convention for metrics.

    The registry is name-keyed, so labels are folded into the name
    (``service.attempts{executor=e1}``); keys sort for stability.
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: "int | float" = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: "int | float" = 0

    def set(self, value: "int | float") -> None:
        self.value = value


class Histogram:
    """A count/sum/min/max summary of observed values."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: "float | None" = None
        self.maximum: "float | None" = None

    def observe(self, value: "int | float") -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def as_dict(self) -> "dict[str, float]":
        payload = {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.minimum, 6) if self.minimum is not None else 0.0,
            "max": round(self.maximum, 6) if self.maximum is not None else 0.0,
        }
        if self.count:
            payload["mean"] = round(self.total / self.count, 6)
        return payload


class MetricsRegistry:
    """Creates-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # Convenience write/read
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: "int | float" = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: "int | float") -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: "int | float") -> None:
        self.histogram(name).observe(value)

    def counter_value(self, name: str) -> "int | float":
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def gauge_value(self, name: str) -> "int | float":
        instrument = self._gauges.get(name)
        return instrument.value if instrument is not None else 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> "dict[str, dict[str, object]]":
        """All instruments as plain JSON-ready data, keys sorted."""

        def _round(value: "int | float") -> "int | float":
            return round(value, 6) if isinstance(value, float) else value

        return {
            "counters": {name: _round(c.value) for name, c in sorted(self._counters.items())},
            "gauges": {name: _round(g.value) for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.as_dict() for name, h in sorted(self._histograms.items())},
        }

    def to_json(self) -> str:
        payload = {"kind": "metrics-snapshot"}
        payload.update(self.snapshot())
        return json.dumps(payload, indent=2, sort_keys=True)
