"""Run manifests: one artifact that makes any two runs diffable.

A :class:`dict` payload (artifact kind ``run-manifest``, validated by
:mod:`repro.validate.schema`) capturing everything needed to compare
two pipeline or benchmark runs structurally:

* **environment** — python version/implementation, platform, package
  version;
* **invocation** — the command, the simulation seed, and the
  parameters that shape the run;
* **fault_plan_digest** — sha256 over the canonical JSON of the fault
  plan (None for fault-free runs), so two runs can be checked to have
  injected the same failures without embedding the whole plan;
* **stages** — per-stage span summaries from the run's
  :class:`~repro.obs.span.Tracer` (name, duration, span count,
  status), agreeing by construction with ``--profile`` output;
* **metrics** — the run's :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot;
* **artifacts** — sha256 digest (and size) of every artifact the run
  exported, which is what lets CI assert that an optimized or parallel
  run produced byte-identical output to the serial oracle.

Timings and environment fields naturally differ between runs; digests,
stages' names/counts, seeds, and metrics counters are the diffable
core.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import platform
import sys

MANIFEST_KIND = "run-manifest"
MANIFEST_SCHEMA_VERSION = 1


def sha256_text(text: str) -> str:
    """Hex sha256 of a text artifact (the digest used throughout)."""
    return hashlib.sha256(text.encode()).hexdigest()


def sha256_bytes(data: bytes) -> str:
    """Hex sha256 of a binary artifact (``.npz`` corpora and friends)."""
    return hashlib.sha256(data).hexdigest()


def fault_plan_digest(plan) -> "str | None":
    """Canonical digest of a :class:`~repro.faults.plan.FaultPlan`."""
    if plan is None:
        return None
    blob = json.dumps(plan.as_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _environment() -> "dict[str, str]":
    from repro import __version__

    return {
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "package": f"repro {__version__}",
    }


def build_run_manifest(
    *,
    command: str,
    seed: int,
    parameters: "dict[str, object] | None" = None,
    tracer=None,
    metrics=None,
    fault_plan=None,
    artifacts: "dict[str, str] | None" = None,
    artifact_digests: "dict[str, str] | None" = None,
) -> "dict[str, object]":
    """Assemble a schema-valid ``run-manifest`` payload.

    *artifacts* maps artifact names to their serialized text (digested
    here); *artifact_digests* maps names to precomputed sha256 hex
    digests for artifacts whose text is not at hand.
    """
    digests: "dict[str, dict[str, object]]" = {}
    for name, text in sorted((artifacts or {}).items()):
        digests[name] = {"sha256": sha256_text(text), "bytes": len(text.encode())}
    for name, digest in sorted((artifact_digests or {}).items()):
        digests[name] = {"sha256": digest}
    empty_metrics = {"counters": {}, "gauges": {}, "histograms": {}}
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "environment": _environment(),
        "invocation": {
            "command": command,
            "seed": seed,
            "parameters": dict(parameters or {}),
        },
        "fault_plan_digest": fault_plan_digest(fault_plan),
        "stages": tracer.stage_summaries() if tracer is not None else [],
        "span_count": len(tracer.spans) if tracer is not None else 0,
        "metrics": metrics.snapshot() if metrics is not None else empty_metrics,
        "artifacts": digests,
    }


def run_manifest_to_json(payload: "dict[str, object]") -> str:
    """Serialize a manifest payload, re-validating it first."""
    from repro.validate.schema import validate_artifact

    validate_artifact(payload, kind=MANIFEST_KIND)
    return json.dumps(payload, indent=2, sort_keys=True)


def run_manifest_from_json(text: str) -> "dict[str, object]":
    """Parse and validate a serialized manifest."""
    from repro.validate.schema import parse_artifact

    return parse_artifact(text, kind=MANIFEST_KIND)


def write_run_manifest(path: "str | pathlib.Path", payload: "dict[str, object]") -> pathlib.Path:
    """Atomically write a validated manifest to *path*."""
    from repro.io.atomic import atomic_write_text

    return atomic_write_text(path, run_manifest_to_json(payload) + "\n")
