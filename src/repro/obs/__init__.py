"""Observability layer: tracing, metrics, and run manifests.

Zero-dependency instrumentation threaded through the whole stack:

* :mod:`repro.obs.span` — hierarchical :class:`Span`/:class:`Tracer`
  with a context-manager API, monotonic timings, and
  seeded-deterministic span ids (a serial run and a ``--parallel N``
  run produce structurally identical trees);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms populated by the fault injector, the
  tracerouter, the validators, and the perf caches;
* :mod:`repro.obs.manifest` — the ``run-manifest`` artifact exported
  alongside every pipeline output: environment, seeds, fault-plan
  digest, per-stage span summaries, metric snapshot, and artifact
  digests, making any two runs diffable (and CI-gateable).
"""

from repro.obs.manifest import (
    MANIFEST_KIND,
    build_run_manifest,
    fault_plan_digest,
    run_manifest_from_json,
    run_manifest_to_json,
    sha256_bytes,
    sha256_text,
    write_run_manifest,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, labeled
from repro.obs.span import Span, Tracer

__all__ = [
    "MANIFEST_KIND",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "build_run_manifest",
    "fault_plan_digest",
    "run_manifest_from_json",
    "run_manifest_to_json",
    "labeled",
    "sha256_bytes",
    "sha256_text",
    "write_run_manifest",
]
