"""Hierarchical spans: where a run spent its time, as a tree.

A :class:`Tracer` records one run's execution as a tree of
:class:`Span` records — every campaign stage, every inference phase —
with monotonic wall-clock timings and structured attributes.  Span
identifiers are *seeded-deterministic*: they derive from the tracer
seed, the span's creation index, its name, and its parent, never from
wall-clock time or process state.  Two runs that execute the same
stages in the same order therefore produce structurally identical span
trees (same ids, same parents, same attributes), which is what makes a
serial run and a ``--parallel N`` run diffable span-for-span.

Spans are created from the orchestrating thread only.  Worker threads
(the parallel runner's speculation pool) never open spans — that is a
design rule, not an accident: it keeps the tree identical regardless
of scheduling, and it keeps the tracer free of locks.

The pre-existing :class:`~repro.perf.profile.PhaseProfiler` is a view
over this tree: its per-phase totals are :meth:`Tracer.phase_totals`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import time
from dataclasses import dataclass, field


def _span_id(seed: int, index: int, name: str, parent_id: "str | None") -> str:
    """A 16-hex-digit id, a pure function of (seed, index, name, parent)."""
    key = f"{seed}:{index}:{name}:{parent_id or ''}"
    return hashlib.blake2b(key.encode(), digest_size=8).hexdigest()


@dataclass
class Span:
    """One timed operation: name, position in the tree, and attributes."""

    name: str
    span_id: str
    parent_id: "str | None"
    depth: int
    index: int
    attributes: "dict[str, object]" = field(default_factory=dict)
    #: Start time relative to the tracer's origin (informational only;
    #: excluded from the structural view).
    start_offset_s: float = 0.0
    duration_s: float = 0.0
    status: str = "ok"

    def structural_dict(self) -> "dict[str, object]":
        """The timing-free fields — identical across equivalent runs."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "index": self.index,
            "attributes": dict(self.attributes),
            "status": self.status,
        }

    def as_dict(self) -> "dict[str, object]":
        payload = self.structural_dict()
        payload["start_offset_s"] = round(self.start_offset_s, 6)
        payload["duration_s"] = round(self.duration_s, 6)
        return payload


class Tracer:
    """Records spans for one run; the context-manager entry point.

    Usage::

        tracer = Tracer(seed=0)
        with tracer.span("collect", jobs=120) as span:
            ...
            span.attributes["traces"] = 118

    Spans may nest arbitrarily; repeated names accumulate in
    :meth:`phase_totals`.  An exception escaping a span marks it (and
    leaves it in the tree) with ``status="error"`` before propagating.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        #: Every span ever opened, in creation order.
        self.spans: "list[Span]" = []
        self._stack: "list[Span]" = []
        self._origin = time.perf_counter()

    @contextlib.contextmanager
    def span(self, name: str, **attributes: object):
        parent = self._stack[-1] if self._stack else None
        parent_id = parent.span_id if parent is not None else None
        record = Span(
            name=name,
            span_id=_span_id(self.seed, len(self.spans), name, parent_id),
            parent_id=parent_id,
            depth=len(self._stack),
            index=len(self.spans),
            attributes=dict(attributes),
            start_offset_s=time.perf_counter() - self._origin,
        )
        self.spans.append(record)
        self._stack.append(record)
        start = time.perf_counter()
        try:
            yield record
        except BaseException:
            record.status = "error"
            raise
        finally:
            record.duration_s = time.perf_counter() - start
            self._stack.pop()

    def current(self) -> "Span | None":
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def phase_totals(self) -> "dict[str, float]":
        """Top-level span durations summed by name, in first-seen order.

        This is exactly the ``PhaseProfiler`` accounting: child spans
        (campaign stages inside ``collect``) are already included in
        their parent's duration and are not double-counted.
        """
        totals: "dict[str, float]" = {}
        for span in self.spans:
            if span.depth == 0:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals

    def children(self, span: Span) -> "list[Span]":
        return [s for s in self.spans if s.parent_id == span.span_id]

    def _descendant_count(self, span: Span) -> int:
        count = 0
        for child in self.children(span):
            count += 1 + self._descendant_count(child)
        return count

    def stage_summaries(self) -> "list[dict[str, object]]":
        """One row per top-level span: the manifest's ``stages`` field."""
        return [
            {
                "name": span.name,
                "duration_s": round(span.duration_s, 6),
                "spans": 1 + self._descendant_count(span),
                "status": span.status,
            }
            for span in self.spans
            if span.depth == 0
        ]

    def structural_dicts(self) -> "list[dict[str, object]]":
        """All spans, timing-free — the determinism-comparable view."""
        return [span.structural_dict() for span in self.spans]

    def as_dicts(self) -> "list[dict[str, object]]":
        return [span.as_dict() for span in self.spans]

    def to_json(self) -> str:
        """The full span tree as a standalone JSON document."""
        payload = {
            "kind": "span-trace",
            "seed": self.seed,
            "spans": self.as_dicts(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)
