"""repro — reproduction of *Inferring Regional Access Network Topologies*.

This package reproduces the methodology and evaluation of Zhang et al.,
"Inferring Regional Access Network Topologies: Methods and Applications"
(ACM IMC 2021) on a fully simulated measurement substrate.

The package is organized as:

``repro.net``
    Simulated internet primitives: addresses, routers, links, MPLS
    tunnels, reverse DNS, and the packet-forwarding network.
``repro.topology``
    Ground-truth generators for U.S.-style regional access networks:
    cable ISPs (Comcast/Charter-like), a telco (AT&T-like wireline
    network), and mobile carriers, plus synthetic geography.
``repro.measure``
    Measurement tooling: traceroute/ping engines, vantage points,
    WiFi-hotspot wardriving ("McTraceroute"), parcel-shipped phones
    ("ShipTraceroute"), and the scamper energy model.
``repro.alias``
    Alias resolution (Mercator- and MIDAR-style).
``repro.rdns``
    Hostname parsing: per-ISP regexes and CLLI-code geolocation.
``repro.infer``
    The paper's contribution: the two-phase CO-level topology
    inference pipeline, the AT&T pipeline, and the mobile IPv6
    bit-field analysis.
``repro.latency`` / ``repro.energy`` / ``repro.analysis``
    Latency campaigns, the smartphone radio energy model, and
    rendering helpers used by the benchmark harness.
"""

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "CableInferencePipeline": ("repro.infer.pipeline", "CableInferencePipeline"),
    "InferredRegion": ("repro.infer.pipeline", "InferredRegion"),
    "AttInferencePipeline": ("repro.infer.att", "AttInferencePipeline"),
    "MobileIPv6Analyzer": ("repro.infer.mobile_ipv6", "MobileIPv6Analyzer"),
    "SimulatedInternet": ("repro.topology.internet", "SimulatedInternet"),
    "build_default_internet": ("repro.topology.internet", "build_default_internet"),
}


def __getattr__(name: str):
    """Lazily resolve the public API (keeps `import repro` light)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)

__all__ = [
    "AttInferencePipeline",
    "CableInferencePipeline",
    "InferredRegion",
    "MobileIPv6Analyzer",
    "SimulatedInternet",
    "build_default_internet",
    "__version__",
]
