"""The resilient campaign service: crash-safe job queue + executor.

A long-running front end over the measurement/inference stack: jobs
are submitted as validated ``job-spec`` artifacts, persisted in an
append-only journal with atomic snapshots, executed under lease with
heartbeats, retried with seeded-jittered backoff, degraded down the
fidelity ladder when campaigns come back unhealthy, and drained
gracefully on SIGINT/SIGTERM.  SIGKILL at any instant loses nothing:
the next ``repro service run`` replays the journal, reclaims the dead
executor's leases, and resumes interrupted attempts from their
campaign checkpoints.
"""

from repro.service.diff import load_job_corpus, topology_diff, topology_summary
from repro.service.executor import ExecutionResult, JobExecutor
from repro.service.http import ServiceAPI, ServiceHTTPServer
from repro.service.scheduler import Scheduler
from repro.service.service import CampaignService
from repro.service.spec import (
    FIDELITY_LEVELS,
    PIPELINES,
    JobSpec,
    degrade,
    job_id_for,
    job_spec_from_json,
    job_spec_to_json,
    spec_hash,
)
from repro.service.store import (
    TERMINAL_STATES,
    JobRecord,
    JobStore,
    job_record_from_json,
    job_record_to_json,
)

__all__ = [
    "FIDELITY_LEVELS",
    "PIPELINES",
    "TERMINAL_STATES",
    "CampaignService",
    "ExecutionResult",
    "JobExecutor",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "Scheduler",
    "ServiceAPI",
    "ServiceHTTPServer",
    "degrade",
    "load_job_corpus",
    "topology_diff",
    "topology_summary",
    "job_id_for",
    "job_record_from_json",
    "job_record_to_json",
    "job_spec_from_json",
    "job_spec_to_json",
    "spec_hash",
]
