"""Crash-safe on-disk job store: shared append-only journal + snapshot.

The service must never lose a submitted job, no matter where it is
SIGKILLed — and since PR 9, *several* executor processes share one
state directory.  The store gets both from two files and three rules:

* ``journal.jsonl`` — an append-only log of state transitions, one
  JSON object per line, fsynced per append.  Every mutation goes
  through :meth:`JobStore.append`, which writes the line *before*
  applying it to memory — the write-ahead rule.
* ``snapshot.json`` — a validated ``service-snapshot`` artifact written
  atomically (:func:`repro.io.atomic.atomic_write_text`) by
  :meth:`JobStore.compact`; the journal is then truncated.  A crash
  between the two is safe: journal lines at or below the snapshot's
  ``seq`` are skipped on replay.
* **Lock-mediated appends** — writers do not hold the state directory
  for their lifetime.  Every append (and every compaction) runs inside
  a short ``flock`` critical section on ``state_dir/lock``: refresh
  the in-memory view from disk, validate the transition against that
  view, write-ahead, apply, release.  N executors therefore interleave
  at journal-line granularity, never inside one.  Compaction is
  *elected* by the same lock: whichever writer trips the threshold
  while holding it compacts; everyone else detects the truncated
  journal (the snapshot's stat signature changed) and reloads.

Concurrency-safe transitions layer on top as compare-and-swap over the
replayed view: :meth:`try_claim` leases a job only if it is still
queued *after* refreshing under the lock, and returns a **fencing
token** (the ``start`` entry's journal seq).  :meth:`try_heartbeat` and
:meth:`settle` re-validate ``(owner, token)`` under the lock before
appending, so an executor whose lease was reclaimed after expiry can
never extend, complete, or fail the job out from under the new owner —
its appends are refused *before* they reach the journal, which keeps
replay deterministic: every journal line is a valid transition.

On restart :meth:`JobStore.open` loads the snapshot (if any) and
replays the journal tail.  A **torn final line** — the half-written
append of a crashed process — is expected damage: a writable open (or
refresh) truncates it under the lock; a ``readonly`` open repairs it
*in memory only* and never rewrites the journal.  A corrupt line
*before* the tail, or a corrupt snapshot, is real corruption and
raises :class:`~repro.errors.ServiceError` (the CLI surfaces it as a
one-line ``error:`` and exit 3).

Replay is deterministic because every journal op carries **all** the
data its transition needs (artifact digests, backoff deadlines, lease
expiries); applying an op never consults the wall clock or any state
outside the record it names.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field

try:  # pragma: no cover - always present on the linux CI image
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None

from repro.errors import ServiceError
from repro.io.atomic import atomic_write_text
from repro.service.spec import JobSpec, job_id_for, spec_hash
from repro.validate.schema import (
    ARTIFACT_VERSIONS,
    validate_artifact,
)

#: Journal appends between automatic compactions.
COMPACT_EVERY = 200

#: Per-record event-ring size: enough for every attempt of a bounded
#: retry budget with heartbeats, small enough to keep snapshots lean.
EVENTS_KEEP = 100

#: How many times a readonly open re-reads when a compaction races it.
_READONLY_RETRIES = 5

#: Job states.  ``queued`` and ``running`` are live; ``done`` and
#: ``failed`` are terminal.
STATES = ("queued", "running", "done", "failed")
TERMINAL_STATES = ("done", "failed")

#: Journal-entry fields folded into the per-record event detail string.
_EVENT_DETAIL_FIELDS = ("owner", "fidelity", "outcome", "reason", "error")


@dataclass
class JobRecord:
    """One job's full lifecycle, serializable as a ``job-record``."""

    job_id: str
    spec: JobSpec
    spec_hash: str
    state: str = "queued"
    fidelity: str = "full"
    attempts: int = 0
    attempt_log: "list[dict]" = field(default_factory=list)
    not_before: float = 0.0
    lease: "dict | None" = None
    artifacts: "dict[str, dict]" = field(default_factory=dict)
    failure: "dict | None" = None
    submitted_seq: int = 0
    dedup_count: int = 0
    #: Bounded ring of journal events touching this job — the HTTP
    #: events endpoint's cursor source.  Survives compaction because it
    #: rides the record into every snapshot.
    events: "list[dict]" = field(default_factory=list)

    # ------------------------------------------------------------------
    def open_attempt(self) -> "dict | None":
        """The in-flight attempt entry, if one is open."""
        if self.attempt_log and self.attempt_log[-1]["finished_at"] is None:
            return self.attempt_log[-1]
        return None

    def lease_expired(self, now: float) -> bool:
        return self.lease is not None and self.lease["expires_at"] <= now

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------
    def as_dict(self) -> "dict[str, object]":
        """The validated ``job-record`` artifact payload."""
        return {
            "schema": ARTIFACT_VERSIONS["job-record"],
            "kind": "job-record",
            "job_id": self.job_id,
            "spec_hash": self.spec_hash,
            "spec": self.spec.as_dict(),
            "state": self.state,
            "fidelity": self.fidelity,
            "attempts": self.attempts,
            "attempt_log": [dict(entry) for entry in self.attempt_log],
            "not_before": self.not_before,
            "lease": dict(self.lease) if self.lease is not None else None,
            "artifacts": {
                name: dict(meta) for name, meta in sorted(self.artifacts.items())
            },
            "failure": dict(self.failure) if self.failure is not None else None,
            "submitted_seq": self.submitted_seq,
            "dedup_count": self.dedup_count,
            "events": [dict(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: "dict[str, object]") -> "JobRecord":
        validate_artifact(payload, kind="job-record")
        return cls(
            job_id=payload["job_id"],
            spec=JobSpec.from_dict(payload["spec"]),
            spec_hash=payload["spec_hash"],
            state=payload["state"],
            fidelity=payload["fidelity"],
            attempts=payload["attempts"],
            attempt_log=[dict(entry) for entry in payload["attempt_log"]],
            not_before=payload["not_before"],
            lease=dict(payload["lease"]) if payload["lease"] else None,
            artifacts={k: dict(v) for k, v in payload["artifacts"].items()},
            failure=dict(payload["failure"]) if payload["failure"] else None,
            submitted_seq=payload["submitted_seq"],
            dedup_count=payload["dedup_count"],
            events=[dict(event) for event in payload.get("events", [])],
        )


def job_record_to_json(record: JobRecord) -> str:
    """Serialize a record as a validated ``job-record`` artifact."""
    return json.dumps(record.as_dict(), indent=2, sort_keys=True)


def job_record_from_json(text: str) -> JobRecord:
    from repro.validate.schema import parse_artifact

    return JobRecord.from_dict(parse_artifact(text, kind="job-record"))


def _stat_sig(path: pathlib.Path) -> "tuple[int, int, int] | None":
    """A cheap change-detection signature (inode, size, mtime)."""
    try:
        st = os.stat(path)
    except FileNotFoundError:
        return None
    return (st.st_ino, st.st_size, st.st_mtime_ns)


class JobStore:
    """The service's persistent state: jobs, rejections, the journal.

    All mutation goes through :meth:`append` (optionally wrapped in a
    :meth:`transact` critical section for compare-and-swap sequences);
    read access goes through :attr:`jobs` and the query helpers.  Any
    number of writing processes may share one state directory — the
    per-append lock serializes them — and any number of ``readonly``
    inspectors may read concurrently without ever taking the lock.
    Cross-process submission rides the ``inbox/`` spool directory or
    the journal, dedup makes both idempotent.
    """

    def __init__(self, state_dir: "str | pathlib.Path",
                 clock=time.time, readonly: bool = False) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.journal_path = self.state_dir / "journal.jsonl"
        self.snapshot_path = self.state_dir / "snapshot.json"
        self.inbox_dir = self.state_dir / "inbox"
        self.jobs_dir = self.state_dir / "jobs"
        self.clock = clock
        self.readonly = readonly
        self.jobs: "dict[str, JobRecord]" = {}
        self.rejected: "list[dict]" = []
        self.seq = 0
        self._journal_fd = None
        self._since_compact = 0
        #: Reentrant: the heartbeat thread appends while the main
        #: thread may be mid-append/compact.
        self._mutex = threading.RLock()
        self._lock_fd = None
        self._lock_depth = 0
        self._snapshot_sig: "tuple | None" = None
        self._journal_sig: "tuple | None" = None
        self._executor_lock_fd = None

    # ------------------------------------------------------------------
    # Load / replay
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, state_dir: "str | pathlib.Path",
             clock=time.time, readonly: bool = False) -> "JobStore":
        """Load (or initialize) the store at *state_dir*.

        Replays snapshot + journal; corruption anywhere but the torn
        final journal line raises :class:`ServiceError`.  A writable
        open creates the state layout and repairs a torn journal tail
        under the append lock.  ``readonly`` opens (status inspection,
        the HTTP API) create nothing, never take the lock, and never
        mutate anything on disk — including the torn-tail repair, which
        happens in memory only.
        """
        store = cls(state_dir, clock=clock, readonly=readonly)
        if readonly:
            store._reload_readonly()
            return store
        store.state_dir.mkdir(parents=True, exist_ok=True)
        store.inbox_dir.mkdir(exist_ok=True)
        store.jobs_dir.mkdir(exist_ok=True)
        with store._mutex, store._locked():
            store._reload()
        return store

    # -- locking -------------------------------------------------------
    @contextlib.contextmanager
    def _locked(self):
        """The cross-process append lock; reentrant within a process.

        ``flock`` locks belong to the open file description, so thread
        mutual exclusion must come from :attr:`_mutex` — every caller
        holds it around this context.  The kernel releases the lock on
        SIGKILL, so a dead writer never wedges the state directory.
        """
        if self.readonly:
            raise ServiceError("job store was opened read-only")
        if fcntl is None:  # pragma: no cover - non-posix fallback
            yield
            return
        if self._lock_fd is None:
            self._lock_fd = os.open(
                self.state_dir / "lock", os.O_CREAT | os.O_RDWR, 0o644
            )
        self._lock_depth += 1
        try:
            if self._lock_depth == 1:
                fcntl.flock(self._lock_fd, fcntl.LOCK_EX)
            yield
        finally:
            self._lock_depth -= 1
            if self._lock_depth == 0:
                fcntl.flock(self._lock_fd, fcntl.LOCK_UN)

    def acquire_executor_lock(self, executor_id: str) -> None:
        """Claim this executor id for the lifetime of the process.

        Guards two invariants the lease protocol leans on: no two live
        processes share an executor id (so own-lease recovery at
        startup is safe — the previous incarnation provably died), and
        a restart of the same id can immediately reclaim its own
        leases.  Released by :meth:`close` or process death.
        """
        if fcntl is None:  # pragma: no cover - non-posix fallback
            return
        lock_dir = self.state_dir / "executors"
        lock_dir.mkdir(exist_ok=True)
        fd = os.open(lock_dir / f"{executor_id}.lock",
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise ServiceError(
                f"executor id {executor_id!r} is already running against "
                f"{self.state_dir}"
            ) from None
        self._executor_lock_fd = fd

    # -- refresh -------------------------------------------------------
    def _state_changed(self) -> bool:
        return (
            _stat_sig(self.snapshot_path) != self._snapshot_sig
            or _stat_sig(self.journal_path) != self._journal_sig
        )

    def _reload(self) -> None:
        """Rebuild the in-memory view from disk (caller holds the lock).

        The journal between compactions is bounded (``COMPACT_EVERY``
        lines), so a full rebuild is cheap and — unlike incremental
        tailing — trivially immune to the compaction-truncates-the-file
        race.
        """
        self.jobs = {}
        self.rejected = []
        self.seq = 0
        self._snapshot_sig = _stat_sig(self.snapshot_path)
        snapshot_seq = self._load_snapshot()
        self._replay_journal(snapshot_seq)
        self._journal_sig = _stat_sig(self.journal_path)

    def _reload_readonly(self) -> None:
        """Rebuild without the lock, retrying across a racing compaction.

        A reader can catch compaction between its snapshot read and its
        journal read (stale snapshot + already-truncated journal).  The
        snapshot's stat signature changing across the reload detects
        exactly that window; a bounded retry converges because
        compactions are rare relative to a read.
        """
        for _ in range(_READONLY_RETRIES):
            before = _stat_sig(self.snapshot_path)
            self._reload()
            if _stat_sig(self.snapshot_path) == before:
                return
        raise ServiceError(
            f"state dir {self.state_dir} is compacting faster than it "
            "can be read"
        )

    def refresh(self) -> None:
        """Sync the in-memory view with other writers' appends.

        Cheap when nothing changed (two ``stat`` calls).  Writable
        stores refresh under the lock; readonly stores use the
        compaction-retry read path.
        """
        if self.readonly:
            if self._state_changed():
                self._reload_readonly()
            return
        with self._mutex:
            if not self._state_changed():
                return
            with self._locked():
                if self._state_changed():
                    self._reload()

    def _load_snapshot(self) -> int:
        if not self.snapshot_path.exists():
            return 0
        try:
            payload = json.loads(self.snapshot_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"corrupt service snapshot {self.snapshot_path}: {exc}"
            ) from exc
        try:
            validate_artifact(payload, kind="service-snapshot")
            self.jobs = {
                job_id: JobRecord.from_dict(record)
                for job_id, record in payload["jobs"].items()
            }
        except ServiceError:
            raise
        except Exception as exc:  # SchemaError and friends
            raise ServiceError(
                f"corrupt service snapshot {self.snapshot_path}: {exc}"
            ) from exc
        self.rejected = [dict(entry) for entry in payload["rejected"]]
        self.seq = payload["seq"]
        return payload["seq"]

    def _replay_journal(self, snapshot_seq: int) -> None:
        """Apply journal lines past the snapshot; truncate a torn tail."""
        if not self.journal_path.exists():
            return
        data = self.journal_path.read_bytes()
        offset = 0
        valid_end = 0
        lines = data.split(b"\n")
        for index, raw in enumerate(lines):
            line_start = offset
            offset += len(raw) + 1
            text = raw.strip()
            if not text:
                continue
            is_tail = all(not rest.strip() for rest in lines[index + 1:])
            try:
                entry = json.loads(text)
                if not isinstance(entry, dict) or "seq" not in entry \
                        or "op" not in entry:
                    raise ValueError("not a journal entry")
            except ValueError as exc:
                if is_tail:
                    # The torn append of a killed process: expected
                    # damage, dropped.  valid_end already marks the last
                    # good line; the append path truncates to it.
                    break
                raise ServiceError(
                    f"corrupt service journal {self.journal_path} "
                    f"line {index + 1}: {exc}"
                ) from exc
            valid_end = line_start + len(raw) + 1
            if entry["seq"] <= snapshot_seq:
                continue
            self._apply(entry)
            self.seq = entry["seq"]
        if valid_end < len(data) and not self.readonly:
            # Caller holds the append lock, so the torn bytes belong to
            # a provably dead writer (live appends are serialized and
            # fsynced before the lock is released).
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(valid_end)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _fd(self):
        """The append handle, reopened when compaction replaced the file."""
        if self._journal_fd is not None:
            try:
                same = os.fstat(self._journal_fd.fileno()).st_ino \
                    == os.stat(self.journal_path).st_ino
            except FileNotFoundError:
                same = False
            if not same:
                self._journal_fd.close()
                self._journal_fd = None
        if self._journal_fd is None:
            self._journal_fd = open(self.journal_path, "a")
        return self._journal_fd

    @contextlib.contextmanager
    def transact(self):
        """A compare-and-swap critical section over the fresh view.

        Holds the cross-process append lock, refreshes the in-memory
        view, and yields; every check made and :meth:`append` issued
        inside the block is atomic with respect to other writers.
        """
        with self._mutex:
            with self._locked():
                if self._state_changed():
                    self._reload()
                yield self

    def append(self, op: str, **fields) -> "dict[str, object]":
        """Write one journal line (write-ahead) and apply it.

        Runs in its own critical section when not already inside a
        :meth:`transact` block (the lock is reentrant), so the seq it
        assigns is globally unique across all writing processes.
        """
        if self.readonly:
            raise ServiceError("job store was opened read-only")
        with self._mutex:
            with self._locked():
                if self._state_changed():
                    self._reload()
                self.seq += 1
                entry = {
                    "seq": self.seq, "op": op, "at": float(self.clock()),
                    **fields,
                }
                handle = self._fd()
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
                self._apply(entry)
                self._journal_sig = _stat_sig(self.journal_path)
                self._since_compact += 1
                if self._since_compact >= COMPACT_EVERY:
                    self.compact()
                return entry

    def compact(self) -> None:
        """Snapshot atomically, then truncate the journal.

        Crash-safe in both orders of failure: an old journal's lines
        replay as no-ops below the snapshot seq, and a missing snapshot
        just means a longer replay.  Election to exactly one writer is
        by the append lock: whoever holds it compacts; every other
        writer sees the snapshot signature change and reloads instead.
        """
        if self.readonly:
            raise ServiceError("job store was opened read-only")
        with self._mutex:
            with self._locked():
                if self._state_changed():
                    self._reload()
                payload = {
                    "schema": ARTIFACT_VERSIONS["service-snapshot"],
                    "kind": "service-snapshot",
                    "seq": self.seq,
                    "jobs": {
                        job_id: record.as_dict()
                        for job_id, record in sorted(self.jobs.items())
                    },
                    "rejected": list(self.rejected),
                }
                atomic_write_text(
                    self.snapshot_path, json.dumps(payload, sort_keys=True)
                )
                if self._journal_fd is not None:
                    self._journal_fd.close()
                    self._journal_fd = None
                atomic_write_text(self.journal_path, "")
                self._snapshot_sig = _stat_sig(self.snapshot_path)
                self._journal_sig = _stat_sig(self.journal_path)
                self._since_compact = 0

    def close(self) -> None:
        with self._mutex:
            if self._journal_fd is not None:
                self._journal_fd.close()
                self._journal_fd = None
        if self._lock_fd is not None:
            os.close(self._lock_fd)
            self._lock_fd = None
        if self._executor_lock_fd is not None:
            if fcntl is not None:  # pragma: no branch
                fcntl.flock(self._executor_lock_fd, fcntl.LOCK_UN)
            os.close(self._executor_lock_fd)
            self._executor_lock_fd = None

    # ------------------------------------------------------------------
    # Compare-and-swap transitions (the multi-executor protocol)
    # ------------------------------------------------------------------
    def try_claim(self, job_id: str, owner: str, expires_at: float,
                  now: float) -> "int | None":
        """Lease *job_id* if it is still claimable; returns the token.

        The claim is compare-and-swap over the refreshed view: under
        the lock the job must still be ``queued`` with its backoff
        deadline passed.  The returned fencing token (the ``start``
        entry's seq) must accompany every later heartbeat/settle for
        this attempt.  ``None`` means another executor won the race.
        """
        with self.transact():
            record = self.jobs.get(job_id)
            if record is None or record.state != "queued" \
                    or record.not_before > now:
                return None
            entry = self.append(
                "start", job_id=job_id, owner=owner,
                expires_at=expires_at, fidelity=record.fidelity,
            )
            return entry["seq"]

    def lease_valid(self, job_id: str, owner: str, token: int) -> bool:
        """Whether ``(owner, token)`` still holds the job's lease.

        Only meaningful against a fresh view — call inside
        :meth:`transact` (or right after a CAS helper refreshed).
        """
        record = self.jobs.get(job_id)
        return (
            record is not None
            and record.state == "running"
            and record.lease is not None
            and record.lease["owner"] == owner
            and record.lease.get("token") == token
        )

    def try_heartbeat(self, job_id: str, owner: str, token: int,
                      expires_at: float) -> bool:
        """Extend the lease iff it is still ours; False means it was lost."""
        with self.transact():
            if not self.lease_valid(job_id, owner, token):
                return False
            self.append("heartbeat", job_id=job_id, expires_at=expires_at)
            return True

    def settle(self, job_id: str, owner: str, token: int, op: str,
               **fields) -> bool:
        """Close our attempt with *op* iff the lease is still ours.

        The fencing check makes a zombie executor (lease reclaimed
        after expiry) unable to record ``done``/``retry``/``failed``/
        ``release`` over the new owner's attempt.
        """
        with self.transact():
            if not self.lease_valid(job_id, owner, token):
                return False
            self.append(op, job_id=job_id, **fields)
            return True

    # ------------------------------------------------------------------
    # The state machine
    # ------------------------------------------------------------------
    def _apply(self, entry: "dict[str, object]") -> None:
        op = entry["op"]
        handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
        if handler is None:
            raise ServiceError(f"unknown journal op {op!r} (seq {entry['seq']})")
        handler(entry)
        job_id = entry.get("job_id")
        record = self.jobs.get(job_id) if isinstance(job_id, str) else None
        if record is not None:
            record.events.append(_event_for(entry))
            del record.events[:-EVENTS_KEEP]

    def _record(self, entry) -> JobRecord:
        record = self.jobs.get(entry["job_id"])
        if record is None:
            raise ServiceError(
                f"journal names unknown job {entry['job_id']!r} "
                f"(seq {entry['seq']})"
            )
        return record

    def _op_submit(self, entry) -> None:
        spec = JobSpec.from_dict(entry["spec"])
        record = JobRecord(
            job_id=entry["job_id"],
            spec=spec,
            spec_hash=entry["spec_hash"],
            state="queued",
            fidelity=spec.fidelity,
            not_before=entry.get("not_before", 0.0),
            submitted_seq=entry["seq"],
        )
        self.jobs[record.job_id] = record

    def _op_dedup(self, entry) -> None:
        self._record(entry).dedup_count += 1

    def _op_reject(self, entry) -> None:
        self.rejected.append({
            "spec_hash": entry["spec_hash"],
            "reason": entry["reason"],
            "at": entry["at"],
        })

    def _op_start(self, entry) -> None:
        record = self._record(entry)
        record.state = "running"
        record.attempts += 1
        record.fidelity = entry["fidelity"]
        record.lease = {
            "owner": entry["owner"],
            "expires_at": entry["expires_at"],
            # The fencing token: the seq of this very entry, so replay
            # reconstructs it without a second source of truth.
            "token": entry["seq"],
        }
        record.attempt_log.append({
            "attempt": record.attempts,
            "executor": entry["owner"],
            "fidelity": entry["fidelity"],
            "outcome": "running",
            "error": None,
            "degraded": False,
            "started_at": entry["at"],
            "finished_at": None,
        })

    def _op_heartbeat(self, entry) -> None:
        record = self._record(entry)
        if record.lease is not None:
            record.lease["expires_at"] = entry["expires_at"]

    def _close_attempt(self, record, entry, outcome, error=None,
                       degraded=False) -> None:
        attempt = record.open_attempt()
        if attempt is not None:
            attempt["outcome"] = outcome
            attempt["error"] = error
            attempt["degraded"] = bool(degraded)
            attempt["finished_at"] = entry["at"]
        record.lease = None

    def _op_done(self, entry) -> None:
        record = self._record(entry)
        self._close_attempt(record, entry, "done",
                            degraded=entry.get("degraded", False))
        record.state = "done"
        record.artifacts = {
            name: dict(meta) for name, meta in entry["artifacts"].items()
        }

    def _op_retry(self, entry) -> None:
        record = self._record(entry)
        self._close_attempt(record, entry, entry.get("outcome", "error"),
                            error=entry.get("error"),
                            degraded=entry.get("degraded", False))
        record.state = "queued"
        record.not_before = entry["not_before"]
        record.fidelity = entry["fidelity"]

    def _op_failed(self, entry) -> None:
        record = self._record(entry)
        self._close_attempt(record, entry, "error", error=entry.get("error"))
        record.state = "failed"
        record.failure = {
            "reason": entry["reason"],
            "artifact": entry.get("artifact"),
        }
        record.artifacts = {
            name: dict(meta)
            for name, meta in entry.get("artifacts", {}).items()
        }

    def _op_release(self, entry) -> None:
        record = self._record(entry)
        self._close_attempt(record, entry, "interrupted",
                            error=entry.get("reason"))
        record.state = "queued"
        record.not_before = entry.get("not_before", 0.0)

    # ------------------------------------------------------------------
    # Submission / queries
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> "tuple[JobRecord, bool]":
        """Admit *spec*; returns ``(record, created)``.

        An identical spec (by content hash) dedupes to the existing
        job — including a finished one, whose cached artifacts satisfy
        the resubmission for free.  The existence check and the journal
        write share one critical section, so two executors ingesting
        the same spool file concurrently still create exactly one job.
        """
        with self.transact():
            digest = spec_hash(spec)
            job_id = job_id_for(spec)
            existing = self.jobs.get(job_id)
            if existing is not None:
                self.append("dedup", job_id=job_id)
                return self.jobs[job_id], False
            self.append("submit", job_id=job_id, spec_hash=digest,
                        spec=spec.as_dict(), not_before=0.0)
            return self.jobs[job_id], True

    def reject(self, spec: JobSpec, reason: str) -> None:
        self.append("reject", spec_hash=spec_hash(spec), reason=reason)

    def queued(self) -> "list[JobRecord]":
        return [r for r in self.jobs.values() if r.state == "queued"]

    def running(self) -> "list[JobRecord]":
        return [r for r in self.jobs.values() if r.state == "running"]

    def live_count(self) -> int:
        """Jobs occupying queue capacity (non-terminal)."""
        return sum(1 for r in self.jobs.values() if not r.terminal)

    def all_terminal(self) -> bool:
        return all(r.terminal for r in self.jobs.values())

    def job_dir(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / job_id


def _event_for(entry: "dict[str, object]") -> "dict[str, object]":
    """The compact per-record event derived from a journal entry."""
    event = {"seq": entry["seq"], "op": entry["op"], "at": entry["at"]}
    parts = [
        f"{name}={entry[name]}" for name in _EVENT_DETAIL_FIELDS
        if entry.get(name) not in (None, "")
    ]
    if parts:
        event["detail"] = " ".join(parts)
    return event
