"""Job execution: one attempt of one job, through the campaign stack.

The executor is deliberately thin: it maps a :class:`JobSpec` plus a
fidelity level onto the existing measurement machinery —
:class:`~repro.measure.runner.CampaignRunner` serially, or
:class:`~repro.measure.supervisor.SupervisedCampaignRunner` when the
spec asks for workers — and exports the resulting artifacts atomically
into the job's directory.  Everything that makes execution resumable
already exists one layer down: the campaign checkpoint lives at
``jobs/<id>/checkpoint.json``, so an attempt interrupted by a crash (or
a reclaimed lease) resumes mid-campaign instead of restarting, and the
event-keyed fault plan guarantees the resumed corpus converges on the
uninterrupted one.

Every attempt writes a ``health.json`` (campaign-health artifact) and,
when the supervised runner quarantined poison shards, a validated
``quarantine.json`` the job record links to.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.errors import CheckpointError, ServiceError
from repro.faults import FaultInjector, FaultPlan
from repro.io.atomic import atomic_write_text
from repro.io.checkpoint import CampaignCheckpoint, trace_to_dict
from repro.obs import sha256_text
from repro.service.spec import JobSpec
from repro.validate.quarantine import quarantine_report_to_json

#: Fidelity → fraction of the spec's nominal workload that runs.
_FIDELITY_SCALE = {"full": 1.0, "reduced": 0.5, "minimal": 0.25}


@dataclass
class ExecutionResult:
    """What one successful attempt produced."""

    artifacts: "dict[str, dict]" = field(default_factory=dict)
    degraded: bool = False
    summary: str = ""


def _scaled(count: int, fidelity: str, floor: int = 1) -> int:
    return max(floor, int(count * _FIDELITY_SCALE[fidelity]))


def _load_or_new_checkpoint(path: pathlib.Path) -> CampaignCheckpoint:
    """Resume the job's campaign checkpoint; start fresh if corrupt.

    A corrupt checkpoint is attempt-local damage, not poison: it is
    removed so the retry restarts the campaign from zero, and the
    attempt is charged via :class:`ServiceError`.
    """
    if not path.exists():
        return CampaignCheckpoint(path)
    try:
        return CampaignCheckpoint.load(path)
    except CheckpointError as exc:
        path.unlink(missing_ok=True)
        raise ServiceError(
            f"job checkpoint was corrupt and has been discarded: {exc}"
        ) from exc


class JobExecutor:
    """Executes job attempts into per-job artifact directories."""

    def __init__(self, jobs_dir: "str | pathlib.Path", obs=None,
                 metrics=None) -> None:
        self.jobs_dir = pathlib.Path(jobs_dir)
        self.obs = obs
        self.metrics = metrics

    # ------------------------------------------------------------------
    def execute(self, job_id: str, spec: JobSpec, fidelity: str,
                attempt: int,
                stage_dir: "pathlib.Path | None" = None) -> ExecutionResult:
        """Run one attempt; raises on failure (the service charges it).

        *stage_dir* is where artifact files land — a per-executor
        staging directory when several executors share the job store
        (the service promotes it under the append lock after checking
        its fencing token), or the job directory itself when absent.
        The campaign checkpoint always stays in the shared job
        directory so a retry by *any* executor resumes mid-campaign.
        """
        fail_until = int(spec.chaos.get("fail_attempts", 0))
        if attempt <= fail_until:
            raise ServiceError(
                f"injected chaos failure (attempt {attempt}/{fail_until})"
            )
        from repro.perf.cache import clear_module_memos

        job_dir = self.jobs_dir / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        if stage_dir is None:
            stage_dir = job_dir
        else:
            # A previous abandoned attempt's leftovers must not leak
            # into this attempt's artifact set.
            import shutil

            shutil.rmtree(stage_dir, ignore_errors=True)
            stage_dir.mkdir(parents=True, exist_ok=True)
        # The normalize/p2p memos are process-wide and keyed by address
        # string: in a long-running service each job's address space
        # would accrete forever.  Jobs never share addresses by design
        # (seeds differ), so drop the memos between attempts.
        clear_module_memos()
        try:
            if spec.pipeline == "toy":
                return self._execute_toy(job_id, spec, fidelity, job_dir,
                                         stage_dir)
            return self._execute_cable(job_id, spec, fidelity, job_dir,
                                       stage_dir)
        finally:
            clear_module_memos()

    # ------------------------------------------------------------------
    def _write(self, job_dir: pathlib.Path, name: str, text: str,
               artifacts: "dict[str, dict]") -> None:
        atomic_write_text(job_dir / name, text)
        artifacts[name] = {"sha256": sha256_text(text), "bytes": len(text)}

    def _export_campaign(self, job_dir: pathlib.Path, runner,
                         artifacts: "dict[str, dict]") -> None:
        """Health always; quarantine when poison shards were recorded."""
        from repro.io.export import campaign_health_to_json

        self._write(job_dir, "health.json",
                    campaign_health_to_json(runner.health), artifacts)
        quarantine = getattr(runner, "quarantine", None)
        if quarantine is not None and quarantine:
            self._write(job_dir, "quarantine.json",
                        quarantine_report_to_json(quarantine), artifacts)

    def _write_corpus(self, stage_dir: pathlib.Path, spec: JobSpec,
                      traces, artifacts: "dict[str, dict]") -> None:
        """Export the trace corpus in the spec's chosen format.

        ``json`` writes the legacy sorted-JSON trace list; ``binary``
        writes the columnar ``.npz`` container from
        :mod:`repro.corpus.binio`, digested over its raw bytes so the
        HTTP artifact endpoint verifies it the same way.
        """
        if spec.corpus_format == "binary":
            from repro.corpus.binio import save_corpus
            from repro.corpus.columnar import TraceCorpus
            from repro.obs import sha256_bytes

            path = stage_dir / "corpus.npz"
            save_corpus(path, TraceCorpus.from_traces(traces))
            data = path.read_bytes()
            artifacts["corpus.npz"] = {
                "sha256": sha256_bytes(data), "bytes": len(data),
            }
            return
        corpus = json.dumps(
            [trace_to_dict(trace) for trace in traces], sort_keys=True
        )
        self._write(stage_dir, "corpus.json", corpus, artifacts)

    def _execute_toy(self, job_id: str, spec: JobSpec, fidelity: str,
                     job_dir: pathlib.Path,
                     stage_dir: pathlib.Path) -> ExecutionResult:
        from repro.measure.runner import CampaignRunner
        from repro.measure.substrates import WorkerSpec, toy_substrate
        from repro.measure.supervisor import SupervisedCampaignRunner

        hosts = max(1, spec.hosts)
        targets = _scaled(min(200, spec.targets), fidelity)
        tracer, vps = toy_substrate(hosts=hosts)
        plan = FaultPlan(**spec.faults) if spec.faults else None
        if plan is not None and plan.active:
            tracer.network.attach_faults(FaultInjector(plan))
        checkpoint_path = job_dir / "checkpoint.json"
        resumed = checkpoint_path.exists()
        checkpoint = _load_or_new_checkpoint(checkpoint_path)
        options = {
            "obs": self.obs,
            "metrics": self.metrics,
            "checkpoint_every": max(1, targets // 2),
        }
        runner_cls = CampaignRunner
        if spec.workers > 1:
            runner_cls = SupervisedCampaignRunner
            options["worker_spec"] = WorkerSpec(
                "repro.measure.substrates:toy_substrate", {"hosts": hosts},
            )
            options["workers"] = spec.workers
            options["shard_size"] = max(1, targets // 2)
        if resumed:
            # The canonical resume path: restores health counters and
            # the injector's per-VP probe state, so dropout thresholds
            # fire where the interrupted attempt left them.
            runner = runner_cls.resumed(
                tracer, list(vps.values()), checkpoint, **options
            )
        else:
            runner = runner_cls(
                tracer, list(vps.values()), checkpoint=checkpoint, **options
            )
        jobs = [
            (vp, f"198.18.5.{index}")
            for vp in vps.values()
            for index in range(1, targets + 1)
        ]
        traces = runner.run(jobs, stage="campaign")
        artifacts: "dict[str, dict]" = {}
        self._write_corpus(stage_dir, spec, traces, artifacts)
        self._export_campaign(stage_dir, runner, artifacts)
        return ExecutionResult(
            artifacts=artifacts,
            degraded=runner.health.degraded,
            summary=runner.health.summary(),
        )

    def _execute_cable(self, job_id: str, spec: JobSpec, fidelity: str,
                       job_dir: pathlib.Path,
                       stage_dir: pathlib.Path) -> ExecutionResult:
        from repro.infer.pipeline import CableInferencePipeline
        from repro.io.export import region_to_json
        from repro.measure.substrates import WorkerSpec
        from repro.topology.internet import SimulatedInternet

        internet = SimulatedInternet(
            seed=spec.seed, include_telco=False, include_mobile=False,
        )
        isp = getattr(internet, spec.isp, None)
        if isp is None:
            raise ServiceError(f"unknown ISP {spec.isp!r}") from None
        worker_spec = None
        if spec.workers > 1:
            worker_spec = WorkerSpec(
                "repro.measure.substrates:cable_substrate",
                {"seed": spec.seed, "include_telco": False,
                 "include_mobile": False},
            )
        plan = FaultPlan(**spec.faults) if spec.faults else None
        checkpoint_path = job_dir / "checkpoint.json"
        # Discard-if-corrupt guard: a damaged checkpoint costs this
        # attempt, not the job.
        _load_or_new_checkpoint(checkpoint_path)
        pipeline = CableInferencePipeline(
            internet.network, isp, list(internet.build_standard_vps()),
            sweep_vps=_scaled(spec.sweep_vps, fidelity, floor=2),
            faults=plan,
            checkpoint_path=checkpoint_path,
            resume=checkpoint_path.exists(),
            workers=spec.workers, worker_spec=worker_spec,
            trace_seed=spec.seed,
        )
        result = pipeline.run()
        artifacts: "dict[str, dict]" = {}
        for name, region in sorted(result.regions.items()):
            self._write(stage_dir, f"{spec.isp}-{name}.json",
                        region_to_json(region), artifacts)
        # The collected corpus ships alongside the inferred regions so
        # downstream consumers (diffing, the streaming incremental
        # engine's ingest_from_store) can replay the raw observations.
        self._write_corpus(stage_dir, spec, result.traces, artifacts)
        if result.quarantine is not None and result.quarantine:
            self._write(stage_dir, "quarantine.json",
                        quarantine_report_to_json(result.quarantine),
                        artifacts)
        health = result.health
        if health is not None:
            from repro.io.export import campaign_health_to_json

            self._write(stage_dir, "health.json",
                        campaign_health_to_json(health), artifacts)
        return ExecutionResult(
            artifacts=artifacts,
            degraded=bool(health.degraded) if health is not None else False,
            summary=health.summary() if health is not None else "",
        )
