"""Cross-version topology diffs over finished jobs' trace corpora.

The paper's longitudinal motivation (§6 and the "Describing and
Simulating Internet Routes" thread in PAPERS.md) is *change*: which
central offices appeared or disappeared between two mapping campaigns,
which adjacencies did.  The service makes that a first-class read-only
query — ``GET /jobs/<a>/diff/<b>`` — computed directly from the
columnar corpus primitives rather than a full inference rerun:

* **COs** are the responding addresses of the corpus
  (:func:`repro.corpus.columnar.responding_address_ids` — in the toy
  and simulated substrates every responding interface belongs to
  exactly one CO, PR 2's B.1 invariant).
* **Links** are the adjacent responding hop pairs
  (:func:`repro.corpus.columnar.adjacent_pair_counts`), the same edge
  evidence the §5.2 adjacency stage votes over.

The result is a validated ``topology-diff`` artifact: stable sorted
lists of added/removed COs and links plus summary counts.
"""

from __future__ import annotations

import json
import pathlib

from repro.corpus.columnar import (
    TraceCorpus,
    adjacent_pair_counts,
    responding_address_ids,
)
from repro.errors import ServiceError
from repro.validate.schema import ARTIFACT_VERSIONS, validate_artifact


def load_job_corpus(job_dir: "str | pathlib.Path", record) -> TraceCorpus:
    """The finished job's trace corpus, whichever format it chose.

    ``corpus.npz`` loads through the schema-validated binary container;
    ``corpus.json`` is the legacy bare trace list, lifted through the
    checkpoint trace codec into a columnar corpus.  A job without a
    corpus artifact (e.g. ``map-cable``, which exports region
    topologies instead) raises :class:`ServiceError`.
    """
    job_dir = pathlib.Path(job_dir)
    if "corpus.npz" in record.artifacts:
        from repro.corpus.binio import load_corpus

        return load_corpus(job_dir / "corpus.npz")
    if "corpus.json" in record.artifacts:
        from repro.io.checkpoint import trace_from_dict

        try:
            payload = json.loads((job_dir / "corpus.json").read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"corrupt corpus artifact for job {record.job_id}: {exc}"
            ) from exc
        if not isinstance(payload, list):
            raise ServiceError(
                f"corrupt corpus artifact for job {record.job_id}: "
                "expected a trace list"
            )
        return TraceCorpus.from_traces(
            [trace_from_dict(entry) for entry in payload]
        )
    raise ServiceError(
        f"job {record.job_id} has no corpus artifact to diff"
    )


def iter_finished_corpora(store, after_seq: int = 0):
    """Yield ``(record, corpus)`` for done jobs with a corpus artifact.

    Jobs stream in submission order (``submitted_seq``), skipping those
    at or below *after_seq* — the cursor contract the bias lab's
    incremental ingestion uses to resume where it left off.  Jobs
    without a corpus (e.g. ``map-cable``) are silently skipped; a *done*
    job whose corpus is corrupt still raises, as in the diff endpoint.
    """
    records = sorted(store.jobs.values(), key=lambda r: r.submitted_seq)
    for record in records:
        if record.submitted_seq <= after_seq or record.state != "done":
            continue
        if (
            "corpus.npz" not in record.artifacts
            and "corpus.json" not in record.artifacts
        ):
            continue
        yield record, load_job_corpus(store.job_dir(record.job_id), record)


def topology_summary(
    corpus: TraceCorpus,
) -> "tuple[list[str], list[tuple[str, str]]]":
    """The corpus's (COs, links) as address strings.

    COs sort lexically; links are unique directed adjacent responding
    pairs, sorted, with the final-echo pair excluded (the probe target
    answering for itself is not an infrastructure link).
    """
    table = corpus.addresses
    cos = sorted(
        table[int(addr_id)] for addr_id in responding_address_ids(corpus)
    )
    links = sorted({
        (table[int(first)], table[int(second)])
        for first, second, _count in
        adjacent_pair_counts(corpus, exclude_final_echo=True)
    })
    return cos, links


def topology_diff(base_job: str, other_job: str, base: TraceCorpus,
                  other: TraceCorpus) -> "dict[str, object]":
    """A validated ``topology-diff`` artifact: other relative to base."""
    base_cos, base_links = topology_summary(base)
    other_cos, other_links = topology_summary(other)
    base_co_set, other_co_set = set(base_cos), set(other_cos)
    base_link_set, other_link_set = set(base_links), set(other_links)
    payload = {
        "schema": ARTIFACT_VERSIONS["topology-diff"],
        "kind": "topology-diff",
        "base_job": base_job,
        "other_job": other_job,
        "cos_added": sorted(other_co_set - base_co_set),
        "cos_removed": sorted(base_co_set - other_co_set),
        "links_added": [
            list(pair) for pair in sorted(other_link_set - base_link_set)
        ],
        "links_removed": [
            list(pair) for pair in sorted(base_link_set - other_link_set)
        ],
        "counts": {
            "base_cos": len(base_cos),
            "other_cos": len(other_cos),
            "base_links": len(base_links),
            "other_links": len(other_links),
        },
    }
    return validate_artifact(payload, kind="topology-diff")
