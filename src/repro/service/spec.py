"""Mapping job specifications: what the campaign service executes.

A :class:`JobSpec` is the service's unit of demand: "map this ISP (or
this synthetic substrate) at this fidelity, with this fault/chaos
profile".  Specs are **content-addressed**: :func:`spec_hash` digests
the canonical JSON of every field that can change the produced
artifacts, so two submissions of the same work share one job, one
campaign checkpoint, and one artifact set — the dedupe that makes
"resubmit the whole portfolio after a crash" free.

Two pipelines are supported:

``toy``
    A traceroute campaign over the diamond substrate
    (:func:`repro.measure.substrates.toy_substrate`) exporting the
    trace corpus and campaign health.  Small enough for soak tests to
    run dozens of jobs; deterministic in (seed, targets, faults).
``map-cable``
    The full §5 cable pipeline against a simulated ISP, exporting the
    region topologies exactly as ``repro map-cable --json-dir`` does.

Fidelity is a named ladder (``full`` → ``reduced`` → ``minimal``); the
degradation-aware scheduler walks a job *down* the ladder after a
degraded attempt when the spec opts in via ``allow_degraded``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.validate.schema import ARTIFACT_VERSIONS, parse_artifact, validate_artifact

#: The degradation ladder, highest fidelity first.  ``degrade`` steps
#: one level right; the last level has nowhere lower to go.
FIDELITY_LEVELS = ("full", "reduced", "minimal")

#: Pipelines the executor knows how to run.
PIPELINES = ("toy", "map-cable")


@dataclass(frozen=True)
class JobSpec:
    """One mapping job, content-addressed by its output-relevant fields.

    ``faults`` carries :class:`~repro.faults.plan.FaultPlan` keyword
    arguments (probe loss, worker chaos, ...); ``chaos`` carries
    *service-level* chaos — ``fail_attempts: N`` makes the first N
    attempts raise, exercising the retry/poison path deterministically.
    ``name`` and ``priority`` are submission metadata: they never enter
    the hash, so renaming a job still dedupes to the same work.
    """

    pipeline: str = "toy"
    seed: int = 0
    fidelity: str = "full"
    allow_degraded: bool = False
    workers: int = 0
    #: toy pipeline: probed target count and VP count.
    targets: int = 8
    hosts: int = 2
    #: map-cable pipeline: which ISP and how many sweep VPs.
    isp: str = "comcast"
    sweep_vps: int = 8
    faults: "dict[str, object]" = field(default_factory=dict)
    chaos: "dict[str, int]" = field(default_factory=dict)
    #: Corpus artifact format: ``json`` (a ``corpus.json`` trace list)
    #: or ``binary`` (a ``corpus.npz`` columnar container).
    corpus_format: str = "json"
    name: str = ""
    priority: int = 0

    def __post_init__(self) -> None:
        if self.pipeline not in PIPELINES:
            raise ServiceError(
                f"unknown pipeline {self.pipeline!r}; expected one of "
                f"{', '.join(PIPELINES)}"
            )
        if self.fidelity not in FIDELITY_LEVELS:
            raise ServiceError(
                f"unknown fidelity {self.fidelity!r}; expected one of "
                f"{', '.join(FIDELITY_LEVELS)}"
            )
        from dataclasses import fields as dc_fields

        from repro.faults.plan import FaultPlan

        known = {f.name for f in dc_fields(FaultPlan)}
        unknown = sorted(set(self.faults) - known)
        if unknown:
            raise ServiceError(
                f"unknown fault-plan field(s) {', '.join(unknown)}"
            )
        if self.corpus_format not in ("json", "binary"):
            raise ServiceError(
                f"unknown corpus format {self.corpus_format!r}; expected "
                "json or binary"
            )

    # ------------------------------------------------------------------
    def content_dict(self) -> "dict[str, object]":
        """The fields that determine the job's artifacts, canonically.

        Excludes ``name`` and ``priority`` (presentation/scheduling
        metadata) and the ``schema``/``kind`` envelope.
        """
        return {
            "pipeline": self.pipeline,
            "seed": self.seed,
            "fidelity": self.fidelity,
            "allow_degraded": self.allow_degraded,
            "workers": self.workers,
            "targets": self.targets,
            "hosts": self.hosts,
            "isp": self.isp,
            "sweep_vps": self.sweep_vps,
            "faults": dict(sorted(self.faults.items())),
            "chaos": dict(sorted(self.chaos.items())),
            "corpus_format": self.corpus_format,
        }

    def as_dict(self) -> "dict[str, object]":
        """The validated ``job-spec`` artifact payload."""
        payload = {
            "schema": ARTIFACT_VERSIONS["job-spec"],
            "kind": "job-spec",
            **self.content_dict(),
        }
        if self.name:
            payload["name"] = self.name
        if self.priority:
            payload["priority"] = self.priority
        return payload

    @classmethod
    def from_dict(cls, payload: "dict[str, object]") -> "JobSpec":
        validate_artifact(payload, kind="job-spec")
        return cls(
            pipeline=payload["pipeline"],
            seed=payload["seed"],
            fidelity=payload["fidelity"],
            allow_degraded=payload["allow_degraded"],
            workers=payload["workers"],
            targets=payload.get("targets", 8),
            hosts=payload.get("hosts", 2),
            isp=payload.get("isp", "comcast"),
            sweep_vps=payload.get("sweep_vps", 8),
            faults=dict(payload.get("faults", {})),
            chaos=dict(payload.get("chaos", {})),
            corpus_format=payload.get("corpus_format", "json"),
            name=payload.get("name", ""),
            priority=payload.get("priority", 0),
        )


def spec_hash(spec: JobSpec) -> str:
    """sha256 over the canonical content JSON — the dedupe key."""
    text = json.dumps(spec.content_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def job_id_for(spec: JobSpec) -> str:
    """The short, human-pasteable job id (hash prefix)."""
    return spec_hash(spec)[:12]


def job_spec_to_json(spec: JobSpec) -> str:
    """Serialize a spec as a validated ``job-spec`` artifact."""
    return json.dumps(spec.as_dict(), indent=2, sort_keys=True)


def job_spec_from_json(text: str) -> JobSpec:
    """Parse + schema-validate a ``job-spec`` artifact."""
    return JobSpec.from_dict(parse_artifact(text, kind="job-spec"))


def degrade(fidelity: str) -> str:
    """One step down the fidelity ladder (sticky at the bottom)."""
    index = FIDELITY_LEVELS.index(fidelity)
    return FIDELITY_LEVELS[min(index + 1, len(FIDELITY_LEVELS) - 1)]
