"""The service's read-only HTTP plane: jobs, artifacts, diffs, events.

``repro service serve`` exposes a shared state directory over stdlib
``http.server`` so clients fetch finished topology artifacts and live
progress without ever touching the journal:

* ``GET /jobs`` — every job's summary plus the store's seq cursor;
* ``GET /jobs/<id>`` — the full validated ``job-record``;
* ``GET /jobs/<id>/artifacts/<name>`` — the artifact's bytes,
  **sha256-verified against the record's digest on every read** (JSON
  artifacts as ``application/json``, binary ``.npz`` corpora as
  ``application/octet-stream``); a digest mismatch is surfaced as 502
  with a one-line ``error:`` body, never as silently corrupt data;
* ``GET /jobs/<a>/diff/<b>`` — the cross-version ``topology-diff``
  computed from both jobs' columnar corpora
  (:mod:`repro.service.diff`);
* ``GET /jobs/<id>/events?after=N`` — a polling cursor over the job's
  journal-event ring; seqs are globally monotonic (they survive
  compaction and server restarts), so a client resumes by replaying
  its last cursor;
* ``GET /metrics`` — the merged per-executor metric exports plus live
  store gauges.

Every request opens the store through its **readonly** inspection mode
— no locks taken, nothing written — so the API process never contends
with executors, and a SIGKILLed API reader cannot wedge the state
directory.  The request core is a pure function
(:meth:`ServiceAPI.handle`: path → status/content-type/body), so tests
exercise every route without sockets.
"""

from __future__ import annotations

import json
import pathlib
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError, ServiceError
from repro.obs import sha256_bytes, sha256_text
from repro.service.diff import load_job_corpus, topology_diff
from repro.service.store import JobStore
from repro.validate.schema import ARTIFACT_VERSIONS

_JOB_ID = r"[0-9a-f]{12}"
#: Artifact names are single path components written by the executor.
_ARTIFACT_NAME = r"[A-Za-z0-9._-]+"

_ROUTES = [
    ("jobs_index", re.compile(r"^/jobs$")),
    ("job", re.compile(rf"^/jobs/(?P<job_id>{_JOB_ID})$")),
    ("artifact", re.compile(
        rf"^/jobs/(?P<job_id>{_JOB_ID})/artifacts/"
        rf"(?P<name>{_ARTIFACT_NAME})$")),
    ("diff", re.compile(
        rf"^/jobs/(?P<base>{_JOB_ID})/diff/(?P<other>{_JOB_ID})$")),
    ("events", re.compile(rf"^/jobs/(?P<job_id>{_JOB_ID})/events$")),
    ("metrics", re.compile(r"^/metrics$")),
]

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"
_BINARY = "application/octet-stream"


def _error(status: int, message: str) -> "tuple[int, str, bytes]":
    """The one-line ``error:`` body every failure mode uses."""
    first_line = str(message).splitlines()[0] if str(message) else "unknown"
    return status, _TEXT, f"error: {first_line}\n".encode()


def _json_body(payload) -> "tuple[int, str, bytes]":
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    return 200, _JSON, text.encode()


class ServiceAPI:
    """Pure request core: resolves paths against a readonly store view."""

    def __init__(self, state_dir: "str | pathlib.Path") -> None:
        self.state_dir = pathlib.Path(state_dir)

    # ------------------------------------------------------------------
    def _store(self) -> JobStore:
        """A fresh readonly view per request.

        Opening is cheap (the journal between compactions is bounded)
        and dodges every coherence question a long-lived cached view
        would raise; the readonly open itself retries across a racing
        compaction.
        """
        return JobStore.open(self.state_dir, readonly=True)

    def handle(self, path: str) -> "tuple[int, str, bytes]":
        """Resolve one GET; returns ``(status, content_type, body)``."""
        parts = urlsplit(path)
        query = parse_qs(parts.query)
        for name, pattern in _ROUTES:
            match = pattern.match(parts.path)
            if match:
                try:
                    handler = getattr(self, f"_route_{name}")
                    return handler(query=query, **match.groupdict())
                except ServiceError as exc:
                    # Store-level damage (corrupt snapshot/journal,
                    # unreadable corpus): the upstream is broken, not
                    # the request.
                    return _error(502, str(exc))
        return _error(404, f"no such route: {parts.path}")

    # ------------------------------------------------------------------
    def _summary(self, record) -> "dict[str, object]":
        return {
            "job_id": record.job_id,
            "state": record.state,
            "fidelity": record.fidelity,
            "attempts": record.attempts,
            "artifacts": sorted(record.artifacts),
            "owner": record.lease["owner"] if record.lease else None,
            "name": record.spec.name,
        }

    def _route_jobs_index(self, query) -> "tuple[int, str, bytes]":
        store = self._store()
        return _json_body({
            "seq": store.seq,
            "jobs": {
                job_id: self._summary(record)
                for job_id, record in sorted(store.jobs.items())
            },
        })

    def _route_job(self, job_id: str, query) -> "tuple[int, str, bytes]":
        store = self._store()
        record = store.jobs.get(job_id)
        if record is None:
            return _error(404, f"no such job: {job_id}")
        return _json_body(record.as_dict())

    def _route_artifact(self, job_id: str, name: str,
                        query) -> "tuple[int, str, bytes]":
        store = self._store()
        record = store.jobs.get(job_id)
        if record is None:
            return _error(404, f"no such job: {job_id}")
        meta = record.artifacts.get(name)
        if meta is None:
            return _error(
                404, f"job {job_id} has no artifact {name!r}"
            )
        try:
            data = (store.job_dir(job_id) / name).read_bytes()
        except OSError as exc:
            return _error(502, f"artifact {name} unreadable: {exc}")
        # Content addressing is the contract: bytes that do not hash to
        # the journaled digest are upstream corruption, refused loudly.
        if name.endswith(".npz"):
            digest = sha256_bytes(data)
        else:
            digest = sha256_text(data.decode("utf-8", errors="replace"))
        if digest != meta["sha256"]:
            return _error(
                502,
                f"artifact {name} of job {job_id} failed sha256 "
                f"verification (expected {meta['sha256'][:12]}, "
                f"got {digest[:12]})",
            )
        ctype = _JSON if name.endswith(".json") else _BINARY
        return 200, ctype, data

    def _route_diff(self, base: str, other: str,
                    query) -> "tuple[int, str, bytes]":
        store = self._store()
        records = {}
        for job_id in (base, other):
            record = store.jobs.get(job_id)
            if record is None:
                return _error(404, f"no such job: {job_id}")
            if record.state != "done":
                return _error(
                    400, f"job {job_id} is {record.state}, not done"
                )
            records[job_id] = record
        corpora = {}
        for job_id, record in records.items():
            try:
                corpora[job_id] = load_job_corpus(
                    store.job_dir(job_id), record
                )
            except ServiceError as exc:
                # No corpus artifact at all is a bad request; a corpus
                # that exists but will not load is upstream damage.
                if "no corpus artifact" in str(exc):
                    return _error(400, str(exc))
                return _error(502, str(exc))
            except ReproError as exc:
                return _error(502, f"corpus of job {job_id}: {exc}")
        return _json_body(
            topology_diff(base, other, corpora[base], corpora[other])
        )

    def _route_events(self, job_id: str,
                      query) -> "tuple[int, str, bytes]":
        store = self._store()
        record = store.jobs.get(job_id)
        if record is None:
            return _error(404, f"no such job: {job_id}")
        raw_after = query.get("after", ["0"])[-1]
        try:
            after = int(raw_after)
        except ValueError:
            return _error(400, f"bad events cursor: {raw_after!r}")
        events = [
            dict(event) for event in record.events if event["seq"] > after
        ]
        cursor = max(
            [after] + [event["seq"] for event in record.events]
        )
        return _json_body({
            "schema": ARTIFACT_VERSIONS["job-events"],
            "kind": "job-events",
            "job_id": job_id,
            "cursor": cursor,
            "events": events,
        })

    def _route_metrics(self, query) -> "tuple[int, str, bytes]":
        store = self._store()
        executors = {}
        for path in sorted(self.state_dir.glob("service-metrics-*.json")):
            executor_id = path.stem[len("service-metrics-"):]
            try:
                executors[executor_id] = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # a flush is mid-replace; next poll catches it
        return _json_body({
            "kind": "service-metrics",
            "executors": executors,
            "store": {
                "seq": store.seq,
                "jobs_total": len(store.jobs),
                "queued": len(store.queued()),
                "running": len(store.running()),
                "terminal": sum(
                    1 for r in store.jobs.values() if r.terminal
                ),
                "rejected": len(store.rejected),
            },
        })


class _Handler(BaseHTTPRequestHandler):
    api: ServiceAPI  # set on the subclass by _handler_class

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            status, ctype, body = self.api.handle(self.path)
        except Exception as exc:  # pragma: no cover - last-ditch guard
            status, ctype, body = _error(502, f"internal error: {exc}")
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass  # request logging is the caller's concern, not stderr's


def _handler_class(api: ServiceAPI):
    return type("BoundHandler", (_Handler,), {"api": api})


class ServiceHTTPServer:
    """A threaded HTTP server over one state directory.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound ``host:port`` either way.  The server owns no store
    handle between requests, so stopping (or killing) it leaves the
    state directory untouched.
    """

    def __init__(self, state_dir: "str | pathlib.Path",
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.api = ServiceAPI(state_dir)
        self._server = ThreadingHTTPServer(
            (host, port), _handler_class(self.api)
        )
        self._server.daemon_threads = True
        self._thread: "threading.Thread | None" = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "ServiceHTTPServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def serve_forever(self) -> None:
        """Blocking serve for the CLI; Ctrl-C returns cleanly."""
        try:
            self._server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self._server.server_close()
