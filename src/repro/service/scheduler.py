"""Scheduling policy: who runs next, at what fidelity, who gets in.

Three decisions, all deterministic given the store state and clock:

* **Admission** (:meth:`Scheduler.admission_error`): the queue is a
  bounded resource.  A submission that would push the live (non-
  terminal) job count past the limit is rejected with a reason — the
  service never grows without bound.  When the recent attempt history
  looks degraded (crashes, stalls, degraded campaigns), the effective
  limit *halves*: load shedding before failure, per the paper's own
  graceful-degradation posture.
* **Selection** (:meth:`Scheduler.next_runnable`): highest priority
  first, then submission order; jobs back off after failures and are
  skipped until ``not_before``.
* **Fidelity** (:meth:`Scheduler.retry_fidelity`): a job whose attempt
  came back degraded (or died) retries one step down the fidelity
  ladder when its spec opts in (``allow_degraded``) — finish the
  portfolio at reduced fidelity rather than fail it at full.

Retry backoff is exponential with **seeded jitter**: the factor comes
from :meth:`repro.faults.plan.FaultPlan.retry_jitter`, keyed on
``(job_id, attempt)``, so a chaos soak replays the identical retry
schedule run-to-run.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.service.spec import degrade
from repro.service.store import JobRecord, JobStore

#: How many of the most recent finished attempts feed the degradation
#: signal, and how many of them must have gone bad to trigger shedding.
DEGRADATION_WINDOW = 5
DEGRADATION_THRESHOLD = 3


class Scheduler:
    """Pure policy over a :class:`JobStore`; owns no state of its own."""

    def __init__(
        self,
        store: JobStore,
        queue_limit: int = 32,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        jitter_seed: int = 0,
    ) -> None:
        self.store = store
        self.queue_limit = max(1, queue_limit)
        self.max_attempts = max(1, max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        #: Jitter draws ride the same event-keyed RNG as every fault
        #: decision; a dedicated plan keeps the stream namespaced.
        self._jitter_plan = FaultPlan(seed=jitter_seed)

    # ------------------------------------------------------------------
    # Degradation signal
    # ------------------------------------------------------------------
    def recent_bad_attempts(self) -> int:
        """Bad outcomes among the last ``DEGRADATION_WINDOW`` attempts.

        An attempt is *bad* when it errored, was interrupted, or came
        back with a degraded campaign health — all signs the substrate
        (or this executor host) is struggling.
        """
        finished: "list[tuple[float, dict]]" = []
        for record in self.store.jobs.values():
            for attempt in record.attempt_log:
                if attempt["finished_at"] is not None:
                    finished.append((attempt["finished_at"], attempt))
        finished.sort(key=lambda item: item[0])
        window = [attempt for _, attempt in finished[-DEGRADATION_WINDOW:]]
        return sum(
            1 for attempt in window
            if attempt["outcome"] != "done" or attempt["degraded"]
        )

    def shedding(self) -> bool:
        """Whether admission control is currently shedding load."""
        return self.recent_bad_attempts() >= DEGRADATION_THRESHOLD

    def effective_queue_limit(self) -> int:
        if self.shedding():
            return max(1, self.queue_limit // 2)
        return self.queue_limit

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admission_error(self) -> "str | None":
        """The rejection reason for a new submission, or None to admit."""
        limit = self.effective_queue_limit()
        live = self.store.live_count()
        if live >= limit:
            if limit < self.queue_limit:
                return (
                    f"queue full ({live}/{limit}): shedding load, recent "
                    f"attempts degraded ({self.recent_bad_attempts()}/"
                    f"{DEGRADATION_WINDOW} bad)"
                )
            return f"queue full ({live}/{limit})"
        return None

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def next_runnable(self, now: float) -> "JobRecord | None":
        """The queued job to lease next, or None.

        Highest ``priority`` wins; ties break on submission order, so
        the schedule is stable across restarts.
        """
        candidates = [
            record for record in self.store.queued()
            if record.not_before <= now
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (-r.spec.priority, r.submitted_seq),
        )

    def has_pending(self, now: float) -> bool:
        """Whether any queued job exists (runnable now or backing off)."""
        return bool(self.store.queued())

    # ------------------------------------------------------------------
    # Retry / fidelity policy
    # ------------------------------------------------------------------
    def backoff_s(self, job_id: str, attempt: int) -> float:
        """Seeded-jittered exponential backoff before retry *attempt*+1."""
        jitter = 0.5 + self._jitter_plan.retry_jitter(job_id, attempt)
        return self.backoff_base_s * (2 ** max(0, attempt - 1)) * jitter

    def exhausted(self, record: JobRecord) -> bool:
        return record.attempts >= self.max_attempts

    def retry_fidelity(self, record: JobRecord, degraded: bool) -> str:
        """The fidelity for the next attempt after a bad one.

        Degradation-aware: when the spec allows it, a degraded or
        failed attempt retries one step down the ladder — the service
        prefers a lower-fidelity map to no map at all.
        """
        if record.spec.allow_degraded and degraded:
            return degrade(record.fidelity)
        return record.fidelity
