"""The long-running campaign service: lease, execute, retry, drain.

:class:`CampaignService` ties the pieces together into one supervised
loop over a crash-safe :class:`~repro.service.store.JobStore`:

* **Submission** crosses the process boundary through the ``inbox/``
  spool: ``repro service submit`` atomically drops a validated
  ``job-spec`` file, the service ingests it under admission control
  (bounded queue, degradation-aware load shedding) and either admits,
  dedupes (content-addressed spec hash), or rejects-with-reason.
* **Leases**: an executing job carries a lease ``(owner, expires_at,
  token)`` acquired by compare-and-swap (:meth:`JobStore.try_claim`)
  and extended by a heartbeat thread while the attempt runs.  Any
  number of ``repro service run --executor-id X`` processes share one
  state directory: the store's per-append lock serializes their
  journal writes, the CAS claim guarantees each queued job goes to
  exactly one of them, and the **fencing token** makes a zombie — an
  executor whose lease expired and was reclaimed — unable to settle
  or extend the job out from under the new owner.  A per-executor-id
  lifetime flock (``executors/<id>.lock``) guarantees the restart
  invariant: when a new incarnation of ``X`` starts, the previous one
  is provably dead, so its leases are reclaimed immediately.
* **Retry** with seeded-jittered exponential backoff and a bounded
  attempt budget; a job that exhausts it is demoted to ``failed`` with
  a validated quarantine-report failure artifact.
* **Degradation-aware scheduling**: attempts whose
  :class:`~repro.measure.runner.CampaignHealth` comes back degraded
  retry one step down the fidelity ladder when the spec allows it, and
  a bad recent-attempt window halves the admission limit (shed load
  rather than fail hard).
* **Zombie-proof artifacts**: each attempt writes into a per-executor
  staging directory; promotion into the job directory and the ``done``
  journal append happen inside one locked transaction, gated on the
  fencing token — so two executors can never publish differing bytes
  for the same artifact name.
* **Graceful drain**: SIGINT/SIGTERM (or ``repro service drain``)
  stops admission, finishes or checkpoints the in-flight attempt,
  flushes journal + snapshot, and exits 0.  A second signal interrupts
  the in-flight campaign through the supervisor's graceful-shutdown
  path (checkpoint flushed, workers terminated) and still exits 0.

Every state transition publishes to the service's
:class:`~repro.obs.metrics.MetricsRegistry` and span tree — both under
the legacy unlabeled names and under per-executor labels
(:func:`~repro.obs.metrics.labeled`) — exported to
``service-metrics[-<id>].json`` / ``service-trace[-<id>].json`` in the
state directory at every flush.
"""

from __future__ import annotations

import pathlib
import shutil
import signal
import threading
import time

from repro.errors import (
    CampaignInterrupted,
    ReproError,
    ServiceError,
)
from repro.io.atomic import atomic_write_text
from repro.obs import MetricsRegistry, Tracer, labeled
from repro.service.executor import JobExecutor
from repro.service.scheduler import Scheduler
from repro.service.spec import JobSpec, job_spec_from_json
from repro.service.store import JobRecord, JobStore, job_record_to_json
from repro.validate.quarantine import QuarantineReport, quarantine_report_to_json

#: Drain marker dropped by ``repro service drain``.
DRAIN_MARKER = "drain"


class CampaignService:
    """One executor instance bound to one (possibly shared) state dir."""

    def __init__(
        self,
        state_dir: "str | pathlib.Path",
        executor_id: str = "executor",
        queue_limit: int = 32,
        max_attempts: int = 3,
        lease_s: float = 30.0,
        tick_s: float = 0.05,
        backoff_base_s: float = 0.05,
        seed: int = 0,
        clock=time.time,
    ) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.executor_id = executor_id
        self.lease_s = float(lease_s)
        self.tick_s = float(tick_s)
        self.clock = clock
        self.store = JobStore.open(self.state_dir, clock=clock)
        #: Two live processes with one executor id would both believe
        #: the other's leases are their own stale ones — refuse early.
        self.store.acquire_executor_lock(executor_id)
        self.scheduler = Scheduler(
            self.store, queue_limit=queue_limit, max_attempts=max_attempts,
            backoff_base_s=backoff_base_s, jitter_seed=seed,
        )
        self.obs = Tracer(seed=seed)
        self.metrics = MetricsRegistry()
        self.executor = JobExecutor(
            self.store.jobs_dir, obs=self.obs, metrics=self.metrics,
        )
        self._draining = False
        self._signals = 0
        #: Reclaim our own stale leases exactly once, at startup: a
        #: lease we hold mid-run belongs to the in-flight attempt.
        self._recover_own_leases()

    def _inc(self, name: str) -> None:
        """Count under both the fleet-wide and the per-executor name."""
        self.metrics.inc(name)
        self.metrics.inc(labeled(name, executor=self.executor_id))

    # ------------------------------------------------------------------
    # Lease recovery
    # ------------------------------------------------------------------
    def _recover_own_leases(self) -> None:
        """A restart reclaims this executor's leases immediately.

        The previous same-id incarnation is provably dead — it held
        ``executors/<id>.lock``, which we now hold — so there is no
        point waiting out the lease.  Foreign leases are left alone:
        their owners may be alive and mid-attempt.
        """
        with self.store.transact():
            now = self.clock()
            for record in list(self.store.running()):
                if record.lease is not None \
                        and record.lease["owner"] == self.executor_id:
                    backoff = self.scheduler.backoff_s(
                        record.job_id, record.attempts
                    )
                    self.store.append(
                        "release", job_id=record.job_id,
                        reason="executor restarted",
                        not_before=now + backoff,
                    )
                    self._inc("service.leases_reclaimed")

    def _reclaim_expired(self) -> None:
        """Requeue jobs whose lease expired — their executor is gone.

        Compare-and-swap per job: the expiry observed outside the lock
        is re-checked inside it, so a racing reclaim (or a heartbeat
        that landed in between) makes this a no-op rather than a double
        release.
        """
        now = self.clock()
        expired = [
            record.job_id for record in self.store.running()
            if record.lease_expired(now)
        ]
        for job_id in expired:
            with self.store.transact():
                current = self.store.jobs.get(job_id)
                if current is None or current.state != "running" \
                        or not current.lease_expired(self.clock()):
                    continue
                backoff = self.scheduler.backoff_s(job_id, current.attempts)
                self.store.append(
                    "release", job_id=job_id, reason="lease expired",
                    not_before=self.clock() + backoff,
                )
                self._inc("service.leases_reclaimed")

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> "tuple[JobRecord | None, str]":
        """Admit one spec; returns ``(record, disposition)``.

        Disposition is ``admitted``, ``deduped``, or a rejection
        reason.  Rejection never raises — backpressure is an answer,
        not an error.
        """
        error = self.scheduler.admission_error()
        if error is not None:
            self.store.reject(spec, error)
            self._inc("service.jobs_rejected")
            return None, error
        record, created = self.store.submit(spec)
        if created:
            self._inc("service.jobs_submitted")
            return record, "admitted"
        self._inc("service.jobs_deduped")
        return record, "deduped"

    def ingest_inbox(self) -> int:
        """Admit spooled submissions; returns how many files were taken.

        Ingestion is idempotent under crashes *and* concurrency: the
        journal write lands before the spool file is removed, a re-read
        of the same file dedupes by content hash, and a file another
        executor unlinked first is simply skipped.
        """
        taken = 0
        for path in sorted(self.store.inbox_dir.glob("*.json")):
            try:
                text = path.read_text()
            except FileNotFoundError:
                continue  # another executor ingested it first
            try:
                spec = job_spec_from_json(text)
            except ReproError as exc:
                self.store.append(
                    "reject", spec_hash=path.stem,
                    reason=f"invalid job spec: {exc}",
                )
                self._inc("service.jobs_rejected")
                path.unlink(missing_ok=True)
                taken += 1
                continue
            self.submit(spec)
            path.unlink(missing_ok=True)
            taken += 1
        return taken

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, job_id: str, token: int,
                        stop: threading.Event,
                        lost: threading.Event) -> None:
        interval = max(0.01, self.lease_s / 3.0)
        while not stop.wait(interval):
            extended = self.store.try_heartbeat(
                job_id, self.executor_id, token,
                expires_at=self.clock() + self.lease_s,
            )
            if not extended:
                # Fenced out: the lease was reclaimed.  Stop extending;
                # the attempt's settle will discover the same and
                # abandon its staging output.
                lost.set()
                return
            self.metrics.inc("service.heartbeats")

    def _write_record(self, record: JobRecord) -> None:
        job_dir = self.store.job_dir(record.job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(job_dir / "record.json", job_record_to_json(record))

    def _fail_job(self, record: JobRecord, reason: str,
                  error: "str | None" = None,
                  token: "int | None" = None) -> bool:
        """Demote a poison job to quarantined ``failed`` state.

        The failure artifact is a validated ``quarantine-report`` (the
        same artifact kind poison *shards* produce one layer down), so
        downstream tooling reads one quarantine format everywhere.
        Compare-and-swap: with a *token* the caller's lease must still
        hold; without one (the queued-budget sweep) the job must still
        be queued-and-exhausted under the lock.  Returns whether this
        executor performed the demotion.
        """
        job_id = record.job_id
        with self.store.transact():
            current = self.store.jobs.get(job_id)
            if current is None:
                return False
            if token is not None:
                if not self.store.lease_valid(job_id, self.executor_id,
                                              token):
                    return False
            elif current.state != "queued" \
                    or not self.scheduler.exhausted(current):
                return False
            report = QuarantineReport(policy="lenient")
            report.add(
                stage="service", category="poison-job", subject=job_id,
                detail=f"{reason}" + (f": {error}" if error else ""),
                dropped=True, count=1,
            )
            job_dir = self.store.job_dir(job_id)
            job_dir.mkdir(parents=True, exist_ok=True)
            text = quarantine_report_to_json(report)
            atomic_write_text(job_dir / "failure.json", text)
            from repro.obs import sha256_text

            artifacts = dict(current.artifacts)
            artifacts["failure.json"] = {
                "sha256": sha256_text(text), "bytes": len(text),
            }
            self.store.append(
                "failed", job_id=job_id, reason=reason, error=error,
                artifact="failure.json", artifacts=artifacts,
            )
        self._inc("service.jobs_failed")
        self._write_record(self.store.jobs[job_id])
        return True

    def _abandon(self, job_id: str, stage_dir: pathlib.Path) -> str:
        """Our lease was fenced out mid-attempt: discard, don't settle.

        The staging directory is thrown away — the new owner's attempt
        is the one that publishes — and nothing is journaled: the
        reclaim already charged the budget via its ``release``.
        """
        shutil.rmtree(stage_dir, ignore_errors=True)
        self._inc("service.leases_lost")
        return "lease-lost"

    def _run_attempt(self, record: JobRecord) -> str:
        """Claim, execute, and settle one attempt; returns the outcome."""
        job_id = record.job_id
        fidelity = record.fidelity
        now = self.clock()
        token = self.store.try_claim(
            job_id, self.executor_id, expires_at=now + self.lease_s, now=now,
        )
        if token is None:
            # Another executor claimed it between our scheduling pass
            # and the CAS — not an error, just a lost race.
            self._inc("service.claims_lost")
            return "claim-lost"
        record = self.store.jobs[job_id]
        self._inc("service.attempts")
        attempt = record.attempts
        spec = record.spec
        stop = threading.Event()
        lost = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(job_id, token, stop, lost),
            daemon=True,
        )
        beat.start()
        stage_dir = self.store.job_dir(job_id) / f".staging-{self.executor_id}"
        outcome = "error"
        error_text = None
        degraded = False
        result = None
        try:
            with self.obs.span(f"job:{job_id}", attempt=attempt,
                               fidelity=fidelity) as span:
                try:
                    result = self.executor.execute(
                        job_id, spec, fidelity, attempt, stage_dir=stage_dir,
                    )
                    outcome = "done"
                    degraded = result.degraded
                except CampaignInterrupted as exc:
                    outcome = "interrupted"
                    error_text = str(exc)
                except ReproError as exc:
                    outcome = "error"
                    error_text = str(exc)
                span.attributes["outcome"] = outcome
        finally:
            stop.set()
            beat.join(timeout=5.0)
        now = self.clock()
        record = self.store.jobs.get(job_id, record)
        if outcome == "done":
            retry_down = (
                degraded
                and spec.allow_degraded
                and not self.scheduler.exhausted(record)
                and self.scheduler.retry_fidelity(record, True) != fidelity
            )
            if retry_down:
                # Degradation-aware: the campaign finished but lost
                # coverage; spend a retry on a lighter-weight attempt
                # instead of shipping the degraded map.
                shutil.rmtree(stage_dir, ignore_errors=True)
                settled = self.store.settle(
                    job_id, self.executor_id, token, "retry",
                    outcome="degraded", error=None, degraded=True,
                    not_before=now + self.scheduler.backoff_s(
                        job_id, record.attempts),
                    fidelity=self.scheduler.retry_fidelity(record, True),
                )
                if not settled:
                    return self._abandon(job_id, stage_dir)
                self._inc("service.retries")
                return "degraded-retry"
            # Promotion and the terminal append are one locked
            # transaction gated on the fencing token: a zombie can
            # never replace published bytes or double-finish the job.
            with self.store.transact():
                if not self.store.lease_valid(job_id, self.executor_id,
                                              token):
                    settled = False
                else:
                    self._promote(stage_dir, job_id, result.artifacts)
                    self.store.append(
                        "done", job_id=job_id, artifacts=result.artifacts,
                        degraded=degraded,
                    )
                    settled = True
            if not settled:
                return self._abandon(job_id, stage_dir)
            self._inc("service.jobs_done")
            self._write_record(self.store.jobs[job_id])
            return "done"
        if outcome == "interrupted":
            # Drain or supervisor shutdown: the campaign checkpoint is
            # flushed; give the lease back and let the next run resume.
            shutil.rmtree(stage_dir, ignore_errors=True)
            settled = self.store.settle(
                job_id, self.executor_id, token, "release",
                reason=error_text, not_before=now,
            )
            if not settled:
                return self._abandon(job_id, stage_dir)
            self._inc("service.interrupted_attempts")
            return "interrupted"
        shutil.rmtree(stage_dir, ignore_errors=True)
        if self.scheduler.exhausted(record):
            if self._fail_job(record, "attempt budget exhausted",
                              error=error_text, token=token):
                return "failed"
            return self._abandon(job_id, stage_dir)
        settled = self.store.settle(
            job_id, self.executor_id, token, "retry",
            outcome="error", error=error_text, degraded=True,
            not_before=now + self.scheduler.backoff_s(job_id, record.attempts),
            fidelity=self.scheduler.retry_fidelity(record, True),
        )
        if not settled:
            return self._abandon(job_id, stage_dir)
        self._inc("service.retries")
        return "retried"

    def _promote(self, stage_dir: pathlib.Path, job_id: str,
                 artifacts: "dict[str, dict]") -> None:
        """Move staged artifacts into the job dir (caller holds the lock)."""
        import os

        job_dir = self.store.job_dir(job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        for name in artifacts:
            staged = stage_dir / name
            if staged.exists():
                os.replace(staged, job_dir / name)
        shutil.rmtree(stage_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _publish_gauges(self) -> None:
        self.metrics.set_gauge("service.queue_depth",
                               len(self.store.queued()))
        self.metrics.set_gauge("service.running", len(self.store.running()))
        self.metrics.set_gauge("service.jobs_total", len(self.store.jobs))
        self.metrics.set_gauge("service.shedding",
                               int(self.scheduler.shedding()))

    def flush(self) -> None:
        """Compact the store and export observability snapshots.

        Exports land under both the legacy shared names (kept for
        single-executor tooling; last flusher wins) and per-executor
        names, which the HTTP ``/metrics`` endpoint merges.
        """
        self._publish_gauges()
        self.store.compact()
        metrics_text = self.metrics.to_json() + "\n"
        trace_text = self.obs.to_json() + "\n"
        atomic_write_text(self.state_dir / "service-metrics.json",
                          metrics_text)
        atomic_write_text(self.state_dir / "service-trace.json", trace_text)
        atomic_write_text(
            self.state_dir / f"service-metrics-{self.executor_id}.json",
            metrics_text,
        )
        atomic_write_text(
            self.state_dir / f"service-trace-{self.executor_id}.json",
            trace_text,
        )

    def _drain_requested(self) -> bool:
        return self._draining or (self.state_dir / DRAIN_MARKER).exists()

    def _handle_signal(self, signum, frame) -> None:  # pragma: no cover
        self._signals += 1
        self._draining = True
        if self._signals >= 2:
            # Second signal: interrupt the in-flight campaign through
            # the supervisor's graceful-shutdown path (checkpoint
            # flushed, workers terminated).
            raise KeyboardInterrupt

    def _sweep_exhausted(self) -> None:
        """Fail queued jobs whose budget was eaten by interrupted attempts."""
        for record in list(self.store.queued()):
            if self.scheduler.exhausted(record):
                self._fail_job(
                    record, "attempt budget exhausted",
                    error="budget consumed by interrupted attempts",
                )

    def run(self, until_idle: bool = False,
            max_jobs: "int | None" = None) -> int:
        """The service loop; returns the number of attempts executed.

        ``until_idle`` exits once every job is terminal and the inbox
        is empty — the mode soak tests and CI drive.  With peers
        sharing the state directory that means *waiting out* jobs they
        are running (their leases expire if they die, so the wait
        always converges).  Without it the loop runs until drained by
        signal or marker.
        """
        installed = []
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                installed.append((signum, signal.getsignal(signum)))
                signal.signal(signum, self._handle_signal)
        executed = 0
        try:
            while True:
                self.store.refresh()
                if not self._drain_requested():
                    self.ingest_inbox()
                self._reclaim_expired()
                self._sweep_exhausted()
                self._publish_gauges()
                if self._drain_requested():
                    # Stop admitting; nothing is in flight (attempts
                    # run synchronously), so flush and exit cleanly.
                    break
                record = self.scheduler.next_runnable(self.clock())
                if record is None:
                    if until_idle:
                        if self.store.all_terminal() \
                                and not any(
                                    self.store.inbox_dir.glob("*.json")):
                            break
                        # Jobs are backing off, or a peer still runs
                        # some: wait — expiry-based reclaim guarantees
                        # progress even if that peer dies.
                        time.sleep(self.tick_s)
                        continue
                    time.sleep(self.tick_s)
                    continue
                try:
                    outcome = self._run_attempt(record)
                except KeyboardInterrupt:
                    # Second-signal hard interrupt that beat the
                    # executor's own handling: settle the lease so the
                    # next incarnation resumes immediately.
                    with self.store.transact():
                        current = self.store.jobs.get(record.job_id)
                        if current is not None \
                                and current.state == "running" \
                                and current.lease is not None \
                                and current.lease["owner"] \
                                == self.executor_id:
                            self.store.append(
                                "release", job_id=record.job_id,
                                reason="service interrupted",
                                not_before=self.clock(),
                            )
                    break
                if outcome != "claim-lost":
                    # A lost CAS race never reached the executor — it
                    # is a scheduling artifact, not an attempt.
                    executed += 1
                if max_jobs is not None and executed >= max_jobs:
                    break
        finally:
            for signum, handler in installed:
                signal.signal(signum, handler)
            (self.state_dir / DRAIN_MARKER).unlink(missing_ok=True)
            self.flush()
            self.store.close()
        return executed
