"""The long-running campaign service: lease, execute, retry, drain.

:class:`CampaignService` ties the pieces together into one supervised
loop over a crash-safe :class:`~repro.service.store.JobStore`:

* **Submission** crosses the process boundary through the ``inbox/``
  spool: ``repro service submit`` atomically drops a validated
  ``job-spec`` file, the service ingests it under admission control
  (bounded queue, degradation-aware load shedding) and either admits,
  dedupes (content-addressed spec hash), or rejects-with-reason.
* **Leases**: an executing job carries a lease ``(owner, expires_at)``
  extended by a heartbeat thread while the attempt runs.  A service
  that dies mid-attempt leaves an expired lease; the next incarnation
  reclaims it (its own leases immediately — same owner — and foreign
  ones on expiry) and the attempt resumes from the job's campaign
  checkpoint.
* **Retry** with seeded-jittered exponential backoff and a bounded
  attempt budget; a job that exhausts it is demoted to ``failed`` with
  a validated quarantine-report failure artifact.
* **Degradation-aware scheduling**: attempts whose
  :class:`~repro.measure.runner.CampaignHealth` comes back degraded
  retry one step down the fidelity ladder when the spec allows it, and
  a bad recent-attempt window halves the admission limit (shed load
  rather than fail hard).
* **Graceful drain**: SIGINT/SIGTERM (or ``repro service drain``)
  stops admission, finishes or checkpoints the in-flight attempt,
  flushes journal + snapshot, and exits 0.  A second signal interrupts
  the in-flight campaign through the supervisor's graceful-shutdown
  path (checkpoint flushed, workers terminated) and still exits 0.

Every state transition publishes to the service's
:class:`~repro.obs.metrics.MetricsRegistry` and span tree, exported to
``service-metrics.json`` / ``service-trace.json`` in the state
directory at every flush.
"""

from __future__ import annotations

import pathlib
import signal
import threading
import time

from repro.errors import (
    CampaignInterrupted,
    ReproError,
    ServiceError,
)
from repro.io.atomic import atomic_write_text
from repro.obs import MetricsRegistry, Tracer
from repro.service.executor import JobExecutor
from repro.service.scheduler import Scheduler
from repro.service.spec import JobSpec, job_spec_from_json
from repro.service.store import JobRecord, JobStore, job_record_to_json
from repro.validate.quarantine import QuarantineReport, quarantine_report_to_json

#: Drain marker dropped by ``repro service drain``.
DRAIN_MARKER = "drain"


class CampaignService:
    """One service instance bound to one state directory."""

    def __init__(
        self,
        state_dir: "str | pathlib.Path",
        executor_id: str = "executor",
        queue_limit: int = 32,
        max_attempts: int = 3,
        lease_s: float = 30.0,
        tick_s: float = 0.05,
        backoff_base_s: float = 0.05,
        seed: int = 0,
        clock=time.time,
    ) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.executor_id = executor_id
        self.lease_s = float(lease_s)
        self.tick_s = float(tick_s)
        self.clock = clock
        self.store = JobStore.open(self.state_dir, clock=clock)
        self.scheduler = Scheduler(
            self.store, queue_limit=queue_limit, max_attempts=max_attempts,
            backoff_base_s=backoff_base_s, jitter_seed=seed,
        )
        self.obs = Tracer(seed=seed)
        self.metrics = MetricsRegistry()
        self.executor = JobExecutor(
            self.store.jobs_dir, obs=self.obs, metrics=self.metrics,
        )
        self._draining = False
        self._signals = 0
        #: Reclaim our own stale leases exactly once, at startup: a
        #: lease we hold mid-run belongs to the in-flight attempt.
        self._recover_own_leases()

    # ------------------------------------------------------------------
    # Lease recovery
    # ------------------------------------------------------------------
    def _release(self, record: JobRecord, reason: str) -> None:
        now = self.clock()
        backoff = self.scheduler.backoff_s(record.job_id, record.attempts)
        self.store.append(
            "release", job_id=record.job_id, reason=reason,
            not_before=now + backoff,
        )
        self.metrics.inc("service.leases_reclaimed")

    def _recover_own_leases(self) -> None:
        """A restart reclaims this executor's leases immediately.

        The previous incarnation is provably dead — it held the state
        directory's flock — so there is no point waiting out the lease.
        """
        for record in self.store.running():
            if record.lease is not None \
                    and record.lease["owner"] == self.executor_id:
                self._release(record, "executor restarted")

    def _reclaim_expired(self) -> None:
        now = self.clock()
        for record in self.store.running():
            if record.lease_expired(now):
                self._release(record, "lease expired")

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> "tuple[JobRecord | None, str]":
        """Admit one spec; returns ``(record, disposition)``.

        Disposition is ``admitted``, ``deduped``, or a rejection
        reason.  Rejection never raises — backpressure is an answer,
        not an error.
        """
        error = self.scheduler.admission_error()
        if error is not None:
            self.store.reject(spec, error)
            self.metrics.inc("service.jobs_rejected")
            return None, error
        record, created = self.store.submit(spec)
        if created:
            self.metrics.inc("service.jobs_submitted")
            return record, "admitted"
        self.metrics.inc("service.jobs_deduped")
        return record, "deduped"

    def ingest_inbox(self) -> int:
        """Admit spooled submissions; returns how many files were taken.

        Ingestion is idempotent under crashes: the journal write lands
        before the spool file is removed, and a re-read of the same
        file dedupes by content hash.
        """
        taken = 0
        for path in sorted(self.store.inbox_dir.glob("*.json")):
            try:
                spec = job_spec_from_json(path.read_text())
            except ReproError as exc:
                self.store.append(
                    "reject", spec_hash=path.stem,
                    reason=f"invalid job spec: {exc}",
                )
                self.metrics.inc("service.jobs_rejected")
                path.unlink(missing_ok=True)
                taken += 1
                continue
            self.submit(spec)
            path.unlink(missing_ok=True)
            taken += 1
        return taken

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, job_id: str, stop: threading.Event) -> None:
        interval = max(0.01, self.lease_s / 3.0)
        while not stop.wait(interval):
            self.store.append(
                "heartbeat", job_id=job_id,
                expires_at=self.clock() + self.lease_s,
            )
            self.metrics.inc("service.heartbeats")

    def _write_record(self, record: JobRecord) -> None:
        job_dir = self.store.job_dir(record.job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(job_dir / "record.json", job_record_to_json(record))

    def _fail_job(self, record: JobRecord, reason: str,
                  error: "str | None" = None) -> None:
        """Demote a poison job to quarantined ``failed`` state.

        The failure artifact is a validated ``quarantine-report`` (the
        same artifact kind poison *shards* produce one layer down), so
        downstream tooling reads one quarantine format everywhere.
        """
        report = QuarantineReport(policy="lenient")
        report.add(
            stage="service", category="poison-job", subject=record.job_id,
            detail=f"{reason}" + (f": {error}" if error else ""),
            dropped=True, count=1,
        )
        job_dir = self.store.job_dir(record.job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        text = quarantine_report_to_json(report)
        atomic_write_text(job_dir / "failure.json", text)
        from repro.obs import sha256_text

        artifacts = dict(record.artifacts)
        artifacts["failure.json"] = {
            "sha256": sha256_text(text), "bytes": len(text),
        }
        self.store.append(
            "failed", job_id=record.job_id, reason=reason, error=error,
            artifact="failure.json", artifacts=artifacts,
        )
        self.metrics.inc("service.jobs_failed")
        self._write_record(self.store.jobs[record.job_id])

    def _run_attempt(self, record: JobRecord) -> str:
        """Lease, execute, and settle one attempt; returns the outcome."""
        job_id = record.job_id
        fidelity = record.fidelity
        now = self.clock()
        self.store.append(
            "start", job_id=job_id, owner=self.executor_id,
            expires_at=now + self.lease_s, fidelity=fidelity,
        )
        self.metrics.inc("service.attempts")
        attempt = record.attempts
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(job_id, stop), daemon=True,
        )
        beat.start()
        outcome = "error"
        error_text = None
        degraded = False
        try:
            with self.obs.span(f"job:{job_id}", attempt=attempt,
                               fidelity=fidelity) as span:
                try:
                    result = self.executor.execute(
                        job_id, record.spec, fidelity, attempt
                    )
                    outcome = "done"
                    degraded = result.degraded
                except CampaignInterrupted as exc:
                    outcome = "interrupted"
                    error_text = str(exc)
                except ReproError as exc:
                    outcome = "error"
                    error_text = str(exc)
                span.attributes["outcome"] = outcome
        finally:
            stop.set()
            beat.join(timeout=5.0)
        now = self.clock()
        if outcome == "done":
            retry_down = (
                degraded
                and record.spec.allow_degraded
                and not self.scheduler.exhausted(record)
                and self.scheduler.retry_fidelity(record, True) != fidelity
            )
            if retry_down:
                # Degradation-aware: the campaign finished but lost
                # coverage; spend a retry on a lighter-weight attempt
                # instead of shipping the degraded map.
                self.store.append(
                    "retry", job_id=job_id, outcome="degraded",
                    error=None, degraded=True,
                    not_before=now + self.scheduler.backoff_s(
                        job_id, record.attempts),
                    fidelity=self.scheduler.retry_fidelity(record, True),
                )
                self.metrics.inc("service.retries")
                return "degraded-retry"
            self.store.append(
                "done", job_id=job_id, artifacts=result.artifacts,
                degraded=degraded,
            )
            self.metrics.inc("service.jobs_done")
            self._write_record(self.store.jobs[job_id])
            return "done"
        if outcome == "interrupted":
            # Drain or supervisor shutdown: the campaign checkpoint is
            # flushed; give the lease back and let the next run resume.
            self.store.append(
                "release", job_id=job_id, reason=error_text,
                not_before=now,
            )
            self.metrics.inc("service.interrupted_attempts")
            return "interrupted"
        if self.scheduler.exhausted(record):
            self._fail_job(record, "attempt budget exhausted",
                           error=error_text)
            return "failed"
        self.store.append(
            "retry", job_id=job_id, outcome="error", error=error_text,
            degraded=True,
            not_before=now + self.scheduler.backoff_s(job_id, record.attempts),
            fidelity=self.scheduler.retry_fidelity(record, True),
        )
        self.metrics.inc("service.retries")
        return "retried"

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _publish_gauges(self) -> None:
        self.metrics.set_gauge("service.queue_depth",
                               len(self.store.queued()))
        self.metrics.set_gauge("service.running", len(self.store.running()))
        self.metrics.set_gauge("service.jobs_total", len(self.store.jobs))
        self.metrics.set_gauge("service.shedding",
                               int(self.scheduler.shedding()))

    def flush(self) -> None:
        """Compact the store and export observability snapshots."""
        self._publish_gauges()
        self.store.compact()
        atomic_write_text(self.state_dir / "service-metrics.json",
                          self.metrics.to_json() + "\n")
        atomic_write_text(self.state_dir / "service-trace.json",
                          self.obs.to_json() + "\n")

    def _drain_requested(self) -> bool:
        return self._draining or (self.state_dir / DRAIN_MARKER).exists()

    def _handle_signal(self, signum, frame) -> None:  # pragma: no cover
        self._signals += 1
        self._draining = True
        if self._signals >= 2:
            # Second signal: interrupt the in-flight campaign through
            # the supervisor's graceful-shutdown path (checkpoint
            # flushed, workers terminated).
            raise KeyboardInterrupt

    def _sweep_exhausted(self) -> None:
        """Fail queued jobs whose budget was eaten by interrupted attempts."""
        for record in list(self.store.queued()):
            if self.scheduler.exhausted(record):
                self._fail_job(
                    record, "attempt budget exhausted",
                    error="budget consumed by interrupted attempts",
                )

    def run(self, until_idle: bool = False,
            max_jobs: "int | None" = None) -> int:
        """The service loop; returns the number of attempts executed.

        ``until_idle`` exits once every job is terminal and the inbox
        is empty — the mode soak tests and CI drive.  Without it the
        loop runs until drained by signal or marker.
        """
        installed = []
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                installed.append((signum, signal.getsignal(signum)))
                signal.signal(signum, self._handle_signal)
        executed = 0
        try:
            while True:
                if not self._drain_requested():
                    self.ingest_inbox()
                self._reclaim_expired()
                self._sweep_exhausted()
                self._publish_gauges()
                if self._drain_requested():
                    # Stop admitting; nothing is in flight (attempts
                    # run synchronously), so flush and exit cleanly.
                    break
                record = self.scheduler.next_runnable(self.clock())
                if record is None:
                    if until_idle and self.store.all_terminal() \
                            and not any(self.store.inbox_dir.glob("*.json")):
                        break
                    if self.scheduler.has_pending(self.clock()):
                        # Backing-off jobs: sleep the shortest wait.
                        time.sleep(self.tick_s)
                        continue
                    if until_idle:
                        break
                    time.sleep(self.tick_s)
                    continue
                try:
                    self._run_attempt(record)
                except KeyboardInterrupt:
                    # Second-signal hard interrupt that beat the
                    # executor's own handling: settle the lease so the
                    # next incarnation resumes immediately.
                    open_record = self.store.jobs.get(record.job_id)
                    if open_record is not None \
                            and open_record.state == "running":
                        self.store.append(
                            "release", job_id=record.job_id,
                            reason="service interrupted",
                            not_before=self.clock(),
                        )
                    break
                executed += 1
                if max_jobs is not None and executed >= max_jobs:
                    break
        finally:
            for signum, handler in installed:
                signal.signal(signum, handler)
            (self.state_dir / DRAIN_MARKER).unlink(missing_ok=True)
            self.flush()
            self.store.close()
        return executed
