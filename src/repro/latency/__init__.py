"""Latency campaigns (§5.5, §6.3: Fig 9, Fig 10, Table 2)."""

from repro.latency.cloud import CloudLatencyCampaign, EdgeCoLatency

__all__ = ["CloudLatencyCampaign", "EdgeCoLatency"]
