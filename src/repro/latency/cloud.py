"""Cloud-to-EdgeCO latency campaigns.

Implements the paper's three latency experiments:

* **Fig 9** — median of per-EdgeCO minimum RTTs from each public cloud
  into the cable ISP's Northeast states, exposing the Connecticut
  penalty (its region has no backbone entries of its own);
* **Fig 10a/10b** — the CDF of EdgeCO RTTs from the *nearest* cloud
  region, and of EdgeCO↔AggCO RTTs extracted from traceroute hop
  deltas (the edge-computing placement argument);
* **Table 2** — TTL-limited echo latency from a cloud VM to AT&T
  EdgeCO devices in San Diego, via customer addresses learned from the
  NDT dataset.

All campaigns consume *inference outputs* (IP→CO mappings and refined
region graphs), never generator ground truth.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.errors import MeasurementError
from repro.infer.pipeline import CableInferenceResult
from repro.measure.ping import Pinger
from repro.measure.traceroute import Tracerouter
from repro.measure.vantage import VantagePoint
from repro.net.network import Network
from repro.rdns.regexes import HostnameParser


@dataclass
class EdgeCoLatency:
    """Minimum RTT to one EdgeCO from one vantage point."""

    region: str
    co_tag: str
    address: str
    min_rtt_ms: float
    vp_name: str


class CloudLatencyCampaign:
    """Ping/traceroute latency sweeps from cloud VMs into access ISPs."""

    def __init__(self, network: Network, parser: "HostnameParser | None" = None) -> None:
        self.network = network
        self.pinger = Pinger(network)
        self.tracer = Tracerouter(network)
        self.parser = parser or HostnameParser()

    # ------------------------------------------------------------------
    # EdgeCO address sets from inference output
    # ------------------------------------------------------------------
    @staticmethod
    def edge_co_addresses(result: CableInferenceResult) -> "dict[tuple[str, str], list[str]]":
        """(region, co_tag) → addresses, for inferred EdgeCOs only."""
        if result.mapping is None:
            raise MeasurementError("inference result carries no IP→CO mapping")
        edge_tags = {
            (name, co)
            for name, region in result.regions.items()
            for co in region.edge_cos
        }
        per_co: "dict[tuple[str, str], list[str]]" = defaultdict(list)
        for address, (region, co_tag) in result.mapping.mapping.items():
            if (region, co_tag) in edge_tags:
                per_co[(region, co_tag)].append(address)
        return dict(per_co)

    # ------------------------------------------------------------------
    # Fig 9 / Fig 10a: cloud -> EdgeCO pings
    # ------------------------------------------------------------------
    def min_rtts_from(self, vp: VantagePoint,
                      per_co: "dict[tuple[str, str], list[str]]",
                      pings: int = 100) -> "list[EdgeCoLatency]":
        """Minimum RTT per EdgeCO from one VM (100 pings each, §5.5)."""
        out = []
        for (region, co_tag), addresses in sorted(per_co.items()):
            best: "Optional[float]" = None
            best_addr = addresses[0]
            for address in addresses[:2]:
                ping = self.pinger.ping(vp.host, address, count=pings,
                                        src_address=vp.src_address)
                if ping.min_rtt_ms is not None and (
                    best is None or ping.min_rtt_ms < best
                ):
                    best, best_addr = ping.min_rtt_ms, address
            if best is not None:
                out.append(EdgeCoLatency(region, co_tag, best_addr, best, vp.name))
        return out

    def nearest_cloud_rtts(self, vms: "list[VantagePoint]",
                           per_co: "dict[tuple[str, str], list[str]]") -> "dict[tuple[str, str], EdgeCoLatency]":
        """Per EdgeCO, the best minimum RTT over all cloud VMs (Fig 10a)."""
        best: "dict[tuple[str, str], EdgeCoLatency]" = {}
        for vm in vms:
            for sample in self.min_rtts_from(vm, per_co, pings=20):
                key = (sample.region, sample.co_tag)
                if key not in best or sample.min_rtt_ms < best[key].min_rtt_ms:
                    best[key] = sample
        return best

    @staticmethod
    def closest_vm_for(samples_by_vm: "dict[str, list[EdgeCoLatency]]") -> str:
        """The paper's 'closest location': lowest min RTT to the most EdgeCOs."""
        wins: Counter = Counter()
        best: "dict[tuple[str, str], tuple[float, str]]" = {}
        for vp_name, samples in samples_by_vm.items():
            for sample in samples:
                key = (sample.region, sample.co_tag)
                if key not in best or sample.min_rtt_ms < best[key][0]:
                    best[key] = (sample.min_rtt_ms, vp_name)
        for _key, (_rtt, vp_name) in best.items():
            wins[vp_name] += 1
        if not wins:
            raise MeasurementError("no EdgeCO answered any cloud VM")
        return wins.most_common(1)[0][0]

    # ------------------------------------------------------------------
    # Fig 10b: EdgeCO <-> AggCO RTT from traceroute hop deltas
    # ------------------------------------------------------------------
    def edge_to_agg_rtts(self, vp: VantagePoint, result: CableInferenceResult,
                         per_co: "dict[tuple[str, str], list[str]]") -> "list[EdgeCoLatency]":
        """RTT between each EdgeCO and its serving AggCO (Fig 10b).

        Traceroute to an EdgeCO address; the RTT difference between the
        EdgeCO hop and the immediately preceding AggCO hop is the
        round-trip over the connecting fiber ring arc.
        """
        if result.mapping is None:
            raise MeasurementError("inference result carries no IP→CO mapping")
        agg_tags = {
            (name, co)
            for name, region in result.regions.items()
            for co in region.agg_cos
        }
        out = []
        for (region, co_tag), addresses in sorted(per_co.items()):
            trace = self.tracer.trace(vp.host, addresses[0],
                                      src_address=vp.src_address)
            hops = [h for h in trace.hops if h.address is not None]
            for prev, cur in zip(hops, hops[1:]):
                prev_co = result.mapping.co_of(prev.address)
                cur_co = result.mapping.co_of(cur.address)
                if (
                    prev_co in agg_tags
                    and cur_co == (region, co_tag)
                    and prev.rtt_ms is not None
                    and cur.rtt_ms is not None
                ):
                    delta = max(0.0, cur.rtt_ms - prev.rtt_ms)
                    out.append(EdgeCoLatency(region, co_tag, cur.address,
                                             round(delta, 3), vp.name))
                    break
        return out

    # ------------------------------------------------------------------
    # Table 2: TTL-limited echo to AT&T EdgeCO devices
    # ------------------------------------------------------------------
    def att_edgeco_latency(
        self,
        vp: VantagePoint,
        customer_addresses: "list[str]",
        backbone_region_tag: str,
        pings: int = 100,
    ) -> "dict[str, float]":
        """Min RTT per EdgeCO device via the §6.3 TTL trick.

        Traceroute to each customer; keep traces that traverse the
        region's BackboneCO (identified by its ``cr*.<tag>`` rDNS); take
        the penultimate responding hop as the EdgeCO device and measure
        it with TTL-limited echo.
        """
        per_device: "dict[str, float]" = {}
        for address in customer_addresses:
            trace = self.tracer.trace(vp.host, address, src_address=vp.src_address)
            named = [
                (h, self.parser.parse(h.rdns))
                for h in trace.hops if h.address is not None
            ]
            if not any(
                p is not None and p.role == "backbone" and p.region == backbone_region_tag
                for _h, p in named
            ):
                continue
            if not trace.completed or len(trace.hops) < 2:
                continue
            # Penultimate probe TTL: the last hop index before the
            # destination's.
            responding = [h for h in trace.hops if h.address is not None]
            if len(responding) < 2:
                continue
            penultimate = responding[-2]
            ping = self.pinger.ttl_limited_ping(
                vp.host, address, ttl=penultimate.index, count=pings,
                src_address=vp.src_address,
            )
            if ping.min_rtt_ms is None:
                continue
            device = penultimate.address
            if device not in per_device or ping.min_rtt_ms < per_device[device]:
                per_device[device] = ping.min_rtt_ms
        return per_device

    @staticmethod
    def bucket_latencies(latencies: "dict[str, float]",
                         edges: "list[tuple[int, int]]" = None) -> "dict[str, int]":
        """Histogram in the shape of Table 2's latency buckets."""
        edges = edges or [(3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10)]
        buckets = {f"{lo}-{hi}ms": 0 for lo, hi in edges}
        for value in latencies.values():
            for lo, hi in edges:
                if lo <= value < hi:
                    buckets[f"{lo}-{hi}ms"] += 1
                    break
        return buckets
