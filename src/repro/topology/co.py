"""Ground-truth Central Office and region models.

These objects record what the topology generators actually built — the
answer key that the inference pipeline (which never reads them) is
scored against in :mod:`repro.infer.metrics`.

Terminology follows §2 of the paper: EdgeCOs aggregate last-mile links,
AggCOs aggregate EdgeCOs, BackboneCOs connect the region to the ISP
backbone.  Directed ground-truth edges point *downstream* — from the
backbone toward users — matching the direction probe traffic travels
into a region and the orientation of the paper's region graphs (Fig 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import TopologyError
from repro.topology.geography import City

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.router import Router


class CoKind(enum.Enum):
    """The three CO roles of the aggregation hierarchy (Fig 2)."""

    EDGE = "edge"
    AGG = "agg"
    BACKBONE = "backbone"


@dataclass
class CentralOffice:
    """One central office: a building housing one or more routers."""

    uid: str
    kind: CoKind
    city: City
    clli: str
    region_name: str = ""
    #: Aggregation layer: 0 for BackboneCOs, 1 for top-level AggCOs,
    #: increasing toward the edge (§5.3's multi-level regions).
    level: int = 0
    routers: "list[Router]" = field(default_factory=list, repr=False)

    @property
    def lat(self) -> float:
        return self.city.lat

    @property
    def lon(self) -> float:
        return self.city.lon

    def add_router(self, router: "Router") -> "Router":
        """Attach a router and annotate it with this CO (ground truth)."""
        router.co = self
        self.routers.append(router)
        return router


class Region:
    """A regional access network: COs plus the intended CO-level edges."""

    def __init__(self, name: str, isp_name: str) -> None:
        self.name = name
        self.isp_name = isp_name
        self.cos: dict[str, CentralOffice] = {}
        #: Downstream CO adjacency: uid -> set of uids it feeds.
        self.downstream: dict[str, set[str]] = {}
        #: Entry points: (backbone CO uid or foreign region CO uid, local CO uid).
        self.entries: list[tuple[str, str]] = []
        #: Ground-truth aggregation type, set by the generator:
        #: "single", "two", or "multi" (Fig 8 / Table 1).
        self.agg_type: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.isp_name}/{self.name}, cos={len(self.cos)})"

    def add_co(self, co: CentralOffice) -> CentralOffice:
        """Register a CO in this region."""
        if co.uid in self.cos:
            raise TopologyError(f"duplicate CO uid {co.uid!r} in region {self.name}")
        co.region_name = self.name
        self.cos[co.uid] = co
        self.downstream.setdefault(co.uid, set())
        return co

    def add_edge(self, upstream: CentralOffice, downstream: CentralOffice) -> None:
        """Record a ground-truth downstream edge between two local COs."""
        for co in (upstream, downstream):
            if co.uid not in self.cos:
                raise TopologyError(f"CO {co.uid} is not in region {self.name}")
        self.downstream[upstream.uid].add(downstream.uid)

    def add_entry(self, outside_co_uid: str, local_co: CentralOffice) -> None:
        """Record an entry point from outside the region (e.g. a BackboneCO)."""
        if local_co.uid not in self.cos:
            raise TopologyError(f"CO {local_co.uid} is not in region {self.name}")
        self.entries.append((outside_co_uid, local_co.uid))

    # ------------------------------------------------------------------
    # Ground-truth queries (used by generators, examples, and scoring)
    # ------------------------------------------------------------------
    def cos_of_kind(self, kind: CoKind) -> "list[CentralOffice]":
        """All COs of a given role, sorted by uid."""
        return sorted(
            (co for co in self.cos.values() if co.kind == kind),
            key=lambda co: co.uid,
        )

    @property
    def edge_cos(self) -> "list[CentralOffice]":
        return self.cos_of_kind(CoKind.EDGE)

    @property
    def agg_cos(self) -> "list[CentralOffice]":
        return self.cos_of_kind(CoKind.AGG)

    def upstreams_of(self, co: CentralOffice) -> "list[str]":
        """Uids of COs feeding *co* (its redundancy, Appendix B.4)."""
        return sorted(
            uid for uid, downs in self.downstream.items() if co.uid in downs
        )

    def edge_pairs(self) -> Iterator["tuple[str, str]"]:
        """Iterate all ground-truth (upstream, downstream) CO uid pairs."""
        for up, downs in sorted(self.downstream.items()):
            for down in sorted(downs):
                yield up, down

    def edge_count(self) -> int:
        """Number of ground-truth directed CO edges."""
        return sum(len(d) for d in self.downstream.values())

    def routers(self) -> "list[Router]":
        """Every router housed in this region's COs."""
        return [r for co in self.cos.values() for r in co.routers]


@dataclass
class BackbonePop:
    """A backbone point of presence (outside any regional network)."""

    uid: str
    city: City
    name: str = ""
    routers: "list[Router]" = field(default_factory=list, repr=False)

    def add_router(self, router: "Router") -> "Router":
        router.co = self
        self.routers.append(router)
        return router
