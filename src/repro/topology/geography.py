"""Synthetic U.S. geography.

A compact database of metro areas with coordinates, per-state grouping,
great-circle distances, CLLI-code synthesis, and the contiguous-state
adjacency graph used to route simulated parcel shipments (§7.1).

Coordinates are approximate metro centroids; the paper's latency
results depend only on distances being realistic to within tens of km.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import TopologyError

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class City:
    """A metro area: name, two-letter state, coordinates, size weight."""

    name: str
    state: str
    lat: float
    lon: float
    #: Rough market-size weight (1 = small metro, 10 = largest metros).
    weight: int = 1

    @property
    def key(self) -> str:
        return f"{self.name}, {self.state}"


# (city, state, lat, lon, weight)
_CITY_ROWS = [
    ("Seattle", "WA", 47.61, -122.33, 8), ("Spokane", "WA", 47.66, -117.43, 3),
    ("Portland", "OR", 45.52, -122.68, 6), ("Beaverton", "OR", 45.49, -122.80, 3),
    ("Eugene", "OR", 44.05, -123.09, 2), ("Boise", "ID", 43.62, -116.21, 3),
    ("San Francisco", "CA", 37.77, -122.42, 9), ("San Jose", "CA", 37.34, -121.89, 8),
    ("Sacramento", "CA", 38.58, -121.49, 5), ("Fresno", "CA", 36.74, -119.79, 4),
    ("Santa Cruz", "CA", 36.97, -122.03, 2), ("Los Angeles", "CA", 34.05, -118.24, 10),
    ("San Diego", "CA", 32.72, -117.16, 8), ("Vista", "CA", 33.20, -117.24, 2),
    ("Azusa", "CA", 34.13, -117.91, 2), ("Irvine", "CA", 33.68, -117.83, 4),
    ("El Centro", "CA", 32.79, -115.56, 1), ("Calexico", "CA", 32.68, -115.50, 1),
    ("Las Vegas", "NV", 36.17, -115.14, 6), ("Reno", "NV", 39.53, -119.81, 2),
    ("Phoenix", "AZ", 33.45, -112.07, 8), ("Tucson", "AZ", 32.22, -110.97, 3),
    ("Salt Lake City", "UT", 40.76, -111.89, 5), ("West Jordan", "UT", 40.61, -111.94, 2),
    ("Denver", "CO", 39.74, -104.99, 7), ("Aurora", "CO", 39.73, -104.83, 3),
    ("Colorado Springs", "CO", 38.83, -104.82, 3), ("Albuquerque", "NM", 35.08, -106.65, 3),
    ("Santa Fe", "NM", 35.69, -105.94, 1), ("Billings", "MT", 45.78, -108.50, 1),
    ("Missoula", "MT", 46.87, -113.99, 1), ("Cheyenne", "WY", 41.14, -104.82, 1),
    ("Casper", "WY", 42.85, -106.33, 1), ("Fargo", "ND", 46.88, -96.79, 1),
    ("Bismarck", "ND", 46.81, -100.78, 1), ("Sioux Falls", "SD", 43.55, -96.73, 1),
    ("Rapid City", "SD", 44.08, -103.23, 1), ("Omaha", "NE", 41.26, -95.94, 3),
    ("Lincoln", "NE", 40.81, -96.68, 2), ("Wichita", "KS", 37.69, -97.34, 2),
    ("Kansas City", "KS", 39.11, -94.63, 3), ("Oklahoma City", "OK", 35.47, -97.52, 3),
    ("Tulsa", "OK", 36.15, -95.99, 2), ("Dallas", "TX", 32.78, -96.80, 9),
    ("Houston", "TX", 29.76, -95.37, 9), ("San Antonio", "TX", 29.42, -98.49, 6),
    ("Austin", "TX", 30.27, -97.74, 6), ("El Paso", "TX", 31.76, -106.49, 3),
    ("Minneapolis", "MN", 44.98, -93.27, 6), ("Bloomington", "MN", 44.84, -93.30, 2),
    ("Duluth", "MN", 46.79, -92.10, 1), ("Des Moines", "IA", 41.59, -93.62, 2),
    ("Cedar Rapids", "IA", 41.98, -91.67, 1), ("St. Louis", "MO", 38.63, -90.20, 5),
    ("Kansas City MO", "MO", 39.10, -94.58, 4), ("Springfield", "MO", 37.21, -93.29, 1),
    ("Chicago", "IL", 41.88, -87.63, 10), ("Hinsdale", "IL", 41.80, -87.94, 2),
    ("Springfield IL", "IL", 39.78, -89.65, 1), ("Milwaukee", "WI", 43.04, -87.91, 4),
    ("New Berlin", "WI", 42.97, -88.11, 1), ("Madison", "WI", 43.07, -89.40, 2),
    ("Indianapolis", "IN", 39.77, -86.16, 4), ("Fort Wayne", "IN", 41.08, -85.14, 2),
    ("Detroit", "MI", 42.33, -83.05, 6), ("Southfield", "MI", 42.47, -83.22, 2),
    ("Grand Rapids", "MI", 42.96, -85.66, 2), ("Columbus", "OH", 39.96, -83.00, 5),
    ("Cleveland", "OH", 41.50, -81.69, 4), ("Cincinnati", "OH", 39.10, -84.51, 4),
    ("Akron", "OH", 41.08, -81.52, 2), ("Louisville", "KY", 38.25, -85.76, 3),
    ("Lexington", "KY", 38.04, -84.50, 2), ("Nashville", "TN", 36.16, -86.78, 5),
    ("Memphis", "TN", 35.15, -90.05, 3), ("Knoxville", "TN", 35.96, -83.92, 2),
    ("Atlanta", "GA", 33.75, -84.39, 8), ("Alpharetta", "GA", 34.08, -84.29, 2),
    ("Savannah", "GA", 32.08, -81.09, 2), ("Birmingham", "AL", 33.52, -86.80, 2),
    ("Montgomery", "AL", 32.38, -86.31, 1), ("Jackson", "MS", 32.30, -90.18, 1),
    ("Baton Rouge", "LA", 30.45, -91.15, 2), ("New Orleans", "LA", 29.95, -90.07, 3),
    ("Little Rock", "AR", 34.75, -92.29, 1), ("Miami", "FL", 25.76, -80.19, 8),
    ("Orlando", "FL", 28.54, -81.38, 5), ("Tampa", "FL", 27.95, -82.46, 5),
    ("Jacksonville", "FL", 30.33, -81.66, 3), ("Tallahassee", "FL", 30.44, -84.28, 1),
    ("Charlotte", "NC", 35.23, -80.84, 5), ("Raleigh", "NC", 35.78, -78.64, 4),
    ("Columbia", "SC", 34.00, -81.03, 2), ("Charleston", "SC", 32.78, -79.93, 2),
    ("Richmond", "VA", 37.54, -77.44, 3), ("Ashburn", "VA", 39.04, -77.49, 5),
    ("Chantilly", "VA", 38.89, -77.43, 2), ("Norfolk", "VA", 36.85, -76.29, 2),
    ("Washington", "DC", 38.91, -77.04, 7), ("Baltimore", "MD", 39.29, -76.61, 4),
    ("Wilmington", "DE", 39.75, -75.55, 1), ("Philadelphia", "PA", 39.95, -75.17, 7),
    ("Pittsburgh", "PA", 40.44, -80.00, 4), ("Johnstown", "PA", 40.33, -78.92, 1),
    ("Newark", "NJ", 40.74, -74.17, 5), ("Bridgewater", "NJ", 40.59, -74.62, 2),
    ("Wall Township", "NJ", 40.16, -74.10, 1), ("New York", "NY", 40.71, -74.01, 10),
    ("Buffalo", "NY", 42.89, -78.88, 3), ("Syracuse", "NY", 43.05, -76.15, 2),
    ("Albany", "NY", 42.65, -73.76, 2), ("Hartford", "CT", 41.77, -72.67, 3),
    ("New Haven", "CT", 41.31, -72.92, 2), ("Stamford", "CT", 41.05, -73.54, 2),
    ("Providence", "RI", 41.82, -71.41, 2), ("Boston", "MA", 42.36, -71.06, 7),
    ("Westborough", "MA", 42.27, -71.62, 2), ("Worcester", "MA", 42.26, -71.80, 2),
    ("Springfield MA", "MA", 42.10, -72.59, 2), ("Manchester", "NH", 42.99, -71.46, 2),
    ("Concord", "NH", 43.21, -71.54, 1), ("Burlington", "VT", 44.48, -73.21, 1),
    ("Montpelier", "VT", 44.26, -72.58, 1), ("Portland ME", "ME", 43.66, -70.26, 2),
    ("Bangor", "ME", 44.80, -68.77, 1), ("Charleston WV", "WV", 38.35, -81.63, 1),
    ("Morgantown", "WV", 39.63, -79.96, 1), ("Redmond", "WA", 47.67, -122.12, 3),
    ("Hillsboro", "OR", 45.52, -122.99, 2), ("Sunnyvale", "CA", 37.37, -122.04, 4),
    ("Rocklin", "CA", 38.79, -121.24, 1), ("Troutdale", "OR", 45.54, -122.39, 1),
]

#: Contiguous-U.S. state adjacency (used to plan shipping itineraries).
STATE_ADJACENCY: "dict[str, tuple[str, ...]]" = {
    "WA": ("OR", "ID"), "OR": ("WA", "ID", "CA", "NV"),
    "CA": ("OR", "NV", "AZ"), "NV": ("OR", "CA", "ID", "UT", "AZ"),
    "ID": ("WA", "OR", "NV", "UT", "MT", "WY"), "UT": ("NV", "ID", "WY", "CO", "AZ", "NM"),
    "AZ": ("CA", "NV", "UT", "NM", "CO"), "MT": ("ID", "WY", "ND", "SD"),
    "WY": ("ID", "MT", "SD", "NE", "CO", "UT"), "CO": ("WY", "NE", "KS", "OK", "NM", "UT", "AZ"),
    "NM": ("AZ", "UT", "CO", "OK", "TX"), "ND": ("MT", "SD", "MN"),
    "SD": ("ND", "MT", "WY", "NE", "IA", "MN"), "NE": ("SD", "WY", "CO", "KS", "MO", "IA"),
    "KS": ("NE", "CO", "OK", "MO"), "OK": ("KS", "CO", "NM", "TX", "AR", "MO"),
    "TX": ("NM", "OK", "AR", "LA"), "MN": ("ND", "SD", "IA", "WI"),
    "IA": ("MN", "SD", "NE", "MO", "IL", "WI"), "MO": ("IA", "NE", "KS", "OK", "AR", "TN", "KY", "IL"),
    "AR": ("MO", "OK", "TX", "LA", "MS", "TN"), "LA": ("TX", "AR", "MS"),
    "WI": ("MN", "IA", "IL", "MI"), "IL": ("WI", "IA", "MO", "KY", "IN"),
    "MI": ("WI", "IN", "OH"), "IN": ("IL", "MI", "OH", "KY"),
    "OH": ("MI", "IN", "KY", "WV", "PA"), "KY": ("IL", "IN", "OH", "WV", "VA", "TN", "MO"),
    "TN": ("KY", "VA", "NC", "GA", "AL", "MS", "AR", "MO"), "MS": ("LA", "AR", "TN", "AL"),
    "AL": ("MS", "TN", "GA", "FL"), "GA": ("AL", "TN", "NC", "SC", "FL"),
    "FL": ("AL", "GA"), "SC": ("GA", "NC"), "NC": ("SC", "GA", "TN", "VA"),
    "VA": ("NC", "TN", "KY", "WV", "MD", "DC"), "WV": ("OH", "KY", "VA", "MD", "PA"),
    "MD": ("VA", "WV", "PA", "DE", "DC"), "DC": ("VA", "MD"),
    "DE": ("MD", "PA", "NJ"), "PA": ("OH", "WV", "MD", "DE", "NJ", "NY"),
    "NJ": ("DE", "PA", "NY"), "NY": ("PA", "NJ", "CT", "MA", "VT"),
    "CT": ("NY", "MA", "RI"), "RI": ("CT", "MA"),
    "MA": ("NY", "CT", "RI", "VT", "NH"), "VT": ("NY", "MA", "NH"),
    "NH": ("VT", "MA", "ME"), "ME": ("NH",),
}

#: CLLI city abbreviations matching the ones the paper shows; other
#: cities get synthesized codes.
_KNOWN_CLLI = {
    "San Diego": "SNDG", "Los Angeles": "LSAN", "Nashville": "NSVL",
    "Santa Cruz": "SNTC", "Vista": "VIST", "Azusa": "AZUS",
    "Sunnyvale": "SNVA", "Rocklin": "RCKL", "Las Vegas": "LSVK",
    "Hinsdale": "HCHL", "New Berlin": "NWBL", "Southfield": "SFLD",
    "St. Louis": "STLS", "Bloomington": "BLTN", "Omaha": "OMAL",
    "Syracuse": "ESYR", "Aurora": "AURS", "West Jordan": "WJRD",
    "El Paso": "ELSS", "Houston": "HSTW", "Baton Rouge": "BTRH",
    "Miami": "MIAM", "Orlando": "ORLH", "Charlotte": "CHRX",
    "Alpharetta": "ALPS", "Chantilly": "CHNT", "Johnstown": "JHTW",
    "Wall Township": "WLTP", "Westborough": "WSBO", "Bridgewater": "BBTP",
    "Redmond": "RDME", "Hillsboro": "HLBO",
}

_VOWELS = set("AEIOU")


def great_circle_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two coordinates, in km (haversine)."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def clli_city_code(city_name: str) -> str:
    """Synthesize the 4-letter city part of a CLLI code.

    Known metros use the abbreviation the paper shows (e.g. San Diego →
    ``SNDG``); others get a deterministic consonant-skeleton code.
    """
    base = city_name.split(",")[0]
    known = _KNOWN_CLLI.get(base)
    if known:
        return known
    letters = [c for c in base.upper() if c.isalpha()]
    if not letters:
        raise TopologyError(f"cannot derive CLLI from {city_name!r}")
    skeleton = [letters[0]] + [c for c in letters[1:] if c not in _VOWELS]
    if len(skeleton) < 4:
        skeleton += [c for c in letters[1:] if c in _VOWELS]
    code = "".join(skeleton)[:4]
    return code.ljust(4, "X")


class Geography:
    """Queryable view over the synthetic U.S. metro database."""

    def __init__(self, cities: "list[City] | None" = None) -> None:
        self.cities = cities if cities is not None else [
            City(name, state, lat, lon, weight)
            for name, state, lat, lon, weight in _CITY_ROWS
        ]
        self._by_state: dict[str, list[City]] = {}
        for city in self.cities:
            self._by_state.setdefault(city.state, []).append(city)
        self._by_key = {c.key: c for c in self.cities}
        self._by_name: dict[str, City] = {}
        for c in self.cities:
            self._by_name.setdefault(c.name, c)

    def states(self) -> "list[str]":
        """All states with at least one metro, sorted."""
        return sorted(self._by_state)

    def cities_in(self, state: str) -> "list[City]":
        """Metros in a state, largest first."""
        try:
            cities = self._by_state[state]
        except KeyError as exc:
            raise TopologyError(f"unknown state {state!r}") from exc
        return sorted(cities, key=lambda c: (-c.weight, c.name))

    def city(self, name: str, state: "str | None" = None) -> City:
        """Look up a metro by name (optionally disambiguated by state)."""
        if state is not None:
            found = self._by_key.get(f"{name}, {state}")
        else:
            found = self._by_name.get(name)
        if found is None:
            raise TopologyError(f"unknown city {name!r}")
        return found

    def distance_km(self, a: City, b: City) -> float:
        """Great-circle distance between two metros."""
        return great_circle_km(a.lat, a.lon, b.lat, b.lon)

    def nearest(self, lat: float, lon: float, limit: int = 1) -> "list[City]":
        """The *limit* metros nearest to a coordinate."""
        ranked = sorted(
            self.cities, key=lambda c: great_circle_km(lat, lon, c.lat, c.lon)
        )
        return ranked[:limit]

    def clli(self, city: City, building: int = 1) -> str:
        """Full CLLI-style building code, e.g. ``SNDGCA01``."""
        return f"{clli_city_code(city.name)}{city.state}{building:02d}"

    def shipping_route(self, origin_state: str, dest_state: str) -> "list[str]":
        """A truck route between two states: BFS over state adjacency."""
        if origin_state not in STATE_ADJACENCY:
            raise TopologyError(f"unknown state {origin_state!r}")
        if dest_state not in STATE_ADJACENCY:
            raise TopologyError(f"unknown state {dest_state!r}")
        if origin_state == dest_state:
            return [origin_state]
        frontier = [origin_state]
        parent: dict[str, str] = {origin_state: ""}
        while frontier:
            nxt = []
            for state in frontier:
                for neighbor in STATE_ADJACENCY[state]:
                    if neighbor in parent:
                        continue
                    parent[neighbor] = state
                    if neighbor == dest_state:
                        path = [neighbor]
                        while path[-1] != origin_state:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return path
                    nxt.append(neighbor)
            frontier = nxt
        raise TopologyError(f"no land route {origin_state} → {dest_state}")

    def scatter(self, city: City, rng: random.Random, radius_km: float = 15.0) -> "tuple[float, float]":
        """A random coordinate near a metro (e.g. a restaurant location)."""
        dist = rng.uniform(0, radius_km)
        bearing = rng.uniform(0, 2 * math.pi)
        dlat = (dist / EARTH_RADIUS_KM) * math.cos(bearing)
        dlon = (dist / EARTH_RADIUS_KM) * math.sin(bearing) / max(
            math.cos(math.radians(city.lat)), 0.1
        )
        return city.lat + math.degrees(dlat), city.lon + math.degrees(dlon)


#: A module-level default instance; the database is immutable in practice.
DEFAULT_GEOGRAPHY = Geography()
