"""Physical fiber rings and the logical star overlay.

§2.1 of the paper: access networks are physically built of hierarchical
fiber rings (core rings joining BackboneCOs and AggCOs, edge rings
joining AggCOs and EdgeCOs), but ISPs run point-to-point Ethernet over
bundled fiber pairs in those rings, producing a *logical* dual-star
topology.  The ring matters to the simulation because a logical
AggCO→EdgeCO link physically follows the ring arc, so its propagation
delay is the arc length, not the crow-flies distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.topology.co import CentralOffice
from repro.topology.geography import Geography


@dataclass
class FiberRing:
    """An ordered cycle of COs sharing one physical fiber ring."""

    name: str
    members: "list[CentralOffice]"
    geography: Geography = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise TopologyError(f"ring {self.name!r} needs at least two COs")
        if self.geography is None:
            from repro.topology.geography import DEFAULT_GEOGRAPHY

            self.geography = DEFAULT_GEOGRAPHY
        self._index = {co.uid: i for i, co in enumerate(self.members)}
        if len(self._index) != len(self.members):
            raise TopologyError(f"ring {self.name!r} repeats a CO")

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, co: CentralOffice) -> bool:
        return co.uid in self._index

    def segment_km(self, i: int) -> float:
        """Length of the ring segment from member i to member i+1."""
        a = self.members[i]
        b = self.members[(i + 1) % len(self.members)]
        # A fiber route is never the crow-flies line; 1.4x is a common
        # road-route inflation factor.
        return 1.4 * self.geography.distance_km(a.city, b.city)

    def circumference_km(self) -> float:
        """Total ring length."""
        return sum(self.segment_km(i) for i in range(len(self.members)))

    def arc_km(self, a: CentralOffice, b: CentralOffice) -> float:
        """Shortest arc along the ring between two member COs.

        This is the physical length of a bundled fiber pair patched
        between the two COs, hence the delay of their logical link.
        """
        try:
            i, j = self._index[a.uid], self._index[b.uid]
        except KeyError as exc:
            raise TopologyError(f"CO not on ring {self.name!r}") from exc
        if i == j:
            return 0.0
        lo, hi = min(i, j), max(i, j)
        one_way = sum(self.segment_km(k) for k in range(lo, hi))
        return min(one_way, self.circumference_km() - one_way)

    def star_links(self, hubs: "list[CentralOffice]") -> "list[tuple[CentralOffice, CentralOffice, float]]":
        """Logical star links from each hub to every non-hub member.

        Returns ``(hub, leaf, length_km)`` triples — the dual-star
        overlay of Fig 3b when two hubs share the ring.
        """
        hub_ids = {h.uid for h in hubs}
        for hub in hubs:
            if hub not in self:
                raise TopologyError(f"hub {hub.uid} is not on ring {self.name!r}")
        links = []
        for member in self.members:
            if member.uid in hub_ids:
                continue
            for hub in hubs:
                links.append((hub, member, self.arc_km(hub, member)))
        return links
