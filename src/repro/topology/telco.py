"""Telco (AT&T-like) wireline topology generator (the §6 case study).

Architectural features reproduced from the paper:

* one fortified BackboneCO per region housing **two** backbone routers,
  the only regional routers with rDNS (``cr2.sd2ca.ip.att.net``);
* four aggregation routers in four AggCOs, fully meshed to both
  backbone routers, with **no rDNS**;
* dense EdgeCOs (a legacy of copper loop-length limits), each with two
  unnamed routers redundantly homed to the sub-region's two agg
  routers;
* IP-DSLAM/ONT last-mile devices whose addresses carry
  ``…lightspeed.<clli6>.sbcglobal.net`` rDNS — the probe targets of
  Appendix C;
* EdgeCO/AggCO router interfaces allocated from a handful of /24s per
  region (Table 6), which is what makes the prefix-discovery step of
  the inference pipeline possible;
* an MPLS core that hides agg routers from through traffic but reveals
  them to probes targeted at infrastructure addresses (DPR, Table 5);
* ICMP filtering: regional routers only answer probes sourced inside
  the ISP's address space; last-mile devices additionally refuse
  *direct* echo from outside (hence the TTL-limited echo trick, §6.3).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.net.addresses import Ipv4Allocator
from repro.net.network import Network
from repro.net.router import ReplyPolicy, Router
from repro.topology.co import CentralOffice, CoKind, Region
from repro.topology.geography import City, Geography, clli_city_code
from repro.topology.isp import BaseIsp
from repro.topology.cable import REGION_METRIC

#: Address space the telco considers "internal" for ICMP filtering.
TELCO_INTERNAL_PREFIXES = (
    ipaddress.ip_network("12.0.0.0/8"),
    ipaddress.ip_network("71.128.0.0/10"),
    ipaddress.ip_network("75.16.0.0/12"),
    ipaddress.ip_network("107.128.0.0/9"),
)


@dataclass(frozen=True)
class TelcoRegionSpec:
    """Recipe for one telco regional network."""

    anchor: "tuple[str, str]"
    n_edge: int
    #: Extra EdgeCO sites at specific distant metros (El Centro /
    #: Calexico in San Diego — the Table 2 latency outliers).
    distant_sites: "tuple[tuple[str, str], ...]" = ()


class TelcoIsp(BaseIsp):
    """An AT&T-like telco built from :class:`TelcoRegionSpec` recipes."""

    def __init__(
        self,
        network: Network,
        geography: "Geography | None" = None,
        seed: int = 0,
        name: str = "att",
        asn: int = 7018,
    ) -> None:
        super().__init__(
            name, asn, pool="12.0.0.0/10", network=network,
            geography=geography, seed=seed,
        )
        self.infra_allocator = Ipv4Allocator("71.128.0.0/10")
        self.agg_allocator = Ipv4Allocator("75.16.0.0/12")
        self.lastmile_allocator = Ipv4Allocator("107.128.0.0/9")
        #: Region tag (clli6, e.g. ``sndgca``) -> Region.
        self.region_tags: dict[str, str] = {}
        #: Ground truth for Table 6: region -> {"edge": [...], "agg": [...]}.
        self.router_prefixes: dict[str, dict[str, list]] = {}
        self._used_clli_telco: set[str] = set()
        #: Per-DSLAM allocators over the upper half of its lspgw /24,
        #: used to number measurement hosts (WiFi hotspots, Ark/Atlas
        #: probes) like any other lightspeed customer.
        self._dslam_host_allocs: dict[str, Ipv4Allocator] = {}
        #: role == "dslam" routers per region, for VP placement.
        self.dslams_by_region: dict[str, list[Router]] = {}
        #: Stand-in for the M-Lab NDT dataset: per-region residential
        #: addresses a third party could learn from speed-test logs.
        self.ndt_dataset: dict[str, list[str]] = {}
        for city_name, state in [
            ("Los Angeles", "CA"), ("San Francisco", "CA"), ("Dallas", "TX"),
            ("Chicago", "IL"), ("Atlanta", "GA"), ("New York", "NY"),
            ("Denver", "CO"), ("Seattle", "WA"),
        ]:
            self.add_backbone_pop(self.geography.city(city_name, state))
        self.mesh_backbone(extra_chords=3)

    def ndt_customer_addresses(self, region_tag: str) -> "list[str]":
        """Residential customer addresses "seen in NDT tests" (§6.3)."""
        return list(self.ndt_dataset.get(region_tag, []))

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def backbone_rdns_for(self, pop, router, iface_index):
        code = clli_city_code(pop.city.name).lower()
        return f"cr{iface_index % 4 + 1}.{code[0]}{code[2]}1{pop.city.state.lower()}.ip.{self.name}.net"

    @staticmethod
    def region_tag_for(city: City) -> str:
        """The clli6 region tag (``sndgca`` for San Diego, CA)."""
        return (clli_city_code(city.name) + city.state).lower()

    @staticmethod
    def backbone_tag_for(city: City) -> str:
        """The short backbone-router tag (``sd2ca`` style)."""
        code = clli_city_code(city.name).lower()
        return f"{code[0]}{code[2]}2{city.state.lower()}"

    def lspgw_hostname(self, address, region_tag: str) -> str:
        """The lightspeed gateway rDNS name for a last-mile address."""
        dashed = str(address).replace(".", "-")
        return f"{dashed}.lightspeed.{region_tag}.sbcglobal.net"

    # ------------------------------------------------------------------
    # Region construction
    # ------------------------------------------------------------------
    def build_region(self, spec: TelcoRegionSpec) -> Region:
        """Build one telco regional network."""
        anchor = self.geography.city(*spec.anchor)
        tag = self.region_tag_for(anchor)
        if tag in self.regions:
            raise TopologyError(f"telco region {tag!r} already built")
        region = Region(tag, self.name)
        region.agg_type = "two"  # one BackboneCO, two agg pairs (Fig 13b)
        self.regions[tag] = region
        self.region_tags[tag] = tag

        internal = ReplyPolicy(internal_only=TELCO_INTERNAL_PREFIXES)
        # Agg routers reply from their loopback (in the agg /24), which
        # is why the paper's DPR traces show interior hops inside one
        # AggCO prefix (Table 5 / Table 6).
        agg_policy = ReplyPolicy(
            reply_from="loopback", internal_only=TELCO_INTERNAL_PREFIXES
        )
        bb_policy = ReplyPolicy(reply_from="loopback")
        lastmile = ReplyPolicy(echo_internal_only=TELCO_INTERNAL_PREFIXES)

        # --- BackboneCO: one building, two always-responding routers.
        bb_co = self.new_co(region, CoKind.BACKBONE, anchor,
                            self._region_clli(anchor), level=0)
        bb_tag = self.backbone_tag_for(anchor)
        bb_routers = []
        bb_block = self.allocator.allocate_subnet(24)
        bb_alloc = Ipv4Allocator(bb_block)
        for i in (1, 2):
            router = self.new_router(role="backbone", region_name=tag,
                                     policy=bb_policy)
            bb_co.add_router(router)
            loop = bb_alloc.allocate_host()
            iface = self.network.add_interface(router, loop, 32)
            router.loopback = iface.address
            self.network.rdns.set(
                iface.address, f"cr{i}.{bb_tag}.ip.{self.name}.net"
            )
            bb_routers.append(router)
        self._bb_interconnect(bb_routers, bb_alloc)

        # --- Four agg routers in four AggCOs, split into two pairs.
        agg_block = self.agg_allocator.allocate_subnet(24)
        agg_alloc = Ipv4Allocator(agg_block)
        agg_pairs: "list[list[tuple[CentralOffice, Router]]]" = [[], []]
        for i in range(4):
            site = self._agg_site(anchor, i)
            agg_co = self.new_co(region, CoKind.AGG, site,
                                 self._region_clli(site), level=1)
            router = self.new_router(role="agg", region_name=tag,
                                     policy=agg_policy)
            agg_co.add_router(router)
            loop = agg_alloc.allocate_host()
            loop_iface = self.network.add_interface(router, loop, 32)
            router.loopback = loop_iface.address
            agg_pairs[i // 2].append((agg_co, router))
            for bb_router in bb_routers:  # full BB<->agg mesh (§6.2)
                addr_a, addr_b, _ = agg_alloc.allocate_p2p(31)
                dist = 1.4 * self.geography.distance_km(anchor, site)
                self.network.connect(bb_router, router, addr_a, addr_b,
                                     prefixlen=31, length_km=max(dist, 2.0),
                                     metric=REGION_METRIC)
                region.add_edge(bb_co, agg_co)

        # --- EdgeCOs: two routers each, homed to one agg pair.
        # Each EdgeCO consumes ~8 /31 subnets of router-interface space;
        # ~8 COs fit per /24 (San Diego's 42 EdgeCOs need 6, Table 6).
        n_edge_prefixes = max(1, -(-spec.n_edge // 8))
        edge_blocks = [self.infra_allocator.allocate_subnet(24)
                       for _ in range(n_edge_prefixes)]
        self.router_prefixes[tag] = {"edge": edge_blocks, "agg": [agg_block]}
        edge_allocs = [Ipv4Allocator(b) for b in edge_blocks]
        sites = self._edge_sites(spec, anchor)
        agg_routers = [r for pair in agg_pairs for _co, r in pair]
        edge_routers: "list[Router]" = []
        region_block_targets = []
        for i, site in enumerate(sites):
            edge_co = self.new_co(region, CoKind.EDGE, site,
                                  self._region_clli(site), level=2)
            pair = agg_pairs[i % 2]
            ers = []
            alloc = edge_allocs[i % len(edge_allocs)]
            for _ in range(2):
                er = self.new_router(role="edge", region_name=tag,
                                     policy=internal)
                edge_co.add_router(er)
                ers.append(er)
                edge_routers.append(er)
                for agg_co, agg_router in pair:
                    addr_a, addr_b, _ = alloc.allocate_p2p(31)
                    # Legacy telco fiber rarely runs point to point; a
                    # 2.2x route factor reflects loops through multiple
                    # intermediate offices (and produces Table 2's
                    # latency spread).
                    dist = 2.2 * self.geography.distance_km(agg_co.city, site)
                    self.network.connect(agg_router, er, addr_a, addr_b,
                                         prefixlen=31, length_km=max(dist, 2.0),
                                         metric=REGION_METRIC)
                    region.add_edge(agg_co, edge_co)
            # ER1 <-> ER2 inside the CO.
            addr_a, addr_b, _ = alloc.allocate_p2p(31)
            self.network.connect(ers[0], ers[1], addr_a, addr_b,
                                 prefixlen=31, length_km=0.1,
                                 metric=REGION_METRIC)
            self._attach_lastmile(region, tag, edge_co, ers, alloc,
                                  lastmile, region_block_targets)

        # MPLS: agg routers hidden except for probes to regional infra.
        infra_routers = bb_routers + agg_routers + edge_routers
        self.network.mpls.add_lsr_rule(agg_routers, infra_routers)

        # Entries: the BackboneCO homes to the two nearest backbone PoPs.
        for pop in self.nearest_backbone_pops(anchor, count=2):
            dist = 1.4 * self.geography.distance_km(pop.city, anchor)
            for bb_router in bb_routers:
                self.link_cos(None, pop.routers[0], None, bb_router,
                              length_km=max(dist, 2.0), p2p_prefixlen=31,
                              metric=REGION_METRIC)
            region.add_entry(pop.uid, bb_co)
        for block in edge_blocks + [agg_block]:
            self.announce(tag, block)
        return region

    # -- helpers ---------------------------------------------------------
    def _region_clli(self, site: City) -> str:
        base = self.geography.clli(site, 1)
        bump = 1
        while base in self._used_clli_telco:
            bump += 1
            base = self.geography.clli(site, bump)
        self._used_clli_telco.add(base)
        return base

    def _bb_interconnect(self, bb_routers, bb_alloc) -> None:
        addr_a, addr_b, _ = bb_alloc.allocate_p2p(31)
        self.network.connect(bb_routers[0], bb_routers[1], addr_a, addr_b,
                             prefixlen=31, length_km=0.1)

    def _agg_site(self, anchor: City, index: int) -> City:
        lat, lon = self.geography.scatter(anchor, self.rng, radius_km=20.0)
        return City(f"{anchor.name} Agg{index + 1}", anchor.state, lat, lon)

    def _edge_sites(self, spec: TelcoRegionSpec, anchor: City) -> "list[City]":
        sites = []
        for name, state in spec.distant_sites:
            sites.append(self.geography.city(name, state))
        for i in range(spec.n_edge - len(sites)):
            lat, lon = self.geography.scatter(anchor, self.rng, radius_km=55.0)
            sites.append(City(f"{anchor.name} E{i + 1:02d}", anchor.state,
                              lat, lon))
        return sites

    def _attach_lastmile(self, region, tag, edge_co, edge_routers, alloc,
                         lastmile_policy, targets) -> None:
        """Create the CO's IP-DSLAM and sample customer gateways."""
        dslam = self.new_router(role="dslam", region_name=tag,
                                policy=lastmile_policy)
        dslam.co = edge_co
        self.dslams_by_region.setdefault(tag, []).append(dslam)
        lspgw_block = self.lastmile_allocator.allocate_subnet(24)
        base = int(lspgw_block.network_address)
        # The IP-DSLAM answers on several lightspeed-named gateway
        # addresses — these are the lspgw probe targets of App. C.
        for offset in (1, 2, 3, 4):
            gw_addr = ipaddress.IPv4Address(base + offset)
            iface = self.network.add_interface(dslam, gw_addr, 24)
            self.network.rdns.set(
                iface.address, self.lspgw_hostname(gw_addr, tag)
            )
        # The DSLAM dual-homes to both EdgeCO routers (that shared
        # last-mile link is how §6.2 groups the two routers into a CO).
        for er in edge_routers:
            addr_a, addr_b, _ = alloc.allocate_p2p(31)
            self.network.connect(er, dslam, addr_a, addr_b, prefixlen=31,
                                 length_km=1.0, extra_delay_ms=0.2,
                                 metric=REGION_METRIC)
        self.network.add_prefix_route(lspgw_block, dslam)
        # Sample residential customers behind the DSLAM.  They answer
        # echo from anywhere but carry no rDNS — the §6.3 campaign finds
        # them through the M-Lab NDT dataset instead (see
        # :meth:`ndt_customer_addresses`).
        host = self.new_router(role="customer", region_name=tag)
        host.co = edge_co
        for offset in (11, 12, 13):
            addr = ipaddress.IPv4Address(base + offset)
            self.network.add_interface(host, addr, 24)
            self.ndt_dataset.setdefault(tag, []).append(str(addr))
        # The DSL drop to the customer is numbered from the lspgw /24
        # itself — customer space, not router-infrastructure space.
        self.network.connect(
            dslam, host,
            ipaddress.IPv4Address(base + 8), ipaddress.IPv4Address(base + 9),
            prefixlen=31, length_km=2.0, extra_delay_ms=2.0,
        )
        self.announce(tag, lspgw_block)
        upper_half = list(lspgw_block.subnets(new_prefix=25))[1]
        self._dslam_host_allocs[dslam.uid] = Ipv4Allocator(upper_half)

    def vp_subnet_for(self, dslam: Router):
        """A /30 inside the DSLAM's lspgw /24 for a measurement host.

        Measurement VPs on AT&T last-miles get lightspeed-customer
        addresses, exactly like the real Ark/Atlas probes and WiFi
        hotspots the paper used.
        """
        try:
            alloc = self._dslam_host_allocs[dslam.uid]
        except KeyError as exc:
            raise TopologyError(f"{dslam.uid} is not a known DSLAM") from exc
        return alloc.allocate_subnet(30)


TELCO_REGION_SPECS = [
    TelcoRegionSpec(("San Diego", "CA"), 42,
                    distant_sites=(("El Centro", "CA"), ("Calexico", "CA"),
                                   ("Vista", "CA"))),
    TelcoRegionSpec(("Los Angeles", "CA"), 16),
    TelcoRegionSpec(("Santa Cruz", "CA"), 6),
    TelcoRegionSpec(("Sacramento", "CA"), 10),
    TelcoRegionSpec(("Nashville", "TN"), 12),
    TelcoRegionSpec(("Dallas", "TX"), 14),
    TelcoRegionSpec(("Houston", "TX"), 12),
    TelcoRegionSpec(("Atlanta", "GA"), 12),
]


def build_att_like(network: Network, geography: "Geography | None" = None,
                   seed: int = 0) -> TelcoIsp:
    """Build the AT&T-like telco with its regional networks."""
    isp = TelcoIsp(network, geography=geography, seed=seed)
    for spec in TELCO_REGION_SPECS:
        isp.build_region(spec)
    return isp
