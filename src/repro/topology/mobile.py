"""Mobile carrier models (the §7 case study).

Mobile access networks are modelled separately from the wireline
:class:`~repro.net.network.Network` because phones attach to them over
the air and the paper's mobile analysis consumes only three
observables: the phone's IPv6 /64, the IPv6 hops of traceroutes out of
the carrier, and end-to-end latency.  Each carrier synthesizes those
observables from its ground-truth topology:

* **AT&T-like**: 11 national regions, each one mobile EdgeCO
  (datacenter) with several packet gateways (PGWs); region encoded in
  user bits 32–39 and router bits 32–47, PGW in router bits 48–51
  (Fig 16a, Table 7).
* **Verizon-like**: 12 backbone regions each aggregating a few wireless
  EdgeCOs; backbone region in user bits 16–31, EdgeCO in bits 32–39,
  PGW in bits 40–43; routers under a distinct /32 with EdgeCO hints in
  bits 64–75 (Fig 16b, Table 8); ``alter.net`` backbone rDNS; per-EdgeCO
  speedtest servers (``cavt.ost.myvzw.com``).
* **T-Mobile-like**: many metro sites, each with its own PGW pool and
  *multiple third-party backbone providers*; PGW in user bits 32–39 and
  ULA router bits 32–47 (Fig 16c); the Gulf-coast coverage quirk that
  produced Fig 18c's Florida/Louisiana latency anomaly.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.measure.traceroute import Hop, TraceResult
from repro.net.addresses import Ipv6FieldCodec
from repro.topology.geography import City, Geography

#: Road-route inflation over great-circle distance.
_ROUTE_FACTOR = 1.4
#: km per ms one-way in fiber.
_KM_PER_MS = 200.0
#: Fixed LTE radio-access latency (one way, ms).
_RAN_ONE_WAY_MS = 15.0
#: Packet-core processing per direction, ms.
_CORE_MS = 4.0


@dataclass(frozen=True)
class MobileRegionSpec:
    """Ground truth for one mobile region / EdgeCO site."""

    name: str
    city: "tuple[str, str]"
    pgw_count: int
    region_bits: int
    #: Backbone attachment: a metro for single-backbone carriers, or a
    #: tuple of provider names for multi-backbone (T-Mobile) carriers.
    backbone: str = ""
    backbone_city: "tuple[str, str] | None" = None
    providers: "tuple[str, ...]" = ()


@dataclass
class MobileAttachment:
    """One registration of a phone with the packet core.

    Re-created every time the phone exits airplane mode; the PGW (and
    for T-Mobile the backbone provider) may change across attachments
    while the region follows the phone's location.
    """

    carrier_name: str
    region: MobileRegionSpec
    pgw_index: int
    user_prefix: ipaddress.IPv6Network
    cell_lat: float
    cell_lon: float
    provider: str = ""


class MobileCarrier:
    """Base class: region selection, attachment cycling, latency."""

    name: str = ""

    def __init__(self, regions: "list[MobileRegionSpec]",
                 geography: Geography, seed: int = 0) -> None:
        if not regions:
            raise TopologyError("a mobile carrier needs at least one region")
        self.regions = regions
        self.geography = geography
        self.rng = random.Random(f"{self.name}|{seed}")
        self._attach_counters: dict[str, int] = {}
        self._region_cities = {
            spec.name: geography.city(*spec.city) for spec in regions
        }
        #: State-code overrides for coverage (e.g. T-Mobile's Gulf quirk).
        self.coverage_overrides: dict[str, str] = {}

    # -- region selection -------------------------------------------------
    def region_for(self, lat: float, lon: float) -> MobileRegionSpec:
        """The region serving a coordinate (nearest site, with overrides)."""
        state = self.geography.nearest(lat, lon, 1)[0].state
        override = self.coverage_overrides.get(state)
        if override is not None:
            return self._region_named(override)
        best = min(
            self.regions,
            key=lambda spec: self._km(lat, lon, self._region_cities[spec.name]),
        )
        return best

    def _region_named(self, name: str) -> MobileRegionSpec:
        for spec in self.regions:
            if spec.name == name:
                return spec
        raise TopologyError(f"{self.name} has no region {name!r}")

    def _km(self, lat: float, lon: float, city: City) -> float:
        from repro.topology.geography import great_circle_km

        return great_circle_km(lat, lon, city.lat, city.lon)

    # -- attachment --------------------------------------------------------
    def attach(self, lat: float, lon: float) -> MobileAttachment:
        """Register with the packet core from a location.

        PGWs are handed out round-robin per region, matching the
        paper's observation that PGW bits cycle on airplane-mode exits.
        """
        region = self.region_for(lat, lon)
        count = self._attach_counters.get(region.name, 0)
        self._attach_counters[region.name] = count + 1
        pgw_index = count % region.pgw_count
        provider = ""
        if region.providers:
            provider = region.providers[count % len(region.providers)]
        prefix = self.user_prefix_for(region, pgw_index)
        return MobileAttachment(
            carrier_name=self.name,
            region=region,
            pgw_index=pgw_index,
            user_prefix=prefix,
            cell_lat=lat,
            cell_lon=lon,
            provider=provider,
        )

    # -- carrier-specific hooks ---------------------------------------------
    def user_prefix_for(self, region: MobileRegionSpec, pgw_index: int) -> ipaddress.IPv6Network:
        raise NotImplementedError

    def carrier_hops(self, attachment: MobileAttachment) -> "list[Hop]":
        """The in-carrier hops of a traceroute (carrier-specific)."""
        raise NotImplementedError

    def backbone_city(self, attachment: MobileAttachment) -> City:
        """Where the carrier hands traffic to the backbone."""
        spec = attachment.region
        if spec.backbone_city is not None:
            return self.geography.city(*spec.backbone_city)
        return self._region_cities[spec.name]

    # -- measurement -------------------------------------------------------
    def path_rtt_ms(self, attachment: MobileAttachment, dst_city: City) -> float:
        """End-to-end RTT from the phone to a host at *dst_city*.

        RAN backhaul from the cell to the serving EdgeCO rides leased
        regional circuits with per-segment regeneration, so it costs
        noticeably more per km than long-haul backbone fiber — this is
        what makes a huge region (AT&T, Fig 18a) hurt: a phone far from
        its mobile datacenter pays the inflated backhaul both ways.
        """
        region_city = self._region_cities[attachment.region.name]
        bb_city = self.backbone_city(attachment)
        backhaul_km = self._km(
            attachment.cell_lat, attachment.cell_lon, region_city
        )
        core_km = (
            self.geography.distance_km(region_city, bb_city)
            + self.geography.distance_km(bb_city, dst_city)
        )
        backhaul_extra_ms = min(25.0, 0.01 * backhaul_km)
        one_way = (
            _RAN_ONE_WAY_MS
            + _CORE_MS
            + backhaul_extra_ms
            + (backhaul_km + core_km) * _ROUTE_FACTOR / _KM_PER_MS
        )
        return round(2.0 * one_way, 3)

    def traceroute(self, attachment: MobileAttachment, dst_address: str,
                   dst_city: "City | None" = None) -> TraceResult:
        """A traceroute from the phone to an external destination.

        Mobile networks block probes to internal infrastructure, so
        destinations must be outside the carrier (§7.1.1); the in-
        carrier hops are what the IPv6 analysis consumes.
        """
        hops = list(self.carrier_hops(attachment))
        total_rtt = (
            self.path_rtt_ms(attachment, dst_city)
            if dst_city is not None
            else 2 * (_RAN_ONE_WAY_MS + _CORE_MS) + 40.0
        )
        # Spread hop RTTs monotonically toward the destination RTT.
        named_seen = 0
        named_total = sum(1 for h in hops if h.address is not None)
        for i, hop in enumerate(hops):
            if hop.address is None:
                continue
            named_seen += 1
            frac = 0.4 + 0.5 * named_seen / (named_total + 1)
            hops[i] = Hop(hop.index, hop.address, hop.rdns,
                          round(total_rtt * frac, 3), hop.reply_ttl)
        final_index = hops[-1].index + 1 if hops else 1
        hops.append(Hop(final_index, dst_address, None, round(total_rtt, 3), 52))
        src = str(attachment.user_prefix.network_address)
        result = TraceResult(src, dst_address, hops, completed=True)
        result.vp_name = f"phone-{self.name}"
        return result

    def _iid(self, *key: object) -> int:
        """A deterministic 48-bit interface-id fragment."""
        return random.Random("|".join(str(k) for k in key)).getrandbits(48)


# ----------------------------------------------------------------------
# AT&T-like carrier
# ----------------------------------------------------------------------

ATT_USER_CODEC = Ipv6FieldCodec({"region": (32, 40)})
ATT_ROUTER_CODEC = Ipv6FieldCodec({"region": (32, 48), "pgw": (48, 52)})

ATT_MOBILE_REGIONS = [
    # (name, city, pgw count, router region bits) — Table 7.
    MobileRegionSpec("BTH", ("Seattle", "WA"), 2, 0x2030),
    MobileRegionSpec("CNC", ("San Francisco", "CA"), 5, 0x2040),
    MobileRegionSpec("VNN", ("Los Angeles", "CA"), 5, 0x2090),
    MobileRegionSpec("ALN", ("Dallas", "TX"), 5, 0x2010),
    MobileRegionSpec("HST", ("Houston", "TX"), 5, 0x20A0),
    MobileRegionSpec("CHC", ("Chicago", "IL"), 5, 0x20B0),
    MobileRegionSpec("AKR", ("Akron", "OH"), 3, 0x2000),
    MobileRegionSpec("ALP", ("Alpharetta", "GA"), 6, 0x2020),
    MobileRegionSpec("NYC", ("New York", "NY"), 4, 0x2050),
    MobileRegionSpec("ART", ("Ashburn", "VA"), 3, 0x2070),
    MobileRegionSpec("GSV", ("Jacksonville", "FL"), 3, 0x2080),
]

#: Explicit state coverage: phones register with their state's mobile
#: datacenter even when another is geographically closer, producing the
#: circuitous high-latency paths of Fig 18a.
ATT_STATE_COVERAGE = {
    "WA": "BTH", "OR": "BTH", "ID": "BTH",
    "NV": "CNC", "UT": "CNC",
    "CA": "VNN", "AZ": "VNN",
    "TX": "ALN", "OK": "ALN", "NM": "ALN", "KS": "ALN", "CO": "ALN",
    "LA": "HST", "AR": "HST", "MS": "HST",
    "IL": "CHC", "WI": "CHC", "MN": "CHC", "IA": "CHC", "MO": "CHC",
    "NE": "CHC", "SD": "CHC", "ND": "CHC", "IN": "CHC", "MI": "CHC",
    # The northern plains backhaul all the way to the Chicago mobile
    # datacenter — the circuitous paths behind Fig 18a's dark hexes.
    "MT": "CHC", "WY": "CHC",
    "OH": "AKR", "KY": "AKR", "WV": "AKR", "PA": "AKR",
    "GA": "ALP", "AL": "ALP", "TN": "ALP", "SC": "ALP", "NC": "ALP",
    "FL": "GSV",
    "NY": "NYC", "NJ": "NYC", "CT": "NYC", "MA": "NYC", "RI": "NYC",
    "VT": "NYC", "NH": "NYC", "ME": "NYC",
    "VA": "ART", "MD": "ART", "DE": "ART", "DC": "ART",
}

#: User-address region byte per region (the /40 hint of Fig 16a).
ATT_USER_REGION_BYTE = {
    spec.name: byte
    for spec, byte in zip(
        ATT_MOBILE_REGIONS,
        [0x61, 0x62, 0x6C, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6A],
    )
}


class AttMobileCarrier(MobileCarrier):
    """AT&T-like: 11 regions, one mobile EdgeCO each, own backbone."""

    name = "att-mobile"

    def __init__(self, geography: Geography, seed: int = 0) -> None:
        super().__init__(ATT_MOBILE_REGIONS, geography, seed)
        self.coverage_overrides = dict(ATT_STATE_COVERAGE)

    def user_prefix_for(self, region, pgw_index):
        base = ATT_USER_CODEC.encode(
            "2600:380::", region=ATT_USER_REGION_BYTE[region.name]
        )
        subnet = random.Random(
            f"att-sub|{region.name}|{pgw_index}|"
            f"{self._attach_counters.get(region.name, 0)}"
        ).getrandbits(24)
        value = int(base) | (subnet << (128 - 64))
        return ipaddress.IPv6Network((value, 64))

    def carrier_hops(self, attachment):
        region = attachment.region
        gw = attachment.user_prefix.network_address + self._iid(
            "att-gw", region.name
        )
        router_base = ATT_ROUTER_CODEC.encode(
            "2600:300::", region=region.region_bits, pgw=attachment.pgw_index
        )
        r1 = ipaddress.IPv6Address(int(router_base) | (0x0B0E << 64) | 1)
        r2 = ipaddress.IPv6Address(int(router_base) | (0x0B20 << 64) | 1)
        return [
            Hop(1, str(gw), None, None, 64),
            Hop(2, None),
            Hop(3, str(r1), None, None, 254),
            Hop(4, str(r2), None, None, 253),
        ]


# ----------------------------------------------------------------------
# Verizon-like carrier
# ----------------------------------------------------------------------

VZ_USER_CODEC = Ipv6FieldCodec(
    {"backbone": (16, 32), "edgeco": (32, 40), "pgw": (40, 44)}
)
#: Router-address fields (used by the analyzer; addresses themselves
#: are assembled hextet-wise in :meth:`VerizonLikeCarrier._router`).
VZ_ROUTER_CODEC = Ipv6FieldCodec({"family": (32, 48), "edgeco_hint": (64, 80)})

#: (name, city, backbone name, backbone city, bits "XXXX:bY", pgws) — Table 8.
_VZ_ROWS = [
    ("RDMEWA", ("Redmond", "WA"), "SEA", ("Seattle", "WA"), (0x100F, 0xB0), 1),
    ("HLBOOR", ("Hillsboro", "OR"), "SEA", ("Seattle", "WA"), (0x100F, 0xB1), 1),
    ("SNVACA", ("Sunnyvale", "CA"), "SJC", ("Sunnyvale", "CA"), (0x1010, 0xB0), 2),
    ("RCKLCA", ("Rocklin", "CA"), "SJC", ("Sunnyvale", "CA"), (0x1010, 0xB1), 2),
    ("LSVKNV", ("Las Vegas", "NV"), "SJC", ("Sunnyvale", "CA"), (0x1011, 0xB0), 2),
    ("AZUSCA", ("Azusa", "CA"), "LAX", ("Los Angeles", "CA"), (0x1012, 0xB0), 2),
    ("VISTCA", ("Vista", "CA"), "LAX", ("Los Angeles", "CA"), (0x1012, 0xB1), 3),
    ("HCHLIL", ("Hinsdale", "IL"), "CHI", ("Chicago", "IL"), (0x1008, 0xB0), 2),
    ("NWBLWI", ("New Berlin", "WI"), "CHI", ("Chicago", "IL"), (0x1008, 0xB1), 2),
    ("SFLDMI", ("Southfield", "MI"), "CHI", ("Chicago", "IL"), (0x1009, 0xB1), 1),
    ("STLSMO", ("St. Louis", "MO"), "CHI", ("Chicago", "IL"), (0x100A, 0xB0), 1),
    ("BLTNMN", ("Bloomington", "MN"), "CHI", ("Chicago", "IL"), (0x1014, 0xB1), 3),
    ("OMALNE", ("Omaha", "NE"), "CHI", ("Chicago", "IL"), (0x1014, 0xB0), 2),
    ("ESYRNY", ("Syracuse", "NY"), "NYC", ("New York", "NY"), (0x1002, 0xB1), 1),
    ("AURSCO", ("Aurora", "CO"), "DEN", ("Denver", "CO"), (0x100E, 0xB0), 2),
    ("WJRDUT", ("West Jordan", "UT"), "DEN", ("Denver", "CO"), (0x100E, 0xB1), 2),
    ("ELSSTX", ("El Paso", "TX"), "DLLSTX", ("Dallas", "TX"), (0x100C, 0xB2), 1),
    ("HSTWTX", ("Houston", "TX"), "DLLSTX", ("Dallas", "TX"), (0x100D, 0xB0), 2),
    ("BTRHLA", ("Baton Rouge", "LA"), "DLLSTX", ("Dallas", "TX"), (0x100D, 0xB1), 2),
    ("MIAMFL", ("Miami", "FL"), "MIA", ("Miami", "FL"), (0x100B, 0xB0), 2),
    ("ORLHFL", ("Orlando", "FL"), "MIA", ("Miami", "FL"), (0x100B, 0xB1), 2),
    ("CHRXNC", ("Charlotte", "NC"), "ATL", ("Atlanta", "GA"), (0x1004, 0xB0), 4),
    ("WHCKTN", ("Nashville", "TN"), "ATL", ("Atlanta", "GA"), (0x1004, 0xB1), 2),
    ("ALPSGA", ("Alpharetta", "GA"), "ATL", ("Atlanta", "GA"), (0x1005, 0xB0), 2),
    ("CHNTVA", ("Chantilly", "VA"), "IAD", ("Ashburn", "VA"), (0x1003, 0xB0), 2),
    ("JHTWPA", ("Johnstown", "PA"), "IAD", ("Ashburn", "VA"), (0x1003, 0xB1), 1),
    ("WLTPNJ", ("Wall Township", "NJ"), "NYC", ("New York", "NY"), (0x1017, 0xB0), 2),
    ("WSBOMA", ("Westborough", "MA"), "BOS", ("Boston", "MA"), (0x1000, 0xB0), 2),
    ("BBTPNJ", ("Bridgewater", "NJ"), "NYC", ("New York", "NY"), (0x1000, 0xB1), 1),
    ("PHLAPA", ("Philadelphia", "PA"), "PHIL", ("Philadelphia", "PA"), (0x1015, 0xB0), 2),
    ("ATLNGA", ("Savannah", "GA"), "ATL", ("Atlanta", "GA"), (0x1005, 0xB1), 1),
    ("SANTTX", ("San Antonio", "TX"), "DLLSTX", ("Dallas", "TX"), (0x100C, 0xB0), 2),
]

VERIZON_REGIONS = [
    MobileRegionSpec(
        name, city, pgws, (bits[0] << 8) | bits[1],
        backbone=bb_name, backbone_city=bb_city,
    )
    for name, city, bb_name, bb_city, bits, pgws in _VZ_ROWS
]


class VerizonLikeCarrier(MobileCarrier):
    """Verizon-like: EdgeCOs grouped under shared backbone regions."""

    name = "verizon"

    def user_prefix_for(self, region, pgw_index):
        backbone_bits = region.region_bits >> 8
        edgeco_bits = region.region_bits & 0xFF
        base = VZ_USER_CODEC.encode(
            "2600::", backbone=backbone_bits, edgeco=edgeco_bits, pgw=pgw_index
        )
        subnet = random.Random(
            f"vz-sub|{region.name}|{pgw_index}|"
            f"{self._attach_counters.get(region.name, 0)}"
        ).getrandbits(20)
        value = int(base) | (subnet << (128 - 64))
        return ipaddress.IPv6Network((value, 64))

    def _router(self, family: int, region: MobileRegionSpec, site_bits: int) -> str:
        """A packet-core router address shaped like Fig 16b's hops.

        Hextet layout: ``2001:4888:<family>:<site>:<62X hint>:1::`` —
        the family hextet (0x65/0x6f) sits in bits 32–47, the per-EdgeCO
        hint in bits 64–79, matching the fields the paper's analysis
        keys on.
        """
        hint = 0x620 + self.regions.index(region)
        value = (
            (0x20014888 << 96)
            | (family << 80)
            | (site_bits << 64)
            | (hint << 48)
            | (1 << 32)
        )
        return str(ipaddress.IPv6Address(value))

    def carrier_hops(self, attachment):
        region = attachment.region
        gw = attachment.user_prefix.network_address + self._iid(
            "vz-gw", region.name, attachment.pgw_index
        )
        site = region.region_bits & 0xFFF
        bb_city = self.geography.city(*region.backbone_city)
        bb_code = "".join(c for c in bb_city.name.upper() if c.isalpha())[:3]
        alter_addr = str(
            ipaddress.IPv6Address(
                int(ipaddress.IPv6Address("2001:4888:F000::"))
                | (region.region_bits << 64)
            )
        )
        hops = [
            Hop(1, str(gw), None, None, 64),
            Hop(2, None), Hop(3, None), Hop(4, None), Hop(5, None),
            Hop(6, self._router(0x65, region, 0x200 + site % 0xE), None, None, 250),
            Hop(7, None),
            Hop(8, self._router(0x6F, region, 0x300 + site % 0x91), None, None, 249),
            Hop(9, self._router(0x6F, region, 0x300 + site % 0x91), None, None, 248),
            Hop(10, self._router(0x65, region, 0x100 + site % 0x20), None, None, 247),
            Hop(11, alter_addr,
                f"0.ae2.br2.{bb_code.lower()}{bb_city.state.lower()}.alter.net",
                None, 246),
        ]
        return hops

    def speedtest_hostname(self, region: MobileRegionSpec) -> str:
        """The per-EdgeCO speedtest server name (``cavt.ost.myvzw.com``)."""
        code = region.name[:4].lower()
        return f"{code}.ost.myvzw.com"


# ----------------------------------------------------------------------
# T-Mobile-like carrier
# ----------------------------------------------------------------------

TMO_USER_CODEC = Ipv6FieldCodec({"pgw": (32, 40)})
TMO_ROUTER_CODEC = Ipv6FieldCodec({"pgw": (32, 48)})

_TMO_SITES = [
    ("Seattle", "WA"), ("Portland", "OR"), ("Sacramento", "CA"),
    ("Los Angeles", "CA"), ("Las Vegas", "NV"), ("Salt Lake City", "UT"),
    ("Denver", "CO"), ("Dallas", "TX"), ("Houston", "TX"),
    ("Minneapolis", "MN"), ("Chicago", "IL"), ("St. Louis", "MO"),
    ("Detroit", "MI"), ("Atlanta", "GA"), ("Columbia", "SC"),
    ("Orlando", "FL"), ("Philadelphia", "PA"), ("New York", "NY"),
    ("Boston", "MA"), ("Ashburn", "VA"),
]

_TMO_PROVIDERS = ("zayo", "lumen", "vzb")

TMOBILE_REGIONS = [
    MobileRegionSpec(
        f"TMO-{city.replace(' ', '').upper()[:5]}{state}",
        (city, state),
        pgw_count=2 + i % 2,
        region_bits=0x40 + i * 2,
        providers=tuple(
            _TMO_PROVIDERS[j % 3] for j in range(i, i + 2 + i % 2)
        ),
    )
    for i, (city, state) in enumerate(_TMO_SITES)
]


class TMobileLikeCarrier(MobileCarrier):
    """T-Mobile-like: distributed sites, multiple backbone providers."""

    name = "tmobile"

    def __init__(self, geography: Geography, seed: int = 0) -> None:
        super().__init__(TMOBILE_REGIONS, geography, seed)
        # The Gulf-coast quirk behind Fig 18c: phones in MS/AL register
        # with the distant Columbia, SC site.
        self.coverage_overrides = {"MS": "TMO-COLUMSC", "AL": "TMO-COLUMSC"}

    def user_prefix_for(self, region, pgw_index):
        pgw_byte = (region.region_bits + pgw_index) & 0xFF
        base = TMO_USER_CODEC.encode("2607:fb90::", pgw=pgw_byte)
        subnet = random.Random(
            f"tmo-sub|{region.name}|{pgw_index}|"
            f"{self._attach_counters.get(region.name, 0)}"
        ).getrandbits(20)
        value = int(base) | (subnet << (128 - 64))
        return ipaddress.IPv6Network((value, 64))

    def carrier_hops(self, attachment):
        region = attachment.region
        gw = attachment.user_prefix.network_address + self._iid(
            "tmo-gw", region.name, attachment.pgw_index
        )
        pgw16 = 0x1400 + ((region.region_bits + attachment.pgw_index) & 0xFF)
        core1 = ipaddress.IPv6Address(
            int(ipaddress.IPv6Address("fc00:420:81::1")) | (pgw16 << 64)
        )
        core2 = ipaddress.IPv6Address(
            int(ipaddress.IPv6Address("fc00:420:81::1")) | ((pgw16 ^ 0x1F00) << 64)
        )
        edge = TMO_ROUTER_CODEC.encode("fd00:976a::", pgw=pgw16)
        edge_addr = ipaddress.IPv6Address(int(edge) | (0x9001 << 64) | 1)
        provider_hop = Hop(
            5,
            str(ipaddress.IPv6Address(int(edge) | (0xFF00 << 64) | 2)),
            f"xe-1-1.cr1.{attachment.provider}.net",
            None,
            245,
        )
        return [
            Hop(1, str(gw), None, None, 64),
            Hop(2, str(core1), None, None, 253),
            Hop(3, str(core2), None, None, 252),
            Hop(4, str(edge_addr), None, None, 251),
            provider_hop,
        ]

    def backbone_city(self, attachment: MobileAttachment) -> City:
        # Third-party backbones interconnect at the site itself —
        # T-Mobile's "distributed" design (§7.2.3).
        return self._region_cities[attachment.region.name]


def build_mobile_carriers(geography: "Geography | None" = None, seed: int = 0) -> "dict[str, MobileCarrier]":
    """Build all three carriers keyed by name."""
    geo = geography or Geography()
    att = AttMobileCarrier(geo, seed)
    verizon = VerizonLikeCarrier(VERIZON_REGIONS, geo, seed)
    tmobile = TMobileLikeCarrier(geo, seed)
    return {c.name: c for c in (att, verizon, tmobile)}
