"""Ground-truth topology generators.

These build the networks the paper measured: cable ISPs with rDNS-rich
regional networks (Comcast/Charter-like, §5), an MPLS-heavy telco
(AT&T-like, §6), and the three mobile carriers with IPv6-encoded
topology (§7) — all placed on a synthetic U.S. geography so that
latency follows real distances.
"""

from repro.topology.co import CentralOffice, CoKind, Region
from repro.topology.geography import Geography, City

__all__ = [
    "CentralOffice",
    "City",
    "CoKind",
    "Geography",
    "Region",
    "SimulatedInternet",
    "build_default_internet",
]


def __getattr__(name: str):
    """Lazily expose the internet assembly (it imports the measurement
    layer, which itself needs this package — eager import would cycle)."""
    if name in ("SimulatedInternet", "build_default_internet"):
        from repro.topology import internet

        return getattr(internet, name)
    raise AttributeError(f"module 'repro.topology' has no attribute {name!r}")
