"""Synthetic AS-relationship dataset and mobile target selection (App. D).

The paper selects ShipTraceroute destinations from the ASes neighbouring
each mobile carrier (266 for AT&T, 406 for Verizon, 213 for T-Mobile,
per CAIDA's AS-relationship dataset), finds one responsive IPv4 and one
IPv6 destination per neighbour, and later discovers that all targets
share the same in-carrier path — reducing the list to one destination
per provider.

This module synthesizes an equivalent dataset: a deterministic AS graph
with provider/peer relationships, per-carrier neighbour sets of the
paper's sizes, and target addresses derived from each neighbour's ASN.

It also provides :class:`AsGraph`, a generic relationship graph with
Gao-style valley-free path semantics (uphill ``c2p*``, at most one
``p2p``, downhill ``p2c*``).  The bias lab's policy route model drives
its export-policy checks through it.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass

from repro.errors import TopologyError

#: Carrier ASNs (their real-world registry numbers).
CARRIER_ASNS = {"att-mobile": 20057, "verizon": 22394, "tmobile": 21928}

#: Neighbour counts the paper reports (App. D).
NEIGHBOR_COUNTS = {"att-mobile": 266, "verizon": 406, "tmobile": 213}


@dataclass(frozen=True)
class AsRelationship:
    """One edge of the AS graph."""

    asn_a: int
    asn_b: int
    #: "p2c" (a provides transit to b) or "p2p" (settlement-free peers).
    kind: str


#: Valley-free walk phases: still climbing providers, crossed the one
#: allowed peering link, or descending toward customers.
VALLEY_PHASES = ("up", "peer", "down")


def valley_free_next_phase(phase: str, rel: "str | None") -> "str | None":
    """The phase after crossing a *rel* link, or None when forbidden.

    Gao export policy: a path is ``c2p* (p2p)? p2c*`` — once a path
    stops climbing (crosses a peering or provider→customer link) it may
    never climb or peer again.  A missing relationship (``rel`` None)
    always blocks: without a known relationship no export policy would
    propagate the route.
    """
    if phase not in VALLEY_PHASES:
        raise TopologyError(f"unknown valley phase {phase!r}")
    if rel == "c2p":
        return "up" if phase == "up" else None
    if rel == "p2p":
        return "peer" if phase == "up" else None
    if rel == "p2c":
        return "down"
    return None


class AsGraph:
    """A directed AS-relationship store with valley-free bookkeeping.

    Relationships are recorded from the first AS's point of view:
    ``rel_of(a, b) == "p2c"`` means *a* provides transit to *b* (and so
    ``rel_of(b, a) == "c2p"``); ``"p2p"`` is symmetric.  Re-declaring an
    existing edge with a different kind raises — a dataset that
    disagrees with itself would make policy routing nondeterministic.
    """

    def __init__(self) -> None:
        self._rels: "dict[tuple[int, int], str]" = {}

    def add_relationship(self, asn_a: int, asn_b: int, kind: str) -> None:
        """Record one edge; *kind* is ``"p2c"`` (a transits b) or ``"p2p"``."""
        if kind not in ("p2c", "p2p"):
            raise TopologyError(
                f"unknown relationship kind {kind!r} (expected p2c or p2p)"
            )
        if asn_a == asn_b:
            raise TopologyError(f"AS{asn_a} cannot have a relationship with itself")
        inverse = {"p2c": "c2p", "c2p": "p2c", "p2p": "p2p"}
        existing = self._rels.get((asn_a, asn_b))
        if existing is not None and existing != kind:
            raise TopologyError(
                f"conflicting relationship for AS{asn_a}–AS{asn_b}: "
                f"{existing} vs {kind}"
            )
        self._rels[(asn_a, asn_b)] = kind
        self._rels[(asn_b, asn_a)] = inverse[kind]

    def rel_of(self, asn_a: int, asn_b: int) -> "str | None":
        """``"p2c"``/``"c2p"``/``"p2p"`` from *asn_a*'s view, else None."""
        return self._rels.get((asn_a, asn_b))

    def neighbors_of(self, asn: int) -> "list[int]":
        """ASes with a recorded relationship to *asn*, sorted."""
        return sorted({b for (a, b) in self._rels if a == asn})

    def providers_of(self, asn: int) -> "list[int]":
        return sorted(
            b for (a, b), kind in self._rels.items()
            if a == asn and kind == "c2p"
        )

    def customers_of(self, asn: int) -> "list[int]":
        return sorted(
            b for (a, b), kind in self._rels.items()
            if a == asn and kind == "p2c"
        )

    def peers_of(self, asn: int) -> "list[int]":
        return sorted(
            b for (a, b), kind in self._rels.items()
            if a == asn and kind == "p2p"
        )

    def is_valley_free(self, as_path: "list[int]") -> bool:
        """Whether an AS-level path obeys the Gao export policy.

        Consecutive duplicate ASNs (intra-AS hops) are phase-neutral;
        any unknown relationship on the path makes it non-valley-free.
        """
        phase = "up"
        for asn_a, asn_b in zip(as_path, as_path[1:]):
            if asn_a == asn_b:
                continue
            phase = valley_free_next_phase(phase, self.rel_of(asn_a, asn_b))
            if phase is None:
                return False
        return True

    @classmethod
    def from_dataset(cls, dataset: "AsRelationshipDataset") -> "AsGraph":
        """Lift the synthetic carrier dataset into a generic graph."""
        graph = cls()
        for rel in dataset.relationships():
            graph.add_relationship(rel.asn_a, rel.asn_b, rel.kind)
        return graph


class AsRelationshipDataset:
    """A deterministic stand-in for CAIDA's serial-2 AS-rel dataset."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(f"asrel|{seed}")
        self._neighbors: "dict[int, set[int]]" = {}
        self._relationships: "list[AsRelationship]" = []
        self._build()

    def _build(self) -> None:
        for carrier, asn in CARRIER_ASNS.items():
            count = NEIGHBOR_COUNTS[carrier]
            neighbors: "set[int]" = set()
            # Deterministic pseudo-ASNs spread over the 16-bit space.
            state = random.Random(f"asrel-neigh|{carrier}")
            while len(neighbors) < count:
                candidate = state.randrange(1000, 64000)
                if candidate in CARRIER_ASNS.values():
                    continue
                neighbors.add(candidate)
            self._neighbors[asn] = neighbors
            for neighbor in sorted(neighbors):
                kind = "p2c" if state.random() < 0.3 else "p2p"
                self._relationships.append(AsRelationship(asn, neighbor, kind))

    # ------------------------------------------------------------------
    def neighbors_of(self, asn: int) -> "list[int]":
        """ASes adjacent to *asn* in the relationship graph."""
        try:
            return sorted(self._neighbors[asn])
        except KeyError as exc:
            raise TopologyError(f"no relationships recorded for AS{asn}") from exc

    def relationships(self) -> "list[AsRelationship]":
        return list(self._relationships)

    # ------------------------------------------------------------------
    @staticmethod
    def target_v4(asn: int) -> str:
        """A deterministic 'responsive host' inside the neighbour AS."""
        return str(ipaddress.IPv4Address((198 << 24) | (asn << 8) | 1))

    @staticmethod
    def target_v6(asn: int) -> str:
        return str(ipaddress.IPv6Address((0x2001_0DB8 << 96) | (asn << 64) | 1))

    def targets_for(self, carrier: str) -> "list[tuple[str, str]]":
        """(IPv4, IPv6) destination pairs, one per neighbour AS (App. D)."""
        try:
            asn = CARRIER_ASNS[carrier]
        except KeyError as exc:
            raise TopologyError(f"unknown carrier {carrier!r}") from exc
        return [
            (self.target_v4(neighbor), self.target_v6(neighbor))
            for neighbor in self.neighbors_of(asn)
        ]


def reduced_target(dataset: AsRelationshipDataset, carrier: str,
                   probe) -> str:
    """The paper's pilot-test reduction (§7.1.1).

    Probing every neighbour-AS target shows the in-carrier path is
    identical for all of them, so the campaign keeps one destination.
    *probe* maps a target address to its in-carrier path signature; the
    reduction verifies all signatures agree and returns one target.
    """
    targets = dataset.targets_for(carrier)
    signatures = {probe(v4) for v4, _v6 in targets[:25]}
    if len(signatures) != 1:
        raise TopologyError(
            f"{carrier}: in-carrier paths differ across neighbour targets;"
            " cannot reduce to a single destination"
        )
    return targets[0][0]
