"""Synthetic AS-relationship dataset and mobile target selection (App. D).

The paper selects ShipTraceroute destinations from the ASes neighbouring
each mobile carrier (266 for AT&T, 406 for Verizon, 213 for T-Mobile,
per CAIDA's AS-relationship dataset), finds one responsive IPv4 and one
IPv6 destination per neighbour, and later discovers that all targets
share the same in-carrier path — reducing the list to one destination
per provider.

This module synthesizes an equivalent dataset: a deterministic AS graph
with provider/peer relationships, per-carrier neighbour sets of the
paper's sizes, and target addresses derived from each neighbour's ASN.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass

from repro.errors import TopologyError

#: Carrier ASNs (their real-world registry numbers).
CARRIER_ASNS = {"att-mobile": 20057, "verizon": 22394, "tmobile": 21928}

#: Neighbour counts the paper reports (App. D).
NEIGHBOR_COUNTS = {"att-mobile": 266, "verizon": 406, "tmobile": 213}


@dataclass(frozen=True)
class AsRelationship:
    """One edge of the AS graph."""

    asn_a: int
    asn_b: int
    #: "p2c" (a provides transit to b) or "p2p" (settlement-free peers).
    kind: str


class AsRelationshipDataset:
    """A deterministic stand-in for CAIDA's serial-2 AS-rel dataset."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(f"asrel|{seed}")
        self._neighbors: "dict[int, set[int]]" = {}
        self._relationships: "list[AsRelationship]" = []
        self._build()

    def _build(self) -> None:
        for carrier, asn in CARRIER_ASNS.items():
            count = NEIGHBOR_COUNTS[carrier]
            neighbors: "set[int]" = set()
            # Deterministic pseudo-ASNs spread over the 16-bit space.
            state = random.Random(f"asrel-neigh|{carrier}")
            while len(neighbors) < count:
                candidate = state.randrange(1000, 64000)
                if candidate in CARRIER_ASNS.values():
                    continue
                neighbors.add(candidate)
            self._neighbors[asn] = neighbors
            for neighbor in sorted(neighbors):
                kind = "p2c" if state.random() < 0.3 else "p2p"
                self._relationships.append(AsRelationship(asn, neighbor, kind))

    # ------------------------------------------------------------------
    def neighbors_of(self, asn: int) -> "list[int]":
        """ASes adjacent to *asn* in the relationship graph."""
        try:
            return sorted(self._neighbors[asn])
        except KeyError as exc:
            raise TopologyError(f"no relationships recorded for AS{asn}") from exc

    def relationships(self) -> "list[AsRelationship]":
        return list(self._relationships)

    # ------------------------------------------------------------------
    @staticmethod
    def target_v4(asn: int) -> str:
        """A deterministic 'responsive host' inside the neighbour AS."""
        return str(ipaddress.IPv4Address((198 << 24) | (asn << 8) | 1))

    @staticmethod
    def target_v6(asn: int) -> str:
        return str(ipaddress.IPv6Address((0x2001_0DB8 << 96) | (asn << 64) | 1))

    def targets_for(self, carrier: str) -> "list[tuple[str, str]]":
        """(IPv4, IPv6) destination pairs, one per neighbour AS (App. D)."""
        try:
            asn = CARRIER_ASNS[carrier]
        except KeyError as exc:
            raise TopologyError(f"unknown carrier {carrier!r}") from exc
        return [
            (self.target_v4(neighbor), self.target_v6(neighbor))
            for neighbor in self.neighbors_of(asn)
        ]


def reduced_target(dataset: AsRelationshipDataset, carrier: str,
                   probe) -> str:
    """The paper's pilot-test reduction (§7.1.1).

    Probing every neighbour-AS target shows the in-carrier path is
    identical for all of them, so the campaign keeps one destination.
    *probe* maps a target address to its in-carrier path signature; the
    reduction verifies all signatures agree and returns one target.
    """
    targets = dataset.targets_for(carrier)
    signatures = {probe(v4) for v4, _v6 in targets[:25]}
    if len(signatures) != 1:
        raise TopologyError(
            f"{carrier}: in-carrier paths differ across neighbour targets;"
            " cannot reduce to a single destination"
        )
    return targets[0][0]
