"""Cable ISP topology generators (the §5 case study networks).

Builds two synthetic cable ISPs in the image of the paper's subjects:

* **Comcast-like** ("comcast"): 28 smaller regions, city/state rDNS tags
  (``po-1-1-cbr01.troutdale.or.bverton.comcast.net``), /30 inter-router
  subnets, higher rDNS staleness, aggregation types split 5 single /
  11 two / 12 multi-level (Table 1).
* **Charter-like** ("charter"): 6 vast regions, CLLI rDNS tags
  (``agg1.sndhcaax01r.socal.rr.com``), /31 subnets, more aggregation
  layers, one region running MPLS between its top AggCOs and EdgeCOs
  (the false-adjacency source of Appendix B.2), and one region with no
  CO-level redundancy (Appendix B.4).

Both expose the observables the paper's pipeline consumes — rDNS with
injected staleness, customer /24s, backbone entries — and record full
ground truth for scoring.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.net.addresses import Ipv4Allocator
from repro.net.mpls import MplsTunnel
from repro.net.network import Network
from repro.net.router import Router
from repro.topology.co import CentralOffice, CoKind, Region
from repro.topology.fiber import FiberRing
from repro.topology.geography import City, Geography, clli_city_code
from repro.topology.isp import BaseIsp

#: Configured IGP metric for all intra-region and entry links: equal
#: metrics on redundant dual-star links create the ECMP diversity that
#: lets multi-VP traceroute observe both AggCOs of a pair (§5.2.2).
REGION_METRIC = 10.0


def _slug(name: str) -> str:
    """Lowercase alphanumeric slug of a city name."""
    return "".join(c for c in name.lower() if c.isalnum())


@dataclass(frozen=True)
class CableRegionSpec:
    """Recipe for one cable regional network."""

    name: str
    anchor: "tuple[str, str]"  # (city name, state)
    agg_type: str  # "single" | "two" | "multi"
    n_edge: int
    #: Number of sub-regions for multi-level regions.
    n_subregions: int = 0
    #: States whose metros supply sub-region anchors.
    states: "tuple[str, ...]" = ()
    #: Region reached through another region instead of the backbone
    #: (the Connecticut-via-Massachusetts pattern of §5.5).
    entry_via_region: str = ""
    #: Probability an EdgeCO is single-homed in dual-AggCO sub-regions.
    p_single: float = 0.03
    #: Probability an EdgeCO daisy-chains off another EdgeCO.
    p_daisy: float = 0.015
    #: Probability a sub-region gets a redundant AggCO pair (vs one).
    p_dual_subregion: float = 0.95
    #: Force every EdgeCO single-homed (Charter's southeast, App. B.4).
    no_redundancy: bool = False
    #: Run MPLS LSPs from top AggCOs to EdgeCOs (one Charter region).
    uses_mpls: bool = False
    #: Extra special-purpose entry PoP city (Boston PoP of §5.5).
    special_pop: "tuple[str, str] | None" = None
    #: Also connect top AggCOs to this other region's top AggCOs
    #: (Central California → San Francisco, §5.2.5).
    also_connects_region: str = ""
    #: Explicit backbone entry PoP metros (overrides nearest-two).  Used
    #: where the ISP's entries are not the geographically obvious ones,
    #: which is what steers some real flows through a neighbouring
    #: region's AggCOs.
    entry_pop_cities: "tuple[tuple[str, str], ...]" = ()


class CableIsp(BaseIsp):
    """A cable ISP built from :class:`CableRegionSpec` recipes."""

    def __init__(
        self,
        name: str,
        asn: int,
        pool: str,
        network: Network,
        style: str,
        backbone_cities: "list[tuple[str, str]]",
        stale_rate: float,
        missing_rate: float,
        p2p_prefixlen: int,
        geography: "Geography | None" = None,
        seed: int = 0,
    ) -> None:
        super().__init__(name, asn, pool, network, geography=geography, seed=seed)
        if style not in ("comcast", "charter"):
            raise TopologyError(f"unknown cable rDNS style {style!r}")
        self.style = style
        self.stale_rate = stale_rate
        self.missing_rate = missing_rate
        self.p2p_prefixlen = p2p_prefixlen
        self._used_clli: set[str] = set()
        self._used_cities: set[str] = set()
        self._co_tags: dict[str, str] = {}  # co.uid -> rDNS CO tag
        self._used_tags: set[str] = set()
        self._region_of_co: dict[str, str] = {}
        self._all_cos: list[CentralOffice] = []
        self._iface_seq = 0
        #: uids of the top-level AggCOs per region (entry attachment).
        self._top_aggs: dict[str, list[tuple[CentralOffice, Router]]] = {}
        for city_name, state in backbone_cities:
            self.add_backbone_pop(self.geography.city(city_name, state))
        self.mesh_backbone(extra_chords=3)

    # ------------------------------------------------------------------
    # rDNS naming (per style)
    # ------------------------------------------------------------------
    def backbone_rdns_for(self, pop, router, iface_index):
        slugged = _slug(pop.city.name)
        state = pop.city.state.lower()
        if self.style == "comcast":
            return f"be-{1100 + iface_index}-cr01.{slugged}.{state}.ibone.{self.name}.net"
        code = clli_city_code(pop.city.name).lower()
        return f"bu-ether{10 + iface_index}.{code}{state}0yw-bcr00.tbone.rr.com"

    def _make_co_tag(self, co: CentralOffice) -> str:
        """The CO identifier embedded in this ISP's rDNS names."""
        if self.style == "comcast":
            return f"{_slug(co.city.name)}.{co.city.state.lower()}"
        suffix = "".join(
            self.rng.choice(string.ascii_lowercase) for _ in range(2)
        )
        # CLLI city+state (6 chars) + 2 letters + building number, the
        # shape of the paper's `sndhcaax01`.
        return f"{co.clli[:6].lower()}{suffix}01"

    def co_tag(self, co: CentralOffice) -> str:
        """Stable rDNS CO tag for a CO (ground-truth mapping for scoring)."""
        tag = self._co_tags.get(co.uid)
        if tag is None:
            tag = self._make_co_tag(co)
            bump = 1
            while tag in self._used_tags:
                bump += 1
                if self.style == "comcast":
                    tag = f"{_slug(co.city.name)}{bump}.{co.city.state.lower()}"
                else:
                    tag = self._make_co_tag(co)
            self._used_tags.add(tag)
            self._co_tags[co.uid] = tag
        return tag

    def hostname_for(self, co: CentralOffice, region_name: str) -> str:
        """Compose a full interface hostname for a router in *co*."""
        self._iface_seq += 1
        tag = self.co_tag(co)
        if self.style == "comcast":
            role = {"agg": "ar", "edge": "cbr", "backbone": "cr"}[co.kind.value]
            return (
                f"ae-{self._iface_seq % 97}-{role}01.{tag}."
                f"{region_name}.{self.name}.net"
            )
        role = {"agg": "agg", "edge": "agg", "backbone": "bcr"}[co.kind.value]
        kind_letter = "r" if co.kind == CoKind.AGG else self.rng.choice("rhm")
        return f"{role}{1 + self._iface_seq % 4}.{tag}{kind_letter}.{region_name}.rr.com"

    def _name_interface(self, iface, co: CentralOffice, region_name: str) -> None:
        """Attach rDNS for one interface, with staleness/missing noise."""
        roll = self.rng.random()
        if roll < self.missing_rate:
            return
        if roll < self.missing_rate + self.stale_rate and len(self._all_cos) > 1:
            wrong = self.rng.choice(self._all_cos)
            if wrong.uid != co.uid:
                wrong_region = self._region_of_co.get(wrong.uid, region_name)
                stale_name = self.hostname_for(wrong, wrong_region)
                # Half the stale entries survive in the live zone; the
                # rest only pollute the bulk snapshot (App. B.1).
                self.network.rdns.set_stale(
                    iface.address, stale_name, in_dig=self.rng.random() < 0.5
                )
                return
        self.network.rdns.set(iface.address, self.hostname_for(co, region_name))

    # ------------------------------------------------------------------
    # Region construction
    # ------------------------------------------------------------------
    def reserve_anchor_cities(self, specs: "list[CableRegionSpec]") -> None:
        """Pre-register every region anchor so sub-anchors never reuse one."""
        for spec in specs:
            self._used_cities.add(self.geography.city(*spec.anchor).key)

    def build_region(self, spec: CableRegionSpec) -> Region:
        """Build one regional network from its spec."""
        if spec.name in self.regions:
            raise TopologyError(f"region {spec.name!r} already built")
        region = Region(spec.name, self.name)
        region.agg_type = spec.agg_type
        self.regions[spec.name] = region
        region_block = self.allocator.allocate_subnet(16)
        infra = Ipv4Allocator(list(region_block.subnets(new_prefix=18))[0])
        customers = Ipv4Allocator(
            list(region_block.subnets(new_prefix=17))[1]
        )
        self.announce(spec.name, region_block)
        anchor = self.geography.city(*spec.anchor)

        builders = {
            "single": self._build_single_agg,
            "two": self._build_two_agg,
            "multi": self._build_multi_agg,
        }
        try:
            builder = builders[spec.agg_type]
        except KeyError as exc:
            raise TopologyError(f"unknown agg type {spec.agg_type!r}") from exc
        top = builder(region, spec, anchor, infra, customers)
        self._top_aggs[spec.name] = top
        self._attach_entries(region, spec, anchor, top, infra)
        # Aggregate route: traffic for unused parts of the region block
        # still flows into the region (and dies at the top AggCO).
        self.network.add_prefix_route(region_block, top[0][1])
        return region

    # -- CO/router helpers ---------------------------------------------
    def _unique_clli(self, city: City, building: int) -> str:
        base = self.geography.clli(city, building)
        candidate, bump = base, building
        while candidate in self._used_clli:
            bump += 1
            candidate = self.geography.clli(city, bump)
        self._used_clli.add(candidate)
        return candidate

    def _make_co(
        self, region: Region, kind: CoKind, city: City, level: int
    ) -> "tuple[CentralOffice, Router]":
        co = self.new_co(region, kind, city, self._unique_clli(city, 1), level=level)
        router = self.new_router(role=kind.value, region_name=region.name)
        co.add_router(router)
        self._all_cos.append(co)
        self._region_of_co[co.uid] = region.name
        return co, router

    def _synthetic_site(self, anchor: City, index: int) -> City:
        """A synthetic EdgeCO site scattered around an anchor metro."""
        lat, lon = self.geography.scatter(anchor, self.rng, radius_km=45.0)
        letters = string.ascii_uppercase
        suffix = letters[index // 26 % 26] + letters[index % 26]
        return City(
            name=f"{anchor.name} {suffix}",
            state=anchor.state,
            lat=lat,
            lon=lon,
            weight=1,
        )

    def _link(
        self,
        region: Region,
        co_a: CentralOffice,
        router_a: Router,
        co_b: CentralOffice,
        router_b: Router,
        length_km: float,
        ring: object = None,
    ) -> None:
        """Link two CO routers, name both interfaces, record ground truth."""
        link = self.link_cos(
            co_a, router_a, co_b, router_b, length_km,
            p2p_prefixlen=self.p2p_prefixlen, metric=REGION_METRIC, ring=ring,
        )
        self._name_interface(link.a, co_a, region.name)
        self._name_interface(link.b, co_b, region.name)
        region.add_edge(co_a, co_b)

    def _attach_customers(
        self, region: Region, edge_co: CentralOffice, router: Router, customers: Ipv4Allocator
    ) -> None:
        """Give an EdgeCO router a routed customer /24."""
        prefix = customers.allocate_subnet(24)
        self.network.add_prefix_route(prefix, router)

    # -- the three aggregation shapes (Fig 8) ---------------------------
    def _build_edge_ring(
        self,
        region: Region,
        spec: CableRegionSpec,
        hubs: "list[tuple[CentralOffice, Router]]",
        anchor: City,
        count: int,
        level: int,
        customers: Ipv4Allocator,
        force_single: bool = False,
    ) -> "list[tuple[CentralOffice, Router]]":
        """Create *count* EdgeCOs around *anchor* hanging off *hubs*.

        Hub links follow fiber-ring arc lengths (Fig 3).  Some EdgeCOs
        come out single-homed; a few daisy-chain behind another EdgeCO.
        """
        edges = []
        for i in range(count):
            site = self._synthetic_site(anchor, len(region.cos) + i)
            edges.append(self._make_co(region, CoKind.EDGE, site, level))
        ring_members = [co for co, _ in hubs] + [co for co, _ in edges]
        ring = FiberRing(
            f"{region.name}-ring-{len(region.cos)}", ring_members, self.geography
        )
        router_of = {co.uid: r for co, r in hubs + edges}
        daisy_candidates: "list[tuple[CentralOffice, Router]]" = []
        for edge_co, edge_router in edges:
            if spec.p_daisy > 0 and daisy_candidates and self.rng.random() < spec.p_daisy:
                parent_co, parent_router = self.rng.choice(daisy_candidates)
                dist = 1.4 * self.geography.distance_km(parent_co.city, edge_co.city)
                self._link(region, parent_co, parent_router, edge_co, edge_router, dist)
            else:
                single = (
                    force_single
                    or len(hubs) == 1
                    or self.rng.random() < spec.p_single
                )
                chosen = hubs[:1] if single else hubs
                for hub_co, _hub_router in chosen:
                    self._link(
                        region,
                        hub_co,
                        router_of[hub_co.uid],
                        edge_co,
                        edge_router,
                        ring.arc_km(hub_co, edge_co),
                        ring=ring,
                    )
            self._attach_customers(region, edge_co, edge_router, customers)
            daisy_candidates.append((edge_co, edge_router))
        return edges

    def _build_single_agg(self, region, spec, anchor, infra, customers):
        agg = self._make_co(region, CoKind.AGG, anchor, level=1)
        self._build_edge_ring(
            region, spec, [agg], anchor, spec.n_edge, level=2,
            customers=customers, force_single=spec.no_redundancy,
        )
        return [agg]

    def _build_two_agg(self, region, spec, anchor, infra, customers):
        agg_a = self._make_co(region, CoKind.AGG, anchor, level=1)
        site_b = self._synthetic_site(anchor, 999)
        agg_b = self._make_co(region, CoKind.AGG, site_b, level=1)
        # The AggCO pair interconnects directly.
        self._link(
            region, agg_a[0], agg_a[1], agg_b[0], agg_b[1],
            1.4 * self.geography.distance_km(agg_a[0].city, site_b),
        )
        self._build_edge_ring(
            region, spec, [agg_a, agg_b], anchor, spec.n_edge, level=2,
            customers=customers, force_single=spec.no_redundancy,
        )
        return [agg_a, agg_b]

    def _build_multi_agg(self, region, spec, anchor, infra, customers):
        top_a = self._make_co(region, CoKind.AGG, anchor, level=1)
        site_b = self._synthetic_site(anchor, 998)
        top_b = self._make_co(region, CoKind.AGG, site_b, level=1)
        self._link(
            region, top_a[0], top_a[1], top_b[0], top_b[1],
            1.4 * self.geography.distance_km(anchor, site_b),
        )
        tops = [top_a, top_b]

        n_sub = max(1, spec.n_subregions)
        sub_anchors = self._pick_sub_anchors(spec, anchor, n_sub)
        per_sub = max(3, spec.n_edge // (n_sub + 1))
        # The top AggCO pair serves the anchor metro's own EdgeCOs.
        self._build_edge_ring(
            region, spec, tops, anchor, per_sub, level=2,
            customers=customers, force_single=spec.no_redundancy,
        )
        mpls_edges: "list[tuple[CentralOffice, Router]]" = []
        sub_routers: "list[Router]" = []
        for sub_anchor in sub_anchors:
            dual_sub = (
                spec.no_redundancy is False
                and self.rng.random() < spec.p_dual_subregion
            )
            sub_hubs = [self._make_co(region, CoKind.AGG, sub_anchor, level=2)]
            if dual_sub:
                twin_site = self._synthetic_site(sub_anchor, 997)
                twin = self._make_co(region, CoKind.AGG, twin_site, level=2)
                sub_hubs.append(twin)
            for sub_co, sub_router in sub_hubs:
                sub_routers.append(sub_router)
                for top_co, top_router in tops:
                    self._link(
                        region, top_co, top_router, sub_co, sub_router,
                        1.4 * self.geography.distance_km(top_co.city, sub_co.city),
                    )
            edges = self._build_edge_ring(
                region, spec, sub_hubs, sub_anchor, per_sub, level=3,
                customers=customers, force_single=spec.no_redundancy,
            )
            mpls_edges.extend(edges)
        if spec.uses_mpls:
            self._install_mpls(tops, sub_routers, mpls_edges)
        return tops

    def _pick_sub_anchors(self, spec: CableRegionSpec, anchor: City, count: int) -> "list[City]":
        """Sub-region anchor metros drawn from the spec's states.

        Cities already anchoring another region or sub-region of this
        ISP are skipped so no two COs of the ISP share a metro (which
        would make their rDNS CO tags collide).
        """
        self._used_cities.add(anchor.key)
        # Round-robin across the spec's states so a multi-state region
        # (e.g. New England: MA/NH/VT) anchors sub-regions in every
        # state rather than exhausting the first state's metros.
        per_state: "list[list[City]]" = []
        for state in spec.states or (anchor.state,):
            per_state.append([
                c for c in self.geography.cities_in(state)
                if c.key != anchor.key and c.key not in self._used_cities
            ])
        anchors: "list[City]" = []
        index = 0
        while len(anchors) < count and any(per_state):
            bucket = per_state[index % len(per_state)]
            index += 1
            if bucket:
                city = bucket.pop(0)
                anchors.append(city)
                self._used_cities.add(city.key)
        while len(anchors) < count:
            anchors.append(self._synthetic_site(anchor, 900 + len(anchors)))
        return anchors

    def _install_mpls(self, tops, sub_routers, edges) -> None:
        """LSPs from top AggCO routers to EdgeCO routers hiding mid aggs."""
        interior = tuple(sub_routers)
        for _top_co, top_router in tops:
            for _edge_co, edge_router in edges:
                self.network.mpls.add(
                    MplsTunnel(
                        ingress=top_router,
                        egress=edge_router,
                        interior=interior,
                        ttl_propagate=False,
                    )
                )

    # -- entries ---------------------------------------------------------
    def _attach_entries(self, region, spec, anchor, top, infra) -> None:
        """Wire the region's top AggCOs to its entry points."""
        if spec.entry_via_region:
            # Enter through another region's top AggCOs (Connecticut).
            try:
                upstream = self._top_aggs[spec.entry_via_region]
            except KeyError as exc:
                raise TopologyError(
                    f"region {spec.name} enters via {spec.entry_via_region!r},"
                    " which must be built first"
                ) from exc
            for up_co, up_router in upstream:
                for local_co, local_router in top:
                    dist = 1.4 * self.geography.distance_km(up_co.city, local_co.city)
                    self._link_inter_region(
                        up_co, up_router, local_co, local_router, dist,
                        up_region=spec.entry_via_region, down_region=region.name,
                    )
                    region.add_entry(up_co.uid, local_co)
            return
        if spec.entry_pop_cities:
            pops = [
                self.add_backbone_pop(self.geography.city(*city))
                for city in spec.entry_pop_cities
            ]
        else:
            pops = self.nearest_backbone_pops(anchor, count=2)
        if spec.special_pop is not None:
            special_city = self.geography.city(*spec.special_pop)
            pops = pops + [self.add_backbone_pop(special_city, building=77)]
        for pop in pops:
            pop_router = pop.routers[0]
            for local_co, local_router in top:
                dist = 1.4 * self.geography.distance_km(pop.city, local_co.city)
                link = self.link_cos(
                    None, pop_router, local_co, local_router,
                    length_km=dist, p2p_prefixlen=self.p2p_prefixlen,
                    metric=REGION_METRIC,
                )
                name = self.backbone_rdns_for(pop, pop_router, len(pop_router.interfaces))
                if name:
                    self.network.rdns.set(link.a.address, name)
                self._name_interface(link.b, local_co, region.name)
                region.add_entry(pop.uid, local_co)
        if spec.also_connects_region:
            try:
                other = self._top_aggs[spec.also_connects_region]
            except KeyError as exc:
                raise TopologyError(
                    f"region {spec.name} also connects to"
                    f" {spec.also_connects_region!r}, which must be built first"
                ) from exc
            other_co, other_router = other[0]
            local_co, local_router = top[0]
            dist = 1.4 * self.geography.distance_km(other_co.city, local_co.city)
            self._link_inter_region(
                other_co, other_router, local_co, local_router, dist,
                up_region=spec.also_connects_region, down_region=region.name,
            )
            region.add_entry(other_co.uid, local_co)

    def _link_inter_region(
        self, up_co, up_router, down_co, down_router, length_km,
        up_region: str, down_region: str, metric: float = REGION_METRIC,
    ) -> None:
        """Link COs in two different regions (an inter-region entry)."""
        link = self.link_cos(
            up_co, up_router, down_co, down_router,
            length_km, p2p_prefixlen=self.p2p_prefixlen, metric=metric,
        )
        self._name_interface(link.a, up_co, up_region)
        self._name_interface(link.b, down_co, down_region)


# ----------------------------------------------------------------------
# The two stock ISPs
# ----------------------------------------------------------------------

COMCAST_BACKBONE_CITIES = [
    ("Seattle", "WA"), ("Sunnyvale", "CA"), ("Los Angeles", "CA"),
    ("Denver", "CO"), ("Dallas", "TX"), ("Chicago", "IL"),
    ("Atlanta", "GA"), ("Miami", "FL"), ("New York", "NY"),
    ("Newark", "NJ"), ("Ashburn", "VA"),
]

CHARTER_BACKBONE_CITIES = [
    ("Los Angeles", "CA"), ("Dallas", "TX"), ("St. Louis", "MO"),
    ("Chicago", "IL"), ("Atlanta", "GA"), ("Charlotte", "NC"),
    ("New York", "NY"), ("Denver", "CO"),
]

COMCAST_REGION_SPECS = [
    CableRegionSpec("bverton", ("Beaverton", "OR"), "multi", 24, 2, ("OR",)),
    CableRegionSpec("sanfrancisco", ("San Francisco", "CA"), "multi", 30, 2, ("CA",)),
    CableRegionSpec("centralca", ("Sacramento", "CA"), "multi", 26, 2, ("CA",),
                    also_connects_region="sanfrancisco",
                    entry_pop_cities=(("Sunnyvale", "CA"), ("Denver", "CO"))),
    CableRegionSpec("minneapolis", ("Minneapolis", "MN"), "multi", 24, 2, ("MN",)),
    CableRegionSpec("chicago", ("Chicago", "IL"), "multi", 32, 3, ("IL", "IN")),
    CableRegionSpec("philadelphia", ("Philadelphia", "PA"), "multi", 28, 2, ("PA", "DE")),
    CableRegionSpec("newengland", ("Boston", "MA"), "multi", 30, 3, ("MA", "NH", "VT"),
                    special_pop=("Boston", "MA")),
    CableRegionSpec("dc", ("Washington", "DC"), "multi", 26, 2, ("DC", "VA", "MD")),
    CableRegionSpec("atlanta", ("Atlanta", "GA"), "multi", 26, 2, ("GA",)),
    CableRegionSpec("miami", ("Miami", "FL"), "multi", 28, 2, ("FL",)),
    CableRegionSpec("houston", ("Houston", "TX"), "multi", 28, 2, ("TX",)),
    CableRegionSpec("michigan", ("Detroit", "MI"), "multi", 24, 2, ("MI",)),
    CableRegionSpec("seattle", ("Seattle", "WA"), "two", 16),
    CableRegionSpec("denver", ("Denver", "CO"), "two", 14),
    CableRegionSpec("saltlake", ("Salt Lake City", "UT"), "two", 12),
    CableRegionSpec("indianapolis", ("Indianapolis", "IN"), "two", 12),
    CableRegionSpec("pittsburgh", ("Pittsburgh", "PA"), "two", 12),
    CableRegionSpec("connecticut", ("Hartford", "CT"), "two", 14,
                    entry_via_region="newengland"),
    CableRegionSpec("baltimore", ("Baltimore", "MD"), "two", 12),
    CableRegionSpec("richmond", ("Richmond", "VA"), "two", 12),
    CableRegionSpec("nashville", ("Nashville", "TN"), "two", 12),
    CableRegionSpec("jacksonville", ("Jacksonville", "FL"), "two", 10),
    CableRegionSpec("spokane", ("Spokane", "WA"), "two", 8),
    CableRegionSpec("albuquerque", ("Albuquerque", "NM"), "single", 8),
    CableRegionSpec("memphis", ("Memphis", "TN"), "single", 8),
    CableRegionSpec("knoxville", ("Knoxville", "TN"), "single", 6),
    CableRegionSpec("savannah", ("Savannah", "GA"), "single", 6),
    CableRegionSpec("eugene", ("Eugene", "OR"), "single", 6),
]

CHARTER_REGION_SPECS = [
    CableRegionSpec("socal", ("Los Angeles", "CA"), "multi", 64, 4,
                    ("CA",), p_single=0.12, p_daisy=0.05, p_dual_subregion=0.85),
    CableRegionSpec("midwest", ("Milwaukee", "WI"), "multi", 110, 8,
                    ("WI", "MI", "OH", "KY", "IN", "MN", "NE", "MO"),
                    p_single=0.12, p_daisy=0.05, p_dual_subregion=0.85, uses_mpls=True),
    CableRegionSpec("northeast", ("New York", "NY"), "multi", 85, 6,
                    ("NY", "NJ"), p_single=0.12, p_daisy=0.05, p_dual_subregion=0.85),
    CableRegionSpec("texas", ("Dallas", "TX"), "multi", 65, 4,
                    ("TX",), p_single=0.12, p_daisy=0.05, p_dual_subregion=0.85),
    CableRegionSpec("southeast", ("Charlotte", "NC"), "multi", 48, 3,
                    ("NC", "SC", "AL"), no_redundancy=True, p_daisy=0.06),
    CableRegionSpec("maine", ("Portland ME", "ME"), "multi", 28, 2,
                    ("ME",), p_single=0.12, p_daisy=0.04, p_dual_subregion=0.85),
]


def build_comcast_like(network: Network, geography: "Geography | None" = None, seed: int = 0) -> CableIsp:
    """Build the Comcast-like ISP with its 28 regions."""
    isp = CableIsp(
        name="comcast", asn=7922, pool="24.0.0.0/10", network=network,
        style="comcast", backbone_cities=COMCAST_BACKBONE_CITIES,
        stale_rate=0.05, missing_rate=0.10, p2p_prefixlen=30,
        geography=geography, seed=seed,
    )
    isp.reserve_anchor_cities(COMCAST_REGION_SPECS)
    for spec in COMCAST_REGION_SPECS:
        isp.build_region(spec)
    return isp


def build_charter_like(network: Network, geography: "Geography | None" = None, seed: int = 0) -> CableIsp:
    """Build the Charter-like ISP with its 6 vast regions."""
    isp = CableIsp(
        name="charter", asn=20115, pool="72.0.0.0/10", network=network,
        style="charter", backbone_cities=CHARTER_BACKBONE_CITIES,
        stale_rate=0.015, missing_rate=0.06, p2p_prefixlen=31,
        geography=geography, seed=seed,
    )
    isp.reserve_anchor_cities(CHARTER_REGION_SPECS)
    for spec in CHARTER_REGION_SPECS:
        isp.build_region(spec)
    return isp
