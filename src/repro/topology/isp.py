"""Shared machinery for ISP topology generators.

Each concrete generator (cable, telco, mobile) builds its routers and
links into one shared :class:`~repro.net.network.Network`, records the
ground truth in :class:`~repro.topology.co.Region` objects, and wires
its BackboneCOs into the ISP's national backbone so that probes from
anywhere on the simulated internet can enter its regions.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import TopologyError
from repro.net.addresses import Ipv4Allocator
from repro.net.network import Network
from repro.net.router import ReplyPolicy, Router
from repro.topology.co import BackbonePop, CentralOffice, CoKind, Region
from repro.topology.geography import City, Geography


class BaseIsp:
    """Common state and helpers for ISP generators."""

    def __init__(
        self,
        name: str,
        asn: int,
        pool: str,
        network: Network,
        geography: "Geography | None" = None,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.asn = asn
        self.network = network
        self.geography = geography or Geography()
        self.rng = random.Random(f"{name}|{seed}")
        self.allocator = Ipv4Allocator(pool)
        self.regions: dict[str, Region] = {}
        self.backbone_pops: dict[str, BackbonePop] = {}
        self._router_seq = 0
        #: Prefixes this ISP announces per region (what a prober would
        #: learn from BGP and target one address per /24 of, §5.1).
        self.region_prefixes: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Router / CO creation helpers
    # ------------------------------------------------------------------
    def new_router(
        self,
        role: str,
        region_name: str = "",
        policy: "ReplyPolicy | None" = None,
    ) -> Router:
        """Create, annotate, and register a router."""
        self._router_seq += 1
        uid = f"{self.name}-r{self._router_seq:05d}"
        router = Router(uid, policy=policy, asn=self.asn)
        router.role = role
        router.region = region_name
        self.network.add_router(router)
        return router

    def new_co(
        self,
        region: Region,
        kind: CoKind,
        city: City,
        clli: str,
        level: int = 0,
    ) -> CentralOffice:
        """Create a CO and register it in *region*."""
        uid = f"{self.name}:{clli}"
        co = CentralOffice(uid=uid, kind=kind, city=city, clli=clli, level=level)
        region.add_co(co)
        return co

    def link_cos(
        self,
        co_a: CentralOffice,
        router_a: Router,
        co_b: CentralOffice,
        router_b: Router,
        length_km: float,
        p2p_prefixlen: int = 30,
        metric: "float | None" = None,
        ring: object = None,
    ):
        """Allocate a point-to-point subnet and link two CO routers."""
        addr_a, addr_b, _subnet = self.allocator.allocate_p2p(p2p_prefixlen)
        return self.network.connect(
            router_a,
            router_b,
            addr_a,
            addr_b,
            prefixlen=p2p_prefixlen,
            length_km=length_km,
            metric=metric,
            ring=ring,
        )

    def announce(self, region_name: str, prefix) -> None:
        """Record a region prefix as externally visible (BGP-style)."""
        self.region_prefixes.setdefault(region_name, []).append(prefix)

    def region(self, name: str) -> Region:
        """Look up a built region by name."""
        try:
            return self.regions[name]
        except KeyError as exc:
            raise TopologyError(
                f"{self.name} has no region {name!r}; built: {sorted(self.regions)}"
            ) from exc

    # ------------------------------------------------------------------
    # Backbone
    # ------------------------------------------------------------------
    def add_backbone_pop(self, city: City, building: int = 1) -> BackbonePop:
        """Create a backbone PoP (BackboneCO) in *city* with one core router."""
        clli = self.geography.clli(city, building)
        uid = f"{self.name}:bb:{clli}"
        if uid in self.backbone_pops:
            return self.backbone_pops[uid]
        pop = BackbonePop(uid=uid, city=city, name=clli)
        router = self.new_router(role="backbone")
        pop.add_router(router)
        self.backbone_pops[uid] = pop
        self._name_backbone_router(router, pop)
        return pop

    def _name_backbone_router(self, router: Router, pop: BackbonePop) -> None:
        """Hook: subclasses attach backbone rDNS naming policies."""

    def backbone_rdns_for(self, pop: BackbonePop, router: Router, iface_index: int) -> Optional[str]:
        """Hook: subclasses return the rDNS name for a backbone interface."""
        return None

    def mesh_backbone(self, extra_chords: int = 2) -> None:
        """Interconnect backbone PoPs: a ring by longitude plus chords."""
        pops = sorted(self.backbone_pops.values(), key=lambda p: p.city.lon)
        if len(pops) < 2:
            return
        pairs = list(zip(pops, pops[1:] + pops[:1])) if len(pops) > 2 else [(pops[0], pops[1])]
        for i in range(extra_chords):
            if len(pops) > 3:
                pairs.append((pops[i % len(pops)], pops[(i + len(pops) // 2) % len(pops)]))
        seen = set()
        for pop_a, pop_b in pairs:
            key = tuple(sorted((pop_a.uid, pop_b.uid)))
            if key in seen or pop_a is pop_b:
                continue
            seen.add(key)
            dist = 1.4 * self.geography.distance_km(pop_a.city, pop_b.city)
            # The routing metric carries a penalty so that traffic for
            # *other* networks prefers the transit backbone — a crude
            # stand-in for valley-free BGP policy.
            link = self.link_cos(
                None, pop_a.routers[0], None, pop_b.routers[0], length_km=dist,
                metric=dist / 200.0 + 12.0,
            )
            self._maybe_name_backbone_link(link, pop_a, pop_b)

    def _maybe_name_backbone_link(self, link, pop_a: BackbonePop, pop_b: BackbonePop) -> None:
        """Attach rDNS to backbone link interfaces via the subclass hook."""
        for iface, pop in ((link.a, pop_a), (link.b, pop_b)):
            name = self.backbone_rdns_for(pop, iface.router, len(iface.router.interfaces))
            if name:
                self.network.rdns.set(iface.address, name)

    def nearest_backbone_pops(self, city: City, count: int = 2) -> "list[BackbonePop]":
        """The *count* backbone PoPs nearest to a city."""
        pops = sorted(
            self.backbone_pops.values(),
            key=lambda p: self.geography.distance_km(p.city, city),
        )
        if len(pops) < count:
            raise TopologyError(
                f"{self.name} has only {len(pops)} backbone PoPs; need {count}"
            )
        return pops[:count]
