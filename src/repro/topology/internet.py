"""Assembly of the full simulated internet.

:class:`SimulatedInternet` composes everything the paper's campaigns
need into one :class:`~repro.net.network.Network`:

* a national transit backbone (the "other ISPs" traffic crosses);
* three public cloud providers with U.S. regions at real metro
  locations (the Fig 9 / Fig 10 / Table 2 latency sources);
* the cable ISPs (§5), the telco (§6), and — held separately because
  phones attach to them over the air — the mobile carriers (§7);
* the standard 47-vantage-point set of §5.1 plus Ark/Atlas VPs inside
  telco regions (§6.1), and a measurement server in San Diego (the
  target of the §7.3 latency maps).
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass

from repro.errors import MeasurementError, TopologyError
from repro.net.addresses import Ipv4Allocator
from repro.net.network import Network
from repro.net.router import Router
from repro.measure.vantage import VantagePoint, VantagePointSet, attach_host
from repro.topology.geography import City, Geography

TRANSIT_CITIES = [
    ("Seattle", "WA"), ("Sunnyvale", "CA"), ("Los Angeles", "CA"),
    ("San Diego", "CA"), ("Denver", "CO"), ("Dallas", "TX"),
    ("Chicago", "IL"), ("Atlanta", "GA"), ("Miami", "FL"),
    ("New York", "NY"), ("Ashburn", "VA"), ("Boston", "MA"),
]

#: (provider, region name, metro) — approximate real cloud locations.
CLOUD_REGIONS = [
    ("aws", "us-east-1", ("Ashburn", "VA")),
    ("aws", "us-east-2", ("Columbus", "OH")),
    ("aws", "us-west-1", ("San Francisco", "CA")),
    ("aws", "us-west-2", ("Portland", "OR")),
    ("azure", "eastus", ("Richmond", "VA")),
    ("azure", "eastus2", ("Ashburn", "VA")),
    ("azure", "centralus", ("Des Moines", "IA")),
    ("azure", "westus", ("Sunnyvale", "CA")),
    ("azure", "southcentralus", ("San Antonio", "TX")),
    ("gcp", "us-east4", ("Ashburn", "VA")),
    ("gcp", "us-east1", ("Charleston", "SC")),
    ("gcp", "us-central1", ("Omaha", "NE")),
    ("gcp", "us-west1", ("Portland", "OR")),
    ("gcp", "us-west2", ("Los Angeles", "CA")),
]

_CLOUD_POOLS = {"aws": "52.0.0.0/11", "azure": "40.64.0.0/11", "gcp": "34.64.0.0/11"}


@dataclass
class CloudRegion:
    """One cloud provider region: its gateway router and VM factory state."""

    provider: str
    name: str
    city: City
    gateway: Router
    allocator: Ipv4Allocator


class SimulatedInternet:
    """The composed simulation: transit + clouds + ISPs + VPs."""

    def __init__(
        self,
        seed: int = 0,
        include_cable: bool = True,
        include_telco: bool = True,
        include_mobile: bool = True,
        geography: "Geography | None" = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(f"internet|{seed}")
        self.geography = geography or Geography()
        self.network = Network()
        self.transit_allocator = Ipv4Allocator("4.0.0.0/11")
        self.transit_routers: dict[str, Router] = {}
        self.clouds: dict[tuple[str, str], CloudRegion] = {}
        self.vps = VantagePointSet()
        self._build_transit()
        self._build_clouds()

        self.comcast = self.charter = self.att = None
        self.mobile_carriers: dict[str, object] = {}
        if include_cable:
            from repro.topology.cable import build_charter_like, build_comcast_like

            self.comcast = build_comcast_like(self.network, self.geography, seed)
            self.charter = build_charter_like(self.network, self.geography, seed)
            self._peer_isp(self.comcast)
            self._peer_isp(self.charter)
        if include_telco:
            from repro.topology.telco import build_att_like

            self.att = build_att_like(self.network, self.geography, seed)
            self._peer_isp(self.att)
        if include_mobile:
            from repro.topology.mobile import build_mobile_carriers

            self.mobile_carriers = build_mobile_carriers(self.geography, seed)
        self.server_vp = self._build_server()

    # ------------------------------------------------------------------
    # Substrate pieces
    # ------------------------------------------------------------------
    def _build_transit(self) -> None:
        """A national transit backbone: ring over metros plus chords."""
        cities = [self.geography.city(*c) for c in TRANSIT_CITIES]
        for city in cities:
            router = Router(f"transit-{city.state}-{city.name.replace(' ', '')}".lower())
            router.role = "transit"
            self.network.add_router(router)
            self.transit_routers[city.key] = router
        ordered = sorted(cities, key=lambda c: c.lon)
        pairs = list(zip(ordered, ordered[1:] + ordered[:1]))
        half = len(ordered) // 2
        pairs += [(ordered[i], ordered[i + half]) for i in range(half)]
        seen = set()
        for a, b in pairs:
            key = tuple(sorted((a.key, b.key)))
            if key in seen or a.key == b.key:
                continue
            seen.add(key)
            addr_a, addr_b, _ = self.transit_allocator.allocate_p2p(30)
            self.network.connect(
                self.transit_routers[a.key], self.transit_routers[b.key],
                addr_a, addr_b, prefixlen=30,
                length_km=1.4 * self.geography.distance_km(a, b),
            )

    def nearest_transit(self, city: City) -> Router:
        """The transit router nearest a metro."""
        best_key = min(
            self.transit_routers,
            key=lambda key: self.geography.distance_km(
                self._transit_city(key), city
            ),
        )
        return self.transit_routers[best_key]

    def _transit_city(self, key: str) -> City:
        name, state = key.rsplit(", ", 1)
        return self.geography.city(name, state)

    def _build_clouds(self) -> None:
        for provider, region_name, (city_name, state) in CLOUD_REGIONS:
            city = self.geography.city(city_name, state)
            index = len([c for c in self.clouds.values() if c.provider == provider])
            pool = list(
                ipaddress.ip_network(_CLOUD_POOLS[provider]).subnets(new_prefix=16)
            )[index]
            allocator = Ipv4Allocator(pool)
            gateway = Router(f"cloud-{provider}-{region_name}")
            gateway.role = "cloud"
            self.network.add_router(gateway)
            addr_a, addr_b, _ = allocator.allocate_p2p(30)
            self.network.connect(
                self.nearest_transit(city), gateway, addr_a, addr_b,
                prefixlen=30,
                length_km=1.4 * self.geography.distance_km(city, city) + 15.0,
            )
            self.clouds[(provider, region_name)] = CloudRegion(
                provider, region_name, city, gateway, allocator
            )

    def _peer_isp(self, isp) -> None:
        """Connect each of an ISP's backbone PoPs to the nearest transit router."""
        for pop in isp.backbone_pops.values():
            transit = self.nearest_transit(pop.city)
            addr_a, addr_b, _ = self.transit_allocator.allocate_p2p(30)
            link = self.network.connect(
                transit, pop.routers[0], addr_a, addr_b, prefixlen=30,
                length_km=5.0,
            )
            name = isp.backbone_rdns_for(
                pop, pop.routers[0], len(pop.routers[0].interfaces)
            )
            if name:
                self.network.rdns.set(link.b.address, name)

    def _build_server(self) -> VantagePoint:
        """The San Diego measurement server (§7.3's latency target)."""
        city = self.geography.city("San Diego", "CA")
        subnet = self.transit_allocator.allocate_subnet(30)
        host, addr = attach_host(
            self.network, self.nearest_transit(city), "sd-server", subnet
        )
        vp = VantagePoint("server-sandiego", "server", host, addr, city)
        self.vps.add(vp)
        return vp

    # ------------------------------------------------------------------
    # Vantage points
    # ------------------------------------------------------------------
    def cloud_vm(self, provider: str, region_name: str) -> VantagePoint:
        """Launch (or fetch) a VM in a cloud region and return its VP."""
        name = f"cloud-{provider}-{region_name}"
        try:
            return self.vps.get(name)
        except MeasurementError:
            pass
        try:
            region = self.clouds[(provider, region_name)]
        except KeyError as exc:
            raise TopologyError(
                f"no cloud region {provider}/{region_name}"
            ) from exc
        subnet = region.allocator.allocate_subnet(30)
        host, addr = attach_host(self.network, region.gateway, name, subnet,
                                 length_km=0.2)
        vp = VantagePoint(name, "cloud", host, addr, region.city)
        return self.vps.add(vp)

    def all_cloud_vms(self) -> "list[VantagePoint]":
        """One VM in every cloud region (the Fig 9 campaign fleet)."""
        return [
            self.cloud_vm(provider, region)
            for provider, region, _city in CLOUD_REGIONS
        ]

    def build_standard_vps(self) -> VantagePointSet:
        """The 47-VP fleet of §5.1: transit, cloud, and access VPs."""
        fleet = VantagePointSet()
        for key, router in sorted(self.transit_routers.items()):
            subnet = self.transit_allocator.allocate_subnet(30)
            host, addr = attach_host(
                self.network, router, f"transit-{key.replace(', ', '-').lower()}",
                subnet,
            )
            fleet.add(VantagePoint(
                f"vp-transit-{key.replace(', ', '-').lower()}", "transit",
                host, addr, self._transit_city(key),
            ))
        for vp in self.all_cloud_vms():
            fleet.add(vp)
        # Access VPs: homes behind cable EdgeCOs across both ISPs,
        # topping the fleet up to the paper's 47 VPs (§5.1).
        per_isp = {self.comcast: 1, self.charter: 2}
        for isp, vps_per_region in per_isp.items():
            if isp is None:
                continue
            region_names = sorted(isp.regions)
            picked = region_names[:: max(1, len(region_names) // 11)][:11]
            # Keep a home in the San Francisco region: its customers'
            # outward paths are what reveal the direct Central
            # California interconnect (§5.2.5).
            if "sanfrancisco" in region_names and "sanfrancisco" not in picked:
                picked[-1] = "sanfrancisco"
            for region_name in picked:
                region = isp.regions[region_name]
                edges = region.edge_cos
                for index in range(min(vps_per_region, len(edges))):
                    if len(fleet) >= 47:
                        break
                    edge = edges[(len(edges) // 2 + index * 3) % len(edges)]
                    subnet = isp.allocator.allocate_subnet(30)
                    name = f"access-{isp.name}-{region_name}-{index}"
                    host, addr = attach_host(
                        self.network, edge.routers[0], name, subnet,
                        extra_delay_ms=3.0,
                    )
                    fleet.add(VantagePoint(
                        f"vp-{name}", "access", host, addr, edge.city,
                    ))
        return fleet

    def telco_internal_vps(self, per_region: int = 2) -> VantagePointSet:
        """Ark/Atlas-style VPs inside each telco region (§6.1)."""
        if self.att is None:
            raise TopologyError("internet built without the telco")
        fleet = VantagePointSet()
        dslam_of_co: dict[int, Router] = {}
        for router in self.network.routers.values():
            if router.role == "dslam" and router.co is not None:
                dslam_of_co[id(router.co)] = router
        for tag in sorted(self.att.regions):
            region = self.att.regions[tag]
            edge_cos = region.edge_cos
            dslams = [
                (co, dslam_of_co[id(co)])
                for co in edge_cos
                if id(co) in dslam_of_co
            ]
            for i, (co, dslam) in enumerate(dslams[:per_region]):
                subnet = self.att.vp_subnet_for(dslam)
                kind = "ark" if i % 2 == 0 else "atlas"
                host, addr = attach_host(
                    self.network, dslam, f"{kind}-{tag}-{i}", subnet,
                    extra_delay_ms=4.0,
                )
                fleet.add(VantagePoint(
                    f"vp-{kind}-{tag}-{i}", kind, host, addr, co.city,
                ))
        return fleet



def build_default_internet(seed: int = 0, **kwargs) -> SimulatedInternet:
    """Build the standard simulated internet used across the benchmarks."""
    return SimulatedInternet(seed=seed, **kwargs)
