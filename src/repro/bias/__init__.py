"""Measurement-bias lab: quantify what traceroute sampling cannot see.

The reproduction's unique asset over the paper is ground truth, which
lets it measure the *blind spots* of the methodology itself:

* :mod:`repro.bias.routemodel` — route-model variants (valley-free
  AS-policy routing, per-ISP hot-potato exit selection) pluggable into
  :class:`~repro.net.network.Network`, so the same ground truth yields
  differently-biased corpora;
* :mod:`repro.bias.placement` — a greedy / seeded-stochastic
  vantage-point placement optimizer scored against ground truth and a
  random-placement baseline;
* :mod:`repro.bias.species` — Chao1 / Good-Turing species-style
  estimators of unobserved CO and link counts, computed vectorized from
  :class:`~repro.corpus.columnar.TraceCorpus` observation frequencies;
* :mod:`repro.bias.incremental` — :class:`IncrementalCoGraph`, a
  streaming inference engine digest-identical to the batch pipeline,
  plus an rDNS-epoch change detector for longitudinal mapping;
* :mod:`repro.bias.lab` / :mod:`repro.bias.report` — the orchestration
  runner and the validated ``bias-report`` artifact.

Like :mod:`repro.infer.metrics`, this package is allowed to read
ground-truth annotations — it exists to score measurement against them.
"""

from repro.bias.incremental import (
    EpochChangeDetector,
    IncrementalCoGraph,
    ingest_from_store,
    region_digest,
)
from repro.bias.lab import BiasLab, BiasLabResult
from repro.bias.placement import PlacementResult, VpPlacementOptimizer
from repro.bias.routemodel import (
    HotPotatoRouteModel,
    ValleyFreeRouteModel,
    annotate_asns,
    build_as_graph,
    build_route_model,
)
from repro.bias.report import (
    bias_report_from_json,
    bias_report_to_json,
    build_bias_report,
)
from repro.bias.species import SpeciesEstimate, chao1, estimate_from_counts

__all__ = [
    "BiasLab",
    "BiasLabResult",
    "EpochChangeDetector",
    "HotPotatoRouteModel",
    "IncrementalCoGraph",
    "PlacementResult",
    "SpeciesEstimate",
    "ValleyFreeRouteModel",
    "VpPlacementOptimizer",
    "annotate_asns",
    "bias_report_from_json",
    "bias_report_to_json",
    "build_as_graph",
    "build_bias_report",
    "build_route_model",
    "chao1",
    "estimate_from_counts",
    "ingest_from_store",
    "region_digest",
]
