"""Route-model variants: policy routing beyond delay-weighted SPF.

The substrate's default forwarding is delay-weighted shortest path,
which real inter-domain routing only approximates.  This module makes
the approximation explicit and swappable so one ground truth yields
differently-biased corpora:

* :class:`ValleyFreeRouteModel` — Gao export policy over the
  AS-relationship graph (uphill ``c2p*``, at most one ``p2p``,
  downhill ``p2c*``), implemented as a Dijkstra over ``(router,
  phase)`` states.  The backbone generators today fake this with a
  metric penalty on ISP backbone links (see
  ``BaseIsp.mesh_backbone``); the model is the principled version.
* :class:`HotPotatoRouteModel` — per-ISP early-exit: each AS hands the
  packet to its *cheapest* usable border exit measured from the
  ingress, ignoring the cost beyond the border.

Both keep the default's paris-traceroute contract: equal-cost choices
are broken by a deterministic hash of the flow id, so a fixed flow sees
one stable path.  ASN annotations come from ground truth
(:func:`annotate_asns`) — route models are substrate configuration, not
inference, so reading ground truth here is in-bounds.
"""

from __future__ import annotations

import heapq

from repro.errors import TopologyError
from repro.net.router import Router, _stable_hash
from repro.topology.asrel import AsGraph, valley_free_next_phase

#: Ground-truth ASNs for the non-ISP substrate pieces (transit gets a
#: Lumen-like number, clouds their real registry numbers).
TRANSIT_ASN = 3356
CLOUD_ASNS = {"aws": 16509, "azure": 8075, "gcp": 15169}

#: Names accepted by :func:`build_route_model` (``spf`` = default).
ROUTE_MODELS = ("spf", "valley-free", "hot-potato")


def relax_unlabeled_asns(network) -> None:
    """Give asn-0 routers the ASN of a labelled neighbour.

    Hosts (VPs, VMs, customer CPEs) hang off exactly one router; a few
    relaxation passes settle chains, deterministically taking the
    smallest neighbour ASN first.  Re-runnable: vantage points attach
    *after* a route model is built, so the models call this again
    whenever the topology has grown.
    """
    for _ in range(3):
        changed = False
        for router in network.routers.values():
            if router.asn:
                continue
            neighbor_asns = sorted(
                n.asn for n in network.neighbors(router) if n.asn
            )
            if neighbor_asns:
                router.asn = neighbor_asns[0]
                changed = True
        if not changed:
            break


def annotate_asns(internet) -> "dict[str, int]":
    """Assign every router its ground-truth ASN; returns uid → asn.

    ISP routers already carry their ISP's ASN (``BaseIsp.new_router``);
    transit and cloud routers are recognized by uid, and everything
    else inherits a neighbour's ASN via :func:`relax_unlabeled_asns`.
    """
    network = internet.network
    for router in network.routers.values():
        if router.asn:
            continue
        uid = router.uid
        if uid.startswith("transit-"):
            router.asn = TRANSIT_ASN
        else:
            for provider, asn in CLOUD_ASNS.items():
                if uid.startswith(f"cloud-{provider}-"):
                    router.asn = asn
                    break
    relax_unlabeled_asns(network)
    return {r.uid: r.asn for r in network.routers.values()}


def build_as_graph(internet) -> AsGraph:
    """The ground-truth AS-relationship graph of the simulated internet.

    The transit backbone provides transit to every ISP and cloud
    (``p2c``); ISPs of the same access class peer with each other
    (``p2p``) — the classic shape under which an eyeball network must
    never carry traffic *between* two transit routers.
    """
    graph = AsGraph()
    edge_asns = []
    for isp in (internet.comcast, internet.charter, internet.att):
        if isp is not None and isp.asn:
            edge_asns.append(isp.asn)
    for asn in edge_asns:
        graph.add_relationship(TRANSIT_ASN, asn, "p2c")
    for asn in CLOUD_ASNS.values():
        graph.add_relationship(TRANSIT_ASN, asn, "p2c")
    for i, asn_a in enumerate(edge_asns):
        for asn_b in edge_asns[i + 1:]:
            graph.add_relationship(asn_a, asn_b, "p2p")
    return graph


def build_route_model(internet, name: str):
    """Construct the named route model over *internet* (None for spf).

    Annotates ASNs as a side effect — both policy models need every
    router labelled before the first path is computed.
    """
    if name not in ROUTE_MODELS:
        raise TopologyError(
            f"unknown route model {name!r} (expected one of {ROUTE_MODELS})"
        )
    if name == "spf":
        return None
    annotate_asns(internet)
    graph = build_as_graph(internet)
    if name == "valley-free":
        return ValleyFreeRouteModel(graph)
    return HotPotatoRouteModel(graph)


_PHASES = ("up", "peer", "down")
_PHASE_INDEX = {phase: i for i, phase in enumerate(_PHASES)}


class ValleyFreeRouteModel:
    """Valley-free policy routing as a state-space shortest path.

    States are ``(router, phase)``; crossing an inter-AS link consults
    :func:`~repro.topology.asrel.valley_free_next_phase` (intra-AS and
    un-annotated links are phase-neutral).  Within the valley-free path
    set the cheapest-delay path wins, with the default engine's
    deterministic per-flow tie-break.  Unreachable-under-policy flows
    return None and fall back to SPF — a probe is forwarded *somehow*
    in the real world too; the bias is in which paths policy prefers.
    """

    name = "valley-free"

    def __init__(self, as_graph: AsGraph) -> None:
        self.as_graph = as_graph
        #: src uid → (dist, preds) over states; invalidated when the
        #: topology grows (models attach to finished topologies).
        self._cache: "dict[str, tuple[dict, dict]]" = {}
        self._cache_links = -1

    # ------------------------------------------------------------------
    def _edge_phase(self, phase: str, asn_u: int, asn_v: int) -> "str | None":
        if asn_u == asn_v or not asn_u or not asn_v:
            return phase
        return valley_free_next_phase(
            phase, self.as_graph.rel_of(asn_u, asn_v)
        )

    def _sssp(self, network, src_uid: str):
        if self._cache_links != len(network.links):
            # New links mean new routers too (freshly attached VP
            # hosts); label them before computing policy paths.
            relax_unlabeled_asns(network)
            self._cache.clear()
            self._cache_links = len(network.links)
        cached = self._cache.get(src_uid)
        if cached is not None:
            return cached
        routers = network.routers
        start = (src_uid, "up")
        dist: "dict[tuple[str, str], float]" = {start: 0.0}
        preds: "dict[tuple[str, str], list[tuple[str, str]]]" = {start: []}
        heap = [(0.0, src_uid, "up")]
        while heap:
            d, u, phase = heapq.heappop(heap)
            state = (u, phase)
            if d > dist.get(state, float("inf")):
                continue
            asn_u = routers[u].asn
            for v, w, _link in network._adj[u]:
                next_phase = self._edge_phase(phase, asn_u, routers[v].asn)
                if next_phase is None:
                    continue
                nd = d + w
                nstate = (v, next_phase)
                old = dist.get(nstate, float("inf"))
                if nd < old - 1e-12:
                    dist[nstate] = nd
                    preds[nstate] = [state]
                    heapq.heappush(heap, (nd, v, next_phase))
                elif (
                    abs(nd - old) <= 1e-12
                    and state not in preds[nstate]
                    and w > 0
                ):
                    preds[nstate].append(state)
        self._cache[src_uid] = (dist, preds)
        return dist, preds

    def forwarding_path(
        self, network, src: Router, dst: Router, flow_id: object = 0
    ) -> "list[Router] | None":
        dist, preds = self._sssp(network, src.uid)
        terminals = [
            (dist[(dst.uid, phase)], _PHASE_INDEX[phase], phase)
            for phase in _PHASES
            if (dst.uid, phase) in dist
        ]
        if not terminals:
            return None
        _, _, best_phase = min(terminals)
        state = (dst.uid, best_phase)
        path_uids = [dst.uid]
        while state != (src.uid, "up"):
            options = preds[state]
            if len(options) == 1:
                state = options[0]
            else:
                ordered = sorted(options)
                choice = _stable_hash(
                    "vf-ecmp", flow_id, state[0], state[1]
                ) % len(ordered)
                state = ordered[choice]
            path_uids.append(state[0])
        path_uids.reverse()
        return [network.routers[uid] for uid in path_uids]


class HotPotatoRouteModel:
    """Per-AS early-exit (hot-potato) routing.

    At each AS boundary the current AS picks the border link whose
    *internal* cost from the ingress is smallest — ignoring everything
    beyond the border, which is exactly the bias hot-potato introduces
    (§5's asymmetric entry/exit observations are one symptom).  Exits
    into already-visited ASes are excluded so the walk always
    progresses; flows the model cannot segment (same-AS endpoints,
    unlabelled routers, no usable exit) fall back to SPF via None.
    """

    name = "hot-potato"

    def __init__(self, as_graph: "AsGraph | None" = None) -> None:
        #: Restricts usable exits to BGP neighbours that would actually
        #: advertise a route to the destination (export rule below);
        #: without a graph every inter-AS link is assumed usable.
        self.as_graph = as_graph
        self._seen_links = -1
        self._cones: "dict[int, frozenset[int]]" = {}
        self._vf_reach: "dict[int, frozenset[int]]" = {}

    # ------------------------------------------------------------------
    # BGP export rule: which neighbours offer a route to the dst AS
    # ------------------------------------------------------------------
    def _customer_cone(self, asn: int) -> "frozenset[int]":
        cone = self._cones.get(asn)
        if cone is None:
            seen = set()
            frontier = [asn]
            while frontier:
                nxt = frontier.pop()
                for customer in self.as_graph.customers_of(nxt):
                    if customer not in seen:
                        seen.add(customer)
                        frontier.append(customer)
            cone = frozenset(seen)
            self._cones[asn] = cone
        return cone

    def _valley_free_reach(self, asn: int) -> "frozenset[int]":
        """ASes *asn* holds any valley-free route to."""
        reach = self._vf_reach.get(asn)
        if reach is None:
            seen = {(asn, "up")}
            frontier = [(asn, "up")]
            while frontier:
                cur, phase = frontier.pop()
                for neighbor in self.as_graph.neighbors_of(cur):
                    nxt = valley_free_next_phase(
                        phase, self.as_graph.rel_of(cur, neighbor)
                    )
                    if nxt is not None and (neighbor, nxt) not in seen:
                        seen.add((neighbor, nxt))
                        frontier.append((neighbor, nxt))
            reach = frozenset(a for a, _phase in seen)
            self._vf_reach[asn] = reach
        return reach

    def _advertises(self, n_asn: int, c_asn: int, d_asn: int) -> bool:
        """Would AS *n* advertise a route toward *d* to AS *c*?

        The Gao export rule: an AS exports customer routes (and its
        own) to everyone, but peer- or provider-learned routes only to
        its customers.  This is what keeps literal nearest-exit from
        walking into a stub AS that never offered the route.
        """
        if self.as_graph is None:
            return True
        if n_asn == d_asn or d_asn in self._customer_cone(n_asn):
            return True
        if self.as_graph.rel_of(n_asn, c_asn) != "p2c":
            return False
        return d_asn in self._valley_free_reach(n_asn)

    # ------------------------------------------------------------------
    def _intra_as_paths(self, network, start: Router):
        """Dijkstra restricted to *start*'s AS: uid → (dist, preds)."""
        asn = start.asn
        routers = network.routers
        dist = {start.uid: 0.0}
        preds: "dict[str, list[str]]" = {start.uid: []}
        heap = [(0.0, start.uid)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            for v, w, _link in network._adj[u]:
                if routers[v].asn != asn:
                    continue
                nd = d + w
                old = dist.get(v, float("inf"))
                if nd < old - 1e-12:
                    dist[v] = nd
                    preds[v] = [u]
                    heapq.heappush(heap, (nd, v))
                elif abs(nd - old) <= 1e-12 and u not in preds[v] and w > 0:
                    preds[v].append(u)
        return dist, preds

    @staticmethod
    def _walk_back(network, preds, src_uid: str, dst_uid: str, flow_id):
        path_uids = [dst_uid]
        node = dst_uid
        while node != src_uid:
            options = preds[node]
            if len(options) == 1:
                node = options[0]
            else:
                ordered = sorted(options)
                node = ordered[
                    _stable_hash("hp-ecmp", flow_id, node) % len(ordered)
                ]
            path_uids.append(node)
        path_uids.reverse()
        return path_uids

    def forwarding_path(
        self, network, src: Router, dst: Router, flow_id: object = 0
    ) -> "list[Router] | None":
        routers = network.routers
        if self._seen_links != len(network.links):
            # Freshly attached VP hosts arrive unlabelled; label them
            # before deciding the flow is un-segmentable.
            relax_unlabeled_asns(network)
            self._seen_links = len(network.links)
        if not src.asn or not dst.asn or src.asn == dst.asn:
            return None
        # Reachability oracle: the substrate's links are symmetric, so
        # distance-from-dst doubles as distance-to-dst.
        reach, _ = network._sssp(dst.uid)
        path_uids = [src.uid]
        current = src
        visited_asns = {src.asn}
        for _hop_budget in range(len(routers)):
            if current.asn == dst.asn:
                break
            dist, preds = self._intra_as_paths(network, current)
            candidates = []
            for border_uid, border_cost in dist.items():
                for v, _w, _link in network._adj[border_uid]:
                    neighbor = routers[v]
                    if neighbor.asn == current.asn or not neighbor.asn:
                        continue
                    if (
                        neighbor.asn in visited_asns
                        and neighbor.asn != dst.asn
                    ):
                        continue
                    if self.as_graph is not None and self.as_graph.rel_of(
                        current.asn, neighbor.asn
                    ) is None:
                        continue
                    if not self._advertises(
                        neighbor.asn, current.asn, dst.asn
                    ):
                        continue
                    if v not in reach:
                        continue
                    tiebreak = _stable_hash(
                        "hot-potato", flow_id, border_uid, v
                    )
                    candidates.append((border_cost, tiebreak, border_uid, v))
            if not candidates:
                return None
            _cost, _tb, border_uid, exit_uid = min(candidates)
            segment = self._walk_back(
                network, preds, current.uid, border_uid, flow_id
            )
            path_uids.extend(segment[1:])
            path_uids.append(exit_uid)
            current = routers[exit_uid]
            visited_asns.add(current.asn)
        else:
            return None
        # Final intra-AS segment inside the destination AS.
        dist, preds = self._intra_as_paths(network, current)
        if dst.uid not in dist:
            return None
        segment = self._walk_back(network, preds, current.uid, dst.uid, flow_id)
        path_uids.extend(segment[1:])
        return [routers[uid] for uid in path_uids]
