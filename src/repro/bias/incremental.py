"""Streaming incremental inference with batch digest parity.

The batch pipeline is a fold over the corpus: every stage consumes
either per-address lookups or insertion-ordered unique-pair counts.
:class:`IncrementalCoGraph` maintains exactly those sufficient
statistics trace-by-trace — O(hops) per ingest — and materializes a
full CO graph on demand by replaying the *same* stage code
(:class:`~repro.infer.ip2co.Ip2CoMapper` voting,
:meth:`~repro.infer.adjacency.AdjacencyExtractor._classify` pruning,
:class:`~repro.infer.refine.RegionRefiner`).  Because the pair counts
accumulate in first-occurrence order — the batch Counter's insertion
order — a snapshot is digest-*identical* to rerunning the batch
pipeline over the same traces, not merely equivalent.  The regression
suite holds that parity as an oracle.

Longitudinal pieces ride along: :func:`ingest_from_store` drains
finished campaign-service jobs in submission order with a resumable
cursor, and :class:`EpochChangeDetector` watches the rDNS store's
epoch counter to report per-address CO reassignments — the §6
"mapping the same region a year later" workflow, without a rerun.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import InferenceError
from repro.infer.adjacency import AdjacencyExtractor, FollowupIndex, RegionAdjacencies
from repro.infer.ip2co import CoConflict, Ip2CoMapper, Ip2CoMapping, Ip2CoStats
from repro.infer.refine import RegionRefiner
from repro.measure.traceroute import TraceResult
from repro.net.dns import RdnsStore
from repro.perf.cache import normalize_address, p2p_peer_str


def region_digest(regions: "dict") -> str:
    """Order-independent digest of refined region graphs.

    Identical to the benchmark harness's digest (edges with weights
    plus agg-CO sets, JSON-canonicalized) so streaming snapshots,
    batch runs, and bench subprocesses all compare in one currency.
    """
    payload = {
        name: {
            "edges": sorted(
                (a, b, int(data.get("weight", 0)))
                for a, b, data in region.graph.edges(data=True)
            ),
            "aggs": sorted(region.agg_cos),
        }
        for name, region in regions.items()
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class StreamSnapshot:
    """One materialization of the streaming graph."""

    mapping: Ip2CoMapping
    adjacencies: RegionAdjacencies
    #: region name → RefinedRegion, refined in sorted-region order.
    regions: "dict[str, object]" = field(default_factory=dict)
    traces_ingested: int = 0
    followups_ingested: int = 0

    @property
    def digest(self) -> str:
        return region_digest(self.regions)


class IncrementalCoGraph:
    """Online CO-graph inference over a trace stream.

    Ingestion only updates counts; :meth:`snapshot` runs the voting,
    pruning, and refinement stages over the accumulated statistics.
    Traces must arrive in the same order the batch pipeline would read
    them for byte-identical digests (the graph itself is insensitive
    to order — only tie-breaking conflict *listings* can reorder).
    """

    def __init__(self, rdns: RdnsStore, isp: str, p2p_prefixlen: int = 30,
                 parser=None, cache=None,
                 isp_aliases: "tuple[str, ...]" = ()) -> None:
        self.mapper = Ip2CoMapper(
            rdns, isp, p2p_prefixlen=p2p_prefixlen, parser=parser, cache=cache
        )
        self.rdns = rdns
        self.isp = isp
        self.cache = cache
        self.isp_aliases = tuple(isp_aliases)
        #: Insertion-ordered unique-pair counts — the batch Counter's
        #: exact state, grown one trace at a time.
        self._pairs: "Counter[tuple[str, str]]" = Counter()
        #: Echo-excluded pair counts feeding the p2p vote (stage 3).
        self._p2p_pairs: "Counter[tuple[str, str]]" = Counter()
        #: Responding addresses plus their p2p-subnet peers (stage 1).
        self._observed: "set[str]" = set()
        #: Live positional index over ingested follow-up (DPR) traces.
        self._followup_index = FollowupIndex([])
        self.traces_ingested = 0
        self.followups_ingested = 0

    # ------------------------------------------------------------------
    # Ingestion — O(hops) per trace
    # ------------------------------------------------------------------
    def ingest(self, trace: TraceResult) -> None:
        """Fold one primary trace into the sufficient statistics."""
        for hop in trace.hops:
            if hop.address is None:
                continue
            self._observed.add(hop.address)
            peer = p2p_peer_str(hop.address, self.mapper.p2p_prefixlen)
            if peer is not None:
                self._observed.add(peer)
        pairs = trace.adjacent_pairs()
        for pair in pairs:
            self._pairs[pair] += 1
        for pair in trace.adjacent_pairs(exclude_final_echo=True):
            self._p2p_pairs[pair] += 1
        self.traces_ingested += 1

    def ingest_followup(self, trace: TraceResult) -> None:
        """Fold one follow-up (DPR) trace into the MPLS span index."""
        t_index = self.followups_ingested
        spans = self._followup_index._spans
        for hop in trace.hops:
            if hop.address is None:
                continue
            per_trace = spans.setdefault(hop.address, {})
            seen = per_trace.get(t_index)
            if seen is None:
                per_trace[t_index] = (hop.index, hop.index)
            else:
                per_trace[t_index] = (seen[0], hop.index)
        self.followups_ingested += 1

    def ingest_corpus(self, corpus, followups: bool = False) -> int:
        """Ingest every trace of a columnar corpus, in stored order."""
        traces = corpus.to_traces()
        sink = self.ingest_followup if followups else self.ingest
        for trace in traces:
            sink(trace)
        return len(traces)

    # ------------------------------------------------------------------
    # Materialization — replays the batch stages over the counts
    # ------------------------------------------------------------------
    def snapshot(
        self,
        aliases=None,
        extra_addresses: "set[str] | None" = None,
        refiner: "RegionRefiner | None" = None,
    ) -> StreamSnapshot:
        """Run voting + pruning + refinement over the current state."""
        stats = Ip2CoStats()
        addresses = set(self._observed)
        if extra_addresses:
            addresses |= {normalize_address(a) for a in extra_addresses}
        mapping = self.mapper.initial_mapping(addresses)
        stats.initial = len(mapping)
        conflicts: "list[CoConflict]" = []
        if aliases is not None:
            self.mapper._apply_alias_groups(mapping, aliases, stats, conflicts)
        stats.after_alias = len(mapping)
        # Stage 3 over the accumulated unique-pair counts: identical
        # vote totals and dict ordering to the batch occurrence walk
        # (first occurrence of a pair = first occurrence of its vote).
        votes: "dict[str, Counter]" = {}
        for (prev_addr, cur_addr), count in self._p2p_pairs.items():
            peer = p2p_peer_str(cur_addr, self.mapper.p2p_prefixlen)
            if peer is None:
                continue
            peer_co = mapping.get(peer)
            if peer_co is None:
                continue
            votes.setdefault(prev_addr, Counter())[peer_co] += count
        self.mapper._resolve_p2p_votes(mapping, votes, stats, conflicts)
        stats.final = len(mapping)
        ip2co = Ip2CoMapping(mapping=mapping, stats=stats, conflicts=conflicts)

        extractor = AdjacencyExtractor(
            ip2co, self.rdns, self.isp, parser=self.mapper.parser,
            cache=self.cache, isp_aliases=self.isp_aliases,
        )
        followup_index = (
            self._followup_index if self.followups_ingested else None
        )
        adjacencies = extractor._classify(
            self._pairs.items(), [], followup_index
        )

        refiner = refiner or RegionRefiner(cache=self.cache)
        regions = {
            name: refiner.refine(name, adjacencies.per_region[name])
            for name in adjacencies.regions()
        }
        return StreamSnapshot(
            mapping=ip2co,
            adjacencies=adjacencies,
            regions=regions,
            traces_ingested=self.traces_ingested,
            followups_ingested=self.followups_ingested,
        )


def ingest_from_store(graph: IncrementalCoGraph, state_dir,
                      after_seq: int = 0) -> "tuple[int, int]":
    """Drain finished service jobs' corpora into *graph*.

    Opens the campaign-service store read-only and ingests every
    *done* job with a corpus artifact whose ``submitted_seq`` exceeds
    *after_seq*, in submission order.  Returns ``(traces ingested,
    new cursor)`` — feed the cursor back to resume incrementally as
    the service completes more jobs.
    """
    from repro.service.diff import iter_finished_corpora
    from repro.service.store import JobStore

    store = JobStore.open(state_dir, readonly=True)
    total = 0
    cursor = after_seq
    for record, corpus in iter_finished_corpora(store, after_seq=after_seq):
        total += graph.ingest_corpus(corpus)
        cursor = max(cursor, record.submitted_seq)
    return total, cursor


@dataclass(frozen=True)
class CoChange:
    """One watched address whose CO assignment moved between epochs."""

    address: str
    old: "tuple[str, str] | None"
    new: "tuple[str, str] | None"


class EpochChangeDetector:
    """Longitudinal rDNS watcher keyed on the store's epoch counter.

    The rDNS store bumps :attr:`~repro.net.dns.RdnsStore.epoch` on
    every mutation, so polling is O(1) when nothing changed and one
    classification pass per watched address when something did.  The
    detector reports (address, old CO, new CO) deltas — the raw
    signal a longitudinal mapper quarantines or re-votes on.
    """

    def __init__(self, rdns: RdnsStore, isp: str, parser=None) -> None:
        from repro.rdns.regexes import HostnameParser

        self.rdns = rdns
        self.isp = isp
        self.parser = parser or HostnameParser()
        self._epoch = rdns.epoch
        self._assignments: "dict[str, tuple[str, str] | None]" = {}

    def _classify(self, address: str) -> "tuple[str, str] | None":
        return self.parser.regional_co(self.rdns.lookup(address), self.isp)

    def watch(self, addresses) -> None:
        """Start tracking *addresses* at their current classification."""
        for address in addresses:
            key = normalize_address(address)
            if key not in self._assignments:
                self._assignments[key] = self._classify(key)

    @property
    def watched(self) -> int:
        return len(self._assignments)

    def poll(self) -> "list[CoChange]":
        """Changes since the last poll ([] when the epoch is unmoved)."""
        if not self._assignments and self.rdns.epoch == self._epoch:
            return []
        if self.rdns.epoch == self._epoch:
            return []
        self._epoch = self.rdns.epoch
        changes = []
        for address in sorted(self._assignments):
            old = self._assignments[address]
            new = self._classify(address)
            if new != old:
                changes.append(CoChange(address=address, old=old, new=new))
                self._assignments[address] = new
        return changes


def assert_parity(stream: StreamSnapshot, batch_regions: "dict") -> str:
    """Raise unless the streaming digest matches the batch digest.

    Returns the (shared) digest so callers can record it in reports.
    """
    stream_digest = stream.digest
    batch = region_digest(batch_regions)
    if stream_digest != batch:
        raise InferenceError(
            "streaming/batch digest mismatch: "
            f"{stream_digest[:12]} != {batch[:12]}"
        )
    return stream_digest
