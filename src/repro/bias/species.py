"""Species-style coverage estimators for traceroute corpora.

Topology inference is a species-sampling problem: every trace is a
quadrat, every CO (or CO-level link) a species, and the observation
frequency spectrum tells us how much of the population the campaign has
*not* seen yet.  This module ports the classic abundance-based
machinery — Chao1's lower bound on total richness and Good–Turing
sample coverage — to the columnar corpus, computing the frequency
spectra vectorized from :class:`~repro.corpus.columnar.TraceCorpus`
columns.

The estimators only read observations; ground truth enters solely when
the bias lab scores their predictions (``truth`` fields on the report).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.columnar import TraceCorpus, adjacent_pair_counts
from repro.errors import ReproError


def chao1(observed: int, f1: int, f2: int) -> float:
    """Chao1 lower-bound estimate of total species richness.

    ``S_chao1 = S_obs + f1² / (2·f2)`` with the bias-corrected fallback
    ``S_obs + f1·(f1−1)/2`` when no doubletons were observed (Chao 1984;
    the same form the topology-species literature applies to routers
    and links).
    """
    if observed < 0 or f1 < 0 or f2 < 0:
        raise ReproError("frequency counts cannot be negative")
    if f1 + f2 > observed:
        raise ReproError(
            f"singletons+doubletons ({f1}+{f2}) exceed observed ({observed})"
        )
    if f2 > 0:
        return observed + (f1 * f1) / (2.0 * f2)
    return observed + (f1 * (f1 - 1)) / 2.0


@dataclass(frozen=True)
class SpeciesEstimate:
    """The abundance summary of one species class (COs or links)."""

    #: Distinct species observed at least once.
    observed: int
    #: Singletons / doubletons (seen exactly once / twice).
    f1: int
    f2: int
    #: Chao1 estimate of the total (observed + unseen) richness.
    chao1: float
    #: Good–Turing sample coverage ``1 − f1/N`` (1.0 when N == 0).
    coverage: float
    #: Total observations N across all species.
    n: int

    @property
    def unseen(self) -> float:
        """Estimated number of species the campaign never observed."""
        return self.chao1 - self.observed

    def as_dict(self) -> dict:
        return {
            "observed": self.observed,
            "f1": self.f1,
            "f2": self.f2,
            "chao1": round(self.chao1, 4),
            "unseen": round(self.unseen, 4),
            "coverage": round(self.coverage, 6),
            "n": self.n,
        }


def estimate_from_counts(counts: "np.ndarray | list[int]") -> SpeciesEstimate:
    """Build a :class:`SpeciesEstimate` from per-species abundances.

    *counts* holds one entry per observed species (its number of
    observations); zeros are ignored so callers can pass raw
    ``np.bincount`` output directly.
    """
    arr = np.asarray(counts, dtype=np.int64)
    arr = arr[arr > 0]
    observed = int(arr.size)
    n = int(arr.sum())
    # Frequency-of-frequencies via one more bincount: spectrum[k] =
    # number of species observed exactly k times.
    if observed:
        spectrum = np.bincount(arr, minlength=3)
        f1 = int(spectrum[1])
        f2 = int(spectrum[2])
    else:
        f1 = f2 = 0
    coverage = 1.0 - (f1 / n) if n else 1.0
    return SpeciesEstimate(
        observed=observed,
        f1=f1,
        f2=f2,
        chao1=chao1(observed, f1, f2),
        coverage=coverage,
        n=n,
    )


def co_abundances(corpus: TraceCorpus, mapping) -> "np.ndarray":
    """Observation counts per inferred CO, from hop address columns.

    Each responding hop is one observation of the CO its address maps
    to (via *mapping*, an :class:`~repro.infer.ip2co.Ip2CoMapping`);
    addresses the mapper could not place are skipped.
    """
    addr_ids = corpus.addr_id[corpus.addr_id >= 0]
    per_address = np.bincount(addr_ids, minlength=len(corpus.addresses))
    totals: "dict[str, int]" = {}
    for addr_index, count in enumerate(per_address):
        if not count:
            continue
        co = mapping.co_of(corpus.addresses[int(addr_index)])
        if co is None:
            continue
        totals[co] = totals.get(co, 0) + int(count)
    return np.asarray(list(totals.values()), dtype=np.int64)


def link_abundances(corpus: TraceCorpus, mapping) -> "np.ndarray":
    """Observation counts per inferred CO-level link.

    Adjacent responding hop pairs whose endpoints map to two different
    COs of the *same region* count as observations of that (unordered)
    CO edge — the raw signal the adjacency extractor votes over,
    before pruning.  Cross-region pairs are excluded up front: they
    are overwhelmingly stale rDNS (App. B.2), not an edge species.
    """
    totals: "dict[tuple[str, str], int]" = {}
    for first, second, count in adjacent_pair_counts(corpus):
        co_a = mapping.co_of(corpus.addresses[first])
        co_b = mapping.co_of(corpus.addresses[second])
        if co_a is None or co_b is None or co_a == co_b:
            continue
        if co_a[0] != co_b[0]:
            continue
        edge = (co_a, co_b) if co_a <= co_b else (co_b, co_a)
        totals[edge] = totals.get(edge, 0) + count
    return np.asarray(list(totals.values()), dtype=np.int64)


def estimate_corpus(
    corpus: TraceCorpus, mapping
) -> "tuple[SpeciesEstimate, SpeciesEstimate]":
    """(CO estimate, link estimate) for a corpus under a CO mapping."""
    return (
        estimate_from_counts(co_abundances(corpus, mapping)),
        estimate_from_counts(link_abundances(corpus, mapping)),
    )
