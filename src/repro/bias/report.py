"""The validated ``bias-report`` artifact.

One JSON document per lab run: species estimates next to their ground
truth, the optimized placement next to its random baseline, and the
streaming digest-parity verdict.  CI regenerates the seeded scenario
and gates on the committed copy (estimator accuracy floor, placement
beating random, parity true) via
``benchmarks/perf/check_regression.py --bias-report``.
"""

from __future__ import annotations

import json

from repro.bias.lab import BiasLabResult
from repro.validate.schema import ARTIFACT_VERSIONS, parse_artifact, validate_artifact


def build_bias_report(result: BiasLabResult) -> dict:
    """Lift a lab result into the validated artifact payload."""
    payload = {
        "schema": ARTIFACT_VERSIONS["bias-report"],
        "kind": "bias-report",
        "isp": result.isp,
        "seed": result.seed,
        "route_model": result.route_model,
        "vp_count": result.vp_count,
        "targets": result.targets,
        "species": {
            "cos": result.co_species.as_dict(),
            "links": result.link_species.as_dict(),
        },
        "placement": result.placement.as_dict(),
        "streaming": result.stream.as_dict(),
    }
    return validate_artifact(payload, kind="bias-report")


def bias_report_to_json(result: BiasLabResult) -> str:
    return json.dumps(build_bias_report(result), indent=2, sort_keys=True)


def bias_report_from_json(text: str) -> dict:
    """Parse + validate a serialized bias report."""
    return parse_artifact(text, kind="bias-report")
